//! Error types of the virtual platform.

use std::fmt;

use skelcl_kernel::vm::RuntimeError;

/// An error raised by the virtual GPU platform.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A device-memory allocation exceeded the device's capacity.
    OutOfDeviceMemory {
        /// Requested allocation size in bytes.
        requested: usize,
        /// Bytes still available on the device.
        available: usize,
    },
    /// A host transfer's ranges did not fit the buffer.
    TransferOutOfRange {
        /// Buffer length in bytes.
        buffer_len: usize,
        /// Transfer offset in bytes.
        offset: usize,
        /// Transfer length in bytes.
        len: usize,
    },
    /// The named kernel does not exist in the program.
    UnknownKernel {
        /// The requested kernel name.
        name: String,
    },
    /// Kernel argument binding mismatch.
    InvalidKernelArg {
        /// The kernel being launched.
        kernel: String,
        /// Zero-based argument index.
        index: usize,
        /// What went wrong.
        reason: String,
    },
    /// The ND-range was malformed (zero sizes, local not dividing global,
    /// too many work-items per group).
    InvalidNdRange {
        /// What went wrong.
        reason: String,
    },
    /// A buffer argument belongs to a different device than the queue.
    WrongDevice {
        /// The queue's device id.
        queue_device: usize,
        /// The buffer's device id.
        buffer_device: usize,
    },
    /// A work-item faulted during execution.
    Launch {
        /// The kernel name.
        kernel: String,
        /// Global id of the faulting work-item.
        global_id: [u64; 3],
        /// The underlying fault.
        error: RuntimeError,
    },
    /// Work-items of one group reached different barriers (or one finished
    /// while others wait) — undefined behaviour in OpenCL, an error here.
    BarrierDivergence {
        /// The kernel name.
        kernel: String,
        /// The group's id.
        group_id: [u64; 3],
    },
    /// The requested local memory exceeds the device limit.
    LocalMemoryExceeded {
        /// Requested bytes (static arrays + dynamic arguments).
        requested: usize,
        /// Device limit in bytes.
        limit: usize,
    },
    /// The queue's worker died mid-command (a panic inside the execution
    /// engine) — the OpenCL analogue of `CL_DEVICE_NOT_AVAILABLE` after a
    /// driver crash. Commands waiting on the lost command fail with the
    /// same error.
    DeviceLost,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfDeviceMemory { requested, available } => write!(
                f,
                "out of device memory: requested {requested} bytes, {available} available"
            ),
            Error::TransferOutOfRange { buffer_len, offset, len } => write!(
                f,
                "transfer of {len} bytes at offset {offset} exceeds buffer of {buffer_len} bytes"
            ),
            Error::UnknownKernel { name } => write!(f, "unknown kernel `{name}`"),
            Error::InvalidKernelArg { kernel, index, reason } => {
                write!(f, "invalid argument {index} of kernel `{kernel}`: {reason}")
            }
            Error::InvalidNdRange { reason } => write!(f, "invalid ND-range: {reason}"),
            Error::WrongDevice { queue_device, buffer_device } => write!(
                f,
                "buffer belongs to device {buffer_device} but the queue targets device {queue_device}"
            ),
            Error::Launch { kernel, global_id, error } => write!(
                f,
                "kernel `{kernel}` faulted at work-item {global_id:?}: {error}"
            ),
            Error::BarrierDivergence { kernel, group_id } => write!(
                f,
                "kernel `{kernel}`: work-group {group_id:?} reached divergent barriers"
            ),
            Error::LocalMemoryExceeded { requested, limit } => write!(
                f,
                "local memory request of {requested} bytes exceeds the device limit of {limit}"
            ),
            Error::DeviceLost => write!(f, "device lost: the command queue's worker crashed"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::OutOfDeviceMemory {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("requested 100"));
        let e = Error::UnknownKernel {
            name: "nope".into(),
        };
        assert_eq!(e.to_string(), "unknown kernel `nope`");
        let e = Error::Launch {
            kernel: "k".into(),
            global_id: [1, 2, 0],
            error: RuntimeError::DivisionByZero,
        };
        assert!(e.to_string().contains("division by zero"));
    }
}
