//! # vgpu — a virtual multi-GPU OpenCL-like platform
//!
//! The SkelCL paper evaluates on a host driving an NVIDIA Tesla S1070 (4
//! GPUs) through OpenCL. This crate is the reproduction's substitute for
//! that hardware + driver stack:
//!
//! * [`Platform`] / [`Device`] — a host with N virtual GPUs, each with its
//!   own memory capacity and simulated timeline;
//! * [`DeviceBuffer`] — global-memory buffers with allocation accounting;
//! * [`CommandQueue`] — asynchronous in-order queues (one worker thread
//!   each) for transfers and kernel launches, every command returning an
//!   [`Event`] with wait-list dependencies and OpenCL-style profiling;
//! * an execution engine running compiled SkelCL C kernels
//!   (`skelcl-kernel`) over ND-ranges: work-groups in parallel on host
//!   threads, work-items of a group in lockstep rounds across `barrier()`s;
//! * a deterministic [cost model](cost) turning execution counters into
//!   simulated nanoseconds, reproducing the paper's first-order effects
//!   (local vs global memory, CUDA-vs-OpenCL toolchain factor, PCIe
//!   transfer costs).
//!
//! ## Example
//!
//! ```
//! use vgpu::{Platform, DeviceSpec, NdRange, KernelArg, LaunchConfig};
//! use skelcl_kernel::value::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = skelcl_kernel::compile(
//!     "scale.cl",
//!     "__kernel void scale(__global float* data, float s, int n) {
//!          int i = (int)get_global_id(0);
//!          if (i < n) data[i] = data[i] * s;
//!      }",
//! )?;
//!
//! let platform = Platform::single(DeviceSpec::tesla_t10());
//! let queue = platform.queue(0);
//! let buffer = queue.create_buffer(4 * 4)?;
//! let input: Vec<u8> = [1.0f32, 2.0, 3.0, 4.0].iter().flat_map(|v| v.to_le_bytes()).collect();
//! queue.enqueue_write(&buffer, 0, &input)?;
//!
//! let event = queue.launch_kernel(
//!     &program,
//!     "scale",
//!     &[KernelArg::Buffer(buffer.clone()), KernelArg::Scalar(Value::F32(10.0)), KernelArg::Scalar(Value::I32(4))],
//!     NdRange::linear_default(4),
//!     &LaunchConfig::default(),
//! )?;
//! assert!(event.duration().as_nanos() > 0);
//!
//! let mut out = vec![0u8; 16];
//! queue.enqueue_read(&buffer, 0, &mut out)?;
//! let first = f32::from_le_bytes(out[..4].try_into().unwrap());
//! assert_eq!(first, 10.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cl;
pub mod cost;
pub mod device;
pub mod error;
pub mod event;
mod exec;
pub mod memory;
pub mod ndrange;
pub mod platform;
mod pool;
pub mod queue;

pub use cost::Toolchain;
pub use device::{Device, DeviceId, DeviceSpec, ExecStats};
pub use error::{Error, Result};
pub use event::{CommandClass, CommandKind, Event, EventStatus};
pub use exec::{ExecStrategy, FaultInjection, LaunchConfig};
pub use memory::DeviceBuffer;
pub use ndrange::NdRange;
pub use platform::Platform;
pub use queue::{CommandQueue, HostRead, KernelArg, QueueNotice, QueueObserver, QueuePhase};
