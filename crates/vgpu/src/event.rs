//! Events with OpenCL-style profiling information and shared completion
//! state.
//!
//! Every enqueued command returns an [`Event`]. Since the queues execute
//! commands on a worker thread (one per queue, in order), an event is a
//! handle to *shared state*: its status moves `Queued → Running →
//! Complete`/`Failed`, observers block in [`Event::wait`] on a condition
//! variable, and completion callbacks fire on the worker thread before the
//! event becomes observably complete. The profiling accessors mirror
//! `clGetEventProfilingInfo` — the paper's Fig. 5 measurements use exactly
//! this API ("measurements were taken using the OpenCL profiling API").

use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use skelcl_kernel::vm::CostCounters;

use crate::device::DeviceId;
use crate::error::{Error, Result};

/// What kind of command an event belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandKind {
    /// Host → device transfer.
    WriteBuffer {
        /// Bytes transferred.
        bytes: usize,
    },
    /// Device → host transfer.
    ReadBuffer {
        /// Bytes transferred.
        bytes: usize,
    },
    /// Device → device copy (through the host, as in the paper).
    CopyBuffer {
        /// Bytes transferred.
        bytes: usize,
    },
    /// A kernel execution.
    Kernel {
        /// The kernel's name.
        name: String,
    },
    /// A synchronisation point with no work of its own
    /// (`clEnqueueMarkerWithWaitList`); also what [`finish`] waits on.
    ///
    /// [`finish`]: crate::CommandQueue::finish
    Marker,
}

/// Coarse, payload-free classification of a command, for telemetry
/// observers that must not allocate (see
/// [`QueueNotice`](crate::queue::QueueNotice)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandClass {
    /// Host → device transfer.
    Write,
    /// Device → host transfer.
    Read,
    /// Device → device copy.
    Copy,
    /// Kernel execution.
    Kernel,
    /// Synchronisation marker.
    Marker,
}

impl CommandClass {
    /// A static label for traces and dumps.
    pub fn label(self) -> &'static str {
        match self {
            CommandClass::Write => "write",
            CommandClass::Read => "read",
            CommandClass::Copy => "copy",
            CommandClass::Kernel => "kernel",
            CommandClass::Marker => "marker",
        }
    }
}

impl CommandKind {
    /// This command's [`CommandClass`].
    pub fn class(&self) -> CommandClass {
        match self {
            CommandKind::WriteBuffer { .. } => CommandClass::Write,
            CommandKind::ReadBuffer { .. } => CommandClass::Read,
            CommandKind::CopyBuffer { .. } => CommandClass::Copy,
            CommandKind::Kernel { .. } => CommandClass::Kernel,
            CommandKind::Marker => CommandClass::Marker,
        }
    }

    /// Bytes the command moves (0 for kernels and markers).
    pub fn payload_bytes(&self) -> usize {
        match self {
            CommandKind::WriteBuffer { bytes }
            | CommandKind::ReadBuffer { bytes }
            | CommandKind::CopyBuffer { bytes } => *bytes,
            CommandKind::Kernel { .. } | CommandKind::Marker => 0,
        }
    }
}

/// Where an event is in its lifecycle, as `clGetEventInfo` would report it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventStatus {
    /// Enqueued, not yet picked up by the queue worker.
    Queued,
    /// The queue worker is executing the command.
    Running,
    /// The command finished successfully; profiling data is final.
    Complete,
    /// The command (or a command it waited on) failed.
    Failed,
}

type Callback = Box<dyn FnOnce(&Event) + Send>;

/// Mutable half of an event, shared between the enqueuing thread, the queue
/// worker and any number of waiters.
struct EventState {
    status: EventStatus,
    queued_ns: u64,
    started_ns: u64,
    ended_ns: u64,
    counters: Option<CostCounters>,
    error: Option<Error>,
    callbacks: Vec<Callback>,
    /// Set once the finalising thread has taken the callback list; late
    /// registrations run immediately on the caller's thread.
    callbacks_taken: bool,
}

struct EventData {
    device: DeviceId,
    kind: CommandKind,
    state: Mutex<EventState>,
    cond: Condvar,
}

/// A handle to one enqueued command: completion state, an [`Error`] on
/// failure, and OpenCL-style profiling timestamps once complete.
#[derive(Clone)]
pub struct Event {
    inner: Arc<EventData>,
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.lock();
        f.debug_struct("Event")
            .field("device", &self.inner.device)
            .field("kind", &self.inner.kind)
            .field("status", &st.status)
            .field("queued_ns", &st.queued_ns)
            .field("started_ns", &st.started_ns)
            .field("ended_ns", &st.ended_ns)
            .finish()
    }
}

impl Event {
    /// Creates an already-complete event from raw profiling data. Normally
    /// events come from [`crate::CommandQueue`]; this constructor exists for
    /// tooling and tests that synthesise timelines.
    pub fn new(
        device: DeviceId,
        kind: CommandKind,
        queued_ns: u64,
        started_ns: u64,
        ended_ns: u64,
        counters: Option<CostCounters>,
    ) -> Self {
        Event {
            inner: Arc::new(EventData {
                device,
                kind,
                state: Mutex::new(EventState {
                    status: EventStatus::Complete,
                    queued_ns,
                    started_ns,
                    ended_ns,
                    counters,
                    error: None,
                    callbacks: Vec::new(),
                    callbacks_taken: true,
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// Creates a pending event for a command just handed to a queue worker.
    pub(crate) fn pending(device: DeviceId, kind: CommandKind) -> Self {
        Event {
            inner: Arc::new(EventData {
                device,
                kind,
                state: Mutex::new(EventState {
                    status: EventStatus::Queued,
                    queued_ns: 0,
                    started_ns: 0,
                    ended_ns: 0,
                    counters: None,
                    error: None,
                    callbacks: Vec::new(),
                    callbacks_taken: false,
                }),
                cond: Condvar::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, EventState> {
        // A panicking callback poisons nothing observable: callbacks run
        // outside the lock, so recovering from poison is always safe here.
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The device the command ran on.
    pub fn device(&self) -> DeviceId {
        self.inner.device
    }

    /// The command's kind.
    pub fn kind(&self) -> &CommandKind {
        &self.inner.kind
    }

    /// Where the command is in its lifecycle right now.
    pub fn status(&self) -> EventStatus {
        self.lock().status
    }

    /// The failure, if the command (or a dependency) failed.
    pub fn error(&self) -> Option<Error> {
        self.lock().error.clone()
    }

    /// Blocks until the command completes or fails, as
    /// `clWaitForEvents` does. Completion callbacks registered through
    /// [`Event::on_complete`] have all run by the time this returns.
    ///
    /// # Errors
    ///
    /// Returns the command's execution error, or the error of the wait-list
    /// dependency that failed first.
    pub fn wait(&self) -> Result<()> {
        let mut st = self.lock();
        while matches!(st.status, EventStatus::Queued | EventStatus::Running) {
            st = self
                .inner
                .cond
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        match st.status {
            EventStatus::Failed => Err(st.error.clone().unwrap_or(Error::DeviceLost)),
            _ => Ok(()),
        }
    }

    /// Registers a callback to run when the command completes *or fails*
    /// (check [`Event::error`] inside the callback). Runs on the queue
    /// worker thread before any [`Event::wait`] returns; if the event is
    /// already finalised, runs immediately on the calling thread.
    pub fn on_complete(&self, callback: impl FnOnce(&Event) + Send + 'static) {
        {
            let mut st = self.lock();
            if !st.callbacks_taken {
                st.callbacks.push(Box::new(callback));
                return;
            }
        }
        callback(self);
    }

    /// Marks the event as being executed by the queue worker.
    pub(crate) fn start_running(&self) {
        let mut st = self.lock();
        if st.status == EventStatus::Queued {
            st.status = EventStatus::Running;
        }
    }

    /// Finalises the event with its profiling data, running completion
    /// callbacks (outside the lock, before the status flips) and waking all
    /// waiters.
    pub(crate) fn complete(
        &self,
        queued_ns: u64,
        started_ns: u64,
        ended_ns: u64,
        counters: Option<CostCounters>,
    ) {
        let callbacks = {
            let mut st = self.lock();
            st.queued_ns = queued_ns;
            st.started_ns = started_ns;
            st.ended_ns = ended_ns;
            st.counters = counters;
            st.callbacks_taken = true;
            std::mem::take(&mut st.callbacks)
        };
        for cb in callbacks {
            cb(self);
        }
        self.lock().status = EventStatus::Complete;
        self.inner.cond.notify_all();
    }

    /// Finalises the event as failed, running completion callbacks and
    /// waking all waiters (whose [`Event::wait`] then returns the error).
    pub(crate) fn fail(&self, error: Error) {
        let callbacks = {
            let mut st = self.lock();
            st.error = Some(error);
            st.callbacks_taken = true;
            std::mem::take(&mut st.callbacks)
        };
        for cb in callbacks {
            cb(self);
        }
        self.lock().status = EventStatus::Failed;
        self.inner.cond.notify_all();
    }

    /// Simulated enqueue timestamp (ns on the device timeline); zero until
    /// the command completes.
    pub fn queued_ns(&self) -> u64 {
        self.lock().queued_ns
    }

    /// Simulated execution start timestamp; zero until the command
    /// completes.
    pub fn started_ns(&self) -> u64 {
        self.lock().started_ns
    }

    /// Simulated execution end timestamp; zero until the command completes.
    pub fn ended_ns(&self) -> u64 {
        self.lock().ended_ns
    }

    /// Simulated execution duration (`end - start`), the quantity the
    /// OpenCL profiling API reports per command. Saturates at zero for
    /// synthesised timelines whose end precedes their start.
    pub fn duration(&self) -> Duration {
        let st = self.lock();
        Duration::from_nanos(st.ended_ns.saturating_sub(st.started_ns))
    }

    /// Time the command spent waiting in the queue (`start - queued`),
    /// saturating at zero.
    pub fn queue_latency(&self) -> Duration {
        let st = self.lock();
        Duration::from_nanos(st.started_ns.saturating_sub(st.queued_ns))
    }

    /// Aggregate execution counters (kernel commands only).
    pub fn counters(&self) -> Option<CostCounters> {
        self.lock().counters
    }
}

/// Sums the durations of a sequence of events — e.g. total kernel time of a
/// multi-phase skeleton (reduce, scan).
pub fn total_duration<'a>(events: impl IntoIterator<Item = &'a Event>) -> Duration {
    events.into_iter().map(Event::duration).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_accessors() {
        let e = Event::new(
            DeviceId(1),
            CommandKind::Kernel { name: "k".into() },
            5,
            10,
            110,
            Some(CostCounters::default()),
        );
        assert_eq!(e.device(), DeviceId(1));
        assert_eq!(e.queued_ns(), 5);
        assert_eq!(e.duration(), Duration::from_nanos(100));
        assert_eq!(e.queue_latency(), Duration::from_nanos(5));
        assert!(e.counters().is_some());
        assert_eq!(e.kind(), &CommandKind::Kernel { name: "k".into() });
        assert_eq!(e.status(), EventStatus::Complete);
        assert!(e.wait().is_ok());
    }

    #[test]
    fn duration_saturates_on_inverted_timeline() {
        // Synthesised events may carry end < start; duration must not panic.
        let e = Event::new(
            DeviceId(0),
            CommandKind::WriteBuffer { bytes: 4 },
            20,
            15,
            10,
            None,
        );
        assert_eq!(e.duration(), Duration::ZERO);
        assert_eq!(e.queue_latency(), Duration::ZERO);
    }

    #[test]
    fn total_duration_sums() {
        let mk = |s, t| {
            Event::new(
                DeviceId(0),
                CommandKind::ReadBuffer { bytes: 1 },
                s,
                s,
                t,
                None,
            )
        };
        let events = vec![mk(0, 10), mk(10, 25)];
        assert_eq!(total_duration(&events), Duration::from_nanos(25));
    }

    #[test]
    fn pending_event_lifecycle_and_callbacks() {
        let e = Event::pending(DeviceId(0), CommandKind::Marker);
        assert_eq!(e.status(), EventStatus::Queued);
        let ran = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let r = ran.clone();
        e.on_complete(move |ev| {
            // Timestamps are final before callbacks run.
            assert_eq!(ev.ended_ns(), 30);
            r.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        e.start_running();
        assert_eq!(e.status(), EventStatus::Running);
        e.complete(10, 20, 30, None);
        assert_eq!(e.status(), EventStatus::Complete);
        assert_eq!(ran.load(std::sync::atomic::Ordering::SeqCst), 1);
        // Late registration runs immediately.
        let r = ran.clone();
        e.on_complete(move |_| {
            r.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(ran.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn failed_event_surfaces_error_from_wait() {
        let e = Event::pending(DeviceId(0), CommandKind::Marker);
        e.fail(Error::DeviceLost);
        assert_eq!(e.status(), EventStatus::Failed);
        assert_eq!(e.wait(), Err(Error::DeviceLost));
        assert_eq!(e.error(), Some(Error::DeviceLost));
    }
}
