//! Events with OpenCL-style profiling information.
//!
//! Every enqueued command returns an [`Event`] carrying its simulated
//! timeline timestamps, mirroring `clGetEventProfilingInfo` — the paper's
//! Fig. 5 measurements use exactly this API ("measurements were taken using
//! the OpenCL profiling API").

use std::sync::Arc;
use std::time::Duration;

use skelcl_kernel::vm::CostCounters;

use crate::device::DeviceId;

/// What kind of command an event belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandKind {
    /// Host → device transfer.
    WriteBuffer {
        /// Bytes transferred.
        bytes: usize,
    },
    /// Device → host transfer.
    ReadBuffer {
        /// Bytes transferred.
        bytes: usize,
    },
    /// Device → device copy (through the host, as in the paper).
    CopyBuffer {
        /// Bytes transferred.
        bytes: usize,
    },
    /// A kernel execution.
    Kernel {
        /// The kernel's name.
        name: String,
    },
}

#[derive(Debug)]
struct EventData {
    device: DeviceId,
    kind: CommandKind,
    queued_ns: u64,
    started_ns: u64,
    ended_ns: u64,
    counters: Option<CostCounters>,
}

/// A completed command with profiling data (commands execute eagerly in the
/// simulator, so events are always complete).
#[derive(Debug, Clone)]
pub struct Event {
    inner: Arc<EventData>,
}

impl Event {
    /// Creates an event from raw profiling data. Normally events come from
    /// [`crate::CommandQueue`]; this constructor exists for tooling and
    /// tests that synthesise timelines.
    pub fn new(
        device: DeviceId,
        kind: CommandKind,
        queued_ns: u64,
        started_ns: u64,
        ended_ns: u64,
        counters: Option<CostCounters>,
    ) -> Self {
        Event {
            inner: Arc::new(EventData {
                device,
                kind,
                queued_ns,
                started_ns,
                ended_ns,
                counters,
            }),
        }
    }

    /// The device the command ran on.
    pub fn device(&self) -> DeviceId {
        self.inner.device
    }

    /// The command's kind.
    pub fn kind(&self) -> &CommandKind {
        &self.inner.kind
    }

    /// Simulated enqueue timestamp (ns on the device timeline).
    pub fn queued_ns(&self) -> u64 {
        self.inner.queued_ns
    }

    /// Simulated execution start timestamp.
    pub fn started_ns(&self) -> u64 {
        self.inner.started_ns
    }

    /// Simulated execution end timestamp.
    pub fn ended_ns(&self) -> u64 {
        self.inner.ended_ns
    }

    /// Simulated execution duration (`end - start`), the quantity the
    /// OpenCL profiling API reports per command. Saturates at zero for
    /// synthesised timelines whose end precedes their start.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.inner.ended_ns.saturating_sub(self.inner.started_ns))
    }

    /// Time the command spent waiting in the queue (`start - queued`),
    /// saturating at zero.
    pub fn queue_latency(&self) -> Duration {
        Duration::from_nanos(self.inner.started_ns.saturating_sub(self.inner.queued_ns))
    }

    /// Aggregate execution counters (kernel commands only).
    pub fn counters(&self) -> Option<&CostCounters> {
        self.inner.counters.as_ref()
    }
}

/// Sums the durations of a sequence of events — e.g. total kernel time of a
/// multi-phase skeleton (reduce, scan).
pub fn total_duration<'a>(events: impl IntoIterator<Item = &'a Event>) -> Duration {
    events.into_iter().map(Event::duration).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_accessors() {
        let e = Event::new(
            DeviceId(1),
            CommandKind::Kernel { name: "k".into() },
            5,
            10,
            110,
            Some(CostCounters::default()),
        );
        assert_eq!(e.device(), DeviceId(1));
        assert_eq!(e.queued_ns(), 5);
        assert_eq!(e.duration(), Duration::from_nanos(100));
        assert_eq!(e.queue_latency(), Duration::from_nanos(5));
        assert!(e.counters().is_some());
        assert_eq!(e.kind(), &CommandKind::Kernel { name: "k".into() });
    }

    #[test]
    fn duration_saturates_on_inverted_timeline() {
        // Synthesised events may carry end < start; duration must not panic.
        let e = Event::new(
            DeviceId(0),
            CommandKind::WriteBuffer { bytes: 4 },
            20,
            15,
            10,
            None,
        );
        assert_eq!(e.duration(), Duration::ZERO);
        assert_eq!(e.queue_latency(), Duration::ZERO);
    }

    #[test]
    fn total_duration_sums() {
        let mk = |s, t| {
            Event::new(
                DeviceId(0),
                CommandKind::ReadBuffer { bytes: 1 },
                s,
                s,
                t,
                None,
            )
        };
        let events = vec![mk(0, 10), mk(10, 25)];
        assert_eq!(total_duration(&events), Duration::from_nanos(25));
    }
}
