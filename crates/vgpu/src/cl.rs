//! A procedural, OpenCL-1.2-flavoured API over the virtual platform.
//!
//! The paper's programming-effort comparison (Fig. 4) hinges on how
//! verbose host code is *in the OpenCL style*: platform/device discovery,
//! context and queue creation, program build, per-argument kernel binding,
//! explicit ND-range launches and buffer transfers, each returning a status
//! that must be checked. This module reproduces that API surface faithfully
//! (snake-cased) so the repository's raw-OpenCL baselines are written — and
//! their lines counted — the way the paper's SDK samples are.
//!
//! Handles are reference-counted; `release_*` calls are therefore not
//! needed (Rust RAII takes that role) and not provided.

use std::sync::Arc;

use parking_lot::Mutex;
use skelcl_kernel::value::Value;
use skelcl_kernel::Program;

use crate::cost::Toolchain;
use crate::device::{Device, DeviceSpec};
use crate::error::Error;
use crate::event::Event;
use crate::exec::LaunchConfig;
use crate::memory::DeviceBuffer;
use crate::ndrange::NdRange;
use crate::platform::Platform;
use crate::queue::{CommandQueue, KernelArg};

/// OpenCL-style status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// `CL_SUCCESS`
    Success,
    /// `CL_DEVICE_NOT_FOUND`
    DeviceNotFound,
    /// `CL_INVALID_VALUE`
    InvalidValue,
    /// `CL_INVALID_KERNEL_NAME`
    InvalidKernelName,
    /// `CL_INVALID_KERNEL_ARGS`
    InvalidKernelArgs,
    /// `CL_INVALID_WORK_GROUP_SIZE`
    InvalidWorkGroupSize,
    /// `CL_BUILD_PROGRAM_FAILURE`
    BuildProgramFailure,
    /// `CL_MEM_OBJECT_ALLOCATION_FAILURE`
    MemObjectAllocationFailure,
    /// `CL_OUT_OF_RESOURCES` (kernel fault at runtime)
    OutOfResources,
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for Status {}

fn status_of(e: &Error) -> Status {
    match e {
        Error::OutOfDeviceMemory { .. } => Status::MemObjectAllocationFailure,
        Error::TransferOutOfRange { .. } => Status::InvalidValue,
        Error::UnknownKernel { .. } => Status::InvalidKernelName,
        Error::InvalidKernelArg { .. } => Status::InvalidKernelArgs,
        Error::InvalidNdRange { .. } => Status::InvalidWorkGroupSize,
        Error::WrongDevice { .. } => Status::InvalidValue,
        Error::Launch { .. } | Error::BarrierDivergence { .. } => Status::OutOfResources,
        Error::LocalMemoryExceeded { .. } => Status::InvalidWorkGroupSize,
        Error::DeviceLost => Status::OutOfResources,
    }
}

/// `cl_platform_id`
#[derive(Debug, Clone)]
pub struct ClPlatform {
    platform: Platform,
}

/// `cl_device_id`
#[derive(Debug, Clone)]
pub struct ClDevice {
    device: Arc<Device>,
}

/// `cl_context`
#[derive(Debug, Clone)]
pub struct ClContext {
    devices: Vec<ClDevice>,
}

/// `cl_command_queue`
#[derive(Debug, Clone)]
pub struct ClCommandQueue {
    queue: CommandQueue,
    toolchain: Toolchain,
}

/// `cl_mem`
#[derive(Debug, Clone)]
pub struct ClMem {
    buffer: DeviceBuffer,
}

/// `cl_program`
#[derive(Debug, Clone)]
pub struct ClProgram {
    source: String,
    built: Option<Program>,
}

/// `cl_kernel`
#[derive(Debug, Clone)]
pub struct ClKernel {
    program: Program,
    name: String,
    args: Arc<Mutex<Vec<Option<KernelArg>>>>,
}

/// `cl_event` — a shared-state handle whose status moves `Queued →
/// Running → Complete` as the queue's worker executes the command.
pub type ClEvent = Event;

/// `clGetPlatformIDs` — discovers the virtual platform. In this simulator
/// the "installation" is chosen by the caller: `spec` and `device_count`
/// describe the machine, defaulting to the paper's 4-GPU Tesla S1070.
pub fn get_platform_ids(device_count: Option<usize>, spec: Option<DeviceSpec>) -> Vec<ClPlatform> {
    let platform = Platform::new(
        device_count.unwrap_or(4),
        spec.unwrap_or_else(DeviceSpec::tesla_t10),
    );
    vec![ClPlatform { platform }]
}

/// A summary of `clGetDeviceInfo` queries.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceInfo {
    /// `CL_DEVICE_NAME`
    pub name: String,
    /// `CL_DEVICE_MAX_COMPUTE_UNITS` (scalar cores here)
    pub compute_units: u32,
    /// `CL_DEVICE_MAX_CLOCK_FREQUENCY` in MHz
    pub clock_mhz: u32,
    /// `CL_DEVICE_GLOBAL_MEM_SIZE` in bytes
    pub global_mem_size: usize,
    /// `CL_DEVICE_LOCAL_MEM_SIZE` in bytes
    pub local_mem_size: usize,
    /// `CL_DEVICE_MAX_WORK_GROUP_SIZE`
    pub max_work_group_size: usize,
}

/// `clGetDeviceInfo`, summarised.
pub fn get_device_info(device: &ClDevice) -> DeviceInfo {
    let spec = device.device.spec();
    DeviceInfo {
        name: spec.name.clone(),
        compute_units: spec.cores,
        clock_mhz: (spec.clock_hz / 1_000_000) as u32,
        global_mem_size: spec.memory_bytes,
        local_mem_size: spec.local_memory_bytes,
        max_work_group_size: spec.max_work_group_size,
    }
}

/// `clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, …)`
///
/// # Errors
///
/// Returns [`Status::DeviceNotFound`] when the platform has no devices.
pub fn get_device_ids(platform: &ClPlatform) -> Result<Vec<ClDevice>, Status> {
    let devices: Vec<ClDevice> = platform
        .platform
        .devices()
        .iter()
        .map(|d| ClDevice { device: d.clone() })
        .collect();
    if devices.is_empty() {
        return Err(Status::DeviceNotFound);
    }
    Ok(devices)
}

/// `clCreateContext`
///
/// # Errors
///
/// Returns [`Status::InvalidValue`] for an empty device list.
pub fn create_context(devices: &[ClDevice]) -> Result<ClContext, Status> {
    if devices.is_empty() {
        return Err(Status::InvalidValue);
    }
    Ok(ClContext {
        devices: devices.to_vec(),
    })
}

/// `clCreateCommandQueue` (with `CL_QUEUE_PROFILING_ENABLE`; profiling is
/// always on in the simulator).
///
/// # Errors
///
/// Returns [`Status::InvalidValue`] when the device is not in the context.
pub fn create_command_queue(
    context: &ClContext,
    device: &ClDevice,
) -> Result<ClCommandQueue, Status> {
    if !context
        .devices
        .iter()
        .any(|d| Arc::ptr_eq(&d.device, &device.device))
    {
        return Err(Status::InvalidValue);
    }
    Ok(ClCommandQueue {
        queue: CommandQueue::new(device.device.clone()),
        toolchain: Toolchain::OpenCl,
    })
}

/// `clCreateBuffer(context, flags, size, NULL, &err)` — the buffer lives on
/// the queue's device at first use; here it is bound to `device` directly.
///
/// # Errors
///
/// Returns [`Status::MemObjectAllocationFailure`] when the device is full.
pub fn create_buffer(queue: &ClCommandQueue, size: usize) -> Result<ClMem, Status> {
    let buffer = queue.queue.create_buffer(size).map_err(|e| status_of(&e))?;
    Ok(ClMem { buffer })
}

/// `clCreateProgramWithSource`
pub fn create_program_with_source(_context: &ClContext, source: &str) -> ClProgram {
    ClProgram {
        source: source.to_string(),
        built: None,
    }
}

/// `clBuildProgram` — compiles the SkelCL C source.
///
/// # Errors
///
/// Returns [`Status::BuildProgramFailure`] and fills `build_log` on
/// compilation errors (query it with [`get_program_build_info`]).
pub fn build_program(program: &mut ClProgram) -> Result<(), Status> {
    match skelcl_kernel::compile("program.cl", &program.source) {
        Ok(p) => {
            program.built = Some(p);
            Ok(())
        }
        Err(_) => Err(Status::BuildProgramFailure),
    }
}

/// `clGetProgramBuildInfo(…, CL_PROGRAM_BUILD_LOG, …)`
pub fn get_program_build_info(program: &ClProgram) -> String {
    match &program.built {
        Some(_) => "build successful".to_string(),
        None => match skelcl_kernel::compile("program.cl", &program.source) {
            Ok(_) => "program not built yet".to_string(),
            Err(e) => e.log,
        },
    }
}

/// `clCreateKernel`
///
/// # Errors
///
/// Returns [`Status::InvalidKernelName`] for unknown kernels and
/// [`Status::InvalidValue`] if the program is not built.
pub fn create_kernel(program: &ClProgram, name: &str) -> Result<ClKernel, Status> {
    let built = program.built.as_ref().ok_or(Status::InvalidValue)?;
    let info = built.kernel(name).ok_or(Status::InvalidKernelName)?;
    let arity = info.params.len();
    Ok(ClKernel {
        program: built.clone(),
        name: name.to_string(),
        args: Arc::new(Mutex::new(vec![None; arity])),
    })
}

/// An argument for [`set_kernel_arg`].
#[derive(Debug, Clone)]
pub enum ClArg {
    /// A buffer (`clSetKernelArg(k, i, sizeof(cl_mem), &mem)`).
    Mem(ClMem),
    /// A scalar passed by value.
    Scalar(Value),
    /// Dynamic local memory (`clSetKernelArg(k, i, bytes, NULL)`).
    LocalSize(usize),
}

/// `clSetKernelArg` — one call per argument, as in OpenCL.
///
/// # Errors
///
/// Returns [`Status::InvalidValue`] for an out-of-range index.
pub fn set_kernel_arg(kernel: &ClKernel, index: usize, arg: ClArg) -> Result<(), Status> {
    let mut args = kernel.args.lock();
    let slot = args.get_mut(index).ok_or(Status::InvalidValue)?;
    *slot = Some(match arg {
        ClArg::Mem(m) => KernelArg::Buffer(m.buffer),
        ClArg::Scalar(v) => KernelArg::Scalar(v),
        ClArg::LocalSize(n) => KernelArg::Local(n),
    });
    Ok(())
}

/// `clEnqueueWriteBuffer` (always blocking; the simulator is synchronous).
///
/// # Errors
///
/// Returns an OpenCL-style status on failure.
pub fn enqueue_write_buffer(
    queue: &ClCommandQueue,
    mem: &ClMem,
    offset: usize,
    bytes: &[u8],
) -> Result<ClEvent, Status> {
    queue
        .queue
        .enqueue_write(&mem.buffer, offset, bytes)
        .map_err(|e| status_of(&e))
}

/// `clEnqueueReadBuffer` (always blocking).
///
/// # Errors
///
/// Returns an OpenCL-style status on failure.
pub fn enqueue_read_buffer(
    queue: &ClCommandQueue,
    mem: &ClMem,
    offset: usize,
    bytes: &mut [u8],
) -> Result<ClEvent, Status> {
    queue
        .queue
        .enqueue_read(&mem.buffer, offset, bytes)
        .map_err(|e| status_of(&e))
}

/// `clEnqueueNDRangeKernel` — launches with explicit global and local
/// sizes. All arguments must have been set.
///
/// # Errors
///
/// Returns [`Status::InvalidKernelArgs`] for unset arguments, or the
/// status of any launch failure.
pub fn enqueue_nd_range_kernel(
    queue: &ClCommandQueue,
    kernel: &ClKernel,
    work_dim: u32,
    global: &[usize],
    local: &[usize],
) -> Result<ClEvent, Status> {
    if global.len() != work_dim as usize || local.len() != work_dim as usize {
        return Err(Status::InvalidValue);
    }
    let args: Vec<KernelArg> = {
        let slots = kernel.args.lock();
        let mut out = Vec::with_capacity(slots.len());
        for s in slots.iter() {
            out.push(s.clone().ok_or(Status::InvalidKernelArgs)?);
        }
        out
    };
    let range = match work_dim {
        1 => NdRange::linear(global[0], local[0]),
        2 => NdRange::grid([global[0], global[1]], [local[0], local[1]]),
        _ => return Err(Status::InvalidValue),
    };
    let config = LaunchConfig {
        toolchain: queue.toolchain,
        ..LaunchConfig::default()
    };
    queue
        .queue
        .launch_kernel(&kernel.program, &kernel.name, &args, range, &config)
        .map_err(|e| status_of(&e))
}

/// `clFinish` — blocks until the queue's worker has drained every command
/// enqueued so far.
pub fn finish(queue: &ClCommandQueue) -> Status {
    match queue.queue.finish() {
        Ok(()) => Status::Success,
        Err(e) => status_of(&e),
    }
}

/// Which profiling timestamp to query, mirroring the
/// `CL_PROFILING_COMMAND_*` parameter names of `clGetEventProfilingInfo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfilingInfo {
    /// `CL_PROFILING_COMMAND_QUEUED`: when the command was enqueued.
    CommandQueued,
    /// `CL_PROFILING_COMMAND_START`: when execution began.
    CommandStart,
    /// `CL_PROFILING_COMMAND_END`: when execution finished.
    CommandEnd,
}

/// `clGetEventProfilingInfo` — the selected timestamp on the device
/// timeline, in nanoseconds.
pub fn get_event_profiling(event: &ClEvent, info: ProfilingInfo) -> u64 {
    match info {
        ProfilingInfo::CommandQueued => event.queued_ns(),
        ProfilingInfo::CommandStart => event.started_ns(),
        ProfilingInfo::CommandEnd => event.ended_ns(),
    }
}

/// Simulated device-timeline clock of the queue's device (for end-to-end
/// timing in host programs).
pub fn device_clock_ns(queue: &ClCommandQueue) -> u64 {
    queue.queue.device().now_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "__kernel void fill(__global int* out, int v, int n) {
        int i = (int)get_global_id(0);
        if (i < n) out[i] = v;
    }";

    #[test]
    fn full_cl_style_workflow() {
        let platforms = get_platform_ids(Some(1), None);
        assert_eq!(platforms.len(), 1);
        let devices = get_device_ids(&platforms[0]).unwrap();
        let context = create_context(&devices).unwrap();
        let queue = create_command_queue(&context, &devices[0]).unwrap();
        let mut program = create_program_with_source(&context, SRC);
        build_program(&mut program).unwrap();
        let kernel = create_kernel(&program, "fill").unwrap();
        let mem = create_buffer(&queue, 10 * 4).unwrap();
        set_kernel_arg(&kernel, 0, ClArg::Mem(mem.clone())).unwrap();
        set_kernel_arg(&kernel, 1, ClArg::Scalar(Value::I32(7))).unwrap();
        set_kernel_arg(&kernel, 2, ClArg::Scalar(Value::I32(10))).unwrap();
        let ev = enqueue_nd_range_kernel(&queue, &kernel, 1, &[10], &[10]).unwrap();
        let start = get_event_profiling(&ev, ProfilingInfo::CommandStart);
        let end = get_event_profiling(&ev, ProfilingInfo::CommandEnd);
        assert!(end > start);
        assert!(get_event_profiling(&ev, ProfilingInfo::CommandQueued) <= start);
        assert_eq!(ev.duration(), std::time::Duration::from_nanos(end - start));
        let mut out = vec![0u8; 40];
        enqueue_read_buffer(&queue, &mem, 0, &mut out).unwrap();
        assert!(out
            .chunks_exact(4)
            .all(|c| i32::from_le_bytes(c.try_into().unwrap()) == 7));
        assert_eq!(finish(&queue), Status::Success);
    }

    #[test]
    fn device_info_matches_spec() {
        let platforms = get_platform_ids(Some(2), None);
        let devices = get_device_ids(&platforms[0]).unwrap();
        let info = get_device_info(&devices[0]);
        assert_eq!(info.compute_units, 240);
        assert_eq!(info.clock_mhz, 1440);
        assert_eq!(info.global_mem_size, 4 << 30);
        assert!(info.name.contains("Tesla"));
    }

    #[test]
    fn build_failure_reports_log() {
        let platforms = get_platform_ids(Some(1), None);
        let devices = get_device_ids(&platforms[0]).unwrap();
        let context = create_context(&devices).unwrap();
        let mut program = create_program_with_source(&context, "__kernel void k( {");
        assert_eq!(
            build_program(&mut program),
            Err(Status::BuildProgramFailure)
        );
        assert!(get_program_build_info(&program).contains("error"));
    }

    #[test]
    fn unset_argument_rejected() {
        let platforms = get_platform_ids(Some(1), None);
        let devices = get_device_ids(&platforms[0]).unwrap();
        let context = create_context(&devices).unwrap();
        let queue = create_command_queue(&context, &devices[0]).unwrap();
        let mut program = create_program_with_source(&context, SRC);
        build_program(&mut program).unwrap();
        let kernel = create_kernel(&program, "fill").unwrap();
        assert!(matches!(
            enqueue_nd_range_kernel(&queue, &kernel, 1, &[10], &[10]),
            Err(Status::InvalidKernelArgs)
        ));
        assert_eq!(
            create_kernel(&program, "nope").unwrap_err(),
            Status::InvalidKernelName
        );
    }

    #[test]
    fn arg_index_validated() {
        let platforms = get_platform_ids(Some(1), None);
        let devices = get_device_ids(&platforms[0]).unwrap();
        let context = create_context(&devices).unwrap();
        let mut program = create_program_with_source(&context, SRC);
        build_program(&mut program).unwrap();
        let kernel = create_kernel(&program, "fill").unwrap();
        assert_eq!(
            set_kernel_arg(&kernel, 9, ClArg::Scalar(Value::I32(0))),
            Err(Status::InvalidValue)
        );
    }
}
