//! ND-range descriptions: global and work-group sizes, as in OpenCL.

use crate::error::{Error, Result};

/// Default 1-D work-group size, matching SkelCL's default of 256 work-items
/// (the paper, §4.1).
pub const DEFAULT_WORK_GROUP_SIZE: usize = 256;

/// Default 2-D work-group size (16×16), as used by the paper's CUDA and
/// OpenCL Mandelbrot implementations.
pub const DEFAULT_WORK_GROUP_SIZE_2D: [usize; 2] = [16, 16];

/// A launch geometry: global size and work-group (local) size per
/// dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdRange {
    /// Number of dimensions used (1 or 2).
    pub dims: u32,
    /// Global work size per dimension (unused dimensions are 1).
    pub global: [usize; 3],
    /// Work-group size per dimension (unused dimensions are 1).
    pub local: [usize; 3],
}

impl NdRange {
    /// A 1-D range with an explicit work-group size. The global size is
    /// rounded **up** to a multiple of the group size (kernels guard with an
    /// `if (gid < n)` check, as SkelCL-generated kernels do).
    pub fn linear(global: usize, local: usize) -> NdRange {
        let padded = global.div_ceil(local.max(1)) * local.max(1);
        NdRange {
            dims: 1,
            global: [padded.max(local), 1, 1],
            local: [local.max(1), 1, 1],
        }
    }

    /// A 1-D range with the default group size of 256.
    pub fn linear_default(global: usize) -> NdRange {
        Self::linear(global, DEFAULT_WORK_GROUP_SIZE)
    }

    /// A 2-D range with an explicit work-group size, rounded up per
    /// dimension.
    pub fn grid(global: [usize; 2], local: [usize; 2]) -> NdRange {
        let pad = |g: usize, l: usize| g.div_ceil(l.max(1)) * l.max(1);
        NdRange {
            dims: 2,
            global: [
                pad(global[0], local[0]).max(local[0]),
                pad(global[1], local[1]).max(local[1]),
                1,
            ],
            local: [local[0].max(1), local[1].max(1), 1],
        }
    }

    /// A 2-D range with the default 16×16 work-groups.
    pub fn grid_default(global: [usize; 2]) -> NdRange {
        Self::grid(global, DEFAULT_WORK_GROUP_SIZE_2D)
    }

    /// Total number of work-items.
    pub fn total_items(&self) -> usize {
        self.global[0] * self.global[1] * self.global[2]
    }

    /// Work-items per group.
    pub fn items_per_group(&self) -> usize {
        self.local[0] * self.local[1] * self.local[2]
    }

    /// Number of groups per dimension.
    pub fn group_counts(&self) -> [usize; 3] {
        [
            self.global[0] / self.local[0],
            self.global[1] / self.local[1],
            self.global[2] / self.local[2],
        ]
    }

    /// Total number of work-groups.
    pub fn total_groups(&self) -> usize {
        let g = self.group_counts();
        g[0] * g[1] * g[2]
    }

    /// Validates the range against a device's limits.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidNdRange`] for zero sizes, non-dividing local
    /// sizes or oversized work-groups.
    pub fn validate(&self, max_work_group_size: usize) -> Result<()> {
        for d in 0..3 {
            if self.global[d] == 0 || self.local[d] == 0 {
                return Err(Error::InvalidNdRange {
                    reason: format!("zero size in dimension {d}"),
                });
            }
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(Error::InvalidNdRange {
                    reason: format!(
                        "global size {} is not a multiple of local size {} in dimension {d}",
                        self.global[d], self.local[d]
                    ),
                });
            }
        }
        if self.items_per_group() > max_work_group_size {
            return Err(Error::InvalidNdRange {
                reason: format!(
                    "work-group of {} items exceeds the device maximum of {}",
                    self.items_per_group(),
                    max_work_group_size
                ),
            });
        }
        if self.dims == 0 || self.dims > 3 {
            return Err(Error::InvalidNdRange {
                reason: format!("unsupported dimensionality {}", self.dims),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_pads_to_group_multiple() {
        let r = NdRange::linear(1000, 256);
        assert_eq!(r.global[0], 1024);
        assert_eq!(r.total_groups(), 4);
        assert_eq!(r.items_per_group(), 256);
        r.validate(512).unwrap();
    }

    #[test]
    fn linear_default_uses_skelcl_default() {
        let r = NdRange::linear_default(256);
        assert_eq!(r.local[0], 256);
        assert_eq!(r.total_groups(), 1);
    }

    #[test]
    fn grid_pads_both_dimensions() {
        let r = NdRange::grid([100, 50], [16, 16]);
        assert_eq!(r.global, [112, 64, 1]);
        assert_eq!(r.group_counts(), [7, 4, 1]);
        assert_eq!(r.total_groups(), 28);
        assert_eq!(r.items_per_group(), 256);
        r.validate(256).unwrap();
    }

    #[test]
    fn validation_failures() {
        assert!(NdRange {
            dims: 1,
            global: [10, 1, 1],
            local: [3, 1, 1]
        }
        .validate(256)
        .is_err());
        assert!(NdRange {
            dims: 1,
            global: [0, 1, 1],
            local: [1, 1, 1]
        }
        .validate(256)
        .is_err());
        assert!(NdRange::grid([32, 32], [32, 32]).validate(256).is_err());
    }

    #[test]
    fn small_global_still_one_full_group() {
        let r = NdRange::linear(3, 256);
        assert_eq!(r.global[0], 256);
        assert_eq!(r.total_groups(), 1);
    }
}
