//! The work-group execution engine.
//!
//! Work-groups are independent (as in OpenCL) and are executed in parallel
//! on host threads. Within one group, work-items run in **lockstep rounds**:
//! every item executes until it finishes or reaches a `barrier()`; the group
//! only proceeds past a barrier once *all* items arrived at the *same*
//! barrier site, which is checked and reported as
//! [`Error::BarrierDivergence`] instead of OpenCL's undefined behaviour.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use skelcl_kernel::program::{KernelInfo, Program};
use skelcl_kernel::types::AddressSpace;
use skelcl_kernel::value::{Ptr, Value};
use skelcl_kernel::vm::{CostCounters, Exit, ItemGeometry, WorkItem};

use crate::cost::Toolchain;
use crate::error::{Error, Result};
use crate::memory::BufferTable;
use crate::ndrange::NdRange;

/// Tuning knobs for a kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Which toolchain "built" the kernel (cost model input; see
    /// [`Toolchain`]).
    pub toolchain: Toolchain,
    /// Instruction budget per work-item, guarding against kernels that do
    /// not terminate.
    pub ops_budget_per_item: u64,
    /// Number of host threads executing work-groups (`None`: one per
    /// available CPU).
    pub host_threads: Option<usize>,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig {
            toolchain: Toolchain::OpenCl,
            ops_budget_per_item: 1 << 34,
            host_threads: None,
        }
    }
}

impl LaunchConfig {
    /// A config with the CUDA toolchain factor applied (paper's Fig. 4
    /// baseline).
    pub fn cuda() -> Self {
        LaunchConfig {
            toolchain: Toolchain::Cuda,
            ..Default::default()
        }
    }
}

/// Executes a launch and returns the aggregated counters.
pub(crate) fn execute_launch(
    program: &Program,
    kernel: &KernelInfo,
    args: &[Value],
    buffers: &BufferTable,
    range: &NdRange,
    local_bytes: usize,
    config: &LaunchConfig,
) -> Result<CostCounters> {
    let group_counts = range.group_counts();
    let total_groups = range.total_groups();
    if total_groups == 0 {
        return Ok(CostCounters::default());
    }

    let threads = config
        .host_threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, total_groups);

    let next_group = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let failure: Mutex<Option<Error>> = Mutex::new(None);
    let totals: Mutex<CostCounters> = Mutex::new(CostCounters::default());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local_counters = CostCounters::default();
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let g = next_group.fetch_add(1, Ordering::Relaxed);
                    if g >= total_groups {
                        break;
                    }
                    let gx = g % group_counts[0];
                    let gy = (g / group_counts[0]) % group_counts[1];
                    let gz = g / (group_counts[0] * group_counts[1]);
                    match run_group(
                        program,
                        kernel,
                        args,
                        buffers,
                        range,
                        [gx as u64, gy as u64, gz as u64],
                        local_bytes,
                        config,
                    ) {
                        Ok(c) => local_counters.merge(&c),
                        Err(e) => {
                            abort.store(true, Ordering::Relaxed);
                            let mut slot = failure.lock().expect("failure mutex");
                            slot.get_or_insert(e);
                            break;
                        }
                    }
                }
                totals.lock().expect("totals mutex").merge(&local_counters);
            });
        }
    });

    if let Some(e) = failure.into_inner().expect("failure mutex") {
        return Err(e);
    }
    Ok(totals.into_inner().expect("totals mutex"))
}

/// Runs one work-group's items in lockstep rounds.
#[allow(clippy::too_many_arguments)]
fn run_group(
    program: &Program,
    kernel: &KernelInfo,
    args: &[Value],
    buffers: &BufferTable,
    range: &NdRange,
    group_id: [u64; 3],
    local_bytes: usize,
    config: &LaunchConfig,
) -> Result<CostCounters> {
    let group_counts = range.group_counts();
    let items_per_group = range.items_per_group();
    let mut local_mem = vec![0u8; local_bytes];

    let mut items: Vec<WorkItem> = Vec::with_capacity(items_per_group);
    for lz in 0..range.local[2] {
        for ly in 0..range.local[1] {
            for lx in 0..range.local[0] {
                let local_id = [lx as u64, ly as u64, lz as u64];
                let global_id = [
                    group_id[0] * range.local[0] as u64 + local_id[0],
                    group_id[1] * range.local[1] as u64 + local_id[1],
                    group_id[2] * range.local[2] as u64 + local_id[2],
                ];
                let geometry = ItemGeometry {
                    work_dim: range.dims,
                    global_id,
                    local_id,
                    group_id,
                    global_size: [
                        range.global[0] as u64,
                        range.global[1] as u64,
                        range.global[2] as u64,
                    ],
                    local_size: [
                        range.local[0] as u64,
                        range.local[1] as u64,
                        range.local[2] as u64,
                    ],
                    num_groups: [
                        group_counts[0] as u64,
                        group_counts[1] as u64,
                        group_counts[2] as u64,
                    ],
                };
                let mut item = WorkItem::new(program, kernel.func, args, geometry);
                item.set_ops_budget(config.ops_budget_per_item);
                for b in &kernel.local_arrays {
                    item.bind_entry_slot(
                        b.slot,
                        Value::Ptr(Ptr {
                            space: AddressSpace::Local,
                            buffer: 0,
                            byte_offset: b.byte_offset as i64,
                        }),
                    );
                }
                items.push(item);
            }
        }
    }

    // Lockstep rounds across barriers.
    loop {
        let mut barrier: Option<u32> = None;
        let mut any_done = false;
        for item in items.iter_mut() {
            if item.is_finished() {
                any_done = true;
                continue;
            }
            let global_id = item.geometry().global_id;
            let exit = item
                .run(buffers, &mut local_mem)
                .map_err(|error| Error::Launch {
                    kernel: kernel.name.clone(),
                    global_id,
                    error,
                })?;
            match exit {
                Exit::Done => any_done = true,
                Exit::Barrier(id) => match barrier {
                    None => barrier = Some(id),
                    Some(prev) if prev == id => {}
                    Some(_) => {
                        return Err(Error::BarrierDivergence {
                            kernel: kernel.name.clone(),
                            group_id,
                        })
                    }
                },
            }
        }
        match barrier {
            None => break, // every item finished
            Some(_) if any_done => {
                // Some items finished while others wait at a barrier: the
                // barrier can never be satisfied.
                return Err(Error::BarrierDivergence {
                    kernel: kernel.name.clone(),
                    group_id,
                });
            }
            Some(_) => {} // all at the same barrier: next round resumes them
        }
    }

    let mut counters = CostCounters::default();
    for item in &items {
        counters.merge(&item.counters);
    }
    Ok(counters)
}
