//! The work-group execution engine.
//!
//! Work-groups are independent (as in OpenCL) and are executed in parallel
//! on host threads. Within one group, work-items run in **lockstep rounds**:
//! every item executes until it finishes or reaches a `barrier()`; the group
//! only proceeds past a barrier once *all* items arrived at the *same*
//! barrier site, which is checked and reported as
//! [`Error::BarrierDivergence`] instead of OpenCL's undefined behaviour.
//!
//! Two execution strategies exist, selectable per launch via
//! [`LaunchConfig::strategy`] (default from `SKELCL_VGPU_EXEC`):
//!
//! * [`ExecStrategy::Fast`] — launches run on the device's persistent
//!   [worker pool](crate::pool): a launch costs a queue push instead of N
//!   thread spawns. Kernels whose [`KernelInfo::barrier_count`] is zero
//!   additionally take the **barrier-free fast path**: one reusable
//!   [`WorkItem`] per pool thread is [`reset`](WorkItem::reset) per item and
//!   run to completion in a tight loop, skipping the lockstep-round
//!   machinery and all per-item allocation. Kernels *with* barriers keep
//!   lockstep rounds (on pooled, reusable items).
//! * [`ExecStrategy::Lockstep`] — the legacy engine: scoped threads spawned
//!   per launch, a fresh `WorkItem` per work-item, and the reference
//!   interpreter ([`WorkItem::run_reference`]). Kept precisely so the
//!   `interp` benchmark can A/B the whole optimisation stack and the
//!   equivalence tests have a semantic baseline.
//!
//! Both strategies iterate the items of a group in the same (row-major
//! local-id) order, so even racy barrier-free kernels produce bit-identical
//! buffers within a group, and [`CostCounters`] are identical by
//! construction — simulated-time results cannot drift with the strategy.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use skelcl_kernel::program::{KernelInfo, Program};
use skelcl_kernel::types::AddressSpace;
use skelcl_kernel::value::{Ptr, Value};
use skelcl_kernel::vm::{CostCounters, Exit, ItemGeometry, RuntimeError, WorkItem};

use crate::cost::Toolchain;
use crate::device::Device;
use crate::error::{Error, Result};
use crate::memory::BufferTable;
use crate::ndrange::NdRange;

/// Which execution engine runs a launch (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecStrategy {
    /// Legacy engine: per-launch scoped threads, per-item `WorkItem`
    /// construction, reference interpreter.
    Lockstep,
    /// Pooled engine with the barrier-free fast path and the optimised
    /// interpreter.
    Fast,
}

impl ExecStrategy {
    /// Reads the strategy from `SKELCL_VGPU_EXEC` (`lockstep` or `fast`);
    /// unset or unrecognised values mean [`ExecStrategy::Fast`].
    pub fn from_env() -> Self {
        match std::env::var("SKELCL_VGPU_EXEC").as_deref() {
            Ok("lockstep") => ExecStrategy::Lockstep,
            _ => ExecStrategy::Fast,
        }
    }
}

impl Default for ExecStrategy {
    fn default() -> Self {
        ExecStrategy::from_env()
    }
}

/// Deliberate faults injected into the execution engine, for tests that
/// exercise crash-recovery paths (panics on pool workers, `DeviceLost`
/// reporting, flight-recorder dumps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultInjection {
    /// Panic on a pool worker the moment it picks up the launch — the
    /// simulated analogue of a driver crash mid-kernel. The pool's
    /// `catch_unwind` turns it into [`Error::DeviceLost`] and resets the
    /// worker's scratch.
    PanicInKernel,
}

/// Tuning knobs for a kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Which toolchain "built" the kernel (cost model input; see
    /// [`Toolchain`]).
    pub toolchain: Toolchain,
    /// Instruction budget per work-item, guarding against kernels that do
    /// not terminate.
    pub ops_budget_per_item: u64,
    /// Number of host threads executing work-groups (`None`: one per
    /// available CPU).
    pub host_threads: Option<usize>,
    /// Which execution engine to use (default: `SKELCL_VGPU_EXEC`, falling
    /// back to [`ExecStrategy::Fast`]).
    pub strategy: ExecStrategy,
    /// Deliberate fault to inject (tests only; `None` in normal operation).
    pub fault_injection: Option<FaultInjection>,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig {
            toolchain: Toolchain::OpenCl,
            ops_budget_per_item: 1 << 34,
            host_threads: None,
            strategy: ExecStrategy::default(),
            fault_injection: None,
        }
    }
}

impl LaunchConfig {
    /// A config with the CUDA toolchain factor applied (paper's Fig. 4
    /// baseline).
    pub fn cuda() -> Self {
        LaunchConfig {
            toolchain: Toolchain::Cuda,
            ..Default::default()
        }
    }
}

/// Everything the pool workers need to execute one launch. Shared as an
/// `Arc` with every participating worker; owns clones of the program and
/// argument values so it is `'static` (pool threads outlive the launch
/// call frame, unlike the legacy scoped threads).
pub(crate) struct LaunchState {
    program: Program,
    kernel: KernelInfo,
    args: Vec<Value>,
    buffers: BufferTable,
    range: NdRange,
    local_bytes: usize,
    ops_budget: u64,
    /// Whether groups take the barrier-free fast path.
    fast: bool,
    group_counts: [usize; 3],
    total_groups: usize,
    next_group: AtomicUsize,
    abort: AtomicBool,
    failure: Mutex<Option<Error>>,
    totals: Mutex<CostCounters>,
    /// Deliberate fault to inject (tests only).
    fault: Option<FaultInjection>,
    /// Work-groups each participating worker executed (one entry per
    /// worker that finished its share) — the steal-cursor telemetry the
    /// device aggregates after the launch.
    worker_groups: Mutex<Vec<u64>>,
    /// Completion latch, shared separately from the payload so a worker
    /// can release its payload reference *before* arriving.
    latch: Arc<Latch>,
}

/// Completion latch for one launch. Lives in its own `Arc`, apart from the
/// [`LaunchState`] payload: a worker must be able to drop its state clone
/// (and with it the buffer-table reference) *before* signalling, otherwise
/// the caller can observe the launch as complete — and free the containers
/// — while a descheduled worker still pins the buffers.
#[derive(Debug, Default)]
pub(crate) struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    /// Declares `participants` arrivals outstanding.
    fn begin(&self, participants: usize) {
        *self
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = participants;
    }

    /// Marks one participant done, waking the waiter on the last.
    pub(crate) fn arrive(&self) {
        let mut remaining = self
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every declared participant has arrived.
    fn wait(&self) {
        let mut remaining = self
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *remaining > 0 {
            remaining = self
                .done
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl LaunchState {
    fn new(
        program: &Program,
        kernel: &KernelInfo,
        args: &[Value],
        buffers: &BufferTable,
        range: &NdRange,
        local_bytes: usize,
        config: &LaunchConfig,
    ) -> Self {
        LaunchState {
            program: program.clone(),
            kernel: kernel.clone(),
            args: args.to_vec(),
            buffers: buffers.clone(),
            range: *range,
            local_bytes,
            ops_budget: config.ops_budget_per_item,
            fast: kernel.barrier_count == 0,
            group_counts: range.group_counts(),
            total_groups: range.total_groups(),
            next_group: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            failure: Mutex::new(None),
            totals: Mutex::new(CostCounters::default()),
            fault: config.fault_injection,
            worker_groups: Mutex::new(Vec::new()),
            latch: Arc::new(Latch::default()),
        }
    }

    /// Per-worker group counts of the finished launch (steal telemetry).
    fn worker_group_counts(&self) -> Vec<u64> {
        self.worker_groups
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Declares `participants` workers about to run this launch.
    pub(crate) fn begin(&self, participants: usize) {
        self.latch.begin(participants);
    }

    /// A handle to the launch's completion latch. Workers clone this, drop
    /// their [`LaunchState`] reference, and only then arrive.
    pub(crate) fn latch(&self) -> Arc<Latch> {
        Arc::clone(&self.latch)
    }

    /// Records a failure (first one wins) and asks other workers to stop.
    pub(crate) fn fail(&self, e: Error) {
        self.abort.store(true, Ordering::Relaxed);
        self.failure
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_or_insert(e);
    }

    /// Marks one participant done, waking the launch caller on the last.
    /// Callers that hold their own `Arc<LaunchState>` clone should instead
    /// drop it and arrive on the [`LaunchState::latch`] handle.
    pub(crate) fn finish_participant(&self) {
        self.latch.arrive();
    }

    /// Blocks until every participant declared by [`LaunchState::begin`]
    /// has finished.
    pub(crate) fn wait(&self) {
        self.latch.wait();
    }

    /// The launch outcome: the first failure, or the merged counters.
    fn outcome(&self) -> Result<CostCounters> {
        if let Some(e) = self
            .failure
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            return Err(e);
        }
        Ok(*self.totals.lock().unwrap_or_else(PoisonError::into_inner))
    }

    fn group_id(&self, g: usize) -> [u64; 3] {
        let gx = g % self.group_counts[0];
        let gy = (g / self.group_counts[0]) % self.group_counts[1];
        let gz = g / (self.group_counts[0] * self.group_counts[1]);
        [gx as u64, gy as u64, gz as u64]
    }
}

/// Per-worker reusable execution state. Owned by a pool thread and kept
/// across launches, so in steady state a launch performs no `WorkItem` or
/// local-memory allocation at all.
#[derive(Default)]
pub(crate) struct WorkerScratch {
    /// The single reusable item of the barrier-free fast path.
    item: Option<WorkItem>,
    /// Reusable items of the pooled lockstep path (one per work-item of the
    /// largest group seen so far).
    items: Vec<WorkItem>,
    /// The work-group's local-memory arena.
    local_mem: Vec<u8>,
}

/// One worker's share of a launch: pulls group indices off the shared
/// counter until the launch is drained or aborted. Called by pool threads;
/// the pool wraps it in `catch_unwind` and always calls
/// [`LaunchState::finish_participant`] afterwards.
pub(crate) fn run_worker(state: &LaunchState, scratch: &mut WorkerScratch) {
    if state.fault == Some(FaultInjection::PanicInKernel) {
        panic!("vgpu: injected fault (FaultInjection::PanicInKernel)");
    }
    let mut local_counters = CostCounters::default();
    let mut groups_executed = 0u64;
    loop {
        if state.abort.load(Ordering::Relaxed) {
            break;
        }
        let g = state.next_group.fetch_add(1, Ordering::Relaxed);
        if g >= state.total_groups {
            break;
        }
        let group_id = state.group_id(g);
        let result = if state.fast {
            run_group_fast(state, scratch, group_id)
        } else {
            run_group_lockstep(state, scratch, group_id)
        };
        match result {
            Ok(c) => {
                local_counters.merge(&c);
                groups_executed += 1;
            }
            Err(e) => {
                state.fail(e);
                break;
            }
        }
    }
    state
        .worker_groups
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(groups_executed);
    state
        .totals
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .merge(&local_counters);
}

/// The geometry of the work-item at `local_id` within group `group_id`.
fn item_geometry(
    range: &NdRange,
    group_counts: [usize; 3],
    group_id: [u64; 3],
    local_id: [u64; 3],
) -> ItemGeometry {
    ItemGeometry {
        work_dim: range.dims,
        global_id: [
            group_id[0] * range.local[0] as u64 + local_id[0],
            group_id[1] * range.local[1] as u64 + local_id[1],
            group_id[2] * range.local[2] as u64 + local_id[2],
        ],
        local_id,
        group_id,
        global_size: [
            range.global[0] as u64,
            range.global[1] as u64,
            range.global[2] as u64,
        ],
        local_size: [
            range.local[0] as u64,
            range.local[1] as u64,
            range.local[2] as u64,
        ],
        num_groups: [
            group_counts[0] as u64,
            group_counts[1] as u64,
            group_counts[2] as u64,
        ],
    }
}

/// Rearms `item` (or creates it on first use) for the work-item at
/// `local_id` and binds static `__local` arrays.
fn arm_item<'a>(
    slot: &'a mut Option<WorkItem>,
    state: &LaunchState,
    geometry: ItemGeometry,
) -> &'a mut WorkItem {
    let item = match slot {
        Some(item) => {
            item.reset(&state.program, state.kernel.func, &state.args, geometry);
            item
        }
        None => slot.insert(WorkItem::new(
            &state.program,
            state.kernel.func,
            &state.args,
            geometry,
        )),
    };
    item.set_ops_budget(state.ops_budget);
    for b in &state.kernel.local_arrays {
        item.bind_entry_slot(
            b.slot,
            Value::Ptr(Ptr {
                space: AddressSpace::Local,
                buffer: 0,
                byte_offset: b.byte_offset as i64,
            }),
        );
    }
    item
}

/// Barrier-free fast path: each item runs start-to-finish on one reusable
/// `WorkItem`, in the same row-major order the lockstep path would use.
fn run_group_fast(
    state: &LaunchState,
    scratch: &mut WorkerScratch,
    group_id: [u64; 3],
) -> Result<CostCounters> {
    let range = &state.range;
    scratch.local_mem.clear();
    scratch.local_mem.resize(state.local_bytes, 0);
    let mut counters = CostCounters::default();
    for lz in 0..range.local[2] {
        for ly in 0..range.local[1] {
            for lx in 0..range.local[0] {
                let local_id = [lx as u64, ly as u64, lz as u64];
                let geometry = item_geometry(range, state.group_counts, group_id, local_id);
                let global_id = geometry.global_id;
                let item = arm_item(&mut scratch.item, state, geometry);
                match item.run(&state.buffers, &mut scratch.local_mem) {
                    Ok(Exit::Done) => counters.merge(&item.counters),
                    Ok(Exit::Barrier(_)) => {
                        // barrier_count == 0 guaranteed no barrier sites.
                        return Err(Error::Launch {
                            kernel: state.kernel.name.clone(),
                            global_id,
                            error: RuntimeError::Internal(
                                "barrier reached on the barrier-free fast path".into(),
                            ),
                        });
                    }
                    Err(error) => {
                        return Err(Error::Launch {
                            kernel: state.kernel.name.clone(),
                            global_id,
                            error,
                        })
                    }
                }
            }
        }
    }
    Ok(counters)
}

/// Pooled lockstep path for kernels with barriers: the classic round
/// machinery, but on reusable `WorkItem`s and the optimised interpreter.
fn run_group_lockstep(
    state: &LaunchState,
    scratch: &mut WorkerScratch,
    group_id: [u64; 3],
) -> Result<CostCounters> {
    let range = &state.range;
    let items_per_group = range.items_per_group();
    scratch.local_mem.clear();
    scratch.local_mem.resize(state.local_bytes, 0);

    let mut idx = 0;
    for lz in 0..range.local[2] {
        for ly in 0..range.local[1] {
            for lx in 0..range.local[0] {
                let local_id = [lx as u64, ly as u64, lz as u64];
                let geometry = item_geometry(range, state.group_counts, group_id, local_id);
                if idx == scratch.items.len() {
                    scratch.items.push(WorkItem::new(
                        &state.program,
                        state.kernel.func,
                        &state.args,
                        geometry,
                    ));
                } else {
                    scratch.items[idx].reset(
                        &state.program,
                        state.kernel.func,
                        &state.args,
                        geometry,
                    );
                }
                let item = &mut scratch.items[idx];
                item.set_ops_budget(state.ops_budget);
                for b in &state.kernel.local_arrays {
                    item.bind_entry_slot(
                        b.slot,
                        Value::Ptr(Ptr {
                            space: AddressSpace::Local,
                            buffer: 0,
                            byte_offset: b.byte_offset as i64,
                        }),
                    );
                }
                idx += 1;
            }
        }
    }
    let items = &mut scratch.items[..items_per_group];

    // Lockstep rounds across barriers.
    loop {
        let mut barrier: Option<u32> = None;
        let mut any_done = false;
        for item in items.iter_mut() {
            if item.is_finished() {
                any_done = true;
                continue;
            }
            let global_id = item.geometry().global_id;
            let exit = item
                .run(&state.buffers, &mut scratch.local_mem)
                .map_err(|error| Error::Launch {
                    kernel: state.kernel.name.clone(),
                    global_id,
                    error,
                })?;
            match exit {
                Exit::Done => any_done = true,
                Exit::Barrier(id) => match barrier {
                    None => barrier = Some(id),
                    Some(prev) if prev == id => {}
                    Some(_) => {
                        return Err(Error::BarrierDivergence {
                            kernel: state.kernel.name.clone(),
                            group_id,
                        })
                    }
                },
            }
        }
        match barrier {
            None => break, // every item finished
            Some(_) if any_done => {
                // Some items finished while others wait at a barrier: the
                // barrier can never be satisfied.
                return Err(Error::BarrierDivergence {
                    kernel: state.kernel.name.clone(),
                    group_id,
                });
            }
            Some(_) => {} // all at the same barrier: next round resumes them
        }
    }

    let mut counters = CostCounters::default();
    for item in items.iter() {
        counters.merge(&item.counters);
    }
    Ok(counters)
}

/// Executes a launch on `device` and returns the aggregated counters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_launch(
    device: &Device,
    program: &Program,
    kernel: &KernelInfo,
    args: &[Value],
    buffers: &BufferTable,
    range: &NdRange,
    local_bytes: usize,
    config: &LaunchConfig,
) -> Result<CostCounters> {
    let total_groups = range.total_groups();
    if total_groups == 0 {
        return Ok(CostCounters::default());
    }

    let threads = config
        .host_threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);

    match config.strategy {
        ExecStrategy::Fast => {
            let state = Arc::new(LaunchState::new(
                program,
                kernel,
                args,
                buffers,
                range,
                local_bytes,
                config,
            ));
            let pool = device.worker_pool(threads);
            device.note_launch(true, 0);
            pool.run(&state);
            device.note_pool_groups(&state.worker_group_counts());
            state.outcome()
        }
        ExecStrategy::Lockstep => {
            let threads = threads.min(total_groups);
            device.note_launch(false, threads);
            execute_launch_legacy(
                program,
                kernel,
                args,
                buffers,
                range,
                local_bytes,
                config,
                threads,
            )
        }
    }
}

/// The legacy engine: scoped threads spawned per launch, fresh `WorkItem`s
/// per item, reference interpreter. The `interp` benchmark's baseline.
#[allow(clippy::too_many_arguments)]
fn execute_launch_legacy(
    program: &Program,
    kernel: &KernelInfo,
    args: &[Value],
    buffers: &BufferTable,
    range: &NdRange,
    local_bytes: usize,
    config: &LaunchConfig,
    threads: usize,
) -> Result<CostCounters> {
    let group_counts = range.group_counts();
    let total_groups = range.total_groups();

    let next_group = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let failure: Mutex<Option<Error>> = Mutex::new(None);
    let totals: Mutex<CostCounters> = Mutex::new(CostCounters::default());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local_counters = CostCounters::default();
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let g = next_group.fetch_add(1, Ordering::Relaxed);
                    if g >= total_groups {
                        break;
                    }
                    let gx = g % group_counts[0];
                    let gy = (g / group_counts[0]) % group_counts[1];
                    let gz = g / (group_counts[0] * group_counts[1]);
                    match run_group_reference(
                        program,
                        kernel,
                        args,
                        buffers,
                        range,
                        [gx as u64, gy as u64, gz as u64],
                        local_bytes,
                        config,
                    ) {
                        Ok(c) => local_counters.merge(&c),
                        Err(e) => {
                            abort.store(true, Ordering::Relaxed);
                            let mut slot = failure.lock().expect("failure mutex");
                            slot.get_or_insert(e);
                            break;
                        }
                    }
                }
                totals.lock().expect("totals mutex").merge(&local_counters);
            });
        }
    });

    if let Some(e) = failure.into_inner().expect("failure mutex") {
        return Err(e);
    }
    Ok(totals.into_inner().expect("totals mutex"))
}

/// Runs one work-group's items in lockstep rounds with fresh `WorkItem`s on
/// the reference interpreter (legacy engine).
#[allow(clippy::too_many_arguments)]
fn run_group_reference(
    program: &Program,
    kernel: &KernelInfo,
    args: &[Value],
    buffers: &BufferTable,
    range: &NdRange,
    group_id: [u64; 3],
    local_bytes: usize,
    config: &LaunchConfig,
) -> Result<CostCounters> {
    let group_counts = range.group_counts();
    let items_per_group = range.items_per_group();
    let mut local_mem = vec![0u8; local_bytes];

    let mut items: Vec<WorkItem> = Vec::with_capacity(items_per_group);
    for lz in 0..range.local[2] {
        for ly in 0..range.local[1] {
            for lx in 0..range.local[0] {
                let local_id = [lx as u64, ly as u64, lz as u64];
                let geometry = item_geometry(range, group_counts, group_id, local_id);
                let mut item = WorkItem::new(program, kernel.func, args, geometry);
                item.set_ops_budget(config.ops_budget_per_item);
                for b in &kernel.local_arrays {
                    item.bind_entry_slot(
                        b.slot,
                        Value::Ptr(Ptr {
                            space: AddressSpace::Local,
                            buffer: 0,
                            byte_offset: b.byte_offset as i64,
                        }),
                    );
                }
                items.push(item);
            }
        }
    }

    // Lockstep rounds across barriers.
    loop {
        let mut barrier: Option<u32> = None;
        let mut any_done = false;
        for item in items.iter_mut() {
            if item.is_finished() {
                any_done = true;
                continue;
            }
            let global_id = item.geometry().global_id;
            let exit = item
                .run_reference(buffers, &mut local_mem)
                .map_err(|error| Error::Launch {
                    kernel: kernel.name.clone(),
                    global_id,
                    error,
                })?;
            match exit {
                Exit::Done => any_done = true,
                Exit::Barrier(id) => match barrier {
                    None => barrier = Some(id),
                    Some(prev) if prev == id => {}
                    Some(_) => {
                        return Err(Error::BarrierDivergence {
                            kernel: kernel.name.clone(),
                            group_id,
                        })
                    }
                },
            }
        }
        match barrier {
            None => break, // every item finished
            Some(_) if any_done => {
                return Err(Error::BarrierDivergence {
                    kernel: kernel.name.clone(),
                    group_id,
                });
            }
            Some(_) => {} // all at the same barrier: next round resumes them
        }
    }

    let mut counters = CostCounters::default();
    for item in &items {
        counters.merge(&item.counters);
    }
    Ok(counters)
}
