//! In-order command queues: the host-facing API for transfers and kernel
//! launches, mirroring `clCommandQueue` usage.
//!
//! Commands execute eagerly (the simulator has no asynchrony to model — the
//! simulated *timeline* carries the timing), so every enqueue returns a
//! completed [`Event`] with profiling timestamps on the device's clock.

use std::sync::Arc;

use skelcl_kernel::program::{KernelParamKind, Program};
use skelcl_kernel::types::{AddressSpace, Type};
use skelcl_kernel::value::{self, Ptr, Value};

use crate::cost;
use crate::device::Device;
use crate::error::{Error, Result};
use crate::event::{CommandKind, Event};
use crate::exec::{execute_launch, LaunchConfig};
use crate::memory::{BufferTable, DeviceBuffer};
use crate::ndrange::NdRange;

/// An argument bound to a kernel launch.
#[derive(Debug, Clone)]
pub enum KernelArg {
    /// A device buffer for a `__global T*` parameter.
    Buffer(DeviceBuffer),
    /// A scalar value (converted to the declared parameter type).
    Scalar(Value),
    /// A byte size for a `__local T*` parameter (dynamic local memory),
    /// as with `clSetKernelArg(…, size, NULL)`.
    Local(usize),
}

/// An in-order command queue bound to one device.
#[derive(Debug, Clone)]
pub struct CommandQueue {
    device: Arc<Device>,
}

impl CommandQueue {
    /// Creates a queue on `device`.
    pub fn new(device: Arc<Device>) -> Self {
        CommandQueue { device }
    }

    /// The queue's device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Allocates a zero-initialised device buffer (no simulated cost, as
    /// with `clCreateBuffer`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfDeviceMemory`] when the device is full.
    pub fn create_buffer(&self, len: usize) -> Result<DeviceBuffer> {
        DeviceBuffer::alloc(self.device.clone(), len)
    }

    /// Enqueues a host→device transfer into `buffer` at `offset`.
    ///
    /// # Errors
    ///
    /// Fails when the range exceeds the buffer or the buffer belongs to
    /// another device.
    pub fn enqueue_write(&self, buffer: &DeviceBuffer, offset: usize, src: &[u8]) -> Result<Event> {
        self.check_same_device(buffer)?;
        buffer.write_bytes(offset, src)?;
        let ns = cost::transfer_ns(self.device.spec(), src.len());
        let (start, end) = self.device.advance(ns);
        Ok(Event::new(
            self.device.id(),
            CommandKind::WriteBuffer { bytes: src.len() },
            start,
            start,
            end,
            None,
        ))
    }

    /// Enqueues a device→host transfer from `buffer` at `offset`.
    ///
    /// # Errors
    ///
    /// Fails when the range exceeds the buffer or the buffer belongs to
    /// another device.
    pub fn enqueue_read(
        &self,
        buffer: &DeviceBuffer,
        offset: usize,
        dst: &mut [u8],
    ) -> Result<Event> {
        self.check_same_device(buffer)?;
        buffer.read_bytes(offset, dst)?;
        let ns = cost::transfer_ns(self.device.spec(), dst.len());
        let (start, end) = self.device.advance(ns);
        Ok(Event::new(
            self.device.id(),
            CommandKind::ReadBuffer { bytes: dst.len() },
            start,
            start,
            end,
            None,
        ))
    }

    /// Enqueues an on-device copy of `len` bytes.
    ///
    /// # Errors
    ///
    /// Fails for out-of-range spans or buffers of other devices.
    pub fn enqueue_copy(
        &self,
        src: &DeviceBuffer,
        src_offset: usize,
        dst: &DeviceBuffer,
        dst_offset: usize,
        len: usize,
    ) -> Result<Event> {
        self.check_same_device(src)?;
        self.check_same_device(dst)?;
        let mut tmp = vec![0u8; len];
        src.read_bytes(src_offset, &mut tmp)?;
        dst.write_bytes(dst_offset, &tmp)?;
        // On-device copies are bandwidth-limited (read + write).
        let spec = self.device.spec();
        let ns = ((2 * len) as f64 / spec.global_bandwidth * 1e9).ceil() as u64;
        let (start, end) = self.device.advance(ns);
        Ok(Event::new(
            self.device.id(),
            CommandKind::CopyBuffer { bytes: len },
            start,
            start,
            end,
            None,
        ))
    }

    /// Enqueues a cross-device copy of `len` bytes: `src` on this queue's
    /// device to `dst` on `dst_queue`'s device, staged through the host as
    /// the paper describes for redistribution (download then upload).
    ///
    /// Costs [`cost::transfer_ns`] on each side — together
    /// [`cost::device_to_device_ns`] for identical specs — and returns the
    /// `(read, write)` event pair so callers can account both timelines.
    ///
    /// # Errors
    ///
    /// Fails for out-of-range spans or buffers not owned by the respective
    /// queues' devices.
    pub fn enqueue_copy_to(
        &self,
        src: &DeviceBuffer,
        src_offset: usize,
        dst_queue: &CommandQueue,
        dst: &DeviceBuffer,
        dst_offset: usize,
        len: usize,
    ) -> Result<(Event, Event)> {
        self.check_same_device(src)?;
        dst_queue.check_same_device(dst)?;
        let mut tmp = vec![0u8; len];
        src.read_bytes(src_offset, &mut tmp)?;
        dst.write_bytes(dst_offset, &tmp)?;
        let read_ns = cost::transfer_ns(self.device.spec(), len);
        let (rs, re) = self.device.advance(read_ns);
        let read = Event::new(
            self.device.id(),
            CommandKind::ReadBuffer { bytes: len },
            rs,
            rs,
            re,
            None,
        );
        let write_ns = cost::transfer_ns(dst_queue.device.spec(), len);
        let (ws, we) = dst_queue.device.advance(write_ns);
        let write = Event::new(
            dst_queue.device.id(),
            CommandKind::WriteBuffer { bytes: len },
            ws,
            ws,
            we,
            None,
        );
        Ok((read, write))
    }

    /// Launches `kernel_name` from `program` over `range` with `args`.
    ///
    /// Buffer arguments bind `__global` pointer parameters in order; scalar
    /// arguments are converted to the declared type; [`KernelArg::Local`]
    /// sizes carve dynamic `__local` memory.
    ///
    /// # Errors
    ///
    /// Fails for unknown kernels, mismatched arguments, invalid ranges,
    /// local-memory overflow, or any work-item fault (out-of-bounds access,
    /// division by zero, barrier divergence, …).
    pub fn launch_kernel(
        &self,
        program: &Program,
        kernel_name: &str,
        args: &[KernelArg],
        range: NdRange,
        config: &LaunchConfig,
    ) -> Result<Event> {
        let spec = self.device.spec();
        let kernel = program
            .kernel(kernel_name)
            .ok_or_else(|| Error::UnknownKernel {
                name: kernel_name.to_string(),
            })?;
        range.validate(spec.max_work_group_size)?;

        if args.len() != kernel.params.len() {
            return Err(Error::InvalidKernelArg {
                kernel: kernel_name.into(),
                index: args.len().min(kernel.params.len()),
                reason: format!(
                    "expected {} arguments, got {}",
                    kernel.params.len(),
                    args.len()
                ),
            });
        }

        let mut buffers = Vec::new();
        let mut values = Vec::with_capacity(args.len());
        let mut local_bytes = kernel.static_local_bytes as usize;

        for (index, (arg, param)) in args.iter().zip(&kernel.params).enumerate() {
            let bad = |reason: String| Error::InvalidKernelArg {
                kernel: kernel_name.into(),
                index,
                reason,
            };
            match (&param.kind, arg) {
                (KernelParamKind::GlobalBuffer { .. }, KernelArg::Buffer(b)) => {
                    self.check_same_device(b)?;
                    let buffer_index = buffers.len() as u32;
                    buffers.push(b.clone());
                    values.push(Value::Ptr(Ptr {
                        space: AddressSpace::Global,
                        buffer: buffer_index,
                        byte_offset: 0,
                    }));
                }
                (KernelParamKind::Scalar(s), KernelArg::Scalar(v)) => {
                    if v.as_ptr().is_some() {
                        return Err(bad("pointer value passed as scalar".into()));
                    }
                    values.push(value::convert(*v, *s));
                }
                (KernelParamKind::LocalBuffer { elem }, KernelArg::Local(bytes)) => {
                    let align = elem.size_bytes();
                    local_bytes = local_bytes.div_ceil(align) * align;
                    values.push(Value::Ptr(Ptr {
                        space: AddressSpace::Local,
                        buffer: 0,
                        byte_offset: local_bytes as i64,
                    }));
                    local_bytes += bytes;
                }
                (expected, got) => {
                    return Err(bad(format!(
                        "parameter `{}` expects {:?}, got {}",
                        param.name,
                        expected,
                        match got {
                            KernelArg::Buffer(_) => "a buffer",
                            KernelArg::Scalar(_) => "a scalar",
                            KernelArg::Local(_) => "a local size",
                        }
                    )));
                }
            }
        }

        if local_bytes > spec.local_memory_bytes {
            return Err(Error::LocalMemoryExceeded {
                requested: local_bytes,
                limit: spec.local_memory_bytes,
            });
        }

        let table = BufferTable { buffers };
        let counters = execute_launch(
            program,
            kernel,
            &values,
            &table,
            &range,
            local_bytes,
            config,
        )?;
        let ns = cost::launch_ns(spec, &counters, config.toolchain);
        let (queued, end) = self.device.advance(ns);
        let start = queued + spec.kernel_launch_overhead_ns;
        Ok(Event::new(
            self.device.id(),
            CommandKind::Kernel {
                name: kernel_name.into(),
            },
            queued,
            start.min(end),
            end,
            Some(counters),
        ))
    }

    fn check_same_device(&self, buffer: &DeviceBuffer) -> Result<()> {
        if buffer.device_id() != self.device.id() {
            return Err(Error::WrongDevice {
                queue_device: self.device.id().0,
                buffer_device: buffer.device_id().0,
            });
        }
        Ok(())
    }
}

/// Helper: the declared element type of a kernel's global-buffer parameter,
/// for host-side size computations.
pub fn param_elem_type(kind: &KernelParamKind) -> Option<Type> {
    match kind {
        KernelParamKind::GlobalBuffer { elem, is_const } => Some(Type::Pointer {
            pointee: *elem,
            space: AddressSpace::Global,
            is_const: *is_const,
        }),
        KernelParamKind::LocalBuffer { elem } => Some(Type::local_ptr(*elem)),
        KernelParamKind::Scalar(s) => Some(Type::Scalar(*s)),
    }
}
