//! Asynchronous in-order command queues: the host-facing API for transfers
//! and kernel launches, mirroring `clCommandQueue` usage.
//!
//! Each queue owns a worker thread that executes commands in enqueue order
//! (in-order semantics, as SkelCL configures its OpenCL queues). The
//! `enqueue_*_async` family returns immediately with a pending [`Event`];
//! wait-lists express cross-queue dependencies, and the worker blocks on
//! them before executing, so uploads to one device overlap compute on
//! another. The classic blocking methods (`enqueue_write`, `launch_kernel`,
//! …) are retained as enqueue-then-[`Event::wait`] wrappers.
//!
//! Argument validation stays *eager* (at enqueue time, on the caller's
//! thread): an invalid launch fails fast with a `Result`, while runtime
//! faults inside a kernel surface through the event. A panic on the worker
//! fails the command — and everything waiting on it — with
//! [`Error::DeviceLost`] instead of poisoning the process.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

use skelcl_kernel::program::{KernelParamKind, Program};
use skelcl_kernel::types::{AddressSpace, Type};
use skelcl_kernel::value::{self, Ptr, Value};
use skelcl_kernel::vm::CostCounters;

use crate::cost;
use crate::device::Device;
use crate::error::{Error, Result};
use crate::event::{CommandClass, CommandKind, Event};
use crate::exec::{execute_launch, LaunchConfig};
use crate::memory::{BufferTable, DeviceBuffer};
use crate::ndrange::NdRange;

/// Where in a command's lifecycle a [`QueueNotice`] was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePhase {
    /// The command was handed to the queue worker (caller's thread).
    Enqueued,
    /// The worker began executing it (wait-list satisfied).
    Started,
    /// The command settled — completed or failed (worker's thread).
    Finished,
}

/// A compact, allocation-free telemetry notice about one queue command.
///
/// Observers installed with [`CommandQueue::set_observer`] receive one
/// notice per lifecycle phase. Everything is `Copy`; an observer that wants
/// structure (a flight recorder, counter tracks) builds it on its own side.
#[derive(Debug, Clone, Copy)]
pub struct QueueNotice {
    /// Index of the queue's device.
    pub device: usize,
    /// Lifecycle point.
    pub phase: QueuePhase,
    /// What kind of command this is.
    pub class: CommandClass,
    /// Bytes the command moves (0 for kernels and markers).
    pub bytes: usize,
    /// Commands enqueued but not yet finished on this queue, including
    /// this one (queue depth after the notice's effect).
    pub depth: usize,
    /// The device's simulated clock at the notice, in nanoseconds.
    pub t_ns: u64,
    /// `Finished` only: the command (or a dependency) failed.
    pub failed: bool,
    /// `Finished` only: the failure was [`Error::DeviceLost`] — a worker
    /// crash rather than an ordinary kernel fault.
    pub device_lost: bool,
}

/// An installed queue observer. Called inline on the enqueueing thread
/// (`Enqueued`) and the queue worker (`Started`/`Finished`), so it must be
/// cheap and must not block on queue operations.
pub type QueueObserver = Arc<dyn Fn(&QueueNotice) + Send + Sync>;

/// Telemetry state shared between the queue handle and its worker. The
/// depth counter always runs (two relaxed atomic ops per command); the
/// observer slot is set at most once, so the unobserved hot path costs one
/// `OnceLock` load.
#[derive(Default)]
struct QueueTelemetry {
    depth: AtomicUsize,
    observer: OnceLock<QueueObserver>,
}

impl QueueTelemetry {
    fn notify(&self, notice: &QueueNotice) {
        if let Some(observer) = self.observer.get() {
            observer(notice);
        }
    }
}

/// An argument bound to a kernel launch.
#[derive(Debug, Clone)]
pub enum KernelArg {
    /// A device buffer for a `__global T*` parameter.
    Buffer(DeviceBuffer),
    /// A scalar value (converted to the declared parameter type).
    Scalar(Value),
    /// A byte size for a `__local T*` parameter (dynamic local memory),
    /// as with `clSetKernelArg(…, size, NULL)`.
    Local(usize),
}

/// Shared destination of an asynchronous device→host read.
type ReadSlot = Arc<Mutex<Option<Vec<u8>>>>;

/// A pending device→host read: the event plus the slot the worker fills.
#[derive(Debug)]
pub struct HostRead {
    event: Event,
    slot: ReadSlot,
}

impl HostRead {
    /// The read's event (for wait-lists and profiling).
    pub fn event(&self) -> &Event {
        &self.event
    }

    /// Blocks until the read completes, returning its event and bytes.
    ///
    /// # Errors
    ///
    /// Returns the read's (or a failed dependency's) error.
    pub fn wait(self) -> Result<(Event, Vec<u8>)> {
        self.event.wait()?;
        let bytes = self
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .ok_or(Error::DeviceLost)?;
        Ok((self.event, bytes))
    }
}

/// The work a queued command performs on the worker thread. Buffer clones
/// live inside the op and are dropped *before* the event completes, so
/// allocation accounting observed after a `finish()` is exact.
enum CommandOp {
    Write {
        buffer: DeviceBuffer,
        offset: usize,
        bytes: Vec<u8>,
    },
    /// Host→device upload whose bytes arrive through a [`ReadSlot`] filled
    /// by an earlier read command (the staging half of a cross-device copy).
    WriteFromSlot {
        buffer: DeviceBuffer,
        offset: usize,
        slot: ReadSlot,
    },
    Read {
        buffer: DeviceBuffer,
        offset: usize,
        len: usize,
        slot: ReadSlot,
    },
    Copy {
        src: DeviceBuffer,
        src_offset: usize,
        dst: DeviceBuffer,
        dst_offset: usize,
        len: usize,
    },
    Kernel {
        program: Program,
        name: String,
        values: Vec<Value>,
        buffers: Vec<DeviceBuffer>,
        local_bytes: usize,
        range: NdRange,
        config: LaunchConfig,
    },
    Marker,
}

struct Command {
    event: Event,
    waits: Vec<Event>,
    op: CommandOp,
}

struct QueueShared {
    device: Arc<Device>,
    telemetry: Arc<QueueTelemetry>,
    /// `None` only during teardown: dropped first so the worker's `recv`
    /// ends and the join below cannot deadlock.
    sender: Option<Sender<Command>>,
    worker: Option<JoinHandle<()>>,
}

impl Drop for QueueShared {
    fn drop(&mut self) {
        self.sender.take();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

/// An in-order command queue bound to one device, with a dedicated worker
/// thread executing its commands.
#[derive(Clone)]
pub struct CommandQueue {
    shared: Arc<QueueShared>,
}

impl std::fmt::Debug for CommandQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommandQueue")
            .field("device", &self.shared.device.id())
            .finish()
    }
}

impl CommandQueue {
    /// Creates a queue on `device`, spawning its worker thread.
    pub fn new(device: Arc<Device>) -> Self {
        let (sender, receiver) = mpsc::channel();
        let telemetry = Arc::new(QueueTelemetry::default());
        let worker_device = device.clone();
        let worker_telemetry = telemetry.clone();
        let worker = std::thread::Builder::new()
            .name(format!("vgpu-queue-{}", device.id().0))
            .spawn(move || worker_loop(worker_device, worker_telemetry, receiver))
            .expect("spawn queue worker thread");
        CommandQueue {
            shared: Arc::new(QueueShared {
                device,
                telemetry,
                sender: Some(sender),
                worker: Some(worker),
            }),
        }
    }

    /// The queue's device.
    pub fn device(&self) -> &Arc<Device> {
        &self.shared.device
    }

    /// Installs a telemetry observer receiving a [`QueueNotice`] per
    /// command lifecycle phase. The slot is write-once: returns `false`
    /// (and leaves the existing observer) if one is already installed.
    pub fn set_observer(&self, observer: QueueObserver) -> bool {
        self.shared.telemetry.observer.set(observer).is_ok()
    }

    /// Commands enqueued but not yet finished on this queue right now.
    pub fn depth(&self) -> usize {
        self.shared.telemetry.depth.load(Ordering::Relaxed)
    }

    /// Allocates a zero-initialised device buffer (no simulated cost, as
    /// with `clCreateBuffer`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfDeviceMemory`] when the device is full.
    pub fn create_buffer(&self, len: usize) -> Result<DeviceBuffer> {
        DeviceBuffer::alloc(self.shared.device.clone(), len)
    }

    fn submit(&self, kind: CommandKind, waits: &[Event], op: CommandOp) -> Result<Event> {
        let event = Event::pending(self.shared.device.id(), kind);
        let command = Command {
            event: event.clone(),
            waits: waits.to_vec(),
            op,
        };
        let telemetry = &self.shared.telemetry;
        let depth = telemetry.depth.fetch_add(1, Ordering::Relaxed) + 1;
        // Notify *before* handing the command to the worker so observers
        // always see Enqueued ahead of the worker's Started/Finished.
        let notice = |phase, depth, failed| QueueNotice {
            device: self.shared.device.id().0,
            phase,
            class: event.kind().class(),
            bytes: event.kind().payload_bytes(),
            depth,
            t_ns: self.shared.device.now_ns(),
            failed,
            device_lost: failed,
        };
        telemetry.notify(&notice(QueuePhase::Enqueued, depth, false));
        let send_result = self
            .shared
            .sender
            .as_ref()
            .ok_or(Error::DeviceLost)
            .and_then(|s| s.send(command).map_err(|_| Error::DeviceLost));
        if send_result.is_err() {
            let depth = telemetry.depth.fetch_sub(1, Ordering::Relaxed) - 1;
            telemetry.notify(&notice(QueuePhase::Finished, depth, true));
            return Err(Error::DeviceLost);
        }
        Ok(event)
    }

    fn check_range(&self, buffer: &DeviceBuffer, offset: usize, len: usize) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > buffer.len()) {
            return Err(Error::TransferOutOfRange {
                buffer_len: buffer.len(),
                offset,
                len,
            });
        }
        Ok(())
    }

    /// Enqueues a host→device transfer without waiting: the returned event
    /// completes once the worker has written `bytes` into `buffer` at
    /// `offset`, after every event in `waits`.
    ///
    /// # Errors
    ///
    /// Fails eagerly when the range exceeds the buffer or the buffer
    /// belongs to another device.
    pub fn enqueue_write_async(
        &self,
        buffer: &DeviceBuffer,
        offset: usize,
        bytes: Vec<u8>,
        waits: &[Event],
    ) -> Result<Event> {
        self.check_same_device(buffer)?;
        self.check_range(buffer, offset, bytes.len())?;
        self.submit(
            CommandKind::WriteBuffer { bytes: bytes.len() },
            waits,
            CommandOp::Write {
                buffer: buffer.clone(),
                offset,
                bytes,
            },
        )
    }

    /// Enqueues a device→host transfer without waiting; the bytes become
    /// available through the returned [`HostRead`] once its event completes.
    ///
    /// # Errors
    ///
    /// Fails eagerly for out-of-range spans or buffers of other devices.
    pub fn enqueue_read_async(
        &self,
        buffer: &DeviceBuffer,
        offset: usize,
        len: usize,
        waits: &[Event],
    ) -> Result<HostRead> {
        self.check_same_device(buffer)?;
        self.check_range(buffer, offset, len)?;
        let slot: ReadSlot = Arc::new(Mutex::new(None));
        let event = self.submit(
            CommandKind::ReadBuffer { bytes: len },
            waits,
            CommandOp::Read {
                buffer: buffer.clone(),
                offset,
                len,
                slot: slot.clone(),
            },
        )?;
        Ok(HostRead { event, slot })
    }

    /// Enqueues an on-device copy of `len` bytes without waiting.
    ///
    /// # Errors
    ///
    /// Fails eagerly for out-of-range spans or buffers of other devices.
    pub fn enqueue_copy_async(
        &self,
        src: &DeviceBuffer,
        src_offset: usize,
        dst: &DeviceBuffer,
        dst_offset: usize,
        len: usize,
        waits: &[Event],
    ) -> Result<Event> {
        self.check_same_device(src)?;
        self.check_same_device(dst)?;
        self.check_range(src, src_offset, len)?;
        self.check_range(dst, dst_offset, len)?;
        self.submit(
            CommandKind::CopyBuffer { bytes: len },
            waits,
            CommandOp::Copy {
                src: src.clone(),
                src_offset,
                dst: dst.clone(),
                dst_offset,
                len,
            },
        )
    }

    /// Enqueues a cross-device copy without waiting: a read of `src` on
    /// this queue staged through the host into a write of `dst` on
    /// `dst_queue` (the write waits on the read). Returns the
    /// `(read, write)` event pair so callers can account both timelines.
    ///
    /// # Errors
    ///
    /// Fails eagerly for out-of-range spans or buffers not owned by the
    /// respective queues' devices.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_copy_to_async(
        &self,
        src: &DeviceBuffer,
        src_offset: usize,
        dst_queue: &CommandQueue,
        dst: &DeviceBuffer,
        dst_offset: usize,
        len: usize,
        waits: &[Event],
    ) -> Result<(Event, Event)> {
        self.check_same_device(src)?;
        dst_queue.check_same_device(dst)?;
        self.check_range(src, src_offset, len)?;
        dst_queue.check_range(dst, dst_offset, len)?;
        let slot: ReadSlot = Arc::new(Mutex::new(None));
        let read = self.submit(
            CommandKind::ReadBuffer { bytes: len },
            waits,
            CommandOp::Read {
                buffer: src.clone(),
                offset: src_offset,
                len,
                slot: slot.clone(),
            },
        )?;
        let write = dst_queue.submit(
            CommandKind::WriteBuffer { bytes: len },
            std::slice::from_ref(&read),
            CommandOp::WriteFromSlot {
                buffer: dst.clone(),
                offset: dst_offset,
                slot,
            },
        )?;
        Ok((read, write))
    }

    /// Launches `kernel_name` from `program` over `range` without waiting,
    /// after every event in `waits`.
    ///
    /// Buffer arguments bind `__global` pointer parameters in order; scalar
    /// arguments are converted to the declared type; [`KernelArg::Local`]
    /// sizes carve dynamic `__local` memory.
    ///
    /// # Errors
    ///
    /// Binding errors (unknown kernels, mismatched arguments, invalid
    /// ranges, local-memory overflow) fail eagerly; work-item faults
    /// (out-of-bounds access, division by zero, barrier divergence, …)
    /// surface through the returned event.
    pub fn launch_kernel_async(
        &self,
        program: &Program,
        kernel_name: &str,
        args: &[KernelArg],
        range: NdRange,
        config: &LaunchConfig,
        waits: &[Event],
    ) -> Result<Event> {
        let spec = self.shared.device.spec();
        let kernel = program
            .kernel(kernel_name)
            .ok_or_else(|| Error::UnknownKernel {
                name: kernel_name.to_string(),
            })?;
        range.validate(spec.max_work_group_size)?;

        if args.len() != kernel.params.len() {
            return Err(Error::InvalidKernelArg {
                kernel: kernel_name.into(),
                index: args.len().min(kernel.params.len()),
                reason: format!(
                    "expected {} arguments, got {}",
                    kernel.params.len(),
                    args.len()
                ),
            });
        }

        let mut buffers = Vec::new();
        let mut values = Vec::with_capacity(args.len());
        let mut local_bytes = kernel.static_local_bytes as usize;

        for (index, (arg, param)) in args.iter().zip(&kernel.params).enumerate() {
            let bad = |reason: String| Error::InvalidKernelArg {
                kernel: kernel_name.into(),
                index,
                reason,
            };
            match (&param.kind, arg) {
                (KernelParamKind::GlobalBuffer { .. }, KernelArg::Buffer(b)) => {
                    self.check_same_device(b)?;
                    let buffer_index = buffers.len() as u32;
                    buffers.push(b.clone());
                    values.push(Value::Ptr(Ptr {
                        space: AddressSpace::Global,
                        buffer: buffer_index,
                        byte_offset: 0,
                    }));
                }
                (KernelParamKind::Scalar(s), KernelArg::Scalar(v)) => {
                    if v.as_ptr().is_some() {
                        return Err(bad("pointer value passed as scalar".into()));
                    }
                    values.push(value::convert(*v, *s));
                }
                (KernelParamKind::LocalBuffer { elem }, KernelArg::Local(bytes)) => {
                    let align = elem.size_bytes();
                    local_bytes = local_bytes.div_ceil(align) * align;
                    values.push(Value::Ptr(Ptr {
                        space: AddressSpace::Local,
                        buffer: 0,
                        byte_offset: local_bytes as i64,
                    }));
                    local_bytes += bytes;
                }
                (expected, got) => {
                    return Err(bad(format!(
                        "parameter `{}` expects {:?}, got {}",
                        param.name,
                        expected,
                        match got {
                            KernelArg::Buffer(_) => "a buffer",
                            KernelArg::Scalar(_) => "a scalar",
                            KernelArg::Local(_) => "a local size",
                        }
                    )));
                }
            }
        }

        if local_bytes > spec.local_memory_bytes {
            return Err(Error::LocalMemoryExceeded {
                requested: local_bytes,
                limit: spec.local_memory_bytes,
            });
        }

        self.submit(
            CommandKind::Kernel {
                name: kernel_name.into(),
            },
            waits,
            CommandOp::Kernel {
                program: program.clone(),
                name: kernel_name.to_string(),
                values,
                buffers,
                local_bytes,
                range,
                config: config.clone(),
            },
        )
    }

    /// Enqueues a marker that completes after every event in `waits` and
    /// all previously enqueued commands on this queue
    /// (`clEnqueueMarkerWithWaitList`).
    ///
    /// # Errors
    ///
    /// Fails only when the queue's worker is gone ([`Error::DeviceLost`]).
    pub fn enqueue_barrier(&self, waits: &[Event]) -> Result<Event> {
        self.submit(CommandKind::Marker, waits, CommandOp::Marker)
    }

    /// Hands any buffered commands to the worker (`clFlush`). Submission is
    /// already immediate here, so this is a no-op kept for API fidelity.
    pub fn flush(&self) {}

    /// Blocks until every command enqueued so far has completed
    /// (`clFinish`). Individual command failures do *not* fail `finish`;
    /// they are reported by their own events.
    ///
    /// # Errors
    ///
    /// Fails only when the queue's worker is gone ([`Error::DeviceLost`]).
    pub fn finish(&self) -> Result<()> {
        let marker = self.enqueue_barrier(&[])?;
        // The marker itself cannot fail; a lost worker surfaces as
        // DeviceLost from its wait.
        marker.wait()
    }

    /// Enqueues a host→device transfer and waits for it: the blocking
    /// `clEnqueueWriteBuffer(…, CL_TRUE, …)` form.
    ///
    /// # Errors
    ///
    /// Fails when the range exceeds the buffer or the buffer belongs to
    /// another device.
    pub fn enqueue_write(&self, buffer: &DeviceBuffer, offset: usize, src: &[u8]) -> Result<Event> {
        let event = self.enqueue_write_async(buffer, offset, src.to_vec(), &[])?;
        event.wait()?;
        Ok(event)
    }

    /// Enqueues a device→host transfer into `dst` and waits for it.
    ///
    /// # Errors
    ///
    /// Fails when the range exceeds the buffer or the buffer belongs to
    /// another device.
    pub fn enqueue_read(
        &self,
        buffer: &DeviceBuffer,
        offset: usize,
        dst: &mut [u8],
    ) -> Result<Event> {
        let read = self.enqueue_read_async(buffer, offset, dst.len(), &[])?;
        let (event, bytes) = read.wait()?;
        dst.copy_from_slice(&bytes);
        Ok(event)
    }

    /// Enqueues an on-device copy of `len` bytes and waits for it.
    ///
    /// # Errors
    ///
    /// Fails for out-of-range spans or buffers of other devices.
    pub fn enqueue_copy(
        &self,
        src: &DeviceBuffer,
        src_offset: usize,
        dst: &DeviceBuffer,
        dst_offset: usize,
        len: usize,
    ) -> Result<Event> {
        let event = self.enqueue_copy_async(src, src_offset, dst, dst_offset, len, &[])?;
        event.wait()?;
        Ok(event)
    }

    /// Enqueues a cross-device copy of `len` bytes and waits for both
    /// halves: `src` on this queue's device to `dst` on `dst_queue`'s
    /// device, staged through the host as the paper describes for
    /// redistribution (download then upload).
    ///
    /// Costs [`cost::transfer_ns`] on each side — together
    /// [`cost::device_to_device_ns`] for identical specs — and returns the
    /// `(read, write)` event pair so callers can account both timelines.
    ///
    /// # Errors
    ///
    /// Fails for out-of-range spans or buffers not owned by the respective
    /// queues' devices.
    pub fn enqueue_copy_to(
        &self,
        src: &DeviceBuffer,
        src_offset: usize,
        dst_queue: &CommandQueue,
        dst: &DeviceBuffer,
        dst_offset: usize,
        len: usize,
    ) -> Result<(Event, Event)> {
        let (read, write) =
            self.enqueue_copy_to_async(src, src_offset, dst_queue, dst, dst_offset, len, &[])?;
        read.wait()?;
        write.wait()?;
        Ok((read, write))
    }

    /// Launches `kernel_name` from `program` over `range` with `args` and
    /// waits for it. See [`CommandQueue::launch_kernel_async`].
    ///
    /// # Errors
    ///
    /// Fails for unknown kernels, mismatched arguments, invalid ranges,
    /// local-memory overflow, or any work-item fault (out-of-bounds access,
    /// division by zero, barrier divergence, …).
    pub fn launch_kernel(
        &self,
        program: &Program,
        kernel_name: &str,
        args: &[KernelArg],
        range: NdRange,
        config: &LaunchConfig,
    ) -> Result<Event> {
        let event = self.launch_kernel_async(program, kernel_name, args, range, config, &[])?;
        event.wait()?;
        Ok(event)
    }

    fn check_same_device(&self, buffer: &DeviceBuffer) -> Result<()> {
        if buffer.device_id() != self.shared.device.id() {
            return Err(Error::WrongDevice {
                queue_device: self.shared.device.id().0,
                buffer_device: buffer.device_id().0,
            });
        }
        Ok(())
    }
}

/// The per-queue worker: executes commands in enqueue order, blocking on
/// each command's wait-list first. Ends when the queue (all clones) drops.
fn worker_loop(device: Arc<Device>, telemetry: Arc<QueueTelemetry>, receiver: Receiver<Command>) {
    while let Ok(Command { event, waits, op }) = receiver.recv() {
        let class = event.kind().class();
        let bytes = event.kind().payload_bytes();
        let notice = |phase, depth, error: Option<&Error>| QueueNotice {
            device: device.id().0,
            phase,
            class,
            bytes,
            depth,
            t_ns: device.now_ns(),
            failed: error.is_some(),
            device_lost: matches!(error, Some(Error::DeviceLost)),
        };
        let mut dependency_error = None;
        for wait in &waits {
            if let Err(e) = wait.wait() {
                dependency_error = Some(e);
                break;
            }
        }
        if let Some(e) = dependency_error {
            drop(op); // release buffer clones before observers wake
            let depth = telemetry.depth.fetch_sub(1, Ordering::Relaxed) - 1;
            telemetry.notify(&notice(QueuePhase::Finished, depth, Some(&e)));
            event.fail(e);
            continue;
        }
        event.start_running();
        telemetry.notify(&notice(
            QueuePhase::Started,
            telemetry.depth.load(Ordering::Relaxed),
            None,
        ));
        // `op` moves into the closure and is dropped inside it — buffer
        // clones are released before the event completes, whether the
        // command succeeds, errs, or panics (unwind drops it too).
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| execute_op(&device, op)));
        let depth = telemetry.depth.fetch_sub(1, Ordering::Relaxed) - 1;
        match outcome {
            Ok(Ok((queued, started, ended, counters))) => {
                telemetry.notify(&notice(QueuePhase::Finished, depth, None));
                event.complete(queued, started, ended, counters)
            }
            Ok(Err(e)) => {
                telemetry.notify(&notice(QueuePhase::Finished, depth, Some(&e)));
                event.fail(e)
            }
            Err(_) => {
                telemetry.notify(&notice(
                    QueuePhase::Finished,
                    depth,
                    Some(&Error::DeviceLost),
                ));
                event.fail(Error::DeviceLost)
            }
        }
    }
}

/// Executes one command on the worker thread, advancing the device's
/// simulated timeline and returning `(queued, started, ended, counters)`.
fn execute_op(
    device: &Arc<Device>,
    op: CommandOp,
) -> Result<(u64, u64, u64, Option<CostCounters>)> {
    match op {
        CommandOp::Write {
            buffer,
            offset,
            bytes,
        } => {
            buffer.write_bytes(offset, &bytes)?;
            let ns = cost::transfer_ns(device.spec(), bytes.len());
            let (start, end) = device.advance(ns);
            Ok((start, start, end, None))
        }
        CommandOp::WriteFromSlot {
            buffer,
            offset,
            slot,
        } => {
            let bytes = slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .ok_or(Error::DeviceLost)?;
            buffer.write_bytes(offset, &bytes)?;
            let ns = cost::transfer_ns(device.spec(), bytes.len());
            let (start, end) = device.advance(ns);
            Ok((start, start, end, None))
        }
        CommandOp::Read {
            buffer,
            offset,
            len,
            slot,
        } => {
            let mut tmp = vec![0u8; len];
            buffer.read_bytes(offset, &mut tmp)?;
            let ns = cost::transfer_ns(device.spec(), len);
            let (start, end) = device.advance(ns);
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(tmp);
            Ok((start, start, end, None))
        }
        CommandOp::Copy {
            src,
            src_offset,
            dst,
            dst_offset,
            len,
        } => {
            let mut tmp = vec![0u8; len];
            src.read_bytes(src_offset, &mut tmp)?;
            dst.write_bytes(dst_offset, &tmp)?;
            // On-device copies are bandwidth-limited (read + write).
            let spec = device.spec();
            let ns = ((2 * len) as f64 / spec.global_bandwidth * 1e9).ceil() as u64;
            let (start, end) = device.advance(ns);
            Ok((start, start, end, None))
        }
        CommandOp::Kernel {
            program,
            name,
            values,
            buffers,
            local_bytes,
            range,
            config,
        } => {
            let spec = device.spec();
            let kernel = program
                .kernel(&name)
                .ok_or_else(|| Error::UnknownKernel { name: name.clone() })?;
            let table = BufferTable { buffers };
            let counters = execute_launch(
                device,
                &program,
                kernel,
                &values,
                &table,
                &range,
                local_bytes,
                &config,
            )?;
            let ns = cost::launch_ns(spec, &counters, config.toolchain);
            let (queued, end) = device.advance(ns);
            let start = queued + spec.kernel_launch_overhead_ns;
            Ok((queued, start.min(end), end, Some(counters)))
        }
        CommandOp::Marker => {
            let now = device.now_ns();
            Ok((now, now, now, None))
        }
    }
}

/// Helper: the declared element type of a kernel's global-buffer parameter,
/// for host-side size computations.
pub fn param_elem_type(kind: &KernelParamKind) -> Option<Type> {
    match kind {
        KernelParamKind::GlobalBuffer { elem, is_const } => Some(Type::Pointer {
            pointee: *elem,
            space: AddressSpace::Global,
            is_const: *is_const,
        }),
        KernelParamKind::LocalBuffer { elem } => Some(Type::local_ptr(*elem)),
        KernelParamKind::Scalar(s) => Some(Type::Scalar(*s)),
    }
}
