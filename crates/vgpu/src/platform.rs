//! Platform: a host plus a set of virtual GPUs, like an OpenCL platform
//! with multiple devices (the paper's testbed is one host driving a Tesla
//! S1070 with 4 GPUs).

use std::sync::Arc;

use crate::device::{Device, DeviceId, DeviceSpec};
use crate::queue::CommandQueue;

/// A set of virtual devices discovered by the host.
#[derive(Debug, Clone)]
pub struct Platform {
    devices: Vec<Arc<Device>>,
}

impl Platform {
    /// Creates a platform with `count` identical devices.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero — a platform without devices is useless
    /// and SkelCL's `init()` requires at least one.
    pub fn new(count: usize, spec: DeviceSpec) -> Self {
        assert!(count > 0, "a platform needs at least one device");
        let devices = (0..count)
            .map(|i| Arc::new(Device::new(DeviceId(i), spec.clone())))
            .collect();
        Platform { devices }
    }

    /// The paper's testbed: a Tesla S1070 computing system with 4 GPUs.
    pub fn tesla_s1070() -> Self {
        Platform::new(4, DeviceSpec::tesla_t10())
    }

    /// Creates a platform from one explicit spec per device — a
    /// heterogeneous system (mixed GPU generations, or a shared node where
    /// some devices are contended).
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn heterogeneous(specs: Vec<DeviceSpec>) -> Self {
        assert!(!specs.is_empty(), "a platform needs at least one device");
        let devices = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| Arc::new(Device::new(DeviceId(i), spec)))
            .collect();
        Platform { devices }
    }

    /// A skewed preset: the S1070 testbed with the first two GPUs running
    /// at half speed (clock and bandwidth), as if contended or a slower
    /// generation. Even block splits land at 1.33 max/mean busy time here;
    /// the adaptive scheduler should recover ≈1.0.
    pub fn tesla_s1070_slow_fast() -> Self {
        let fast = DeviceSpec::tesla_t10();
        let slow = fast.scaled(0.5);
        Platform::heterogeneous(vec![slow.clone(), slow, fast.clone(), fast])
    }

    /// A single-GPU platform.
    pub fn single(spec: DeviceSpec) -> Self {
        Platform::new(1, spec)
    }

    /// All devices.
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// A device by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn device(&self, index: usize) -> &Arc<Device> {
        &self.devices[index]
    }

    /// Creates a command queue on device `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn queue(&self, index: usize) -> CommandQueue {
        CommandQueue::new(self.devices[index].clone())
    }

    /// Host-side execution statistics aggregated over all devices (launch
    /// dispatch counts, per-launch thread spawns, live pool threads).
    pub fn exec_stats(&self) -> crate::device::ExecStats {
        let mut total = crate::device::ExecStats::default();
        for d in &self.devices {
            total.merge(&d.exec_stats());
        }
        total
    }
}

impl Default for Platform {
    /// The paper's 4-GPU Tesla S1070 testbed.
    fn default() -> Self {
        Platform::tesla_s1070()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tesla_platform_has_four_gpus() {
        let p = Platform::tesla_s1070();
        assert_eq!(p.device_count(), 4);
        assert_eq!(p.device(3).id(), DeviceId(3));
        assert_eq!(p.device(0).spec().cores, 240);
    }

    #[test]
    fn devices_have_independent_timelines() {
        let p = Platform::new(2, DeviceSpec::test_tiny());
        p.device(0).advance(100);
        assert_eq!(p.device(0).now_ns(), 100);
        assert_eq!(p.device(1).now_ns(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        let _ = Platform::new(0, DeviceSpec::test_tiny());
    }
}
