//! Persistent per-device worker pools.
//!
//! A [`WorkerPool`] is created lazily on a device's first
//! [`ExecStrategy::Fast`](crate::ExecStrategy::Fast) launch and lives until
//! the device drops. Each worker owns a
//! [`WorkerScratch`](crate::exec::WorkerScratch) for the thread's lifetime,
//! so `WorkItem` and local-memory allocations are recycled **across**
//! launches, not just within one — a kernel launch costs a channel send per
//! worker instead of a thread spawn, and in steady state performs no heap
//! allocation on the execution hot path.

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::error::Error;
use crate::exec::{run_worker, LaunchState, WorkerScratch};

/// A fixed set of persistent worker threads bound to one device.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    senders: Vec<Sender<Arc<LaunchState>>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers for device `device_index`.
    pub(crate) fn new(device_index: usize, threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let (sender, receiver) = mpsc::channel::<Arc<LaunchState>>();
            let handle = std::thread::Builder::new()
                .name(format!("vgpu-exec-{device_index}.{worker}"))
                .spawn(move || {
                    let mut scratch = WorkerScratch::default();
                    while let Ok(state) = receiver.recv() {
                        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                            run_worker(&state, &mut scratch)
                        }));
                        if outcome.is_err() {
                            // The scratch may hold half-executed items;
                            // start clean rather than reuse them.
                            scratch = WorkerScratch::default();
                            state.fail(Error::DeviceLost);
                        }
                        // Drop the payload reference *before* arriving:
                        // once the caller's wait() returns, no worker may
                        // still pin the launch's buffer table.
                        let latch = state.latch();
                        drop(state);
                        latch.arrive();
                    }
                })
                .expect("spawn vgpu pool worker thread");
            senders.push(sender);
            handles.push(handle);
        }
        WorkerPool { senders, handles }
    }

    /// Number of worker threads in the pool.
    pub(crate) fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Runs one launch to completion on every worker (blocking). Failures
    /// are recorded in `state`; the caller reads them afterwards.
    pub(crate) fn run(&self, state: &Arc<LaunchState>) {
        state.begin(self.senders.len());
        for sender in &self.senders {
            if sender.send(state.clone()).is_err() {
                // Worker gone (cannot normally happen: panics are caught).
                state.fail(Error::DeviceLost);
                state.finish_participant();
            }
        }
        state.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops; then join. The pool
        // can be dropped *on one of its own workers*: a worker's clone of
        // the launch state can be the device's last `Arc` reference once
        // the host side has moved on. A thread cannot join itself, so that
        // worker is detached instead — it is already past its receive loop
        // (its channel sender is gone) and exits on its own.
        self.senders.clear();
        let current = std::thread::current().id();
        for handle in self.handles.drain(..) {
            if handle.thread().id() != current {
                let _ = handle.join();
            }
        }
    }
}
