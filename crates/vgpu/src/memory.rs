//! Device global memory: buffers and the [`GlobalMemory`] view used by
//! running kernels.
//!
//! Buffer bytes are stored as `AtomicU8` so that concurrently executing
//! work-groups (scheduled on different host threads) can access shared
//! buffers without undefined behaviour. Racy kernels observe unspecified
//! byte values — the same guarantee real GPUs give — but never corrupt the
//! simulator.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use skelcl_kernel::types::{AddressSpace, ScalarType};
use skelcl_kernel::value::{read_scalar, write_scalar, Value};
use skelcl_kernel::vm::{GlobalMemory, MemAccessError};

use crate::device::{Device, DeviceId};
use crate::error::{Error, Result};

#[derive(Debug)]
struct BufferInner {
    device: Arc<Device>,
    data: Box<[AtomicU8]>,
}

impl Drop for BufferInner {
    fn drop(&mut self) {
        self.device.release(self.data.len());
    }
}

/// A handle to a buffer in a device's global memory.
///
/// Cloning is cheap (reference counted); the device memory is released when
/// the last handle drops, mirroring SkelCL's automatic
/// allocation/deallocation of GPU memory for containers.
#[derive(Debug, Clone)]
pub struct DeviceBuffer {
    inner: Arc<BufferInner>,
}

impl DeviceBuffer {
    /// Allocates a zero-initialised buffer of `len` bytes on `device`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfDeviceMemory`] when the device is full.
    pub(crate) fn alloc(device: Arc<Device>, len: usize) -> Result<DeviceBuffer> {
        device.reserve(len)?;
        let data = (0..len).map(|_| AtomicU8::new(0)).collect();
        Ok(DeviceBuffer {
            inner: Arc::new(BufferInner { device, data }),
        })
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.inner.data.len()
    }

    /// Whether the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.inner.data.is_empty()
    }

    /// The id of the owning device.
    pub fn device_id(&self) -> DeviceId {
        self.inner.device.id()
    }

    /// Copies `src` into the buffer at `offset` (raw, no simulated cost —
    /// the queue layer accounts time).
    pub(crate) fn write_bytes(&self, offset: usize, src: &[u8]) -> Result<()> {
        let data = &self.inner.data;
        if offset
            .checked_add(src.len())
            .is_none_or(|end| end > data.len())
        {
            return Err(Error::TransferOutOfRange {
                buffer_len: data.len(),
                offset,
                len: src.len(),
            });
        }
        for (slot, &b) in data[offset..offset + src.len()].iter().zip(src) {
            slot.store(b, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Copies from the buffer at `offset` into `dst`.
    pub(crate) fn read_bytes(&self, offset: usize, dst: &mut [u8]) -> Result<()> {
        let data = &self.inner.data;
        if offset
            .checked_add(dst.len())
            .is_none_or(|end| end > data.len())
        {
            return Err(Error::TransferOutOfRange {
                buffer_len: data.len(),
                offset,
                len: dst.len(),
            });
        }
        for (slot, b) in data[offset..offset + dst.len()].iter().zip(dst) {
            *b = slot.load(Ordering::Relaxed);
        }
        Ok(())
    }
}

/// The kernel-visible view of the buffers bound to one launch: buffer index
/// `i` in kernel pointers refers to `buffers[i]`.
#[derive(Debug, Clone)]
pub(crate) struct BufferTable {
    pub(crate) buffers: Vec<DeviceBuffer>,
}

impl BufferTable {
    fn buffer(
        &self,
        index: u32,
        byte_offset: i64,
        ty: ScalarType,
    ) -> std::result::Result<&BufferInner, MemAccessError> {
        self.buffers
            .get(index as usize)
            .map(|b| &*b.inner)
            .ok_or(MemAccessError {
                space: AddressSpace::Global,
                buffer: index,
                byte_offset,
                len: 0,
                ty,
            })
    }
}

impl GlobalMemory for BufferTable {
    fn load(
        &self,
        buffer: u32,
        byte_offset: i64,
        ty: ScalarType,
    ) -> std::result::Result<Value, MemAccessError> {
        let inner = self.buffer(buffer, byte_offset, ty)?;
        let size = ty.size_bytes();
        let len = inner.data.len();
        if byte_offset < 0 || (byte_offset as usize).saturating_add(size) > len {
            return Err(MemAccessError {
                space: AddressSpace::Global,
                buffer,
                byte_offset,
                len,
                ty,
            });
        }
        let off = byte_offset as usize;
        let mut tmp = [0u8; 8];
        for (i, slot) in inner.data[off..off + size].iter().enumerate() {
            tmp[i] = slot.load(Ordering::Relaxed);
        }
        Ok(read_scalar(&tmp, ty))
    }

    fn store(
        &self,
        buffer: u32,
        byte_offset: i64,
        ty: ScalarType,
        v: Value,
    ) -> std::result::Result<(), MemAccessError> {
        let inner = self.buffer(buffer, byte_offset, ty)?;
        let size = ty.size_bytes();
        let len = inner.data.len();
        if byte_offset < 0 || (byte_offset as usize).saturating_add(size) > len {
            return Err(MemAccessError {
                space: AddressSpace::Global,
                buffer,
                byte_offset,
                len,
                ty,
            });
        }
        let off = byte_offset as usize;
        let mut tmp = [0u8; 8];
        write_scalar(&mut tmp, ty, v);
        for (i, slot) in inner.data[off..off + size].iter().enumerate() {
            slot.store(tmp[i], Ordering::Relaxed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceId(0), DeviceSpec::test_tiny()))
    }

    #[test]
    fn alloc_and_accounting() {
        let d = device();
        let b = DeviceBuffer::alloc(d.clone(), 1024).unwrap();
        assert_eq!(b.len(), 1024);
        assert_eq!(d.allocated_bytes(), 1024);
        let b2 = b.clone();
        drop(b);
        assert_eq!(
            d.allocated_bytes(),
            1024,
            "clone keeps the allocation alive"
        );
        drop(b2);
        assert_eq!(d.allocated_bytes(), 0, "memory released on last drop");
    }

    #[test]
    fn alloc_exhaustion() {
        let d = device();
        let cap = d.spec().memory_bytes;
        let _b = DeviceBuffer::alloc(d.clone(), cap).unwrap();
        assert!(matches!(
            DeviceBuffer::alloc(d.clone(), 1),
            Err(Error::OutOfDeviceMemory { .. })
        ));
    }

    #[test]
    fn host_transfer_round_trip() {
        let d = device();
        let b = DeviceBuffer::alloc(d, 8).unwrap();
        b.write_bytes(2, &[1, 2, 3]).unwrap();
        let mut out = [0u8; 8];
        b.read_bytes(0, &mut out).unwrap();
        assert_eq!(out, [0, 0, 1, 2, 3, 0, 0, 0]);
    }

    #[test]
    fn transfer_bounds_checked() {
        let d = device();
        let b = DeviceBuffer::alloc(d, 4).unwrap();
        assert!(matches!(
            b.write_bytes(2, &[0; 3]),
            Err(Error::TransferOutOfRange { .. })
        ));
        let mut big = [0u8; 5];
        assert!(matches!(
            b.read_bytes(0, &mut big),
            Err(Error::TransferOutOfRange { .. })
        ));
    }

    #[test]
    fn buffer_table_load_store() {
        let d = device();
        let b = DeviceBuffer::alloc(d, 8).unwrap();
        let table = BufferTable {
            buffers: vec![b.clone()],
        };
        table
            .store(0, 4, ScalarType::Float, Value::F32(2.5))
            .unwrap();
        assert_eq!(
            table.load(0, 4, ScalarType::Float).unwrap(),
            Value::F32(2.5)
        );
        assert!(table.load(0, 5, ScalarType::Float).is_err());
        assert!(table.load(0, -1, ScalarType::Char).is_err());
        assert!(table.load(1, 0, ScalarType::Char).is_err());
    }

    #[test]
    fn empty_buffer() {
        let d = device();
        let b = DeviceBuffer::alloc(d, 0).unwrap();
        assert!(b.is_empty());
        b.write_bytes(0, &[]).unwrap();
    }
}
