//! The analytic cost model converting execution counters into simulated
//! time.
//!
//! The model captures the first-order effects the SkelCL paper's evaluation
//! depends on:
//!
//! * **compute**: every VM instruction costs `cycles_per_op` on one of
//!   `cores` scalar cores;
//! * **memory hierarchy**: global accesses cost an order of magnitude more
//!   cycles than local (scratchpad) accesses — this is what makes the
//!   local-memory Sobel kernels (NVIDIA SDK, SkelCL's MapOverlap) beat the
//!   AMD SDK kernel in Fig. 5;
//! * **bandwidth bound**: a kernel cannot move bytes faster than the global
//!   memory bandwidth;
//! * **toolchain**: CUDA-built kernels run ~1.39× faster than OpenCL-built
//!   ones, matching the paper's Fig. 4 observation (attributed to compiler
//!   maturity, citing Kong et al.);
//! * **transfers**: PCIe latency + bandwidth for host↔device copies.

use skelcl_kernel::vm::CostCounters;

use crate::device::DeviceSpec;

/// Which toolchain "built" the kernel (the paper's CUDA-vs-OpenCL axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Toolchain {
    /// OpenCL-style compilation (the default; SkelCL builds on OpenCL).
    #[default]
    OpenCl,
    /// CUDA-style compilation: same kernel, multiplied by the device's
    /// `cuda_toolchain_speedup`.
    Cuda,
}

/// Simulated duration of a kernel execution with the given aggregate
/// counters on `spec`, excluding the fixed launch overhead.
pub fn kernel_ns(spec: &DeviceSpec, counters: &CostCounters, toolchain: Toolchain) -> u64 {
    let compute_cycles = counters.ops as f64 * spec.cycles_per_op
        + counters.global_mem_ops() as f64 * spec.cycles_per_global_access
        + counters.local_mem_ops() as f64 * spec.cycles_per_local_access;
    let compute_s = compute_cycles / (spec.cores as f64 * spec.clock_hz as f64);
    let bandwidth_s = counters.global_bytes as f64 / spec.global_bandwidth;
    let mut seconds = compute_s.max(bandwidth_s);
    if toolchain == Toolchain::Cuda {
        seconds /= spec.cuda_toolchain_speedup;
    }
    (seconds * 1e9).ceil() as u64
}

/// Simulated duration of a kernel launch including the fixed overhead.
pub fn launch_ns(spec: &DeviceSpec, counters: &CostCounters, toolchain: Toolchain) -> u64 {
    spec.kernel_launch_overhead_ns + kernel_ns(spec, counters, toolchain)
}

/// Simulated duration of a host↔device transfer of `bytes`.
pub fn transfer_ns(spec: &DeviceSpec, bytes: usize) -> u64 {
    spec.transfer_latency_ns + (bytes as f64 / spec.transfer_bandwidth * 1e9).ceil() as u64
}

/// Simulated duration of a device↔device copy (via PCIe through the host,
/// as the paper describes for redistribution: download then upload).
pub fn device_to_device_ns(spec: &DeviceSpec, bytes: usize) -> u64 {
    2 * transfer_ns(spec, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::tesla_t10()
    }

    fn counters(ops: u64, g: u64, l: u64, bytes: u64) -> CostCounters {
        CostCounters {
            ops,
            global_loads: g,
            global_stores: 0,
            local_loads: l,
            local_stores: 0,
            barriers: 0,
            global_bytes: bytes,
            ops_saved: 0,
        }
    }

    #[test]
    fn compute_bound_kernel_scales_with_ops() {
        let s = spec();
        let t1 = kernel_ns(&s, &counters(1_000_000, 0, 0, 0), Toolchain::OpenCl);
        let t2 = kernel_ns(&s, &counters(2_000_000, 0, 0, 0), Toolchain::OpenCl);
        assert!(t2 >= 2 * t1 - 2, "t1={t1} t2={t2}");
    }

    #[test]
    fn global_accesses_cost_more_than_local() {
        let s = spec();
        let tg = kernel_ns(&s, &counters(0, 1_000_000, 0, 0), Toolchain::OpenCl);
        let tl = kernel_ns(&s, &counters(0, 0, 1_000_000, 0), Toolchain::OpenCl);
        assert!(
            tg as f64 / tl as f64 > 5.0,
            "global/local ratio too small: {tg}/{tl}"
        );
    }

    #[test]
    fn cuda_toolchain_is_faster() {
        let s = spec();
        let c = counters(10_000_000, 1_000_000, 0, 4_000_000);
        let ocl = kernel_ns(&s, &c, Toolchain::OpenCl);
        let cuda = kernel_ns(&s, &c, Toolchain::Cuda);
        let ratio = ocl as f64 / cuda as f64;
        assert!(
            (ratio - s.cuda_toolchain_speedup).abs() < 0.01,
            "ratio {ratio}"
        );
    }

    #[test]
    fn bandwidth_bound_kernel() {
        let s = spec();
        // Very few ops but lots of bytes: the bandwidth term dominates.
        let c = counters(10, 10, 0, 102_000_000_000);
        let t = kernel_ns(&s, &c, Toolchain::OpenCl);
        assert!(
            (t as f64 - 1e9).abs() / 1e9 < 0.01,
            "expected ~1s, got {t} ns"
        );
    }

    #[test]
    fn transfer_time_includes_latency() {
        let s = spec();
        assert_eq!(transfer_ns(&s, 0), s.transfer_latency_ns);
        let t = transfer_ns(&s, 5_300_000_000);
        assert!((t as i64 - (1_000_000_000 + s.transfer_latency_ns as i64)).abs() < 1_000);
        assert_eq!(device_to_device_ns(&s, 0), 2 * s.transfer_latency_ns);
    }

    #[test]
    fn launch_adds_fixed_overhead() {
        let s = spec();
        let c = counters(0, 0, 0, 0);
        assert_eq!(
            launch_ns(&s, &c, Toolchain::OpenCl),
            s.kernel_launch_overhead_ns
        );
    }

    #[test]
    fn empty_kernel_is_free_modulo_overhead() {
        let s = spec();
        assert_eq!(
            kernel_ns(&s, &CostCounters::default(), Toolchain::OpenCl),
            0
        );
    }
}
