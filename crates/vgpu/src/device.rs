//! Virtual device model: hardware parameters and per-device state.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::pool::WorkerPool;

/// Identifies a device within a [`crate::Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Static hardware parameters of a virtual device; inputs to the analytic
/// cost model (see [`crate::cost`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for listings.
    pub name: String,
    /// Number of scalar cores (streaming processors).
    pub cores: u32,
    /// Core clock in Hz.
    pub clock_hz: u64,
    /// Average cycles per executed VM instruction.
    pub cycles_per_op: f64,
    /// Effective amortised cycles per global-memory access (latency hidden
    /// by multithreading, as on real GPUs — far higher than local memory).
    pub cycles_per_global_access: f64,
    /// Effective cycles per local-memory (scratchpad) access.
    pub cycles_per_local_access: f64,
    /// Global memory bandwidth in bytes/second.
    pub global_bandwidth: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: usize,
    /// Local memory per work-group in bytes.
    pub local_memory_bytes: usize,
    /// Maximum work-items per work-group.
    pub max_work_group_size: usize,
    /// Fixed simulated overhead per kernel launch in nanoseconds.
    pub kernel_launch_overhead_ns: u64,
    /// Fixed simulated latency per host↔device transfer in nanoseconds
    /// (PCIe round trip + driver).
    pub transfer_latency_ns: u64,
    /// Host↔device transfer bandwidth in bytes/second (PCIe).
    pub transfer_bandwidth: f64,
    /// Speedup factor applied to kernels built with the CUDA toolchain
    /// relative to OpenCL. The paper observes CUDA ≈ 31% faster than
    /// OpenCL-generated code for the same kernel ([Kong et al. 2010]).
    pub cuda_toolchain_speedup: f64,
}

impl DeviceSpec {
    /// One GPU of the paper's NVIDIA Tesla S1070 system: 240 streaming
    /// processors at 1.44 GHz, 4 GB memory at 102 GB/s per GPU.
    ///
    /// Calibration notes: one VM instruction is weighted at 0.25 cycles
    /// because the stack machine executes ~4 bytecode ops per hardware
    /// instruction (pushes, pops and jumps are free in registers on the
    /// real chip). Global accesses cost 120 effective cycles — a ~500-cycle
    /// DRAM latency amortised ~4× by warp-level multithreading, which is
    /// what makes local-memory kernels win, as in the paper's Fig. 5.
    pub fn tesla_t10() -> Self {
        DeviceSpec {
            name: "Virtual Tesla T10 (S1070 node)".into(),
            cores: 240,
            clock_hz: 1_440_000_000,
            cycles_per_op: 0.25,
            cycles_per_global_access: 120.0,
            cycles_per_local_access: 1.0,
            global_bandwidth: 102.0e9,
            memory_bytes: 4 << 30,
            local_memory_bytes: 16 << 10,
            max_work_group_size: 512,
            kernel_launch_overhead_ns: 8_000,
            transfer_latency_ns: 12_000,
            transfer_bandwidth: 5.3e9,
            cuda_toolchain_speedup: 1.39,
        }
    }

    /// A copy of this spec with compute and memory throughput scaled by
    /// `factor` (clock, global bandwidth and transfer bandwidth; latencies
    /// and capacities untouched). `scaled(0.5)` models a device half as
    /// fast — the building block for skewed multi-GPU platforms.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite factor.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "spec scale factor must be positive and finite, got {factor}"
        );
        DeviceSpec {
            name: format!("{} x{factor}", self.name),
            clock_hz: (self.clock_hz as f64 * factor) as u64,
            global_bandwidth: self.global_bandwidth * factor,
            transfer_bandwidth: self.transfer_bandwidth * factor,
            ..self.clone()
        }
    }

    /// A deliberately tiny device for fast unit tests (few cores, small
    /// memory so capacity errors are easy to provoke).
    pub fn test_tiny() -> Self {
        DeviceSpec {
            name: "Test Tiny".into(),
            cores: 4,
            clock_hz: 1_000_000_000,
            cycles_per_op: 1.0,
            cycles_per_global_access: 20.0,
            cycles_per_local_access: 2.0,
            global_bandwidth: 10.0e9,
            memory_bytes: 1 << 20,
            local_memory_bytes: 4 << 10,
            max_work_group_size: 256,
            kernel_launch_overhead_ns: 1_000,
            transfer_latency_ns: 1_000,
            transfer_bandwidth: 1.0e9,
            cuda_toolchain_speedup: 1.39,
        }
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::tesla_t10()
    }
}

/// Host-side execution statistics of one device (or a whole platform when
/// aggregated): how launches were dispatched and what they cost in OS
/// threads. The `interp` benchmark reads these to prove the pooled engine
/// spawns zero threads per launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total kernel launches executed.
    pub launches: u64,
    /// Launches dispatched to the persistent worker pool
    /// ([`crate::ExecStrategy::Fast`]).
    pub pooled_launches: u64,
    /// Launches run by the legacy per-launch-spawn engine
    /// ([`crate::ExecStrategy::Lockstep`]).
    pub legacy_launches: u64,
    /// OS threads spawned *per launch* (legacy engine only; the pooled
    /// engine reports 0 here by construction).
    pub per_launch_thread_spawns: u64,
    /// Persistent pool threads currently alive.
    pub pool_threads: u64,
    /// Total work-groups executed by the persistent pool (all pooled
    /// launches).
    pub pool_groups_executed: u64,
    /// Most work-groups any one pool worker executed in the last pooled
    /// launch (steal-cursor telemetry).
    pub last_steal_max_groups: u64,
    /// Fewest work-groups any one pool worker executed in the last pooled
    /// launch. `max == min` means the atomic steal cursor dealt groups
    /// perfectly evenly; a zero `min` with a nonzero `max` means a worker
    /// starved.
    pub last_steal_min_groups: u64,
}

impl ExecStats {
    /// Adds another device's stats into this one (platform aggregation).
    /// Counters sum; the last-launch steal extrema combine as the widest
    /// observed spread (max of maxes, min of mins over devices that ran
    /// pooled work).
    pub fn merge(&mut self, other: &ExecStats) {
        self.last_steal_min_groups = if self.pool_groups_executed == 0 {
            other.last_steal_min_groups
        } else if other.pool_groups_executed == 0 {
            self.last_steal_min_groups
        } else {
            self.last_steal_min_groups.min(other.last_steal_min_groups)
        };
        self.last_steal_max_groups = self.last_steal_max_groups.max(other.last_steal_max_groups);
        self.launches += other.launches;
        self.pooled_launches += other.pooled_launches;
        self.legacy_launches += other.legacy_launches;
        self.per_launch_thread_spawns += other.per_launch_thread_spawns;
        self.pool_threads += other.pool_threads;
        self.pool_groups_executed += other.pool_groups_executed;
    }

    /// Steal balance of the last pooled launch: `min/max` groups per
    /// worker (1.0 = perfectly even; 0.0 = a worker starved; 0.0 also when
    /// no pooled launch ran).
    pub fn steal_balance(&self) -> f64 {
        if self.last_steal_max_groups == 0 {
            0.0
        } else {
            self.last_steal_min_groups as f64 / self.last_steal_max_groups as f64
        }
    }
}

/// A virtual compute device: spec plus mutable state (memory accounting,
/// the simulated timeline, and the persistent execution worker pool).
#[derive(Debug)]
pub struct Device {
    id: DeviceId,
    spec: DeviceSpec,
    allocated: AtomicUsize,
    /// High-water mark of `allocated` since creation (or the last
    /// [`Device::reset_peak`]). Lets streaming harnesses assert peak
    /// residency stayed within a budget.
    peak_allocated: AtomicUsize,
    /// The device timeline in simulated nanoseconds. Commands enqueued to
    /// this device execute in order at this clock.
    clock_ns: AtomicU64,
    /// Persistent worker pool; created on the first pooled launch, joined
    /// on drop.
    pool: OnceLock<WorkerPool>,
    launches: AtomicU64,
    pooled_launches: AtomicU64,
    legacy_launches: AtomicU64,
    legacy_thread_spawns: AtomicU64,
    pool_groups: AtomicU64,
    steal_max: AtomicU64,
    steal_min: AtomicU64,
}

impl Device {
    /// Creates a device.
    pub fn new(id: DeviceId, spec: DeviceSpec) -> Self {
        Device {
            id,
            spec,
            allocated: AtomicUsize::new(0),
            peak_allocated: AtomicUsize::new(0),
            clock_ns: AtomicU64::new(0),
            pool: OnceLock::new(),
            launches: AtomicU64::new(0),
            pooled_launches: AtomicU64::new(0),
            legacy_launches: AtomicU64::new(0),
            legacy_thread_spawns: AtomicU64::new(0),
            pool_groups: AtomicU64::new(0),
            steal_max: AtomicU64::new(0),
            steal_min: AtomicU64::new(0),
        }
    }

    /// The device's id within its platform.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device's hardware parameters.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Bytes currently allocated on this device.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// The highest concurrent allocation observed since creation or the
    /// last [`Device::reset_peak`].
    pub fn peak_allocated_bytes(&self) -> usize {
        self.peak_allocated.load(Ordering::Relaxed)
    }

    /// Resets the allocation high-water mark to the current allocation.
    pub fn reset_peak(&self) {
        self.peak_allocated
            .store(self.allocated_bytes(), Ordering::Relaxed);
    }

    /// Bytes still available for allocation. Saturating: concurrent
    /// reservations may momentarily push the observed allocation past
    /// capacity, which reads as 0 available rather than underflowing.
    pub fn available_bytes(&self) -> usize {
        self.spec
            .memory_bytes
            .saturating_sub(self.allocated_bytes())
    }

    /// Reserves `bytes` of device memory.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::OutOfDeviceMemory`] when capacity is
    /// exhausted.
    pub(crate) fn reserve(&self, bytes: usize) -> crate::Result<()> {
        let mut current = self.allocated.load(Ordering::Relaxed);
        loop {
            let new = current.saturating_add(bytes);
            if new > self.spec.memory_bytes {
                return Err(crate::Error::OutOfDeviceMemory {
                    requested: bytes,
                    available: self.spec.memory_bytes.saturating_sub(current),
                });
            }
            match self.allocated.compare_exchange_weak(
                current,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak_allocated.fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Releases `bytes` of device memory (called by buffer drops).
    /// Saturating: releasing more than is allocated clamps to 0 instead of
    /// wrapping into a multi-exabyte phantom allocation.
    pub(crate) fn release(&self, bytes: usize) {
        let prev = self
            .allocated
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(bytes))
            })
            .expect("fetch_update closure never returns None");
        debug_assert!(
            prev >= bytes,
            "device {} released {bytes} bytes with only {prev} allocated",
            self.id
        );
    }

    /// The persistent execution worker pool, created with `threads` workers
    /// on first use (later calls reuse the existing pool regardless of
    /// `threads`).
    pub(crate) fn worker_pool(&self, threads: usize) -> &WorkerPool {
        self.pool
            .get_or_init(|| WorkerPool::new(self.id.0, threads))
    }

    /// Records one launch dispatch for [`Device::exec_stats`].
    pub(crate) fn note_launch(&self, pooled: bool, spawned_threads: usize) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        if pooled {
            self.pooled_launches.fetch_add(1, Ordering::Relaxed);
        } else {
            self.legacy_launches.fetch_add(1, Ordering::Relaxed);
            self.legacy_thread_spawns
                .fetch_add(spawned_threads as u64, Ordering::Relaxed);
        }
    }

    /// Records the per-worker group counts of a finished pooled launch
    /// (steal-cursor telemetry for [`Device::exec_stats`]).
    pub(crate) fn note_pool_groups(&self, per_worker: &[u64]) {
        if per_worker.is_empty() {
            return;
        }
        let total: u64 = per_worker.iter().sum();
        let max = per_worker.iter().copied().max().unwrap_or(0);
        let min = per_worker.iter().copied().min().unwrap_or(0);
        self.pool_groups.fetch_add(total, Ordering::Relaxed);
        self.steal_max.store(max, Ordering::Relaxed);
        self.steal_min.store(min, Ordering::Relaxed);
    }

    /// A snapshot of this device's host-side execution statistics.
    pub fn exec_stats(&self) -> ExecStats {
        ExecStats {
            launches: self.launches.load(Ordering::Relaxed),
            pooled_launches: self.pooled_launches.load(Ordering::Relaxed),
            legacy_launches: self.legacy_launches.load(Ordering::Relaxed),
            per_launch_thread_spawns: self.legacy_thread_spawns.load(Ordering::Relaxed),
            pool_threads: self.pool.get().map_or(0, |p| p.threads() as u64),
            pool_groups_executed: self.pool_groups.load(Ordering::Relaxed),
            last_steal_max_groups: self.steal_max.load(Ordering::Relaxed),
            last_steal_min_groups: self.steal_min.load(Ordering::Relaxed),
        }
    }

    /// Current simulated time of this device's timeline in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock_ns.load(Ordering::Relaxed)
    }

    /// Advances the timeline by `duration_ns`, returning the command's
    /// `(start, end)` timestamps.
    pub(crate) fn advance(&self, duration_ns: u64) -> (u64, u64) {
        let start = self.clock_ns.fetch_add(duration_ns, Ordering::Relaxed);
        (start, start + duration_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tesla_preset_matches_paper_hardware() {
        let s = DeviceSpec::tesla_t10();
        assert_eq!(s.cores, 240);
        assert_eq!(s.clock_hz, 1_440_000_000);
        assert_eq!(s.memory_bytes, 4 << 30);
        assert!((s.global_bandwidth - 102.0e9).abs() < 1.0);
    }

    #[test]
    fn memory_accounting() {
        let d = Device::new(DeviceId(0), DeviceSpec::test_tiny());
        assert_eq!(d.allocated_bytes(), 0);
        d.reserve(1000).unwrap();
        assert_eq!(d.allocated_bytes(), 1000);
        d.reserve(d.available_bytes()).unwrap();
        assert!(d.reserve(1).is_err());
        d.release(1000);
        d.reserve(500).unwrap();
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "released"))]
    fn over_release_saturates_instead_of_wrapping() {
        let d = Device::new(DeviceId(0), DeviceSpec::test_tiny());
        d.reserve(100).unwrap();
        // Releasing more than allocated is a bookkeeping bug: debug builds
        // assert, release builds clamp to zero instead of wrapping the
        // counter into a phantom multi-exabyte allocation.
        d.release(200);
        assert_eq!(d.allocated_bytes(), 0);
        assert_eq!(d.available_bytes(), d.spec().memory_bytes);
        // Accounting still works afterwards.
        d.reserve(d.spec().memory_bytes).unwrap();
        assert!(d.reserve(1).is_err());
    }

    #[test]
    fn out_of_memory_error_reports_saturated_available() {
        let d = Device::new(DeviceId(0), DeviceSpec::test_tiny());
        d.reserve(d.spec().memory_bytes).unwrap();
        match d.reserve(usize::MAX) {
            Err(crate::Error::OutOfDeviceMemory {
                requested,
                available,
            }) => {
                assert_eq!(requested, usize::MAX);
                assert_eq!(available, 0);
            }
            other => panic!("expected OutOfDeviceMemory, got {other:?}"),
        }
    }

    #[test]
    fn exec_stats_start_empty() {
        let d = Device::new(DeviceId(0), DeviceSpec::test_tiny());
        assert_eq!(d.exec_stats(), ExecStats::default());
        d.note_launch(true, 0);
        d.note_launch(false, 4);
        let s = d.exec_stats();
        assert_eq!(s.launches, 2);
        assert_eq!(s.pooled_launches, 1);
        assert_eq!(s.legacy_launches, 1);
        assert_eq!(s.per_launch_thread_spawns, 4);
        assert_eq!(s.pool_threads, 0); // no pool created yet
    }

    #[test]
    fn timeline_advances_monotonically() {
        let d = Device::new(DeviceId(0), DeviceSpec::test_tiny());
        let (s1, e1) = d.advance(100);
        let (s2, e2) = d.advance(50);
        assert_eq!((s1, e1), (0, 100));
        assert_eq!((s2, e2), (100, 150));
        assert_eq!(d.now_ns(), 150);
    }

    #[test]
    fn device_id_display() {
        assert_eq!(DeviceId(2).to_string(), "gpu2");
    }
}
