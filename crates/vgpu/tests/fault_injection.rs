//! Injected driver-crash faults: a kernel that panics on the pool's worker
//! threads must surface as [`Error::DeviceLost`], be reported through the
//! queue-telemetry observer, and leave the persistent [`WorkerPool`] and
//! queue fully usable for subsequent launches.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use skelcl_kernel::compile;
use skelcl_kernel::program::Program;
use vgpu::{
    CommandClass, DeviceSpec, Error, ExecStrategy, FaultInjection, KernelArg, LaunchConfig,
    NdRange, Platform, QueueNotice, QueuePhase,
};

fn ok_program() -> Program {
    compile(
        "fill.cl",
        "__kernel void fill(__global int* out){ out[get_global_id(0)] = (int)get_global_id(0) * 3; }",
    )
    .unwrap()
}

fn config(fault: Option<FaultInjection>) -> LaunchConfig {
    LaunchConfig {
        strategy: ExecStrategy::Fast,
        fault_injection: fault,
        ..LaunchConfig::default()
    }
}

#[test]
fn injected_panic_surfaces_as_device_lost_and_pool_survives() {
    let program = ok_program();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let out = queue.create_buffer(64 * 4).unwrap();
    let args = [KernelArg::Buffer(out.clone())];
    let range = NdRange::linear(64, 32);

    // The injected panic happens on a pool worker thread; the pool's
    // catch_unwind must convert it to DeviceLost, not abort the process.
    let err = queue
        .launch_kernel(
            &program,
            "fill",
            &args,
            range,
            &config(Some(FaultInjection::PanicInKernel)),
        )
        .unwrap_err();
    assert!(
        matches!(err, Error::DeviceLost),
        "injected panic must surface as DeviceLost, got: {err}"
    );

    // Crash again: recovery is not a one-shot.
    let err = queue
        .launch_kernel(
            &program,
            "fill",
            &args,
            range,
            &config(Some(FaultInjection::PanicInKernel)),
        )
        .unwrap_err();
    assert!(matches!(err, Error::DeviceLost));

    // The same persistent pool then executes clean launches correctly.
    for _ in 0..3 {
        queue
            .launch_kernel(&program, "fill", &args, range, &config(None))
            .unwrap();
    }
    let mut bytes = vec![0u8; 64 * 4];
    queue.enqueue_read(&out, 0, &mut bytes).unwrap();
    for i in 0..64usize {
        let v = i32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
        assert_eq!(v, i as i32 * 3);
    }

    // The pool never restarted: still pooled launches, no per-launch spawns.
    let stats = platform.exec_stats();
    assert_eq!(stats.launches, 5);
    assert_eq!(stats.per_launch_thread_spawns, 0);
    assert!(stats.pool_threads >= 1);
    assert!(
        stats.pool_groups_executed >= 3,
        "clean launches executed groups via the pool"
    );
}

#[test]
fn queue_observer_reports_device_lost() {
    let program = ok_program();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);

    let notices: Arc<Mutex<Vec<QueueNotice>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&notices);
    assert!(queue.set_observer(Arc::new(move |n: &QueueNotice| {
        sink.lock().unwrap().push(*n);
    })));
    // Only the first observer wins (write-once installation).
    let ignored = Arc::new(AtomicUsize::new(0));
    let ignored_sink = Arc::clone(&ignored);
    assert!(!queue.set_observer(Arc::new(move |_n: &QueueNotice| {
        ignored_sink.fetch_add(1, Ordering::Relaxed);
    })));

    let out = queue.create_buffer(64 * 4).unwrap();
    let args = [KernelArg::Buffer(out)];
    let range = NdRange::linear(64, 32);
    let err = queue
        .launch_kernel(
            &program,
            "fill",
            &args,
            range,
            &config(Some(FaultInjection::PanicInKernel)),
        )
        .unwrap_err();
    assert!(matches!(err, Error::DeviceLost));
    queue
        .launch_kernel(&program, "fill", &args, range, &config(None))
        .unwrap();

    let notices = notices.lock().unwrap();
    assert_eq!(ignored.load(Ordering::Relaxed), 0);

    // Buffer creation emits no notices; the two kernels each produced
    // Enqueued → Started → Finished on the kernel class.
    let kernel_finishes: Vec<&QueueNotice> = notices
        .iter()
        .filter(|n| n.phase == QueuePhase::Finished && n.class == CommandClass::Kernel)
        .collect();
    assert_eq!(kernel_finishes.len(), 2);
    assert!(kernel_finishes[0].failed);
    assert!(kernel_finishes[0].device_lost);
    assert!(!kernel_finishes[1].failed);
    assert!(!kernel_finishes[1].device_lost);

    // Depth accounting balanced out: the last Finished saw depth zero.
    assert_eq!(notices.last().unwrap().depth, 0);
    assert_eq!(queue.depth(), 0);

    // Phases arrive in order for each command.
    for n in notices.iter() {
        assert_eq!(n.device, 0);
    }
    let phases: Vec<QueuePhase> = notices
        .iter()
        .filter(|n| n.class == CommandClass::Kernel)
        .map(|n| n.phase)
        .collect();
    assert_eq!(
        phases,
        vec![
            QueuePhase::Enqueued,
            QueuePhase::Started,
            QueuePhase::Finished,
            QueuePhase::Enqueued,
            QueuePhase::Started,
            QueuePhase::Finished,
        ]
    );
}
