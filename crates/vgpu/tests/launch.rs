//! Integration tests: compiling SkelCL C kernels and launching them on the
//! virtual platform.

use skelcl_kernel::compile;
use skelcl_kernel::value::Value;
use vgpu::{CommandKind, DeviceSpec, Error, KernelArg, LaunchConfig, NdRange, Platform, Toolchain};

fn f32s(vals: &[f32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn to_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn to_i32s(bytes: &[u8]) -> Vec<i32> {
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[test]
fn multi_group_map_kernel() {
    let program = compile(
        "map.cl",
        "__kernel void double_it(__global const float* in, __global float* out, int n) {
             int i = (int)get_global_id(0);
             if (i < n) out[i] = in[i] * 2.0f;
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);

    let n = 10_000usize;
    let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let a = queue.create_buffer(n * 4).unwrap();
    let b = queue.create_buffer(n * 4).unwrap();
    queue.enqueue_write(&a, 0, &f32s(&input)).unwrap();

    let ev = queue
        .launch_kernel(
            &program,
            "double_it",
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(b.clone()),
                KernelArg::Scalar(Value::I32(n as i32)),
            ],
            NdRange::linear_default(n),
            &LaunchConfig::default(),
        )
        .unwrap();

    let mut out = vec![0u8; n * 4];
    queue.enqueue_read(&b, 0, &mut out).unwrap();
    let out = to_f32s(&out);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i as f32 * 2.0, "index {i}");
    }
    let c = ev.counters().unwrap();
    assert_eq!(c.global_loads, n as u64);
    assert_eq!(c.global_stores, n as u64);
}

#[test]
fn barrier_across_many_groups_parallel() {
    // Per-group reduction into one partial sum per group, with local
    // memory and barriers — exercises lockstep rounds under the
    // multi-threaded group scheduler.
    let program = compile(
        "reduce.cl",
        "__kernel void partial_sum(__global const int* in, __global int* out, int n) {
             __local int scratch[64];
             int lid = (int)get_local_id(0);
             int gid = (int)get_global_id(0);
             scratch[lid] = gid < n ? in[gid] : 0;
             barrier(CLK_LOCAL_MEM_FENCE);
             for (int stride = 32; stride > 0; stride >>= 1) {
                 if (lid < stride) scratch[lid] += scratch[lid + stride];
                 barrier(CLK_LOCAL_MEM_FENCE);
             }
             if (lid == 0) out[get_group_id(0)] = scratch[0];
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);

    let n = 64 * 37;
    let input: Vec<i32> = (0..n as i32).collect();
    let a = queue.create_buffer(n * 4).unwrap();
    let out = queue.create_buffer(37 * 4).unwrap();
    let bytes: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
    queue.enqueue_write(&a, 0, &bytes).unwrap();

    queue
        .launch_kernel(
            &program,
            "partial_sum",
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(out.clone()),
                KernelArg::Scalar(Value::I32(n as i32)),
            ],
            NdRange::linear(n, 64),
            &LaunchConfig::default(),
        )
        .unwrap();

    let mut result = vec![0u8; 37 * 4];
    queue.enqueue_read(&out, 0, &mut result).unwrap();
    let partials = to_i32s(&result);
    let total: i32 = partials.iter().sum();
    assert_eq!(total, (0..n as i32).sum::<i32>());
    // Each group's partial is the sum of its 64 consecutive values.
    assert_eq!(partials[0], (0..64).sum::<i32>());
    assert_eq!(partials[36], (64 * 36..64 * 37).sum::<i32>());
}

#[test]
fn dynamic_local_memory_argument() {
    let program = compile(
        "dyn.cl",
        "__kernel void shift(__global const int* in, __global int* out, __local int* tile) {
             int lid = (int)get_local_id(0);
             int n = (int)get_local_size(0);
             tile[lid] = in[get_global_id(0)];
             barrier(CLK_LOCAL_MEM_FENCE);
             out[get_global_id(0)] = tile[(lid + 1) % n];
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let input: Vec<i32> = (0..8).collect();
    let bytes: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
    let a = queue.create_buffer(32).unwrap();
    let b = queue.create_buffer(32).unwrap();
    queue.enqueue_write(&a, 0, &bytes).unwrap();
    queue
        .launch_kernel(
            &program,
            "shift",
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(b.clone()),
                KernelArg::Local(8 * 4),
            ],
            NdRange::linear(8, 8),
            &LaunchConfig::default(),
        )
        .unwrap();
    let mut out = vec![0u8; 32];
    queue.enqueue_read(&b, 0, &mut out).unwrap();
    assert_eq!(to_i32s(&out), vec![1, 2, 3, 4, 5, 6, 7, 0]);
}

#[test]
fn local_memory_limit_enforced() {
    let program = compile(
        "big.cl",
        "__kernel void big(__global int* out, __local int* tile) { out[0] = 0; }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let out = queue.create_buffer(4).unwrap();
    let err = queue
        .launch_kernel(
            &program,
            "big",
            &[KernelArg::Buffer(out), KernelArg::Local(1 << 20)],
            NdRange::linear(1, 1),
            &LaunchConfig::default(),
        )
        .unwrap_err();
    assert!(matches!(err, Error::LocalMemoryExceeded { .. }), "{err}");
}

#[test]
fn launch_faults_are_reported_with_location() {
    let program = compile(
        "oob.cl",
        "__kernel void oob(__global int* out, int n) {
             int i = (int)get_global_id(0);
             out[i + n] = i; // off the end for the last items
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let out = queue.create_buffer(8 * 4).unwrap();
    let err = queue
        .launch_kernel(
            &program,
            "oob",
            &[KernelArg::Buffer(out), KernelArg::Scalar(Value::I32(4))],
            NdRange::linear(8, 8),
            &LaunchConfig::default(),
        )
        .unwrap_err();
    match err {
        Error::Launch { kernel, error, .. } => {
            assert_eq!(kernel, "oob");
            assert!(error.to_string().contains("out-of-bounds"));
        }
        other => panic!("expected launch fault, got {other}"),
    }
}

#[test]
fn barrier_divergence_detected() {
    let program = compile(
        "div.cl",
        "__kernel void diverge(__global int* out) {
             if (get_local_id(0) < 2) barrier(CLK_LOCAL_MEM_FENCE);
             out[get_global_id(0)] = 1;
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let out = queue.create_buffer(4 * 4).unwrap();
    let err = queue
        .launch_kernel(
            &program,
            "diverge",
            &[KernelArg::Buffer(out)],
            NdRange::linear(4, 4),
            &LaunchConfig::default(),
        )
        .unwrap_err();
    assert!(matches!(err, Error::BarrierDivergence { .. }), "{err}");
}

#[test]
fn argument_validation() {
    let program = compile(
        "args.cl",
        "__kernel void k(__global int* buf, int n) { buf[0] = n; }",
    )
    .unwrap();
    let platform = Platform::new(2, DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let buf = queue.create_buffer(4).unwrap();

    // Wrong count.
    assert!(matches!(
        queue.launch_kernel(
            &program,
            "k",
            &[KernelArg::Buffer(buf.clone())],
            NdRange::linear(1, 1),
            &LaunchConfig::default()
        ),
        Err(Error::InvalidKernelArg { .. })
    ));
    // Wrong kind.
    assert!(matches!(
        queue.launch_kernel(
            &program,
            "k",
            &[
                KernelArg::Scalar(Value::I32(1)),
                KernelArg::Scalar(Value::I32(1))
            ],
            NdRange::linear(1, 1),
            &LaunchConfig::default()
        ),
        Err(Error::InvalidKernelArg { .. })
    ));
    // Unknown kernel.
    assert!(matches!(
        queue.launch_kernel(
            &program,
            "nope",
            &[],
            NdRange::linear(1, 1),
            &LaunchConfig::default()
        ),
        Err(Error::UnknownKernel { .. })
    ));
    // Buffer from the wrong device.
    let other_queue = platform.queue(1);
    let foreign = other_queue.create_buffer(4).unwrap();
    assert!(matches!(
        queue.launch_kernel(
            &program,
            "k",
            &[KernelArg::Buffer(foreign), KernelArg::Scalar(Value::I32(1))],
            NdRange::linear(1, 1),
            &LaunchConfig::default()
        ),
        Err(Error::WrongDevice { .. })
    ));
}

#[test]
fn scalar_arguments_are_converted() {
    let program = compile(
        "conv.cl",
        "__kernel void k(__global float* out, float x) { out[0] = x; }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let out = queue.create_buffer(4).unwrap();
    // Pass an int where a float is declared: converted like clSetKernelArg
    // would with an explicit host-side cast.
    queue
        .launch_kernel(
            &program,
            "k",
            &[
                KernelArg::Buffer(out.clone()),
                KernelArg::Scalar(Value::I32(7)),
            ],
            NdRange::linear(1, 1),
            &LaunchConfig::default(),
        )
        .unwrap();
    let mut bytes = [0u8; 4];
    queue.enqueue_read(&out, 0, &mut bytes).unwrap();
    assert_eq!(f32::from_le_bytes(bytes), 7.0);
}

#[test]
fn profiling_timeline_is_ordered_and_additive() {
    let program = compile(
        "t.cl",
        "__kernel void busy(__global float* data, int n) {
             int i = (int)get_global_id(0);
             float acc = 0.0f;
             for (int k = 0; k < 100; ++k) acc += (float)k * 0.5f;
             if (i < n) data[i] = acc;
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let buf = queue.create_buffer(1024 * 4).unwrap();
    let w = queue.enqueue_write(&buf, 0, &vec![0u8; 4096]).unwrap();
    let k = queue
        .launch_kernel(
            &program,
            "busy",
            &[
                KernelArg::Buffer(buf.clone()),
                KernelArg::Scalar(Value::I32(1024)),
            ],
            NdRange::linear_default(1024),
            &LaunchConfig::default(),
        )
        .unwrap();
    let mut out = vec![0u8; 4096];
    let r = queue.enqueue_read(&buf, 0, &mut out).unwrap();

    // In-order queue: write fully precedes kernel precedes read.
    assert!(w.ended_ns() <= k.queued_ns());
    assert!(k.ended_ns() <= r.queued_ns());
    assert!(k.duration().as_nanos() > 0);
    assert_eq!(
        k.kind(),
        &CommandKind::Kernel {
            name: "busy".into()
        }
    );
    assert_eq!(platform.device(0).now_ns(), r.ended_ns());
}

#[test]
fn cuda_toolchain_runs_faster_in_simulated_time() {
    let src = "__kernel void work(__global float* data, int n) {
         int i = (int)get_global_id(0);
         float acc = 0.0f;
         for (int k = 0; k < 200; ++k) acc = acc * 1.0001f + (float)k;
         if (i < n) data[i] = acc;
     }";
    let program = compile("w.cl", src).unwrap();
    let run = |config: &LaunchConfig| {
        let platform = Platform::single(DeviceSpec::tesla_t10());
        let queue = platform.queue(0);
        let buf = queue.create_buffer(4096 * 4).unwrap();
        queue
            .launch_kernel(
                &program,
                "work",
                &[KernelArg::Buffer(buf), KernelArg::Scalar(Value::I32(4096))],
                NdRange::linear_default(4096),
                config,
            )
            .unwrap()
            .duration()
            .as_nanos() as f64
    };
    let ocl = run(&LaunchConfig::default());
    let cuda = run(&LaunchConfig::cuda());
    let speedup = ocl / cuda;
    assert!(
        speedup > 1.2 && speedup < 1.6,
        "expected ~1.39x CUDA speedup, got {speedup:.3}"
    );
    assert_eq!(LaunchConfig::cuda().toolchain, Toolchain::Cuda);
}

#[test]
fn two_dimensional_launch() {
    let program = compile(
        "grid.cl",
        "__kernel void coords(__global int* out, int w, int h) {
             int x = (int)get_global_id(0);
             int y = (int)get_global_id(1);
             if (x < w && y < h) out[y * w + x] = y * 100 + x;
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let (w, h) = (20usize, 10usize);
    let out = queue.create_buffer(w * h * 4).unwrap();
    queue
        .launch_kernel(
            &program,
            "coords",
            &[
                KernelArg::Buffer(out.clone()),
                KernelArg::Scalar(Value::I32(w as i32)),
                KernelArg::Scalar(Value::I32(h as i32)),
            ],
            NdRange::grid_default([w, h]),
            &LaunchConfig::default(),
        )
        .unwrap();
    let mut bytes = vec![0u8; w * h * 4];
    queue.enqueue_read(&out, 0, &mut bytes).unwrap();
    let vals = to_i32s(&bytes);
    assert_eq!(vals[0], 0);
    assert_eq!(vals[w * 3 + 7], 307);
    assert_eq!(vals[w * 9 + 19], 919);
}

#[test]
fn on_device_copy() {
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let a = queue.create_buffer(16).unwrap();
    let b = queue.create_buffer(16).unwrap();
    queue
        .enqueue_write(&a, 0, &f32s(&[1.0, 2.0, 3.0, 4.0]))
        .unwrap();
    let ev = queue.enqueue_copy(&a, 4, &b, 8, 8).unwrap();
    assert_eq!(ev.kind(), &CommandKind::CopyBuffer { bytes: 8 });
    let mut out = vec![0u8; 16];
    queue.enqueue_read(&b, 0, &mut out).unwrap();
    assert_eq!(to_f32s(&out), vec![0.0, 0.0, 2.0, 3.0]);
}

#[test]
fn cross_device_copy_stages_through_host() {
    let platform = Platform::new(2, DeviceSpec::test_tiny());
    let (q0, q1) = (platform.queue(0), platform.queue(1));
    let a = q0.create_buffer(16).unwrap();
    let b = q1.create_buffer(16).unwrap();
    q0.enqueue_write(&a, 0, &f32s(&[1.0, 2.0, 3.0, 4.0]))
        .unwrap();
    let t0 = platform.device(0).now_ns();
    let t1 = platform.device(1).now_ns();
    let (read, write) = q0.enqueue_copy_to(&a, 4, &q1, &b, 8, 8).unwrap();
    assert_eq!(read.kind(), &CommandKind::ReadBuffer { bytes: 8 });
    assert_eq!(write.kind(), &CommandKind::WriteBuffer { bytes: 8 });
    assert_eq!(read.device(), platform.device(0).id());
    assert_eq!(write.device(), platform.device(1).id());
    // Download + upload together cost the paper's device↔device transfer.
    let spent = (platform.device(0).now_ns() - t0) + (platform.device(1).now_ns() - t1);
    assert_eq!(
        spent,
        vgpu::cost::device_to_device_ns(platform.device(0).spec(), 8)
    );
    let mut out = vec![0u8; 16];
    q1.enqueue_read(&b, 0, &mut out).unwrap();
    assert_eq!(to_f32s(&out), vec![0.0, 0.0, 2.0, 3.0]);
    // Wrong-device buffers are rejected on both sides.
    assert!(matches!(
        q0.enqueue_copy_to(&b, 0, &q1, &a, 0, 4),
        Err(Error::WrongDevice { .. })
    ));
}

#[test]
fn heterogeneous_platform_and_scaled_specs() {
    let platform = Platform::tesla_s1070_slow_fast();
    assert_eq!(platform.device_count(), 4);
    let slow = platform.device(0).spec();
    let fast = platform.device(3).spec();
    assert_eq!(slow.clock_hz * 2, fast.clock_hz);
    assert!((slow.global_bandwidth * 2.0 - fast.global_bandwidth).abs() < 1.0);
    assert_eq!(slow.cores, fast.cores);
    assert_eq!(slow.transfer_latency_ns, fast.transfer_latency_ns);
    // The same bytes take twice as long to move on the scaled-down device.
    assert!(
        vgpu::cost::transfer_ns(slow, 1 << 20) - slow.transfer_latency_ns
            >= 2 * (vgpu::cost::transfer_ns(fast, 1 << 20) - fast.transfer_latency_ns) - 2
    );
}
