//! Stress and concurrency tests of the execution engine: many work-groups
//! scheduled over host threads must behave deterministically for disjoint
//! writes, and the simulated timeline must stay consistent under load.

use skelcl_kernel::compile;
use skelcl_kernel::value::Value;
use vgpu::{DeviceSpec, KernelArg, LaunchConfig, NdRange, Platform};

#[test]
fn thousands_of_groups_write_disjoint_cells_deterministically() {
    let program = compile(
        "fill.cl",
        "__kernel void fill(__global int* out, int n) {
             int i = (int)get_global_id(0);
             if (i < n) out[i] = i * 7 - 3;
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let n = 256 * 1024; // 1024 work-groups
    let buf = queue.create_buffer(n * 4).unwrap();
    queue
        .launch_kernel(
            &program,
            "fill",
            &[
                KernelArg::Buffer(buf.clone()),
                KernelArg::Scalar(Value::I32(n as i32)),
            ],
            NdRange::linear(n, 256),
            &LaunchConfig::default(),
        )
        .unwrap();
    let mut bytes = vec![0u8; n * 4];
    queue.enqueue_read(&buf, 0, &mut bytes).unwrap();
    for (i, c) in bytes.chunks_exact(4).enumerate() {
        assert_eq!(
            i32::from_le_bytes(c.try_into().unwrap()),
            i as i32 * 7 - 3,
            "cell {i}"
        );
    }
}

#[test]
fn repeated_launches_give_identical_counters() {
    // The cost counters must be deterministic regardless of host-thread
    // scheduling (they are per-item and summed).
    let program = compile(
        "work.cl",
        "__kernel void work(__global float* data, int n) {
             int i = (int)get_global_id(0);
             if (i < n) {
                 float acc = (float)i;
                 for (int k = 0; k < 50; ++k) acc = acc * 0.5f + 1.0f;
                 data[i] = acc;
             }
         }",
    )
    .unwrap();
    let run = |threads: usize| {
        let platform = Platform::single(DeviceSpec::tesla_t10());
        let queue = platform.queue(0);
        let buf = queue.create_buffer(10_000 * 4).unwrap();
        let config = LaunchConfig {
            host_threads: Some(threads),
            ..Default::default()
        };
        let ev = queue
            .launch_kernel(
                &program,
                "work",
                &[
                    KernelArg::Buffer(buf),
                    KernelArg::Scalar(Value::I32(10_000)),
                ],
                NdRange::linear_default(10_000),
                &config,
            )
            .unwrap();
        *ev.counters().unwrap()
    };
    let single = run(1);
    let parallel = run(8);
    assert_eq!(single, parallel, "counters independent of host parallelism");
    assert!(single.ops > 10_000 * 50);
}

#[test]
fn concurrent_queues_on_separate_devices() {
    // Four devices driven by four host threads concurrently; each timeline
    // advances independently and all results are correct.
    let program = compile(
        "id.cl",
        "__kernel void ident(__global int* out, int base, int n) {
             int i = (int)get_global_id(0);
             if (i < n) out[i] = base + i;
         }",
    )
    .unwrap();
    let platform = Platform::new(4, DeviceSpec::tesla_t10());
    std::thread::scope(|scope| {
        for d in 0..4usize {
            let platform = &platform;
            let program = &program;
            scope.spawn(move || {
                let queue = platform.queue(d);
                let n = 5000;
                let buf = queue.create_buffer(n * 4).unwrap();
                for _ in 0..3 {
                    queue
                        .launch_kernel(
                            program,
                            "ident",
                            &[
                                KernelArg::Buffer(buf.clone()),
                                KernelArg::Scalar(Value::I32((d * 1000) as i32)),
                                KernelArg::Scalar(Value::I32(n as i32)),
                            ],
                            NdRange::linear_default(n),
                            &LaunchConfig::default(),
                        )
                        .unwrap();
                }
                let mut bytes = vec![0u8; n * 4];
                queue.enqueue_read(&buf, 0, &mut bytes).unwrap();
                for (i, c) in bytes.chunks_exact(4).enumerate() {
                    assert_eq!(
                        i32::from_le_bytes(c.try_into().unwrap()),
                        (d * 1000 + i) as i32
                    );
                }
            });
        }
    });
    for d in 0..4 {
        assert!(
            platform.device(d).now_ns() > 0,
            "device {d} timeline advanced"
        );
    }
}

#[test]
fn many_barriers_in_sequence() {
    // 64 successive barriers with cross-lane communication each round: a
    // torture test for the lockstep scheduler.
    let program = compile(
        "rotate.cl",
        "__kernel void rotate_many(__global int* out) {
             __local int ring[64];
             int lid = (int)get_local_id(0);
             ring[lid] = lid;
             barrier(CLK_LOCAL_MEM_FENCE);
             for (int round = 0; round < 64; ++round) {
                 int next = ring[(lid + 1) % 64];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 ring[lid] = next;
                 barrier(CLK_LOCAL_MEM_FENCE);
             }
             out[lid] = ring[lid];
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let buf = queue.create_buffer(64 * 4).unwrap();
    let ev = queue
        .launch_kernel(
            &program,
            "rotate_many",
            &[KernelArg::Buffer(buf.clone())],
            NdRange::linear(64, 64),
            &LaunchConfig::default(),
        )
        .unwrap();
    // After 64 rotations by one, every lane is back at its own value.
    let mut bytes = vec![0u8; 64 * 4];
    queue.enqueue_read(&buf, 0, &mut bytes).unwrap();
    for (i, c) in bytes.chunks_exact(4).enumerate() {
        assert_eq!(i32::from_le_bytes(c.try_into().unwrap()), i as i32);
    }
    assert_eq!(ev.counters().unwrap().barriers, 64 * (1 + 128) as u64);
}

#[test]
fn memory_churn_many_allocations() {
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    for round in 0..100 {
        let buf = queue.create_buffer(1 << 16).unwrap();
        queue
            .enqueue_write(&buf, 0, &vec![round as u8; 1 << 16])
            .unwrap();
        let mut back = vec![0u8; 1 << 16];
        queue.enqueue_read(&buf, 0, &mut back).unwrap();
        assert!(back.iter().all(|&b| b == round as u8));
    }
    assert_eq!(
        platform.device(0).allocated_bytes(),
        0,
        "everything released"
    );
}
