//! Stress and concurrency tests of the execution engine: many work-groups
//! scheduled over host threads must behave deterministically for disjoint
//! writes, and the simulated timeline must stay consistent under load.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use skelcl_kernel::compile;
use skelcl_kernel::value::Value;
use vgpu::{DeviceSpec, EventStatus, KernelArg, LaunchConfig, NdRange, Platform};

#[test]
fn thousands_of_groups_write_disjoint_cells_deterministically() {
    let program = compile(
        "fill.cl",
        "__kernel void fill(__global int* out, int n) {
             int i = (int)get_global_id(0);
             if (i < n) out[i] = i * 7 - 3;
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let n = 256 * 1024; // 1024 work-groups
    let buf = queue.create_buffer(n * 4).unwrap();
    queue
        .launch_kernel(
            &program,
            "fill",
            &[
                KernelArg::Buffer(buf.clone()),
                KernelArg::Scalar(Value::I32(n as i32)),
            ],
            NdRange::linear(n, 256),
            &LaunchConfig::default(),
        )
        .unwrap();
    let mut bytes = vec![0u8; n * 4];
    queue.enqueue_read(&buf, 0, &mut bytes).unwrap();
    for (i, c) in bytes.chunks_exact(4).enumerate() {
        assert_eq!(
            i32::from_le_bytes(c.try_into().unwrap()),
            i as i32 * 7 - 3,
            "cell {i}"
        );
    }
}

#[test]
fn repeated_launches_give_identical_counters() {
    // The cost counters must be deterministic regardless of host-thread
    // scheduling (they are per-item and summed).
    let program = compile(
        "work.cl",
        "__kernel void work(__global float* data, int n) {
             int i = (int)get_global_id(0);
             if (i < n) {
                 float acc = (float)i;
                 for (int k = 0; k < 50; ++k) acc = acc * 0.5f + 1.0f;
                 data[i] = acc;
             }
         }",
    )
    .unwrap();
    let run = |threads: usize| {
        let platform = Platform::single(DeviceSpec::tesla_t10());
        let queue = platform.queue(0);
        let buf = queue.create_buffer(10_000 * 4).unwrap();
        let config = LaunchConfig {
            host_threads: Some(threads),
            ..Default::default()
        };
        let ev = queue
            .launch_kernel(
                &program,
                "work",
                &[
                    KernelArg::Buffer(buf),
                    KernelArg::Scalar(Value::I32(10_000)),
                ],
                NdRange::linear_default(10_000),
                &config,
            )
            .unwrap();
        ev.counters().unwrap()
    };
    let single = run(1);
    let parallel = run(8);
    assert_eq!(single, parallel, "counters independent of host parallelism");
    assert!(single.ops > 10_000 * 50);
}

#[test]
fn concurrent_queues_on_separate_devices() {
    // Four devices driven by four host threads concurrently; each timeline
    // advances independently and all results are correct.
    let program = compile(
        "id.cl",
        "__kernel void ident(__global int* out, int base, int n) {
             int i = (int)get_global_id(0);
             if (i < n) out[i] = base + i;
         }",
    )
    .unwrap();
    let platform = Platform::new(4, DeviceSpec::tesla_t10());
    std::thread::scope(|scope| {
        for d in 0..4usize {
            let platform = &platform;
            let program = &program;
            scope.spawn(move || {
                let queue = platform.queue(d);
                let n = 5000;
                let buf = queue.create_buffer(n * 4).unwrap();
                for _ in 0..3 {
                    queue
                        .launch_kernel(
                            program,
                            "ident",
                            &[
                                KernelArg::Buffer(buf.clone()),
                                KernelArg::Scalar(Value::I32((d * 1000) as i32)),
                                KernelArg::Scalar(Value::I32(n as i32)),
                            ],
                            NdRange::linear_default(n),
                            &LaunchConfig::default(),
                        )
                        .unwrap();
                }
                let mut bytes = vec![0u8; n * 4];
                queue.enqueue_read(&buf, 0, &mut bytes).unwrap();
                for (i, c) in bytes.chunks_exact(4).enumerate() {
                    assert_eq!(
                        i32::from_le_bytes(c.try_into().unwrap()),
                        (d * 1000 + i) as i32
                    );
                }
            });
        }
    });
    for d in 0..4 {
        assert!(
            platform.device(d).now_ns() > 0,
            "device {d} timeline advanced"
        );
    }
}

#[test]
fn many_barriers_in_sequence() {
    // 64 successive barriers with cross-lane communication each round: a
    // torture test for the lockstep scheduler.
    let program = compile(
        "rotate.cl",
        "__kernel void rotate_many(__global int* out) {
             __local int ring[64];
             int lid = (int)get_local_id(0);
             ring[lid] = lid;
             barrier(CLK_LOCAL_MEM_FENCE);
             for (int round = 0; round < 64; ++round) {
                 int next = ring[(lid + 1) % 64];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 ring[lid] = next;
                 barrier(CLK_LOCAL_MEM_FENCE);
             }
             out[lid] = ring[lid];
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let buf = queue.create_buffer(64 * 4).unwrap();
    let ev = queue
        .launch_kernel(
            &program,
            "rotate_many",
            &[KernelArg::Buffer(buf.clone())],
            NdRange::linear(64, 64),
            &LaunchConfig::default(),
        )
        .unwrap();
    // After 64 rotations by one, every lane is back at its own value.
    let mut bytes = vec![0u8; 64 * 4];
    queue.enqueue_read(&buf, 0, &mut bytes).unwrap();
    for (i, c) in bytes.chunks_exact(4).enumerate() {
        assert_eq!(i32::from_le_bytes(c.try_into().unwrap()), i as i32);
    }
    assert_eq!(ev.counters().unwrap().barriers, 64 * (1 + 128) as u64);
}

#[test]
fn memory_churn_many_allocations() {
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    for round in 0..100 {
        let buf = queue.create_buffer(1 << 16).unwrap();
        queue
            .enqueue_write(&buf, 0, &vec![round as u8; 1 << 16])
            .unwrap();
        let mut back = vec![0u8; 1 << 16];
        queue.enqueue_read(&buf, 0, &mut back).unwrap();
        assert!(back.iter().all(|&b| b == round as u8));
    }
    assert_eq!(
        platform.device(0).allocated_bytes(),
        0,
        "everything released"
    );
}

#[test]
fn event_state_hammered_from_many_threads() {
    // Satellite bugfix test: the Condvar-backed Event must be safe to
    // observe (status/wait/profiling accessors/callbacks) from many
    // threads while the queue worker completes it — and every wait()
    // must return only after the event is final.
    let program = compile(
        "spin.cl",
        "__kernel void spin(__global int* out, int n) {
             int i = (int)get_global_id(0);
             if (i < n) {
                 int acc = i;
                 for (int k = 0; k < 200; ++k) acc = acc * 3 + 1;
                 out[i] = acc;
             }
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let n = 64 * 1024;
    let buf = queue.create_buffer(n * 4).unwrap();
    for _round in 0..10 {
        let completions = Arc::new(AtomicUsize::new(0));
        let ev = queue
            .launch_kernel_async(
                &program,
                "spin",
                &[
                    KernelArg::Buffer(buf.clone()),
                    KernelArg::Scalar(Value::I32(n as i32)),
                ],
                NdRange::linear_default(n),
                &LaunchConfig::default(),
                &[],
            )
            .unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let ev = ev.clone();
                let completions = completions.clone();
                scope.spawn(move || {
                    // Callbacks may land before or after registration; both
                    // must run exactly once.
                    let c = completions.clone();
                    ev.on_complete(move |e| {
                        assert!(e.error().is_none());
                        c.fetch_add(1, Ordering::SeqCst);
                    });
                    // Polling must only ever see a valid lifecycle state.
                    for _ in 0..100 {
                        match ev.status() {
                            EventStatus::Queued | EventStatus::Running => {}
                            EventStatus::Complete => break,
                            EventStatus::Failed => panic!("launch failed"),
                        }
                        std::hint::spin_loop();
                    }
                    ev.wait().unwrap();
                    // After wait: final state, final timestamps, callbacks
                    // already ran.
                    assert_eq!(ev.status(), EventStatus::Complete);
                    assert!(ev.ended_ns() > ev.started_ns());
                    assert!(ev.counters().is_some());
                    assert!(completions.load(Ordering::SeqCst) >= 1);
                });
            }
        });
        assert_eq!(completions.load(Ordering::SeqCst), 8, "every callback ran");
    }
}

#[test]
fn finish_drains_all_pending_commands() {
    // finish() must act as a barrier over everything enqueued so far: all
    // prior events observably complete, on every queue.
    let platform = Platform::new(4, DeviceSpec::tesla_t10());
    let mut events = Vec::new();
    let queues: Vec<_> = (0..4).map(|d| platform.queue(d)).collect();
    for (d, queue) in queues.iter().enumerate() {
        let buf = queue.create_buffer(1 << 12).unwrap();
        for round in 0..16 {
            let ev = queue
                .enqueue_write_async(&buf, 0, vec![(d + round) as u8; 1 << 12], &[])
                .unwrap();
            events.push(ev);
            let read = queue.enqueue_read_async(&buf, 0, 1 << 12, &[]).unwrap();
            events.push(read.event().clone());
        }
        events.push(queue.enqueue_barrier(&[]).unwrap());
    }
    for queue in &queues {
        queue.finish().unwrap();
    }
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(ev.status(), EventStatus::Complete, "event {i} lost");
    }
}

#[test]
fn cross_queue_wait_lists_order_execution() {
    // A kernel on device 1 that waits on a write from device 0's queue must
    // observe the write even though the queues run on different workers.
    let program = compile(
        "addone.cl",
        "__kernel void addone(__global int* data, int n) {
             int i = (int)get_global_id(0);
             if (i < n) data[i] = data[i] + 1;
         }",
    )
    .unwrap();
    let platform = Platform::new(2, DeviceSpec::tesla_t10());
    let q1 = platform.queue(1);
    let n = 1024;
    let buf = q1.create_buffer(n * 4).unwrap();
    let payload: Vec<u8> = (0..n as i32).flat_map(|v| v.to_le_bytes()).collect();
    let write = q1.enqueue_write_async(&buf, 0, payload, &[]).unwrap();
    let kernel = q1
        .launch_kernel_async(
            &program,
            "addone",
            &[
                KernelArg::Buffer(buf.clone()),
                KernelArg::Scalar(Value::I32(n as i32)),
            ],
            NdRange::linear_default(n),
            &LaunchConfig::default(),
            std::slice::from_ref(&write),
        )
        .unwrap();
    let read = q1
        .enqueue_read_async(&buf, 0, n * 4, std::slice::from_ref(&kernel))
        .unwrap();
    let (_, bytes) = read.wait().unwrap();
    for (i, c) in bytes.chunks_exact(4).enumerate() {
        assert_eq!(i32::from_le_bytes(c.try_into().unwrap()), i as i32 + 1);
    }
    assert!(write.ended_ns() <= kernel.queued_ns());
}

#[test]
fn dependency_failure_propagates_as_result_not_abort() {
    // Satellite bugfix: a failing command must fail its dependents with the
    // same error through their events — no panic, no process abort.
    let program = compile(
        "oob.cl",
        "__kernel void oob(__global int* out) {
             out[get_global_id(0) + 1000000] = 1;
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let buf = queue.create_buffer(64).unwrap();
    let bad = queue
        .launch_kernel_async(
            &program,
            "oob",
            &[KernelArg::Buffer(buf.clone())],
            NdRange::linear(16, 16),
            &LaunchConfig::default(),
            &[],
        )
        .unwrap();
    let dependent = queue
        .enqueue_write_async(&buf, 0, vec![0u8; 4], std::slice::from_ref(&bad))
        .unwrap();
    let bad_err = bad.wait().unwrap_err();
    let dep_err = dependent.wait().unwrap_err();
    assert_eq!(dependent.status(), EventStatus::Failed);
    assert_eq!(
        bad_err, dep_err,
        "dependents inherit the dependency's error"
    );
    // The queue keeps working after a failed command.
    queue.finish().unwrap();
    assert!(queue.enqueue_write(&buf, 0, &[1, 2, 3, 4]).is_ok());
}
