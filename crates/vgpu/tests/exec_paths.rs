//! Equivalence and routing tests for the two execution engines.
//!
//! The pooled fast engine ([`vgpu::ExecStrategy::Fast`]) must be
//! observationally identical to the legacy lockstep engine
//! ([`vgpu::ExecStrategy::Lockstep`]): bit-identical buffers and identical
//! [`CostCounters`] — otherwise simulated-time results would drift with the
//! optimisation. Kernels **with** barriers must keep lockstep-round
//! semantics even on the fast strategy (the barrier-free path would fault
//! on a barrier, so success here *is* the routing proof).

use proptest::prelude::*;

use skelcl_kernel::compile;
use skelcl_kernel::program::Program;
use skelcl_kernel::value::Value;
use skelcl_kernel::vm::CostCounters;
use vgpu::{DeviceSpec, Event, ExecStrategy, KernelArg, LaunchConfig, NdRange, Platform};

fn config(strategy: ExecStrategy) -> LaunchConfig {
    LaunchConfig {
        strategy,
        ..LaunchConfig::default()
    }
}

/// Launches `kernel` over `range` on device `device` of a fresh platform,
/// returning the output buffer bytes and the launch counters.
#[allow(clippy::too_many_arguments)]
fn run_once(
    program: &Program,
    kernel: &str,
    input: &[u8],
    out_len: usize,
    extra_args: &[KernelArg],
    range: NdRange,
    devices: usize,
    device: usize,
    strategy: ExecStrategy,
) -> (Vec<u8>, CostCounters, Event) {
    let platform = Platform::new(devices, DeviceSpec::tesla_t10());
    let queue = platform.queue(device);
    let a = queue.create_buffer(input.len().max(1)).unwrap();
    let b = queue.create_buffer(out_len.max(1)).unwrap();
    if !input.is_empty() {
        queue.enqueue_write(&a, 0, input).unwrap();
    }
    let mut args = vec![KernelArg::Buffer(a), KernelArg::Buffer(b.clone())];
    args.extend_from_slice(extra_args);
    let event = queue
        .launch_kernel(program, kernel, &args, range, &config(strategy))
        .unwrap();
    let mut out = vec![0u8; out_len];
    if out_len > 0 {
        queue.enqueue_read(&b, 0, &mut out).unwrap();
    }
    let counters = event.counters().expect("kernel events carry counters");
    (out, counters, event)
}

fn f32s(vals: &[f32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Barrier-free kernels: bit-identical buffers and identical counters
    /// under both engines, across 1–4 devices.
    #[test]
    fn barrier_free_paths_agree(
        data in proptest::collection::vec(any::<f32>(), 1..400),
        devices in 1usize..=4,
    ) {
        let program = compile(
            "ew.cl",
            "float f(float x, int i){ return x * 0.5f + (float)(i % 7); }
             __kernel void ew(__global const float* in, __global float* out, int n){
                 int i = (int)get_global_id(0);
                 if (i < n) out[i] = f(in[i], i) * in[i] - 1.0f;
             }",
        ).unwrap();
        prop_assert_eq!(program.kernel("ew").unwrap().barrier_count, 0);
        let n = data.len();
        let input = f32s(&data);
        let extra = [KernelArg::Scalar(Value::I32(n as i32))];
        let range = NdRange::linear_default(n);
        let device = devices - 1;
        let (fast, fast_c, _) = run_once(
            &program, "ew", &input, n * 4, &extra, range,
            devices, device, ExecStrategy::Fast,
        );
        let (lockstep, lockstep_c, _) = run_once(
            &program, "ew", &input, n * 4, &extra, range,
            devices, device, ExecStrategy::Lockstep,
        );
        prop_assert_eq!(fast, lockstep, "buffers must be bit-identical");
        prop_assert_eq!(fast_c, lockstep_c, "counters must be identical");
    }

    /// Kernels *with* barriers keep lockstep-round semantics on the fast
    /// strategy: same results as the legacy engine, and no fast-path fault
    /// (which a misrouted barrier kernel would produce).
    #[test]
    fn barrier_kernels_never_take_fast_path(
        data in proptest::collection::vec(any::<i32>(), 1..6),
        devices in 1usize..=4,
    ) {
        let program = compile(
            "rev.cl",
            "__kernel void rev(__global const int* in, __global int* out){
                 __local int tile[64];
                 int lid = (int)get_local_id(0);
                 int n = (int)get_local_size(0);
                 tile[lid] = in[get_global_id(0)];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[get_global_id(0)] = tile[n - 1 - lid];
             }",
        ).unwrap();
        prop_assert!(program.kernel("rev").unwrap().barrier_count > 0);
        // `data` seeds the group count: one group of 64 items per element.
        let groups = data.len();
        let n = groups * 64;
        let values: Vec<i32> = (0..n).map(|i| {
            data[i / 64].wrapping_mul(31).wrapping_add(i as i32)
        }).collect();
        let input = i32s(&values);
        let range = NdRange::linear(n, 64);
        let device = devices - 1;
        let (fast, fast_c, _) = run_once(
            &program, "rev", &input, n * 4, &[], range,
            devices, device, ExecStrategy::Fast,
        );
        let (lockstep, lockstep_c, _) = run_once(
            &program, "rev", &input, n * 4, &[], range,
            devices, device, ExecStrategy::Lockstep,
        );
        prop_assert_eq!(fast, lockstep, "buffers must be bit-identical");
        prop_assert_eq!(fast_c, lockstep_c, "counters must be identical");
    }
}

/// `CostCounters.ops` (and every other counter) for a fixed kernel is
/// identical across the engines, so simulated-time results cannot drift
/// with the optimisation (no double-counting in the new dispatch loop).
#[test]
fn counter_ops_identical_across_engines() {
    let program = compile(
        "mix.cl",
        "int collatz_steps(int x){
             int steps = 0;
             while (x > 1 && steps < 200) {
                 x = (x % 2 == 0) ? x / 2 : 3 * x + 1;
                 steps++;
             }
             return steps;
         }
         __kernel void mix(__global const int* in, __global int* out, int n){
             int i = (int)get_global_id(0);
             if (i < n) out[i] = collatz_steps(in[i] % 1000 + 1);
         }",
    )
    .unwrap();
    let n = 3000usize;
    let values: Vec<i32> = (0..n as i32).map(|i| i * 7 + 1).collect();
    let input = i32s(&values);
    let extra = [KernelArg::Scalar(Value::I32(n as i32))];
    let range = NdRange::linear_default(n);
    let (fast, fast_c, _) = run_once(
        &program,
        "mix",
        &input,
        n * 4,
        &extra,
        range,
        1,
        0,
        ExecStrategy::Fast,
    );
    let (lockstep, lockstep_c, _) = run_once(
        &program,
        "mix",
        &input,
        n * 4,
        &extra,
        range,
        1,
        0,
        ExecStrategy::Lockstep,
    );
    assert_eq!(fast, lockstep);
    assert_eq!(fast_c.ops, lockstep_c.ops, "instruction counts must match");
    assert_eq!(fast_c, lockstep_c, "all counters must match");
    assert!(fast_c.ops > n as u64, "kernel actually executed work");
}

/// The pooled engine spawns zero threads per launch; the legacy engine
/// spawns some every launch. `ExecStats` is how the benchmark proves it.
#[test]
fn pooled_launches_spawn_zero_threads() {
    let program = compile(
        "nop.cl",
        "__kernel void nop(__global int* out){ out[get_global_id(0)] = 1; }",
    )
    .unwrap();
    let platform = Platform::new(2, DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let buf = queue.create_buffer(256 * 4).unwrap();
    let range = NdRange::linear(256, 64);

    for _ in 0..5 {
        queue
            .launch_kernel(
                &program,
                "nop",
                &[KernelArg::Buffer(buf.clone())],
                range,
                &config(ExecStrategy::Fast),
            )
            .unwrap();
    }
    let stats = platform.exec_stats();
    assert_eq!(stats.launches, 5);
    assert_eq!(stats.pooled_launches, 5);
    assert_eq!(stats.legacy_launches, 0);
    assert_eq!(
        stats.per_launch_thread_spawns, 0,
        "pooled launches must not spawn threads"
    );
    assert!(stats.pool_threads >= 1, "device 0's pool is alive");

    // The legacy engine pays thread spawns on every launch.
    for _ in 0..3 {
        queue
            .launch_kernel(
                &program,
                "nop",
                &[KernelArg::Buffer(buf.clone())],
                range,
                &config(ExecStrategy::Lockstep),
            )
            .unwrap();
    }
    let stats = platform.exec_stats();
    assert_eq!(stats.launches, 8);
    assert_eq!(stats.legacy_launches, 3);
    assert!(
        stats.per_launch_thread_spawns >= 3,
        "legacy launches spawn at least one thread each, got {}",
        stats.per_launch_thread_spawns
    );
}

/// Faults surface identically through both engines (first faulting item in
/// group order), and a faulted pool stays usable for the next launch.
#[test]
fn faults_equivalent_and_pool_survives() {
    let program = compile(
        "oob.cl",
        "__kernel void oob(__global int* out, int n) {
             int i = (int)get_global_id(0);
             out[i + n] = i;
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let out = queue.create_buffer(8 * 4).unwrap();
    let args = [
        KernelArg::Buffer(out.clone()),
        KernelArg::Scalar(Value::I32(4)),
    ];
    let range = NdRange::linear(8, 8);

    let fast_err = queue
        .launch_kernel(&program, "oob", &args, range, &config(ExecStrategy::Fast))
        .unwrap_err();
    let lockstep_err = queue
        .launch_kernel(
            &program,
            "oob",
            &args,
            range,
            &config(ExecStrategy::Lockstep),
        )
        .unwrap_err();
    assert_eq!(fast_err.to_string(), lockstep_err.to_string());

    // The pool is not poisoned: a good launch on the same device succeeds.
    let ok = compile(
        "ok.cl",
        "__kernel void ok(__global int* out, int n){
             int i = (int)get_global_id(0);
             if (i < n) out[i] = i;
         }",
    )
    .unwrap();
    queue
        .launch_kernel(&ok, "ok", &args, range, &config(ExecStrategy::Fast))
        .unwrap();
}
