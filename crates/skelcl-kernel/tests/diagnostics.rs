//! Build-log quality: a catalogue of broken kernels and the diagnostics a
//! developer should get back — SkelCL forwards these logs verbatim when a
//! customizing function is wrong, so they must point at the problem.

use skelcl_kernel::compile;

/// Compiles expecting failure; returns the rendered build log.
fn build_log(src: &str) -> String {
    match compile("diag.cl", src) {
        Ok(_) => panic!("expected a compile error for:\n{src}"),
        Err(e) => e.log,
    }
}

#[track_caller]
fn assert_log(src: &str, needles: &[&str]) {
    let log = build_log(src);
    for n in needles {
        assert!(log.contains(n), "expected `{n}` in build log:\n{log}");
    }
}

#[test]
fn undeclared_identifier_points_at_use_site() {
    assert_log(
        "float f(float x){ return x + missing; }",
        &["undeclared identifier `missing`", "diag.cl:1:30", "^"],
    );
}

#[test]
fn type_errors_name_both_types() {
    assert_log(
        "void f(__global float* p, __global int* q){ p = q; }",
        &["element types differ"],
    );
    assert_log("float f(__global int* p){ return p; }", &["cannot convert"]);
    assert_log(
        "void f(float x){ x % 2.0f; }",
        &["requires integer operands"],
    );
}

#[test]
fn const_violations() {
    assert_log(
        "void f(const float* p){ p[0] = 1.0f; }",
        &["cannot store through a `const` pointer"],
    );
    assert_log(
        "void f(){ const int x = 1; x += 1; }",
        &["cannot assign to `const` variable `x`"],
    );
}

#[test]
fn arity_and_unknown_function() {
    assert_log(
        "float f(float x){ return sqrt(); }",
        &["`sqrt` expects 1 argument(s), found 0"],
    );
    assert_log(
        "float f(float x){ return g(x); }",
        &["undefined function `g`"],
    );
}

#[test]
fn multiple_errors_reported_in_one_build() {
    let log = build_log(
        "void f(){
            int x = missing_a;
            int y = missing_b;
            int z = missing_c;
        }",
    );
    assert!(log.contains("missing_a"));
    assert!(log.contains("missing_b"));
    assert!(log.contains("missing_c"));
}

#[test]
fn parse_errors_recover_and_continue() {
    let log = build_log(
        "void broken(){ int = 5; }
         void also_broken(){ return 1 +; }",
    );
    assert!(log.contains("expected"), "{log}");
    // Both functions produced diagnostics despite the first being broken.
    assert!(log.matches("error").count() >= 2, "{log}");
}

#[test]
fn kernel_restrictions() {
    assert_log("__kernel int k(){ return 1; }", &["must return `void`"]);
    assert_log(
        "__kernel void k(float* p){ }",
        &["kernel pointer parameters must be `__global` or `__local`"],
    );
    assert_log(
        "__kernel void k(__global int* o){ } void f(){ k(0); }",
        &["cannot be called from kernel code"],
    );
}

#[test]
fn recursion_is_rejected_like_opencl() {
    assert_log(
        "int f(int x){ return x <= 1 ? 1 : x * f(x - 1); }",
        &["recursion"],
    );
}

#[test]
fn local_array_misuse() {
    assert_log(
        "void helper(){ __local float t[4]; }",
        &["may only be declared inside kernel functions"],
    );
    assert_log(
        "__kernel void k(int n){ __local float t[n]; }",
        &["compile-time constant"],
    );
}

#[test]
fn caret_lines_align_with_source() {
    let log = build_log("float f(float x){\n    return x + oops;\n}");
    // The caret must sit under `oops` (column 16 of line 2).
    let lines: Vec<&str> = log.lines().collect();
    let src_line = lines
        .iter()
        .position(|l| l.contains("return x + oops;"))
        .unwrap();
    let caret_line = lines[src_line + 1];
    let src_rendered = lines[src_line];
    let caret_col = caret_line.find('^').unwrap();
    assert_eq!(&src_rendered[caret_col..caret_col + 4], "oops");
}
