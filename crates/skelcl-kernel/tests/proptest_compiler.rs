//! Property-based differential testing of the whole compiler pipeline:
//! random expression trees are rendered to SkelCL C, compiled (parser →
//! sema → fold → codegen) and executed in the VM; the result must equal
//! direct evaluation of the tree with the shared `value` arithmetic.
//!
//! This exercises parser precedence, implicit conversions, constant
//! folding and the bytecode interpreter against each other — any
//! disagreement between the compiled path and the direct path is a bug in
//! one of them.

use proptest::prelude::*;

use skelcl_kernel::hir::{BinOp, UnOp};
use skelcl_kernel::types::AddressSpace;
use skelcl_kernel::value::{self, Ptr, Value};
use skelcl_kernel::vm::{HostMemory, ItemGeometry, WorkItem};

/// A host-side expression tree over `long` variables x, y, z.
#[derive(Debug, Clone)]
enum Expr {
    Lit(i64),
    Var(usize),
    Un(UnOp, Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    MinMax(bool, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Renders to SkelCL C source (fully parenthesised).
    fn render(&self) -> String {
        match self {
            Expr::Lit(v) => {
                if *v < 0 {
                    format!("(-({}L))", (v.unsigned_abs()))
                } else {
                    format!("({v}L)")
                }
            }
            Expr::Var(i) => ["x", "y", "z"][*i].to_string(),
            Expr::Un(op, e) => {
                let sym = match op {
                    UnOp::Neg => "-",
                    UnOp::BitNot => "~",
                    UnOp::Not => "!",
                };
                if *op == UnOp::Not {
                    // `!` yields bool; convert back to long.
                    format!("((long)({sym}({})))", e.render())
                } else {
                    format!("({sym}({}))", e.render())
                }
            }
            Expr::Bin(op, l, r) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::BitAnd => "&",
                    BinOp::BitOr => "|",
                    BinOp::BitXor => "^",
                    BinOp::Shl => "<<",
                    BinOp::Shr => ">>",
                    BinOp::Div | BinOp::Rem => unreachable!("not generated"),
                };
                format!("({} {sym} {})", l.render(), r.render())
            }
            Expr::Ternary(c, t, f) => {
                format!("(({}) != 0L ? {} : {})", c.render(), t.render(), f.render())
            }
            Expr::MinMax(is_min, l, r) => {
                let f = if *is_min { "min" } else { "max" };
                format!("{f}({}, {})", l.render(), r.render())
            }
        }
    }

    /// Evaluates directly using the same scalar arithmetic as the VM.
    fn eval(&self, vars: &[i64; 3]) -> i64 {
        let as_i64 = |v: Value| match v {
            Value::I64(x) => x,
            other => panic!("expected long, got {other:?}"),
        };
        match self {
            Expr::Lit(v) => *v,
            Expr::Var(i) => vars[*i],
            Expr::Un(op, e) => {
                let v = e.eval(vars);
                match op {
                    UnOp::Not => i64::from(v == 0),
                    _ => as_i64(value::unary(*op, Value::I64(v)).expect("unary ok")),
                }
            }
            Expr::Bin(op, l, r) => as_i64(
                value::binary(*op, Value::I64(l.eval(vars)), Value::I64(r.eval(vars)))
                    .expect("no div/rem generated"),
            ),
            Expr::Ternary(c, t, f) => {
                if c.eval(vars) != 0 {
                    t.eval(vars)
                } else {
                    f.eval(vars)
                }
            }
            Expr::MinMax(is_min, l, r) => {
                let (a, b) = (l.eval(vars), r.eval(vars));
                if *is_min {
                    a.min(b)
                } else {
                    a.max(b)
                }
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Expr::Lit),
        Just(Expr::Lit(i64::MAX)),
        Just(Expr::Lit(i64::MIN + 1)),
        (0usize..3).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![Just(UnOp::Neg), Just(UnOp::BitNot), Just(UnOp::Not)],
                inner.clone()
            )
                .prop_map(|(op, e)| Expr::Un(op, Box::new(e))),
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::BitAnd),
                    Just(BinOp::BitOr),
                    Just(BinOp::BitXor),
                    Just(BinOp::Shl),
                    Just(BinOp::Shr),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Bin(op, Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| Expr::Ternary(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
            (any::<bool>(), inner.clone(), inner).prop_map(|(m, l, r)| Expr::MinMax(
                m,
                Box::new(l),
                Box::new(r)
            )),
        ]
    })
}

/// Compiles and runs `expr` as a kernel, returning the VM's result.
fn run_compiled(expr: &Expr, vars: [i64; 3]) -> i64 {
    run_with(expr, vars, &skelcl_kernel::OptConfig::from_env(), false)
}

/// Compiles `expr` under `cfg` and runs it — through the reference
/// interpreter when `reference` is set — returning the result.
fn run_with(expr: &Expr, vars: [i64; 3], cfg: &skelcl_kernel::OptConfig, reference: bool) -> i64 {
    let source = format!(
        "__kernel void eval(__global long* out, long x, long y, long z) {{\n\
             out[0] = {};\n\
         }}",
        expr.render()
    );
    let program = skelcl_kernel::compile_with_config("prop.cl", &source, cfg)
        .unwrap_or_else(|e| panic!("generated source failed to compile:\n{source}\n{e}"));
    let kernel = program.kernel("eval").expect("kernel");
    let mut mem = HostMemory::new();
    let out = mem.add_buffer(vec![0u8; 8]);
    let args = [
        Value::Ptr(Ptr {
            space: AddressSpace::Global,
            buffer: out,
            byte_offset: 0,
        }),
        Value::I64(vars[0]),
        Value::I64(vars[1]),
        Value::I64(vars[2]),
    ];
    let mut item = WorkItem::new(&program, kernel.func, &args, ItemGeometry::single());
    if reference {
        item.run_reference(&mem, &mut []).expect("kernel runs");
    } else {
        item.run(&mem, &mut []).expect("kernel runs");
    }
    i64::from_le_bytes(mem.bytes(out)[..8].try_into().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compiled_expression_matches_direct_evaluation(
        expr in arb_expr(),
        x in any::<i64>(),
        y in -1000i64..1000,
        z in any::<i64>(),
    ) {
        let vars = [x, y, z];
        let expected = expr.eval(&vars);
        let actual = run_compiled(&expr, vars);
        prop_assert_eq!(actual, expected, "expr: {}", expr.render());
    }

    /// The full MIR pipeline and the legacy pipeline agree bit-for-bit:
    /// the optimized program (fast interpreter) must compute exactly what
    /// the legacy program computes on the reference interpreter.
    #[test]
    fn optimized_pipeline_matches_legacy_reference(
        expr in arb_expr(),
        x in any::<i64>(),
        y in -1000i64..1000,
        z in any::<i64>(),
    ) {
        use skelcl_kernel::OptConfig;
        let vars = [x, y, z];
        let oracle = run_with(&expr, vars, &OptConfig::legacy(), true);
        let optimized = run_with(&expr, vars, &OptConfig::all(), false);
        prop_assert_eq!(optimized, oracle, "expr: {}", expr.render());
    }

    /// The pretty-printer is a fixed point: parse(print(parse(src))) gives
    /// identical output for generated expressions.
    #[test]
    fn pretty_print_round_trip(expr in arb_expr()) {
        use skelcl_kernel::{diag::Diagnostics, parser, pretty, source::SourceFile};
        let src = format!("long f(long x, long y, long z) {{ return {}; }}", expr.render());
        let f1 = SourceFile::new("a.cl", &src);
        let mut d1 = Diagnostics::new();
        let tu1 = parser::parse(&f1, &mut d1);
        prop_assert!(!d1.has_errors());
        let printed = pretty::print_unit(&tu1);
        let f2 = SourceFile::new("b.cl", &printed);
        let mut d2 = Diagnostics::new();
        let tu2 = parser::parse(&f2, &mut d2);
        prop_assert!(!d2.has_errors(), "printed source must reparse:\n{}", printed);
        prop_assert_eq!(pretty::print_unit(&tu2), printed);
    }
}
