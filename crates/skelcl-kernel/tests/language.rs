//! SkelCL C language conformance: end-to-end (compile → VM) checks of the
//! semantics corners a kernel language must get right — integer widths and
//! conversions, float math, operator precedence, control flow, pointers,
//! and the OpenCL-specific pieces.

use skelcl_kernel::compile;
use skelcl_kernel::types::AddressSpace;
use skelcl_kernel::value::{Ptr, Value};
use skelcl_kernel::vm::{HostMemory, ItemGeometry, WorkItem};

/// Compiles `body` into `__kernel void t(__global T* out)` returning
/// out[0] after running a single work-item.
fn eval(ret: &str, body: &str) -> Value {
    let src =
        format!("__kernel void t(__global {ret}* skelcl_out) {{ skelcl_out[0] = ({body}); }}");
    eval_program(&src, ret)
}

fn eval_program(src: &str, ret: &str) -> Value {
    let program = compile("lang.cl", src).unwrap_or_else(|e| panic!("compile:\n{e}"));
    let kernel = program.kernel("t").expect("kernel t");
    let mut mem = HostMemory::new();
    let out = mem.add_buffer(vec![0u8; 8]);
    let args = [Value::Ptr(Ptr {
        space: AddressSpace::Global,
        buffer: out,
        byte_offset: 0,
    })];
    let mut item = WorkItem::new(&program, kernel.func, &args, ItemGeometry::single());
    for b in &kernel.local_arrays {
        item.bind_entry_slot(
            b.slot,
            Value::Ptr(Ptr {
                space: AddressSpace::Local,
                buffer: 0,
                byte_offset: b.byte_offset as i64,
            }),
        );
    }
    let mut local = vec![0u8; (kernel.static_local_bytes as usize).max(1)];
    item.run(&mem, &mut local).expect("runs");
    let bytes = mem.bytes(out);
    use skelcl_kernel::types::ScalarType::*;
    let ty = match ret {
        "char" => Char,
        "uchar" => UChar,
        "short" => Short,
        "ushort" => UShort,
        "int" => Int,
        "uint" => UInt,
        "long" => Long,
        "ulong" => ULong,
        "float" => Float,
        "double" => Double,
        other => panic!("unknown type {other}"),
    };
    skelcl_kernel::value::read_scalar(&bytes, ty)
}

#[test]
fn integer_widths_wrap_correctly() {
    assert_eq!(eval("char", "(char)127 + (char)1"), Value::I8(-128));
    assert_eq!(eval("uchar", "(uchar)255 + (uchar)1"), Value::U8(0));
    assert_eq!(eval("short", "(short)32767 + (short)1"), Value::I16(-32768));
    assert_eq!(eval("int", "2147483647 + 1"), Value::I32(-2147483648));
    assert_eq!(eval("uint", "4294967295u + 1u"), Value::U32(0));
    assert_eq!(eval("ulong", "18446744073709551615uL + 1uL"), Value::U64(0));
}

#[test]
fn char_arithmetic_promotes_before_overflowing() {
    // (char)120 + (char)120 in C promotes to int: 240, then narrows.
    assert_eq!(eval("int", "(char)120 + (char)120"), Value::I32(240));
    assert_eq!(
        eval("char", "(char)((char)120 + (char)120)"),
        Value::I8(-16)
    );
}

#[test]
fn mixed_signedness_comparisons() {
    // int vs uint: converted to uint, so -1 > 1u.
    assert_eq!(eval("int", "(-1 > 1u) ? 10 : 20"), Value::I32(10));
    // int vs long: converted to long, -1 < 1.
    assert_eq!(eval("int", "(-1 < 1L) ? 10 : 20"), Value::I32(10));
}

#[test]
fn division_and_remainder_signs() {
    assert_eq!(eval("int", "7 / 2"), Value::I32(3));
    assert_eq!(eval("int", "-7 / 2"), Value::I32(-3));
    assert_eq!(eval("int", "-7 % 2"), Value::I32(-1));
    assert_eq!(eval("int", "7 % -2"), Value::I32(1));
}

#[test]
fn float_semantics() {
    assert_eq!(eval("float", "1.0f / 0.0f"), Value::F32(f32::INFINITY));
    assert_eq!(eval("float", "0.5f + 0.25f"), Value::F32(0.75));
    assert_eq!(eval("double", "1.0 / 3.0"), Value::F64(1.0 / 3.0));
    // float arithmetic stays in single precision.
    assert_eq!(eval("float", "0.1f + 0.2f"), Value::F32(0.1f32 + 0.2f32));
    // int/int is integer division even when assigned to float.
    assert_eq!(eval("float", "(float)(3 / 2)"), Value::F32(1.0));
    assert_eq!(eval("float", "(float)3 / 2"), Value::F32(1.5));
}

#[test]
fn float_to_int_truncates_toward_zero() {
    assert_eq!(eval("int", "(int)2.9f"), Value::I32(2));
    assert_eq!(eval("int", "(int)(-2.9f)"), Value::I32(-2));
    assert_eq!(eval("uchar", "(uchar)255.9f"), Value::U8(255));
}

#[test]
fn precedence_and_associativity() {
    assert_eq!(eval("int", "2 + 3 * 4"), Value::I32(14));
    assert_eq!(eval("int", "(2 + 3) * 4"), Value::I32(20));
    assert_eq!(eval("int", "20 - 5 - 3"), Value::I32(12));
    assert_eq!(eval("int", "1 << 2 + 1"), Value::I32(8)); // shift binds looser than +
    assert_eq!(eval("int", "7 & 3 == 3 ? 1 : 0"), Value::I32(1)); // == binds tighter than &
    assert_eq!(eval("int", "1 + (2 < 3 ? 10 : 20)"), Value::I32(11));
}

#[test]
fn short_circuit_does_not_evaluate_rhs() {
    // The rhs would trap (division by zero) if evaluated.
    assert_eq!(eval("int", "(0 != 0 && 1 / 0 == 0) ? 1 : 2"), Value::I32(2));
    assert_eq!(eval("int", "(1 == 1 || 1 / 0 == 0) ? 1 : 2"), Value::I32(1));
}

#[test]
fn control_flow_composition() {
    let src = "__kernel void t(__global int* skelcl_out) {
        int total = 0;
        for (int i = 0; i < 10; ++i) {
            if (i % 3 == 0) continue;
            int j = i;
            while (j > 0) { total += 1; j -= 2; }
            if (i >= 8) break;
        }
        do { total *= 10; } while (false);
        skelcl_out[0] = total;
    }";
    // i in {1,2,4,5,7,8}: ceil(i/2) additions = 1+1+2+3+4+4 = 15, then ×10.
    assert_eq!(eval_program(src, "int"), Value::I32(150));
}

#[test]
fn pointer_walking_and_difference() {
    let src = "__kernel void t(__global long* skelcl_out) {
        __local int buf[8];
        for (int i = 0; i < 8; ++i) buf[i] = i * i;
        int* p = buf;
        int* q = buf + 7;
        long sum = 0;
        while (p <= q) { sum += *p; p++; }
        int* r = buf + 3;
        skelcl_out[0] = sum * 100 + (r - buf);
    }";
    let total: i64 = (0..8).map(|i| i * i).sum();
    assert_eq!(eval_program(src, "long"), Value::I64(total * 100 + 3));
}

#[test]
fn compound_assignment_through_pointers() {
    let src = "__kernel void t(__global int* skelcl_out) {
        __local int a[4];
        a[0] = 10;
        a[0] += 5;
        a[0] <<= 2;
        a[0] ^= 3;
        int i = 0;
        a[i] -= 1;
        skelcl_out[0] = a[0];
    }";
    assert_eq!(
        eval_program(src, "int"),
        Value::I32((((10 + 5) << 2) ^ 3) - 1)
    );
}

#[test]
fn increment_semantics() {
    let src = "__kernel void t(__global int* skelcl_out) {
        int x = 5;
        int a = x++;
        int b = ++x;
        int c = x--;
        int d = --x;
        skelcl_out[0] = a * 1000 + b * 100 + c * 10 + d;
    }";
    assert_eq!(
        eval_program(src, "int"),
        Value::I32(5 * 1000 + 7 * 100 + 7 * 10 + 5)
    );
}

#[test]
fn math_builtins_accuracy() {
    assert_eq!(eval("float", "sqrt(2.0f)"), Value::F32(2.0f32.sqrt()));
    assert_eq!(eval("double", "sin(1.0)"), Value::F64(1.0f64.sin()));
    assert_eq!(
        eval("float", "pow(2.0f, 0.5f)"),
        Value::F32((2.0f64.powf(0.5)) as f32)
    );
    assert_eq!(eval("int", "abs(-42)"), Value::I32(42));
    assert_eq!(eval("int", "clamp(15, 0, 10)"), Value::I32(10));
    assert_eq!(eval("float", "fmax(1.0f, -3.0f)"), Value::F32(1.0));
}

#[test]
fn nan_propagation_through_comparison() {
    let src = "float nan_helper() { return sqrt(-1.0f); }
        __kernel void t(__global int* skelcl_out) {
        float n = nan_helper();
        skelcl_out[0] = (n == n) ? 1 : 0;
    }";
    assert_eq!(eval_program(src, "int"), Value::I32(0));
}

#[test]
fn ulong_work_item_conversions() {
    // get_global_id returns ulong; usual conversions must make this work.
    let src = "__kernel void t(__global long* skelcl_out) {
        int i = (int)get_global_id(0);
        long big = (long)get_global_size(0) * 1000000000L;
        skelcl_out[0] = big + i;
    }";
    assert_eq!(eval_program(src, "long"), Value::I64(1_000_000_000));
}

#[test]
fn helper_function_composition() {
    let src = "
        float square(float x) { return x * x; }
        float hypot2(float a, float b) { return square(a) + square(b); }
        __kernel void t(__global float* skelcl_out) {
            skelcl_out[0] = sqrt(hypot2(3.0f, 4.0f));
        }";
    assert_eq!(eval_program(src, "float"), Value::F32(5.0));
}

#[test]
fn comments_and_formatting_are_ignored() {
    let src = "/* header */ __kernel void t(__global int* skelcl_out) {
        // line comment
        int x /* inline */ = 1 + /* two */ 2;
        skelcl_out[0] = x; // done
    }";
    assert_eq!(eval_program(src, "int"), Value::I32(3));
}

#[test]
fn bool_conversions() {
    assert_eq!(eval("int", "(int)true + (int)false"), Value::I32(1));
    assert_eq!(eval("int", "(bool)7 ? 5 : 6"), Value::I32(5));
    assert_eq!(eval("int", "!3"), Value::I32(0));
    assert_eq!(eval("int", "(int)!0.0f"), Value::I32(1));
}

#[test]
fn shifts_mask_like_hardware() {
    assert_eq!(eval("int", "1 << 33"), Value::I32(2));
    assert_eq!(eval("uint", "0x80000000u >> 31"), Value::U32(1));
    assert_eq!(
        eval("int", "-16 >> 2"),
        Value::I32(-4),
        "arithmetic shift for signed"
    );
    assert_eq!(
        eval("uint", "0xFFFFFFF0u >> 2"),
        Value::U32(0x3FFFFFFC),
        "logical for unsigned"
    );
}

#[test]
fn hex_literals_and_bitops() {
    assert_eq!(eval("uint", "0xDEADBEEFu & 0xFFFFu"), Value::U32(0xBEEF));
    assert_eq!(eval("uint", "0xF0u | 0x0Fu"), Value::U32(0xFF));
    assert_eq!(eval("uint", "~0u"), Value::U32(u32::MAX));
    assert_eq!(eval("int", "0x10 ^ 0x01"), Value::I32(0x11));
}

#[test]
fn char_literals_in_kernels() {
    assert_eq!(eval("int", r"(int)'A'"), Value::I32(65));
    assert_eq!(eval("int", r"(int)'\n'"), Value::I32(10));
    assert_eq!(eval("int", r"'z' - 'a'"), Value::I32(25));
}
