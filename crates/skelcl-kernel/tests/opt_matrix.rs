//! Differential testing of the MIR optimization matrix: every kernel is
//! compiled under every `SKELCL_KERNEL_OPT` configuration — the legacy
//! HIR pipeline, the MIR pipeline with no passes, each pass alone, and
//! all passes together — executed over a multi-item launch, and the
//! output buffers must be **bit-identical** to the legacy program run
//! through the reference interpreter ([`WorkItem::run_reference`]).
//!
//! Any divergence is a miscompile in a pass or in the register lowering.

use skelcl_kernel::program::Program;
use skelcl_kernel::types::AddressSpace;
use skelcl_kernel::value::{Ptr, Value};
use skelcl_kernel::vm::{HostMemory, ItemGeometry, WorkItem};
use skelcl_kernel::{compile_with_config, OptConfig};

const ITEMS: u64 = 8;

/// The full `SKELCL_KERNEL_OPT` test matrix, as spec strings.
const MATRIX: &[&str] = &[
    "0",
    "none",
    "const-prop",
    "cse",
    "dce",
    "licm",
    "unroll",
    "1",
];

fn geometry(gid: u64) -> ItemGeometry {
    ItemGeometry {
        work_dim: 1,
        global_id: [gid, 0, 0],
        local_id: [gid, 0, 0],
        group_id: [0, 0, 0],
        global_size: [ITEMS, 1, 1],
        local_size: [ITEMS, 1, 1],
        num_groups: [1, 1, 1],
    }
}

/// Runs `kernel` over all items, one buffer per pointer argument, and
/// returns the final contents of every buffer.
fn launch(
    program: &Program,
    kernel: &str,
    buffers: &[Vec<u8>],
    scalars: &[Value],
    reference: bool,
) -> Vec<Vec<u8>> {
    let k = program.kernel(kernel).expect("kernel exists");
    let mut mem = HostMemory::new();
    let mut args = Vec::new();
    for b in buffers {
        let id = mem.add_buffer(b.clone());
        args.push(Value::Ptr(Ptr {
            space: AddressSpace::Global,
            buffer: id,
            byte_offset: 0,
        }));
    }
    args.extend_from_slice(scalars);
    for gid in 0..ITEMS {
        let mut item = WorkItem::new(program, k.func, &args, geometry(gid));
        let exit = if reference {
            item.run_reference(&mem, &mut [])
        } else {
            item.run(&mem, &mut [])
        };
        exit.unwrap_or_else(|e| panic!("{kernel} item {gid} failed: {e}"));
    }
    (0..buffers.len()).map(|i| mem.bytes(i as u32)).collect()
}

/// Compiles `src` under every configuration and checks each run is
/// bit-identical to the legacy + reference-interpreter oracle.
fn check_matrix(name: &str, src: &str, kernel: &str, buffers: &[Vec<u8>], scalars: &[Value]) {
    let legacy = compile_with_config(name, src, &OptConfig::legacy())
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let oracle = launch(&legacy, kernel, buffers, scalars, true);
    for spec in MATRIX {
        let cfg = OptConfig::from_str_spec(spec);
        let p = compile_with_config(name, src, &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        let got = launch(&p, kernel, buffers, scalars, false);
        assert_eq!(
            got,
            oracle,
            "{name} with SKELCL_KERNEL_OPT={spec} diverged from the reference oracle:\n{}",
            p.disassemble()
        );
    }
}

fn f32s(vals: impl IntoIterator<Item = f32>) -> Vec<u8> {
    vals.into_iter().flat_map(f32::to_le_bytes).collect()
}

fn i32s(vals: impl IntoIterator<Item = i32>) -> Vec<u8> {
    vals.into_iter().flat_map(i32::to_le_bytes).collect()
}

#[test]
fn strided_reduce_loop() {
    let n = 64usize;
    let input = f32s((0..n).map(|i| (i as f32) * 0.75 - 3.0));
    let out = f32s((0..ITEMS as usize).map(|_| 0.0));
    check_matrix(
        "reduce.cl",
        "__kernel void reduce(__global const float* in, __global float* out, int n) {
            int gid = (int)get_global_id(0);
            int gsize = (int)get_global_size(0);
            float acc = 0.0f;
            for (int i = gid; i < n; i += gsize) acc += in[i];
            out[gid] = acc;
        }",
        "reduce",
        &[input, out],
        &[Value::I32(n as i32)],
    );
}

#[test]
fn clamped_blur_stencil() {
    let input = f32s((0..ITEMS as usize).map(|i| (i * i) as f32));
    let out = f32s((0..ITEMS as usize).map(|_| 0.0));
    check_matrix(
        "blur.cl",
        "__kernel void blur(__global const float* in, __global float* out, int n) {
            int gid = (int)get_global_id(0);
            float acc = 0.0f;
            for (int k = -1; k <= 1; ++k) {
                int idx = gid + k;
                if (idx < 0) idx = 0;
                if (idx >= n) idx = n - 1;
                acc += in[idx];
            }
            out[gid] = acc / 3.0f;
        }",
        "blur",
        &[input, out],
        &[Value::I32(ITEMS as i32)],
    );
}

#[test]
fn nan_ternary_and_builtins() {
    let out = i32s((0..ITEMS as usize).map(|_| -1));
    check_matrix(
        "nan.cl",
        "float nan_helper() { return sqrt(-1.0f); }
        __kernel void t(__global int* out) {
            int gid = (int)get_global_id(0);
            float n = nan_helper();
            float v = fabs((float)gid - 3.5f);
            out[gid] = (n == n) ? 1 : (int)floor(v * 2.0f);
        }",
        "t",
        &[out],
        &[],
    );
}

#[test]
fn constant_trip_nested_loops_unroll() {
    let out = i32s((0..ITEMS as usize).map(|_| 0));
    check_matrix(
        "unroll.cl",
        "int cell(int r, int c) { return r * 3 + c; }
        __kernel void t(__global int* out) {
            int gid = (int)get_global_id(0);
            int sum = 0;
            for (int i = 0; i < 3; ++i)
                for (int j = 0; j < 3; ++j)
                    sum += cell(i, j) * gid;
            out[gid] = sum;
        }",
        "t",
        &[out],
        &[],
    );
}

#[test]
fn runtime_division_and_mixed_signedness() {
    let out = i32s((0..ITEMS as usize).map(|_| 0));
    check_matrix(
        "divmix.cl",
        "__kernel void t(__global int* out, int d) {
            int gid = (int)get_global_id(0);
            int q = (gid * 100 - 37) / d;
            int r = (gid + 11) % (d + 2);
            unsigned int u = (unsigned int)(gid - 4);
            out[gid] = q + r + (int)(u >> 29);
        }",
        "t",
        &[out],
        &[Value::I32(7)],
    );
}

#[test]
fn loop_invariant_address_math() {
    let rows = ITEMS as usize;
    let cols = 6usize;
    let input = f32s((0..rows * cols).map(|i| (i as f32).sin()));
    let out = f32s((0..rows).map(|_| 0.0));
    check_matrix(
        "licm.cl",
        "__kernel void rowsum(__global const float* m, __global float* out, int cols) {
            int row = (int)get_global_id(0);
            float acc = 0.0f;
            for (int c = 0; c < cols; ++c) acc += m[row * cols + c];
            out[row] = acc * 0.5f + 1.0f;
        }",
        "rowsum",
        &[input, out],
        &[Value::I32(cols as i32)],
    );
}
