//! Golden tests for the MIR pretty-printer behind `SKELCL_KERNEL_DUMP`.
//!
//! These pin the exact textual shape of the MIR dump — block labels,
//! register numbering, instruction mnemonics — so accidental format churn
//! (which breaks downstream dump-diffing scripts) shows up as a test
//! failure with a readable diff.

use skelcl_kernel::{diag::Diagnostics, inline, mir, parser, passes, sema, source::SourceFile};

fn mir_dump(src: &str, cfg: &passes::OptConfig) -> String {
    let f = SourceFile::new("t.cl", src);
    let mut d = Diagnostics::new();
    let tu = parser::parse(&f, &mut d);
    let mut unit = sema::analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&f)));
    inline::inline_unit(&mut unit);
    let mut m = mir::lower_unit(&unit);
    passes::run(&mut m, cfg);
    skelcl_kernel::pretty::mir_unit_to_string(&m)
}

#[test]
fn straight_line_function_golden() {
    let got = mir_dump(
        "int f(int a){ return a * 2 + 1; }",
        &passes::OptConfig::none(),
    );
    let want = "\
fn f (params: 1, locals: 1, vregs: 5)
bb0:
    v0 = get_local 0
    v1 = const 2
    v2 = bin Mul v0, v1
    v3 = const 1
    v4 = bin Add v2, v3
    return v4

";
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn optimized_branch_golden() {
    // `3 < 4` folds, the branch collapses, and DCE sweeps the dead arm.
    let got = mir_dump(
        "int f(){ if (3 < 4) return 7; return 9; }",
        &passes::OptConfig::all(),
    );
    let want = "\
fn f (params: 0, locals: 0, vregs: 5)
bb0:
    v3 = const 7
    return v3

";
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn loop_golden_has_stable_block_labels() {
    let got = mir_dump(
        "int f(int n){ int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
        &passes::OptConfig::none(),
    );
    // Structure, not exact text: one header with a branch, a body that
    // jumps back, stable `bbN:` labels and `%N` registers throughout.
    assert!(got.starts_with("fn f (params: 1,"), "got:\n{got}");
    for needle in ["bb0:", "bb1:", "branch", "jump bb", "set_local", "cmp Lt"] {
        assert!(got.contains(needle), "missing {needle:?} in:\n{got}");
    }
}
