//! Compiler diagnostics: structured errors with source locations and
//! caret-style rendering, in the spirit of vendor OpenCL build logs.

use std::fmt;

use crate::source::{SourceFile, Span};

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A remark that does not affect compilation.
    Note,
    /// Suspicious but accepted code.
    Warning,
    /// Compilation failed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A single compiler message anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the message is.
    pub severity: Severity,
    /// The primary source range the message refers to.
    pub span: Span,
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
    /// Optional follow-up notes (e.g. "previous definition was here").
    pub notes: Vec<(Span, String)>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attaches a secondary note pointing at `span`.
    pub fn with_note(mut self, span: Span, message: impl Into<String>) -> Self {
        self.notes.push((span, message.into()));
        self
    }

    /// Renders the diagnostic as `file:line:col: severity: message` with a
    /// caret line, like a classic C compiler.
    pub fn render(&self, file: &SourceFile) -> String {
        let mut out = String::new();
        render_one(&mut out, file, self.severity, self.span, &self.message);
        for (span, note) in &self.notes {
            out.push('\n');
            render_one(&mut out, file, Severity::Note, *span, note);
        }
        out
    }
}

fn render_one(out: &mut String, file: &SourceFile, sev: Severity, span: Span, msg: &str) {
    use fmt::Write;
    let lc = file.line_col(span.start);
    let line = file.line_text(span.start);
    write!(out, "{}:{}: {}: {}", file.name(), lc, sev, msg).unwrap();
    write!(out, "\n  {line}\n  ").unwrap();
    for _ in 1..lc.col {
        out.push(' ');
    }
    out.push('^');
    // Underline the rest of the span while it stays on the same line.
    let same_line = (span.len() as usize).min(line.len().saturating_sub(lc.col as usize - 1));
    for _ in 1..same_line {
        out.push('~');
    }
}

/// An ordered collection of diagnostics produced by one compilation.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Convenience for pushing an error.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(span, message));
    }

    /// Convenience for pushing a warning.
    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::warning(span, message));
    }

    /// Whether any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// All recorded diagnostics in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of recorded diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no diagnostics were recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Renders every diagnostic against `file`, one block per message,
    /// producing a vendor-style build log.
    pub fn render(&self, file: &SourceFile) -> String {
        let mut blocks: Vec<String> = Vec::with_capacity(self.items.len());
        for d in &self.items {
            blocks.push(d.render(file));
        }
        blocks.join("\n")
    }

    /// Consumes the collection, returning the diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_offending_token() {
        let f = SourceFile::new("k.cl", "float func(float x) {\n  return y;\n}\n");
        let span = Span::new(31, 32); // the `y`
        assert_eq!(f.snippet(span), "y");
        let d = Diagnostic::error(span, "use of undeclared identifier `y`");
        let rendered = d.render(&f);
        assert!(rendered.starts_with("k.cl:2:10: error: use of undeclared identifier `y`"));
        assert!(rendered.contains("return y;"));
        assert!(rendered.ends_with("         ^"));
    }

    #[test]
    fn render_underlines_multibyte_spans() {
        let f = SourceFile::new("k.cl", "int foo = bar + 1;");
        let span = Span::new(10, 13); // `bar`
        let d = Diagnostic::error(span, "unknown");
        let r = d.render(&f);
        assert!(r.ends_with("^~~"), "got: {r}");
    }

    #[test]
    fn notes_render_after_primary() {
        let f = SourceFile::new("k.cl", "int x;\nint x;");
        let d = Diagnostic::error(Span::new(11, 12), "redefinition of `x`")
            .with_note(Span::new(4, 5), "previous definition is here");
        let r = d.render(&f);
        assert!(r.contains("error: redefinition"));
        assert!(r.contains("note: previous definition"));
    }

    #[test]
    fn diagnostics_error_tracking() {
        let mut ds = Diagnostics::new();
        assert!(!ds.has_errors());
        assert!(ds.is_empty());
        ds.warning(Span::point(0), "unused");
        assert!(!ds.has_errors());
        ds.error(Span::point(0), "bad");
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
    }
}
