//! The SkelCL C type system: scalar types, address spaces and pointers.
//!
//! The subset deliberately mirrors what SkelCL-generated kernels need:
//! scalars, and pointers-to-scalar in the `global`, `local` and `private`
//! address spaces. There are no pointer-to-pointer types, structs or vector
//! types.

use std::fmt;

/// A scalar (non-pointer) kernel type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// `bool` (stored as one byte).
    Bool,
    /// `char`: signed 8-bit.
    Char,
    /// `uchar`: unsigned 8-bit.
    UChar,
    /// `short`: signed 16-bit.
    Short,
    /// `ushort`: unsigned 16-bit.
    UShort,
    /// `int`: signed 32-bit.
    Int,
    /// `uint`: unsigned 32-bit.
    UInt,
    /// `long`: signed 64-bit.
    Long,
    /// `ulong`: unsigned 64-bit.
    ULong,
    /// `float`: IEEE-754 binary32.
    Float,
    /// `double`: IEEE-754 binary64.
    Double,
}

impl ScalarType {
    /// Size of a value of this type in bytes, as stored in buffers.
    pub fn size_bytes(self) -> usize {
        use ScalarType::*;
        match self {
            Bool | Char | UChar => 1,
            Short | UShort => 2,
            Int | UInt | Float => 4,
            Long | ULong | Double => 8,
        }
    }

    /// Whether the type is an integer type (`bool` is not).
    pub fn is_integer(self) -> bool {
        use ScalarType::*;
        matches!(
            self,
            Char | UChar | Short | UShort | Int | UInt | Long | ULong
        )
    }

    /// Whether the type is `float` or `double`.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::Float | ScalarType::Double)
    }

    /// Whether the type is a signed integer type.
    pub fn is_signed_integer(self) -> bool {
        use ScalarType::*;
        matches!(self, Char | Short | Int | Long)
    }

    /// Whether the type is an unsigned integer type.
    pub fn is_unsigned_integer(self) -> bool {
        use ScalarType::*;
        matches!(self, UChar | UShort | UInt | ULong)
    }

    /// Conversion rank used for usual arithmetic conversions. Higher rank
    /// wins; unsigned beats signed at equal width (C semantics, simplified).
    pub fn rank(self) -> u8 {
        use ScalarType::*;
        match self {
            Bool => 0,
            Char => 10,
            UChar => 11,
            Short => 20,
            UShort => 21,
            Int => 30,
            UInt => 31,
            Long => 40,
            ULong => 41,
            Float => 50,
            Double => 60,
        }
    }

    /// The OpenCL C spelling of the type.
    pub fn name(self) -> &'static str {
        use ScalarType::*;
        match self {
            Bool => "bool",
            Char => "char",
            UChar => "uchar",
            Short => "short",
            UShort => "ushort",
            Int => "int",
            UInt => "uint",
            Long => "long",
            ULong => "ulong",
            Float => "float",
            Double => "double",
        }
    }

    /// All scalar types, for exhaustive tests.
    pub const ALL: [ScalarType; 11] = [
        ScalarType::Bool,
        ScalarType::Char,
        ScalarType::UChar,
        ScalarType::Short,
        ScalarType::UShort,
        ScalarType::Int,
        ScalarType::UInt,
        ScalarType::Long,
        ScalarType::ULong,
        ScalarType::Float,
        ScalarType::Double,
    ];
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// OpenCL address space of a pointer or variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressSpace {
    /// Per-work-item memory (default for locals and scalars).
    #[default]
    Private,
    /// Device global memory, shared by all work-items.
    Global,
    /// Work-group local memory, shared within one work-group.
    Local,
}

impl AddressSpace {
    /// The OpenCL C qualifier spelling.
    pub fn name(self) -> &'static str {
        match self {
            AddressSpace::Private => "__private",
            AddressSpace::Global => "__global",
            AddressSpace::Local => "__local",
        }
    }
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete SkelCL C type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// The `void` type (function returns only).
    Void,
    /// A scalar value.
    Scalar(ScalarType),
    /// A pointer to a scalar in some address space.
    Pointer {
        /// The pointed-to element type.
        pointee: ScalarType,
        /// Which memory the pointer refers to.
        space: AddressSpace,
        /// Whether stores through the pointer are rejected.
        is_const: bool,
    },
}

impl Type {
    /// Shorthand for a scalar type.
    pub fn scalar(s: ScalarType) -> Type {
        Type::Scalar(s)
    }

    /// Shorthand for a mutable global pointer.
    pub fn global_ptr(pointee: ScalarType) -> Type {
        Type::Pointer {
            pointee,
            space: AddressSpace::Global,
            is_const: false,
        }
    }

    /// Shorthand for a const global pointer.
    pub fn const_global_ptr(pointee: ScalarType) -> Type {
        Type::Pointer {
            pointee,
            space: AddressSpace::Global,
            is_const: true,
        }
    }

    /// Shorthand for a local-memory pointer.
    pub fn local_ptr(pointee: ScalarType) -> Type {
        Type::Pointer {
            pointee,
            space: AddressSpace::Local,
            is_const: false,
        }
    }

    /// The scalar type if this is a scalar.
    pub fn as_scalar(self) -> Option<ScalarType> {
        match self {
            Type::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the type is a pointer.
    pub fn is_pointer(self) -> bool {
        matches!(self, Type::Pointer { .. })
    }

    /// Whether the type is usable in arithmetic (any scalar, incl. `bool`
    /// which promotes to `int`).
    pub fn is_arithmetic(self) -> bool {
        matches!(self, Type::Scalar(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Pointer {
                pointee,
                space,
                is_const,
            } => {
                if *is_const {
                    write!(f, "const ")?;
                }
                match space {
                    AddressSpace::Private => write!(f, "{pointee}*"),
                    _ => write!(f, "{space} {pointee}*"),
                }
            }
        }
    }
}

/// Computes the common type of the usual arithmetic conversions for two
/// scalar operands, following simplified C rules:
///
/// * if either is `double`, the result is `double`;
/// * else if either is `float`, the result is `float`;
/// * else both are promoted to at least `int`, and the higher-ranked
///   (width, then unsignedness) type wins.
pub fn usual_arithmetic_conversion(a: ScalarType, b: ScalarType) -> ScalarType {
    use ScalarType::*;
    if a == Double || b == Double {
        return Double;
    }
    if a == Float || b == Float {
        return Float;
    }
    let pa = integer_promote(a);
    let pb = integer_promote(b);
    if pa == pb {
        return pa;
    }
    let (lo, hi) = if pa.rank() < pb.rank() {
        (pa, pb)
    } else {
        (pb, pa)
    };
    // Same width, differing signedness: the unsigned type wins (e.g.
    // int + uint -> uint). Otherwise the wider type wins.
    if lo.size_bytes() == hi.size_bytes() {
        if hi.is_unsigned_integer() {
            hi
        } else {
            lo
        }
    } else {
        hi
    }
}

/// Integer promotion: `bool`, `char`, `uchar`, `short` and `ushort` promote
/// to `int` (all their values fit).
pub fn integer_promote(s: ScalarType) -> ScalarType {
    use ScalarType::*;
    match s {
        Bool | Char | UChar | Short | UShort => Int,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ScalarType::*;

    #[test]
    fn sizes() {
        assert_eq!(Char.size_bytes(), 1);
        assert_eq!(UShort.size_bytes(), 2);
        assert_eq!(Float.size_bytes(), 4);
        assert_eq!(Double.size_bytes(), 8);
        assert_eq!(ULong.size_bytes(), 8);
    }

    #[test]
    fn classification_is_partitioned() {
        for s in ScalarType::ALL {
            let classes = [s.is_integer(), s.is_float(), s == Bool]
                .iter()
                .filter(|&&b| b)
                .count();
            assert_eq!(classes, 1, "{s} must be in exactly one class");
            if s.is_integer() {
                assert_ne!(s.is_signed_integer(), s.is_unsigned_integer());
            }
        }
    }

    #[test]
    fn arithmetic_conversions_match_c() {
        assert_eq!(usual_arithmetic_conversion(Char, Char), Int);
        assert_eq!(usual_arithmetic_conversion(Short, UShort), Int);
        assert_eq!(usual_arithmetic_conversion(Int, UInt), UInt);
        assert_eq!(usual_arithmetic_conversion(Int, Long), Long);
        assert_eq!(usual_arithmetic_conversion(UInt, Long), Long);
        assert_eq!(usual_arithmetic_conversion(Long, ULong), ULong);
        assert_eq!(usual_arithmetic_conversion(Int, Float), Float);
        assert_eq!(usual_arithmetic_conversion(Float, Double), Double);
        assert_eq!(usual_arithmetic_conversion(Bool, Bool), Int);
    }

    #[test]
    fn conversion_is_commutative() {
        for a in ScalarType::ALL {
            for b in ScalarType::ALL {
                assert_eq!(
                    usual_arithmetic_conversion(a, b),
                    usual_arithmetic_conversion(b, a),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::scalar(Float).to_string(), "float");
        assert_eq!(Type::global_ptr(Char).to_string(), "__global char*");
        assert_eq!(
            Type::const_global_ptr(Float).to_string(),
            "const __global float*"
        );
        assert_eq!(Type::local_ptr(Int).to_string(), "__local int*");
        assert_eq!(
            Type::Pointer {
                pointee: Int,
                space: AddressSpace::Private,
                is_const: false
            }
            .to_string(),
            "int*"
        );
        assert_eq!(Type::Void.to_string(), "void");
    }
}
