//! Control-flow-graph analyses and cleanup over [`crate::mir`].
//!
//! Provides the building blocks the optimization passes share:
//! predecessor lists, reverse post-order, iterative dominators
//! (Cooper–Harvey–Kennedy), natural-loop discovery from back edges, and a
//! `simplify` cleanup that folds trivially-redundant control flow
//! (branch-to-same-target, empty-block threading, single-predecessor block
//! merging, unreachable-block removal).

use std::collections::HashSet;

use crate::mir::{Block, BlockId, MirFunction, Terminator};

/// Predecessor lists, indexed by block.
pub fn predecessors(f: &MirFunction) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for (i, b) in f.blocks.iter().enumerate() {
        for s in b.term.successors() {
            preds[s.idx()].push(BlockId(i as u32));
        }
    }
    preds
}

/// Reverse post-order over reachable blocks, starting at the entry.
pub fn reverse_post_order(f: &MirFunction) -> Vec<BlockId> {
    let mut visited = vec![false; f.blocks.len()];
    let mut post = Vec::with_capacity(f.blocks.len());
    // Iterative DFS with an explicit "children pushed" marker.
    let mut stack = vec![(BlockId(0), false)];
    while let Some((bb, children_done)) = stack.pop() {
        if children_done {
            post.push(bb);
            continue;
        }
        if visited[bb.idx()] {
            continue;
        }
        visited[bb.idx()] = true;
        stack.push((bb, true));
        let succs = f.blocks[bb.idx()].term.successors();
        for s in succs.into_iter().rev() {
            if !visited[s.idx()] {
                stack.push((s, false));
            }
        }
    }
    post.reverse();
    post
}

/// Immediate dominators of every reachable block (`idom[entry] == entry`;
/// unreachable blocks map to `None`).
pub fn dominators(f: &MirFunction) -> Vec<Option<BlockId>> {
    let rpo = reverse_post_order(f);
    let preds = predecessors(f);
    let mut rpo_index = vec![usize::MAX; f.blocks.len()];
    for (i, b) in rpo.iter().enumerate() {
        rpo_index[b.idx()] = i;
    }
    let mut idom: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    idom[0] = Some(BlockId(0));

    let intersect =
        |idom: &[Option<BlockId>], rpo_index: &[usize], mut a: BlockId, mut b: BlockId| {
            while a != b {
                while rpo_index[a.idx()] > rpo_index[b.idx()] {
                    a = idom[a.idx()].expect("processed");
                }
                while rpo_index[b.idx()] > rpo_index[a.idx()] {
                    b = idom[b.idx()].expect("processed");
                }
            }
            a
        };

    let mut changed = true;
    while changed {
        changed = false;
        for &bb in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[bb.idx()] {
                if idom[p.idx()].is_none() {
                    continue; // not yet processed or unreachable
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_index, p, cur),
                });
            }
            if let Some(ni) = new_idom {
                if idom[bb.idx()] != Some(ni) {
                    idom[bb.idx()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// Whether `a` dominates `b` under `idom` (reflexive).
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.idx()] {
            Some(next) if next != cur => cur = next,
            _ => return false,
        }
    }
}

/// A natural loop: the header plus every block that can reach a back edge
/// without leaving through the header.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// Sources of back edges into the header.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, header included.
    pub blocks: Vec<BlockId>,
}

/// Discovers the natural loops of `f`. Loops sharing a header are merged.
/// Returned innermost-first (by ascending block count), so passes that
/// process loops in order handle nested loops inside-out.
pub fn natural_loops(f: &MirFunction) -> Vec<NaturalLoop> {
    let idom = dominators(f);
    let preds = predecessors(f);
    let mut loops: Vec<NaturalLoop> = Vec::new();

    for (i, b) in f.blocks.iter().enumerate() {
        let u = BlockId(i as u32);
        if idom[i].is_none() {
            continue; // unreachable
        }
        for h in b.term.successors() {
            if dominates(&idom, h, u) {
                // Back edge u -> h: collect the loop body by walking
                // predecessors from u until h.
                let mut body: HashSet<BlockId> = HashSet::new();
                body.insert(h);
                let mut stack = vec![u];
                while let Some(n) = stack.pop() {
                    if body.insert(n) {
                        for &p in &preds[n.idx()] {
                            stack.push(p);
                        }
                    }
                }
                if let Some(existing) = loops.iter_mut().find(|l| l.header == h) {
                    existing.latches.push(u);
                    for bb in body {
                        if !existing.blocks.contains(&bb) {
                            existing.blocks.push(bb);
                        }
                    }
                } else {
                    let mut blocks: Vec<BlockId> = body.into_iter().collect();
                    blocks.sort();
                    loops.push(NaturalLoop {
                        header: h,
                        latches: vec![u],
                        blocks,
                    });
                }
            }
        }
    }
    for l in &mut loops {
        l.blocks.sort();
    }
    loops.sort_by_key(|l| l.blocks.len());
    loops
}

/// Inserts a preheader block in front of `header`: every edge into the
/// header from outside `loop_blocks` is redirected through a fresh block
/// that jumps to the header. Returns the preheader's id.
pub fn insert_preheader(f: &mut MirFunction, header: BlockId, loop_blocks: &[BlockId]) -> BlockId {
    let pre = BlockId(f.blocks.len() as u32);
    f.blocks.push(Block {
        insts: Vec::new(),
        term: Terminator::Jump(header),
    });
    let in_loop: HashSet<BlockId> = loop_blocks.iter().copied().collect();
    for (i, b) in f.blocks.iter_mut().enumerate() {
        let from = BlockId(i as u32);
        if from == pre || in_loop.contains(&from) {
            continue;
        }
        b.term.for_each_succ_mut(|s| {
            if *s == header {
                *s = pre;
            }
        });
    }
    pre
}

/// Folds trivially-redundant control flow until a fixed point:
///
/// 1. `Branch` with identical targets → `Jump`;
/// 2. edges through empty `Jump`-only blocks are threaded to their target;
/// 3. a block whose terminator is `Jump(c)` absorbs `c` when it is `c`'s
///    only predecessor;
/// 4. unreachable blocks are dropped (ids are compacted).
pub fn simplify(f: &mut MirFunction) {
    loop {
        let mut changed = false;

        // 1. Branch with equal targets.
        for b in &mut f.blocks {
            if let Terminator::Branch {
                then_bb, else_bb, ..
            } = b.term
            {
                if then_bb == else_bb {
                    b.term = Terminator::Jump(then_bb);
                    changed = true;
                }
            }
        }

        // 2. Thread through empty jump-only blocks (resolving chains, with
        // cycle protection for degenerate empty infinite loops).
        let resolve: Vec<BlockId> = (0..f.blocks.len())
            .map(|i| {
                let mut cur = BlockId(i as u32);
                let mut seen = HashSet::new();
                while f.blocks[cur.idx()].insts.is_empty() && seen.insert(cur) {
                    match f.blocks[cur.idx()].term {
                        Terminator::Jump(t) if t != cur => cur = t,
                        _ => break,
                    }
                }
                cur
            })
            .collect();
        for b in &mut f.blocks {
            b.term.for_each_succ_mut(|s| {
                let r = resolve[s.idx()];
                if r != *s {
                    *s = r;
                    changed = true;
                }
            });
        }

        // 3. Merge single-pred/single-succ pairs.
        let preds = predecessors(f);
        for i in 0..f.blocks.len() {
            let Terminator::Jump(c) = f.blocks[i].term else {
                continue;
            };
            if c.idx() == i || c == BlockId(0) {
                continue;
            }
            if preds[c.idx()].len() != 1 {
                continue;
            }
            // Absorb c into i.
            let Block { insts, term } = std::mem::replace(
                &mut f.blocks[c.idx()],
                Block {
                    insts: Vec::new(),
                    term: Terminator::MissingReturn,
                },
            );
            f.blocks[i].insts.extend(insts);
            f.blocks[i].term = term;
            changed = true;
            // `preds` is stale now; restart the scan.
            break;
        }

        // 4. Drop unreachable blocks and compact ids.
        let rpo = reverse_post_order(f);
        if rpo.len() != f.blocks.len() {
            let mut remap = vec![None; f.blocks.len()];
            let mut kept = Vec::with_capacity(rpo.len());
            let mut reachable: Vec<BlockId> = rpo;
            reachable.sort();
            for (new_idx, bb) in reachable.iter().enumerate() {
                remap[bb.idx()] = Some(BlockId(new_idx as u32));
            }
            for (i, b) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
                if remap[i].is_some() {
                    kept.push(b);
                }
            }
            for b in &mut kept {
                b.term.for_each_succ_mut(|s| {
                    *s = remap[s.idx()].expect("successor of reachable block is reachable");
                });
            }
            f.blocks = kept;
            changed = true;
        }

        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::{Inst, VReg};
    use crate::value::Value;

    fn block(term: Terminator) -> Block {
        Block {
            insts: Vec::new(),
            term,
        }
    }

    fn func(blocks: Vec<Block>) -> MirFunction {
        MirFunction {
            name: "t".into(),
            is_kernel: false,
            param_count: 0,
            local_init: vec![],
            blocks,
            vreg_count: 16,
            returns_void: true,
        }
    }

    #[test]
    fn rpo_starts_at_entry_and_skips_unreachable() {
        let f = func(vec![
            block(Terminator::Jump(BlockId(2))),
            block(Terminator::Return(None)), // unreachable
            block(Terminator::Return(None)),
        ]);
        let rpo = reverse_post_order(&f);
        assert_eq!(rpo, vec![BlockId(0), BlockId(2)]);
    }

    #[test]
    fn dominators_of_diamond() {
        // 0 -> {1, 2} -> 3
        let f = func(vec![
            block(Terminator::Branch {
                cond: VReg(0),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            }),
            block(Terminator::Jump(BlockId(3))),
            block(Terminator::Jump(BlockId(3))),
            block(Terminator::Return(None)),
        ]);
        let idom = dominators(&f);
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(0)));
        assert_eq!(idom[3], Some(BlockId(0)));
        assert!(dominates(&idom, BlockId(0), BlockId(3)));
        assert!(!dominates(&idom, BlockId(1), BlockId(3)));
    }

    #[test]
    fn natural_loop_discovery() {
        // 0 -> 1 (header) -> {2 (body), 3 (exit)}; 2 -> 1.
        let f = func(vec![
            block(Terminator::Jump(BlockId(1))),
            block(Terminator::Branch {
                cond: VReg(0),
                then_bb: BlockId(2),
                else_bb: BlockId(3),
            }),
            block(Terminator::Jump(BlockId(1))),
            block(Terminator::Return(None)),
        ]);
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, BlockId(1));
        assert_eq!(loops[0].latches, vec![BlockId(2)]);
        let mut blocks = loops[0].blocks.clone();
        blocks.sort();
        assert_eq!(blocks, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn simplify_threads_and_merges() {
        // 0 -> 1 (empty) -> 2; after simplify everything collapses into one
        // block ending in Return.
        let mut f = func(vec![
            block(Terminator::Jump(BlockId(1))),
            block(Terminator::Jump(BlockId(2))),
            block(Terminator::Return(None)),
        ]);
        f.blocks[2].insts.push(Inst::Const {
            dst: VReg(0),
            value: Value::I32(1),
        });
        simplify(&mut f);
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(f.blocks[0].term, Terminator::Return(None)));
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn simplify_removes_unreachable() {
        let mut f = func(vec![
            block(Terminator::Return(None)),
            block(Terminator::Return(None)),
        ]);
        simplify(&mut f);
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    fn preheader_redirects_outside_edges() {
        // 0 -> 1 (header); 2 -> 1 is the back edge.
        let mut f = func(vec![
            block(Terminator::Jump(BlockId(1))),
            block(Terminator::Branch {
                cond: VReg(0),
                then_bb: BlockId(2),
                else_bb: BlockId(3),
            }),
            block(Terminator::Jump(BlockId(1))),
            block(Terminator::Return(None)),
        ]);
        let pre = insert_preheader(&mut f, BlockId(1), &[BlockId(1), BlockId(2)]);
        assert_eq!(f.blocks[0].term, Terminator::Jump(pre));
        assert_eq!(f.blocks[2].term, Terminator::Jump(BlockId(1)));
        assert_eq!(f.blocks[pre.idx()].term, Terminator::Jump(BlockId(1)));
    }
}
