//! MIR → stack-bytecode lowering with greedy register allocation.
//!
//! The legacy code generator ([`crate::codegen`]) walks the HIR and spills
//! every intermediate value through `LoadLocal`/`StoreLocal` pairs. This
//! lowering instead schedules each basic block against a model of the VM's
//! operand stack:
//!
//! * **rematerialized** values — constants, reads of slots that are never
//!   written (parameters, `__local` arrays), and reads of written slots
//!   whose every use happens before the slot's next store — are re-emitted
//!   at each use and never occupy a slot or a stack entry;
//! * **deferred chains** — pure, non-faulting, single-use computations
//!   whose operands are themselves rematerializable (array-index math:
//!   `GetLocal → Convert → PtrOffset`) — are emitted at their use site, so
//!   operands arrive on the stack in exactly the order the consumer pops
//!   them;
//! * **stack-resident** values — defined and used exactly once in the same
//!   block — ride the operand stack from def to use and never touch a
//!   local slot;
//! * everything else gets a dedicated **spill slot** appended after the
//!   function's named locals (written at the def, loaded at each use).
//!
//! When an instruction's operands are not already on top of the stack in
//! the right order, residents are flushed to spill slots and the operands
//! reloaded — a correctness fallback that keeps the scheduler greedy and
//! linear. Blocks are laid out in reverse post-order with fall-through
//! jump elision; the resulting bytecode typically retires well over half
//! of the legacy `LoadLocal`/`StoreLocal` traffic, which also exposes
//! longer fusable chains to the superinstruction decoder.

use std::collections::HashMap;

use crate::cfg;
use crate::hir;
use crate::ir::{FuncCode, Op};
use crate::mir::{BlockId, Inst, MirFunction, MirUnit, Terminator, VReg};
use crate::program::Program;
use crate::value::Value;

/// Assembles an executable [`Program`] from an optimized MIR unit.
///
/// `hir_unit` supplies the kernel launch metadata (parameter kinds,
/// `__local` array layout) via the same [`crate::codegen::kernel_info`]
/// the legacy pipeline uses, so binding behaviour is identical.
pub fn emit_unit(mir: &MirUnit, hir_unit: &hir::Unit, source_name: &str) -> Program {
    let mut functions = Vec::with_capacity(mir.functions.len());
    let mut kernels = Vec::new();
    for (idx, (mf, hf)) in mir.functions.iter().zip(&hir_unit.functions).enumerate() {
        functions.push(emit_function(mf));
        if hf.is_kernel {
            let mut info = crate::codegen::kernel_info(hf, idx as u16);
            info.barrier_count = mir.barrier_count;
            kernels.push(info);
        }
    }
    Program::from_parts(functions, kernels, source_name)
}

/// How a register's value is obtained at a use site.
#[derive(Debug, Clone, Copy)]
enum Storage {
    /// Re-emit `Const` at each use.
    RematConst(Value),
    /// Re-emit `LoadLocal` at each use: the slot is either never written,
    /// or every use was proven to precede the slot's next store.
    RematLocal(u16),
    /// A pure single-use computation emitted at its use site; the payload
    /// locates the defining instruction.
    Chain(BlockId, usize),
    /// Load from a dedicated spill slot.
    Spilled(u16),
    /// On the operand stack between its def and its single use.
    Stack,
}

/// Lowers one function to stack bytecode.
pub fn emit_function(f: &MirFunction) -> FuncCode {
    FnEmit::new(f).run()
}

/// Whether `inst` may be emitted at its use site instead of its program
/// position: pure and non-faulting (the same fault model the passes use —
/// division only with a known-safe constant divisor), so reordering it
/// past stores, calls and barriers is unobservable.
fn deferrable(inst: &Inst, const_val: &[Option<Value>]) -> bool {
    match inst {
        Inst::Un { .. }
        | Inst::Cmp { .. }
        | Inst::Convert { .. }
        | Inst::ToBool { .. }
        | Inst::PtrOffset { .. }
        | Inst::WorkItem { .. } => true,
        Inst::Bin {
            op: hir::BinOp::Div | hir::BinOp::Rem,
            rhs,
            ..
        } => match const_val[rhs.0 as usize] {
            Some(Value::F32(_) | Value::F64(_)) => true,
            Some(v) => !matches!(v, Value::Ptr(_)) && v.as_i64() != 0,
            None => false,
        },
        Inst::Bin { .. } => true,
        _ => false,
    }
}

/// The order in which [`FnEmit::inst`] pushes an instruction's operands
/// onto the stack (bottom first). Matches `for_each_use` except for
/// `StoreMem`, whose VM op pops the pointer first.
fn push_order(inst: &Inst) -> Vec<VReg> {
    let mut v = Vec::new();
    match inst {
        Inst::StoreMem { ptr, value, .. } => {
            v.push(*value);
            v.push(*ptr);
        }
        _ => inst.for_each_use(|u| v.push(u)),
    }
    v
}

/// What a value's single consumer wants from it.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Demand {
    /// Push at the def; the consumer finds it on the stack in order.
    Stack,
    /// Do not occupy the stack; rematerialize or chain at the use site.
    Defer,
}

struct FnEmit<'a> {
    f: &'a MirFunction,
    code: Vec<Op>,
    local_init: Vec<Value>,
    /// Total use count per register (instructions + terminators).
    use_count: Vec<u32>,
    /// Single-use position per register: `(block, index)` where the
    /// terminator counts as index `insts.len()`. Only meaningful when
    /// `use_count == 1`.
    single_use_at: Vec<Option<(BlockId, usize)>>,
    storage: Vec<Option<Storage>>,
    /// Model of the VM operand stack between instructions (resident
    /// registers only; operand pushes are transient within one
    /// instruction).
    stack: Vec<VReg>,
    /// Emitted jump indices awaiting their target block's address.
    patches: Vec<(usize, BlockId)>,
    block_pc: HashMap<BlockId, u32>,
}

impl<'a> FnEmit<'a> {
    fn new(f: &'a MirFunction) -> Self {
        let n = f.vreg_count as usize;
        // Every use position and the def position of each register (the
        // terminator counts as index `insts.len()`).
        let mut uses: Vec<Vec<(BlockId, usize)>> = vec![Vec::new(); n];
        let mut def_at: Vec<Option<(BlockId, usize)>> = vec![None; n];
        for (bi, b) in f.blocks.iter().enumerate() {
            let bb = BlockId(bi as u32);
            for (i, inst) in b.insts.iter().enumerate() {
                inst.for_each_use(|u| uses[u.0 as usize].push((bb, i)));
                if let Some(d) = inst.dst() {
                    def_at[d.0 as usize] = Some((bb, i));
                }
            }
            b.term
                .for_each_use(|u| uses[u.0 as usize].push((bb, b.insts.len())));
        }
        let use_count: Vec<u32> = uses.iter().map(|u| u.len() as u32).collect();
        let single_use_at: Vec<Option<(BlockId, usize)>> = uses
            .iter()
            .map(|u| if u.len() == 1 { Some(u[0]) } else { None })
            .collect();

        // Slots written anywhere in the function; reads of the rest can be
        // re-emitted at every use site unconditionally.
        let mut written = vec![false; f.local_init.len()];
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::SetLocal { slot, .. } = inst {
                    written[*slot as usize] = true;
                }
            }
        }

        // Constant-defined registers (for the chain division-safety test).
        let mut const_val: Vec<Option<Value>> = vec![None; n];
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::Const { dst, value } = inst {
                    const_val[dst.0 as usize] = Some(*value);
                }
            }
        }

        let mut storage: Vec<Option<Storage>> = vec![None; n];
        // Constrained remat leaves per register: `(slot, def index)` pairs
        // whose slot must see no store between the def and the (possibly
        // deferred) emission point. Written-slot reads carry their own
        // position; chains accumulate their operands' leaves transitively.
        let mut leaves: Vec<Vec<(u16, usize)>> = vec![Vec::new(); n];
        // What each value's single consumer asked for (demand-driven: the
        // consumer decides before its operands are classified).
        let mut demand: Vec<Option<Demand>> = vec![None; n];
        for (bi, b) in f.blocks.iter().enumerate() {
            let bb = BlockId(bi as u32);
            let mut set_pos: HashMap<u16, Vec<usize>> = HashMap::new();
            for (i, inst) in b.insts.iter().enumerate() {
                if let Inst::SetLocal { slot, .. } = inst {
                    set_pos.entry(*slot).or_default().push(i);
                }
            }
            // No store to `slot` strictly between positions `lo` and `hi`.
            let clear = |set_pos: &HashMap<u16, Vec<usize>>, slot: u16, lo: usize, hi: usize| {
                set_pos
                    .get(&slot)
                    .is_none_or(|ps| !ps.iter().any(|&p| p > lo && p < hi))
            };
            // An operand the consumer at `pos` may direct: defined in this
            // block before `pos` and used nowhere else. Returns the def
            // index.
            let eligible = |o: VReg, pos: usize| -> Option<usize> {
                match (def_at[o.0 as usize], single_use_at[o.0 as usize]) {
                    (Some((db, di)), Some((ub, ui)))
                        if db == bb && ub == bb && ui == pos && di < pos =>
                    {
                        Some(di)
                    }
                    _ => None,
                }
            };
            // A consumer emitted at `pos` pops its operands in push order:
            // the longest prefix whose defs appear in increasing order can
            // ride the stack (each lands exactly where it is popped); the
            // rest must stay off the stack and be re-created at the use.
            let demand_prefix = |demand: &mut Vec<Option<Demand>>, ops: &[VReg], pos: usize| {
                let mut last_def: Option<usize> = None;
                let mut in_prefix = true;
                for &o in ops {
                    match eligible(o, pos) {
                        Some(di) => {
                            if in_prefix && last_def.is_none_or(|l| di > l) {
                                demand[o.0 as usize] = Some(Demand::Stack);
                                last_def = Some(di);
                            } else {
                                in_prefix = false;
                                demand[o.0 as usize] = Some(Demand::Defer);
                            }
                        }
                        None => in_prefix = false,
                    }
                }
            };

            // --- Backward demand pass: consumers first. ---
            let mut term_ops = Vec::new();
            b.term.for_each_use(|u| term_ops.push(u));
            demand_prefix(&mut demand, &term_ops, b.insts.len());
            for (i, inst) in b.insts.iter().enumerate().rev() {
                let ops = push_order(inst);
                let mut chained = false;
                match inst {
                    Inst::Const { dst, value } => {
                        if demand[dst.0 as usize] != Some(Demand::Stack) {
                            storage[dst.0 as usize] = Some(Storage::RematConst(*value));
                        }
                    }
                    Inst::GetLocal { dst, slot } => {
                        let d = dst.0 as usize;
                        if demand[d] != Some(Demand::Stack) {
                            if !written[*slot as usize] {
                                storage[d] = Some(Storage::RematLocal(*slot));
                            } else if !uses[d].is_empty()
                                && uses[d]
                                    .iter()
                                    .all(|&(ub, ui)| ub == bb && clear(&set_pos, *slot, i, ui))
                            {
                                // Re-reading the slot at each use observes
                                // the same value the original read did.
                                storage[d] = Some(Storage::RematLocal(*slot));
                                leaves[d].push((*slot, i));
                            }
                        }
                    }
                    _ => {
                        if let Some(dst) = inst.dst() {
                            let d = dst.0 as usize;
                            if demand[d] == Some(Demand::Defer) && deferrable(inst, &const_val) {
                                storage[d] = Some(Storage::Chain(bb, i));
                                chained = true;
                            }
                        }
                    }
                }
                if chained {
                    // A chain's operands are re-created at its emission
                    // point; none of them may ride the stack.
                    for &o in &ops {
                        if eligible(o, i).is_some() {
                            demand[o.0 as usize] = Some(Demand::Defer);
                        }
                    }
                } else {
                    demand_prefix(&mut demand, &ops, i);
                }
            }

            // --- Forward validation: every chain operand must be
            // obtainable at the use site (remat or another chain — a
            // stack-resident operand would be buried by then), and remat
            // leaves must survive to the chain's emission point. Demotions
            // cascade: a demoted operand un-chains its consumer too. ---
            for inst in &b.insts {
                let Some(dst) = inst.dst() else { continue };
                let d = dst.0 as usize;
                if !matches!(storage[d], Some(Storage::Chain(..))) {
                    continue;
                }
                let ui = match single_use_at[d] {
                    Some((_, ui)) => ui,
                    None => unreachable!("chained value without a single use"),
                };
                let mut ls: Vec<(u16, usize)> = Vec::new();
                let mut ok = true;
                inst.for_each_use(|o| match storage[o.0 as usize] {
                    Some(Storage::RematConst(_)) => {}
                    Some(Storage::RematLocal(_)) | Some(Storage::Chain(..)) => {
                        ls.extend(leaves[o.0 as usize].iter().copied());
                    }
                    _ => ok = false,
                });
                if ok && ls.iter().all(|&(slot, li)| clear(&set_pos, slot, li, ui)) {
                    leaves[d] = ls;
                } else {
                    storage[d] = None;
                }
            }
        }

        // --- Slot coalescing: for `v = expr; SetLocal s, v` (the store
        // immediately after the def, and the first use of `v`), home `v`
        // in `s` itself instead of a fresh spill slot: the def stores
        // straight into the variable, the `SetLocal` becomes a no-op, and
        // later uses of `v` read `s`. Sound because the emitted store sits
        // exactly where the original one was (no instruction separates def
        // and store, so every remat/chain window computed above stays
        // valid) and no other store to `s` intervenes before `v`'s last
        // use. Restricted to uses within the def's block so the
        // no-intervening-store check stays local.
        for (bi, b) in f.blocks.iter().enumerate() {
            let bb = BlockId(bi as u32);
            let mut store_pos: HashMap<u16, Vec<usize>> = HashMap::new();
            for (i, inst) in b.insts.iter().enumerate() {
                if let Inst::SetLocal { slot, .. } = inst {
                    store_pos.entry(*slot).or_default().push(i);
                }
            }
            for (i, inst) in b.insts.iter().enumerate() {
                let Inst::SetLocal { slot, src } = inst else {
                    continue;
                };
                let v = src.0 as usize;
                if use_count[v] < 2 || storage[v].is_some() {
                    continue;
                }
                if i == 0 || def_at[v] != Some((bb, i - 1)) {
                    continue;
                }
                let us = &uses[v];
                if us.iter().any(|&(ub, _)| ub != bb) {
                    continue;
                }
                let first = us.iter().map(|&(_, ui)| ui).min();
                let last = us.iter().map(|&(_, ui)| ui).max().unwrap_or(i);
                if first != Some(i) {
                    continue;
                }
                let clobbered = store_pos
                    .get(slot)
                    .is_some_and(|ps| ps.iter().any(|&p| p > i && p < last));
                if !clobbered {
                    storage[v] = Some(Storage::Spilled(*slot));
                }
            }
        }

        FnEmit {
            f,
            code: Vec::new(),
            local_init: f.local_init.clone(),
            use_count,
            single_use_at,
            storage,
            stack: Vec::new(),
            patches: Vec::new(),
            block_pc: HashMap::new(),
        }
    }

    fn run(mut self) -> FuncCode {
        let order = cfg::reverse_post_order(self.f);
        for (pos, &bb) in order.iter().enumerate() {
            self.block_pc.insert(bb, self.code.len() as u32);
            let next = order.get(pos + 1).copied();
            self.block(bb, next);
        }
        for (idx, target) in std::mem::take(&mut self.patches) {
            let pc = self.block_pc[&target];
            match &mut self.code[idx] {
                Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => *t = pc,
                other => unreachable!("patched a non-jump {other}"),
            }
        }
        FuncCode {
            name: self.f.name.clone(),
            param_count: self.f.param_count,
            local_init: self.local_init,
            code: self.code,
            returns_void: self.f.returns_void,
        }
    }

    fn block(&mut self, bb: BlockId, next: Option<BlockId>) {
        debug_assert!(self.stack.is_empty());
        let block = &self.f.blocks[bb.idx()];
        for (i, inst) in block.insts.iter().enumerate() {
            self.inst(inst, bb, i);
        }
        match &block.term {
            Terminator::Jump(t) => {
                self.jump_to(*t, next, Op::Jump);
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                self.operands(&[*cond]);
                self.consume(1);
                if next == Some(*then_bb) {
                    self.jump_patch(*else_bb, Op::JumpIfFalse);
                } else if next == Some(*else_bb) {
                    self.jump_patch(*then_bb, Op::JumpIfTrue);
                } else {
                    self.jump_patch(*else_bb, Op::JumpIfFalse);
                    self.jump_to(*then_bb, next, Op::Jump);
                }
            }
            Terminator::Return(Some(v)) => {
                self.operands(&[*v]);
                self.consume(1);
                self.code.push(Op::Return);
            }
            Terminator::Return(None) => self.code.push(Op::ReturnVoid),
            Terminator::MissingReturn => self.code.push(Op::MissingReturn),
            Terminator::Trap { code } => {
                self.operands(&[*code]);
                self.consume(1);
                self.code.push(Op::Trap);
            }
        }
        debug_assert!(
            self.stack.is_empty(),
            "{}: resident values left at end of {bb:?}: {:?}",
            self.f.name,
            self.stack
        );
        // Defensive: if a resident somehow survives (it cannot if every
        // single-use def is consumed in-block), spill it so the stack
        // discipline holds in release builds too.
        if !self.stack.is_empty() {
            self.flush();
        }
    }

    fn inst(&mut self, inst: &Inst, bb: BlockId, idx: usize) {
        // Deferred chains are emitted at their use site.
        if let Some(d) = inst.dst() {
            if matches!(self.storage[d.0 as usize], Some(Storage::Chain(..))) {
                return;
            }
        }
        match inst {
            Inst::Const { dst, value } => {
                // Rematerialized constants emit nothing here; stack-bound
                // ones push at the def so the consumer pops them in order.
                if self.storage[dst.0 as usize].is_none() {
                    self.code.push(Op::Const(*value));
                    self.place(*dst, bb, idx);
                }
            }
            Inst::GetLocal { dst, slot } => {
                if matches!(self.storage[dst.0 as usize], Some(Storage::RematLocal(_))) {
                    return;
                }
                self.code.push(Op::LoadLocal(*slot));
                self.place(*dst, bb, idx);
            }
            Inst::SetLocal { slot, src } => {
                // Storing a value back into the slot it already lives in is
                // a no-op: slot coalescing arranges this for
                // `v = expr; local = v`, and a rematerialized read stored
                // back to its own slot hits it too.
                if matches!(self.storage[src.0 as usize],
                    Some(Storage::Spilled(s) | Storage::RematLocal(s)) if s == *slot)
                {
                    return;
                }
                self.operands(&[*src]);
                self.consume(1);
                self.code.push(Op::StoreLocal(*slot));
            }
            Inst::Un { dst, op, src } => {
                self.operands(&[*src]);
                self.consume(1);
                self.code.push(Op::Un(*op));
                self.place(*dst, bb, idx);
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                self.operands(&[*lhs, *rhs]);
                self.consume(2);
                self.code.push(Op::Bin(*op));
                self.place(*dst, bb, idx);
            }
            Inst::Cmp { dst, op, lhs, rhs } => {
                self.operands(&[*lhs, *rhs]);
                self.consume(2);
                self.code.push(Op::Cmp(*op));
                self.place(*dst, bb, idx);
            }
            Inst::Convert { dst, to, src } => {
                self.operands(&[*src]);
                self.consume(1);
                self.code.push(Op::Convert(*to));
                self.place(*dst, bb, idx);
            }
            Inst::ToBool { dst, src } => {
                self.operands(&[*src]);
                self.consume(1);
                self.code.push(Op::ToBool);
                self.place(*dst, bb, idx);
            }
            Inst::Call {
                dst,
                func,
                args,
                returns_value,
            } => {
                self.operands(args);
                self.consume(args.len());
                self.code.push(Op::Call {
                    func: *func,
                    argc: args.len() as u8,
                });
                if *returns_value {
                    match dst {
                        Some(d) => self.place(*d, bb, idx),
                        None => self.code.push(Op::Pop),
                    }
                }
            }
            Inst::CallPure { dst, builtin, args } => {
                self.operands(args);
                self.consume(args.len());
                self.code.push(Op::CallPure(*builtin, args.len() as u8));
                self.place(*dst, bb, idx);
            }
            Inst::WorkItem { dst, builtin, dim } => {
                if let Some(d) = dim {
                    self.operands(&[*d]);
                    self.consume(1);
                }
                self.code.push(Op::WorkItem(*builtin));
                self.place(*dst, bb, idx);
            }
            Inst::Barrier { id } => self.code.push(Op::Barrier { id: *id }),
            Inst::LoadMem { dst, ty, ptr } => {
                self.operands(&[*ptr]);
                self.consume(1);
                self.code.push(Op::LoadMem(*ty));
                self.place(*dst, bb, idx);
            }
            Inst::StoreMem { ty, ptr, value } => {
                // The VM pops the pointer first, then the value.
                self.operands(&[*value, *ptr]);
                self.consume(2);
                self.code.push(Op::StoreMem(*ty));
            }
            Inst::PtrOffset {
                dst,
                size,
                ptr,
                count,
            } => {
                self.operands(&[*ptr, *count]);
                self.consume(2);
                self.code.push(Op::PtrOffset(*size));
                self.place(*dst, bb, idx);
            }
            Inst::PtrDiff {
                dst,
                size,
                lhs,
                rhs,
            } => {
                self.operands(&[*lhs, *rhs]);
                self.consume(2);
                self.code.push(Op::PtrDiff(*size));
                self.place(*dst, bb, idx);
            }
        }
    }

    /// Arranges `ops` on top of the operand stack, in order (last on top).
    fn operands(&mut self, ops: &[VReg]) {
        // Longest stack suffix already matching a prefix of `ops`.
        let mut k = 0;
        let max = ops.len().min(self.stack.len());
        for kk in (1..=max).rev() {
            if self.stack[self.stack.len() - kk..] == ops[..kk] {
                k = kk;
                break;
            }
        }
        // A remaining operand buried in the stack cannot be re-pushed
        // (residents are single-use); flush everything to slots and reload.
        if ops[k..].iter().any(|v| self.stack.contains(v)) {
            self.flush();
            k = 0;
        }
        for &v in &ops[k..] {
            self.materialize(v);
        }
    }

    /// Pops `n` operand entries off the stack model (the emitted op
    /// consumes them on the real stack).
    fn consume(&mut self, n: usize) {
        let keep = self.stack.len().saturating_sub(n);
        self.stack.truncate(keep);
    }

    /// Pushes one copy of `v` onto the real stack (and the model).
    fn materialize(&mut self, v: VReg) {
        self.emit_value(v);
        self.stack.push(v);
    }

    /// Emits code leaving exactly one copy of `v` on the real stack. Chain
    /// operands are transient (produced and consumed within one emission),
    /// so the resident model is untouched.
    fn emit_value(&mut self, v: VReg) {
        match self.storage[v.0 as usize] {
            Some(Storage::RematConst(c)) => self.code.push(Op::Const(c)),
            Some(Storage::RematLocal(slot)) | Some(Storage::Spilled(slot)) => {
                self.code.push(Op::LoadLocal(slot));
            }
            Some(Storage::Chain(b, i)) => {
                let f = self.f;
                match &f.blocks[b.idx()].insts[i] {
                    Inst::Un { op, src, .. } => {
                        self.emit_value(*src);
                        self.code.push(Op::Un(*op));
                    }
                    Inst::Bin { op, lhs, rhs, .. } => {
                        self.emit_value(*lhs);
                        self.emit_value(*rhs);
                        self.code.push(Op::Bin(*op));
                    }
                    Inst::Cmp { op, lhs, rhs, .. } => {
                        self.emit_value(*lhs);
                        self.emit_value(*rhs);
                        self.code.push(Op::Cmp(*op));
                    }
                    Inst::Convert { to, src, .. } => {
                        self.emit_value(*src);
                        self.code.push(Op::Convert(*to));
                    }
                    Inst::ToBool { src, .. } => {
                        self.emit_value(*src);
                        self.code.push(Op::ToBool);
                    }
                    Inst::PtrOffset {
                        size, ptr, count, ..
                    } => {
                        self.emit_value(*ptr);
                        self.emit_value(*count);
                        self.code.push(Op::PtrOffset(*size));
                    }
                    Inst::WorkItem { builtin, dim, .. } => {
                        if let Some(d) = dim {
                            self.emit_value(*d);
                        }
                        self.code.push(Op::WorkItem(*builtin));
                    }
                    other => unreachable!("non-deferrable instruction {other:?} in a chain"),
                }
            }
            Some(Storage::Stack) | None => {
                unreachable!("{}: operand {v:?} has no home", self.f.name)
            }
        }
    }

    /// Decides where the value just produced on top of the stack lives.
    fn place(&mut self, dst: VReg, bb: BlockId, idx: usize) {
        let uses = self.use_count[dst.0 as usize];
        if uses == 0 {
            // Result of an instruction kept only for its effects or faults.
            self.code.push(Op::Pop);
            return;
        }
        if uses == 1 {
            if let Some((ub, ui)) = self.single_use_at[dst.0 as usize] {
                if ub == bb && ui > idx {
                    self.storage[dst.0 as usize] = Some(Storage::Stack);
                    self.stack.push(dst);
                    return;
                }
            }
        }
        let slot = self.spill_slot(dst);
        self.code.push(Op::StoreLocal(slot));
    }

    /// The spill slot of `dst`, allocated on first demand.
    fn spill_slot(&mut self, dst: VReg) -> u16 {
        if let Some(Storage::Spilled(slot)) = self.storage[dst.0 as usize] {
            return slot;
        }
        let slot = self.local_init.len() as u16;
        // Spill slots are always written before they are read (a def
        // dominates its uses), so the init value is arbitrary.
        self.local_init.push(Value::I64(0));
        self.storage[dst.0 as usize] = Some(Storage::Spilled(slot));
        slot
    }

    /// Spills every resident to a slot, top of stack first.
    fn flush(&mut self) {
        let residents: Vec<VReg> = self.stack.drain(..).collect();
        for &v in residents.iter().rev() {
            let slot = self.spill_slot(v);
            self.code.push(Op::StoreLocal(slot));
        }
    }

    /// Emits a jump to `target` unless it is the fall-through block.
    fn jump_to(&mut self, target: BlockId, next: Option<BlockId>, make: fn(u32) -> Op) {
        if next == Some(target) {
            return;
        }
        self.jump_patch(target, make);
    }

    fn jump_patch(&mut self, target: BlockId, make: fn(u32) -> Op) {
        self.patches.push((self.code.len(), target));
        self.code.push(make(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::OptConfig;

    fn compile_mir(src: &str, cfg_: &OptConfig) -> Program {
        let file = crate::SourceFile::new("t.cl", src);
        let mut d = crate::diag::Diagnostics::new();
        let tu = crate::parser::parse(&file, &mut d);
        let mut unit =
            crate::sema::analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&file)));
        crate::inline::inline_unit(&mut unit);
        let mut mir = crate::mir::lower_unit(&unit);
        crate::passes::run(&mut mir, cfg_);
        emit_unit(&mir, &unit, "t.cl")
    }

    #[test]
    fn expression_chain_rides_the_stack() {
        let p = compile_mir(
            "int f(int a, int b){ return (a + b) * (a - b); }",
            &OptConfig::all(),
        );
        // Legacy codegen: ~4 loads. Register form: two loads of `a`/`b`
        // per operand (params are remat) and zero stores.
        let stores = p.functions()[0]
            .code
            .iter()
            .filter(|op| matches!(op, Op::StoreLocal(_)))
            .count();
        assert_eq!(stores, 0, "{}", p.functions()[0].disassemble());
    }

    #[test]
    fn optimized_pipeline_reduces_local_traffic() {
        let src = "__kernel void blurish(__global const float* in, __global float* out, int n){
            int gid = (int)get_global_id(0);
            float acc = 0.0f;
            for (int d = -1; d <= 1; d++) {
                int j = gid + d;
                if (j < 0) j = 0;
                if (j > n - 1) j = n - 1;
                acc = acc + in[j];
            }
            out[gid] = acc / 3.0f;
        }";
        let legacy = crate::compile_with_config("t.cl", src, &OptConfig::legacy()).unwrap();
        let opt = compile_mir(src, &OptConfig::all());
        // Static instruction counts are not comparable (unrolling trades
        // code size for executed ops), so run one work-item and compare
        // the executed counters.
        use crate::types::AddressSpace;
        use crate::value::Ptr;
        use crate::vm::{CostCounters, HostMemory, ItemGeometry, WorkItem};
        let run = |p: &Program| -> CostCounters {
            let mut mem = HostMemory::new();
            let input = mem.add_buffer(vec![0x3fu8; 16]);
            let output = mem.add_buffer(vec![0u8; 16]);
            let args = [
                Value::Ptr(Ptr {
                    space: AddressSpace::Global,
                    buffer: input,
                    byte_offset: 0,
                }),
                Value::Ptr(Ptr {
                    space: AddressSpace::Global,
                    buffer: output,
                    byte_offset: 0,
                }),
                Value::I32(4),
            ];
            let k = p.kernel("blurish").unwrap();
            let mut item = WorkItem::new(p, k.func, &args, ItemGeometry::single());
            item.run(&mem, &mut []).unwrap();
            item.counters
        };
        let (l, o) = (run(&legacy), run(&opt));
        assert!(
            o.ops < l.ops,
            "opt {} !< legacy {} executed ops",
            o.ops,
            l.ops
        );
    }

    #[test]
    fn constants_never_occupy_slots() {
        let p = compile_mir("int f(int a){ return a + 2 * 3; }", &OptConfig::all());
        let f = &p.functions()[0];
        // `2 * 3` folds; the 6 is rematerialized straight into the add.
        assert!(
            f.code
                .iter()
                .any(|op| matches!(op, Op::Const(Value::I32(6)))),
            "{}",
            f.disassemble()
        );
        assert_eq!(f.local_init.len(), 1, "{}", f.disassemble());
    }

    #[test]
    fn unoptimized_mir_still_lowers_correctly() {
        // No passes at all: lowering alone must produce runnable code.
        let p = compile_mir(
            "int f(int n){ int s = 0; for (int i = 0; i < n; i++) s = s + i; return s; }",
            &OptConfig::none(),
        );
        assert!(!p.functions()[0].code.is_empty());
    }
}
