//! Stack bytecode for the SkelCL C virtual machine.
//!
//! Design notes:
//!
//! * one operand stack per call frame; `Call` moves arguments from the
//!   caller's stack into the callee's parameter slots;
//! * `StoreMem` pops the **pointer** first, then the value (codegen emits
//!   `value, ptr, StoreMem`), which avoids any stack-shuffling opcodes;
//! * `Barrier` carries a unique site id so the executor can detect divergent
//!   barriers (work-items of one group suspended at different barriers);
//! * pointer arithmetic is element-scaled: `PtrOffset(size)` pops a signed
//!   element count and advances the pointer by `count * size` bytes.

use std::fmt;

use crate::builtins::Builtin;
use crate::hir::{BinOp, CmpOp, UnOp};
use crate::types::ScalarType;
use crate::value::Value;

/// A bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push a constant.
    Const(Value),
    /// Push the value of a local slot.
    LoadLocal(u16),
    /// Pop into a local slot.
    StoreLocal(u16),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Apply a unary value operation to the top of stack.
    Un(UnOp),
    /// Pop two operands (rhs on top) and push the result.
    Bin(BinOp),
    /// Pop two operands (rhs on top) and push the boolean result.
    Cmp(CmpOp),
    /// Convert the top of stack to a scalar type.
    Convert(ScalarType),
    /// Convert the top of stack to its truthiness.
    ToBool,
    /// Unconditional jump to an instruction index.
    Jump(u32),
    /// Pop a bool; jump when false.
    JumpIfFalse(u32),
    /// Pop a bool; jump when true.
    JumpIfTrue(u32),
    /// Call a user function: pops `argc` arguments (last on top).
    Call {
        /// Index of the callee in the program's function table.
        func: u16,
        /// Number of arguments.
        argc: u8,
    },
    /// Call a pure math builtin with `argc` arguments.
    CallPure(Builtin, u8),
    /// Work-item geometry query; pops the dimension operand except for
    /// `get_work_dim`.
    WorkItem(Builtin),
    /// Work-group barrier with a unique site id; the flags operand has
    /// already been popped. Execution suspends here.
    Barrier {
        /// Unique id of this barrier site within the program.
        id: u32,
    },
    /// Pop an `int` error code and abort the launch.
    Trap,
    /// Pop a pointer and push the loaded element.
    LoadMem(ScalarType),
    /// Pop a pointer, then a value, and store the value through the pointer.
    StoreMem(ScalarType),
    /// Pop a signed element count (`long`), then a pointer; push the pointer
    /// advanced by `count` elements of the given byte size.
    PtrOffset(u32),
    /// Pop two pointers (rhs on top) and push their element distance
    /// (`long`), dividing by the given element byte size.
    PtrDiff(u32),
    /// Pop the return value and return to the caller.
    Return,
    /// Return without a value.
    ReturnVoid,
    /// Executed when control falls off the end of a non-void function.
    MissingReturn,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Const(v) => write!(f, "const {v}"),
            Op::LoadLocal(s) => write!(f, "load_local {s}"),
            Op::StoreLocal(s) => write!(f, "store_local {s}"),
            Op::Dup => f.write_str("dup"),
            Op::Pop => f.write_str("pop"),
            Op::Un(op) => write!(f, "un {op:?}"),
            Op::Bin(op) => write!(f, "bin {op:?}"),
            Op::Cmp(op) => write!(f, "cmp {op:?}"),
            Op::Convert(t) => write!(f, "convert {t}"),
            Op::ToBool => f.write_str("to_bool"),
            Op::Jump(t) => write!(f, "jump {t}"),
            Op::JumpIfFalse(t) => write!(f, "jump_if_false {t}"),
            Op::JumpIfTrue(t) => write!(f, "jump_if_true {t}"),
            Op::Call { func, argc } => write!(f, "call f{func} argc={argc}"),
            Op::CallPure(b, argc) => write!(f, "call_pure {} argc={argc}", b.name()),
            Op::WorkItem(b) => write!(f, "work_item {}", b.name()),
            Op::Barrier { id } => write!(f, "barrier #{id}"),
            Op::Trap => f.write_str("trap"),
            Op::LoadMem(t) => write!(f, "load_mem {t}"),
            Op::StoreMem(t) => write!(f, "store_mem {t}"),
            Op::PtrOffset(sz) => write!(f, "ptr_offset x{sz}"),
            Op::PtrDiff(sz) => write!(f, "ptr_diff x{sz}"),
            Op::Return => f.write_str("return"),
            Op::ReturnVoid => f.write_str("return_void"),
            Op::MissingReturn => f.write_str("missing_return"),
        }
    }
}

/// Compiled bytecode of one function.
#[derive(Debug, Clone)]
pub struct FuncCode {
    /// Function name (for diagnostics and disassembly).
    pub name: String,
    /// Number of parameter slots (the first locals).
    pub param_count: u16,
    /// Initial values for every local slot (parameters are overwritten by
    /// the call; the rest zero-initialise their declared type).
    pub local_init: Vec<Value>,
    /// The instruction sequence.
    pub code: Vec<Op>,
    /// Whether the function returns `void`.
    pub returns_void: bool,
}

impl FuncCode {
    /// Renders a human-readable disassembly (used in tests and debugging).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "fn {} (params: {}, locals: {})",
            self.name,
            self.param_count,
            self.local_init.len()
        )
        .unwrap();
        for (i, op) in self.code.iter().enumerate() {
            writeln!(out, "  {i:4}: {op}").unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(Op::Const(Value::I32(7)).to_string(), "const 7");
        assert_eq!(Op::Jump(3).to_string(), "jump 3");
        assert_eq!(Op::LoadMem(ScalarType::Float).to_string(), "load_mem float");
        assert_eq!(Op::Barrier { id: 2 }.to_string(), "barrier #2");
        assert_eq!(
            Op::CallPure(Builtin::Sqrt, 1).to_string(),
            "call_pure sqrt argc=1"
        );
    }

    #[test]
    fn disassembly_contains_header_and_ops() {
        let f = FuncCode {
            name: "f".into(),
            param_count: 1,
            local_init: vec![Value::I32(0)],
            code: vec![Op::LoadLocal(0), Op::Return],
            returns_void: false,
        };
        let d = f.disassemble();
        assert!(d.contains("fn f (params: 1, locals: 1)"));
        assert!(d.contains("0: load_local 0"));
        assert!(d.contains("1: return"));
    }
}
