//! Bytecode generation from the typed HIR.

use crate::builtins::BuiltinKind;
use crate::fold::const_to_value;
use crate::hir::{BinOp, Expr, Function, LocalArray, Place, Stmt, Unit};
use crate::ir::{FuncCode, Op};
use crate::program::{KernelInfo, KernelParam, KernelParamKind, LocalArrayBinding, Program};
use crate::types::{AddressSpace, ScalarType, Type};
use crate::value::{Ptr, Value};

/// Sentinel for uninitialised pointer locals; dereferencing traps in the VM.
pub const UNINIT_BUFFER: u32 = u32::MAX;

/// Generates a [`Program`] from a type-checked unit.
pub fn generate(unit: &Unit, source_name: &str) -> Program {
    let mut barrier_counter = 0u32;
    let mut functions = Vec::with_capacity(unit.functions.len());
    let mut kernels = Vec::new();

    for (idx, f) in unit.functions.iter().enumerate() {
        let barrier_start = barrier_counter;
        let code = FnCodegen::new(f, &mut barrier_counter).run();
        let _ = barrier_start;
        if f.is_kernel {
            kernels.push(kernel_info(f, idx as u16));
        }
        functions.push(code);
    }

    // Conservative barrier count: any barrier site in the program may be
    // reached from any kernel (helpers are shared), so every kernel reports
    // the program-wide total. The executor only uses it as a "needs
    // lockstep" hint.
    for k in &mut kernels {
        k.barrier_count = barrier_counter;
    }

    Program::from_parts(functions, kernels, source_name)
}

/// Builds the launch metadata of one `__kernel` function (parameter
/// binding kinds, `__local` array layout). Shared by the legacy stack
/// code generator and the MIR lowering in [`crate::lower`].
pub(crate) fn kernel_info(f: &Function, func: u16) -> KernelInfo {
    let params = f
        .params()
        .iter()
        .map(|p| KernelParam {
            name: p.name.clone(),
            kind: match p.ty {
                Type::Scalar(s) => KernelParamKind::Scalar(s),
                Type::Pointer {
                    pointee,
                    space: AddressSpace::Global,
                    is_const,
                } => KernelParamKind::GlobalBuffer {
                    elem: pointee,
                    is_const,
                },
                Type::Pointer {
                    pointee,
                    space: AddressSpace::Local,
                    ..
                } => KernelParamKind::LocalBuffer { elem: pointee },
                other => unreachable!("sema rejects kernel parameter type {other}"),
            },
        })
        .collect();

    let mut offset = 0u32;
    let mut local_arrays = Vec::new();
    for (id, decl) in f.local_arrays() {
        let LocalArray { elem, len } = decl.local_array.expect("filtered");
        let align = elem.size_bytes() as u32;
        offset = offset.div_ceil(align) * align;
        let byte_len = (len as u32) * align;
        local_arrays.push(LocalArrayBinding {
            slot: id.0 as u16,
            byte_offset: offset,
            byte_len,
        });
        offset += byte_len;
    }

    KernelInfo {
        name: f.name.clone(),
        func,
        params,
        local_arrays,
        static_local_bytes: offset,
        barrier_count: 0, // filled in by `generate`
    }
}

/// Per-function code generator.
struct FnCodegen<'a> {
    f: &'a Function,
    code: Vec<Op>,
    /// Initial values for every slot (locals then temps).
    local_init: Vec<Value>,
    free_temps: Vec<u16>,
    loops: Vec<LoopFrame>,
    barrier_counter: &'a mut u32,
}

struct LoopFrame {
    break_patches: Vec<usize>,
    continue_patches: Vec<usize>,
}

impl<'a> FnCodegen<'a> {
    fn new(f: &'a Function, barrier_counter: &'a mut u32) -> Self {
        let local_init = f
            .locals
            .iter()
            .map(|l| match l.ty {
                Type::Scalar(s) => Value::zero(s),
                Type::Pointer { .. } => Value::Ptr(Ptr {
                    space: AddressSpace::Private,
                    buffer: UNINIT_BUFFER,
                    byte_offset: 0,
                }),
                Type::Void => unreachable!("no void locals"),
            })
            .collect();
        FnCodegen {
            f,
            code: Vec::new(),
            local_init,
            free_temps: Vec::new(),
            loops: Vec::new(),
            barrier_counter,
        }
    }

    fn run(mut self) -> FuncCode {
        for s in &self.f.body {
            self.stmt(s);
        }
        // A trailing epilogue is only needed when control can actually fall
        // off the end: the last instruction is not a return, or some jump
        // targets the end of the code.
        let end = self.code.len() as u32;
        let end_reachable = !matches!(self.code.last(), Some(Op::Return | Op::ReturnVoid))
            || self.code.iter().any(|op| {
                matches!(op, Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) if *t == end)
            });
        if end_reachable {
            if self.f.return_type == Type::Void {
                self.code.push(Op::ReturnVoid);
            } else {
                self.code.push(Op::MissingReturn);
            }
        }
        FuncCode {
            name: self.f.name.clone(),
            param_count: self.f.param_count as u16,
            local_init: self.local_init,
            code: self.code,
            returns_void: self.f.return_type == Type::Void,
        }
    }

    // ----- helpers ---------------------------------------------------------

    fn alloc_temp(&mut self) -> u16 {
        if let Some(t) = self.free_temps.pop() {
            t
        } else {
            let slot = self.local_init.len() as u16;
            self.local_init.push(Value::I64(0));
            slot
        }
    }

    fn free_temp(&mut self, t: u16) {
        self.free_temps.push(t);
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Emits a placeholder jump, returning its index for later patching.
    fn emit_patch(&mut self, make: impl Fn(u32) -> Op) -> usize {
        self.code.push(make(u32::MAX));
        self.code.len() - 1
    }

    fn patch(&mut self, idx: usize, target: u32) {
        match &mut self.code[idx] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    // ----- statements -------------------------------------------------------

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Expr(e) => self.expr_for_effect(e),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond);
                let to_else = self.emit_patch(Op::JumpIfFalse);
                for s in then_branch {
                    self.stmt(s);
                }
                if else_branch.is_empty() {
                    let end = self.here();
                    self.patch(to_else, end);
                } else {
                    let to_end = self.emit_patch(Op::Jump);
                    let else_start = self.here();
                    self.patch(to_else, else_start);
                    for s in else_branch {
                        self.stmt(s);
                    }
                    let end = self.here();
                    self.patch(to_end, end);
                }
            }
            Stmt::Loop {
                cond,
                body,
                step,
                test_at_end,
            } => {
                self.loops.push(LoopFrame {
                    break_patches: vec![],
                    continue_patches: vec![],
                });
                if *test_at_end {
                    // do-while
                    let body_start = self.here();
                    for s in body {
                        self.stmt(s);
                    }
                    let step_start = self.here();
                    if let Some(step) = step {
                        self.expr_for_effect(step);
                    }
                    self.expr(cond);
                    self.code.push(Op::JumpIfTrue(body_start));
                    let end = self.here();
                    self.finish_loop(step_start, end);
                } else {
                    let cond_start = self.here();
                    self.expr(cond);
                    let to_end = self.emit_patch(Op::JumpIfFalse);
                    for s in body {
                        self.stmt(s);
                    }
                    let step_start = self.here();
                    if let Some(step) = step {
                        self.expr_for_effect(step);
                    }
                    self.code.push(Op::Jump(cond_start));
                    let end = self.here();
                    self.patch(to_end, end);
                    self.finish_loop(step_start, end);
                }
            }
            Stmt::Break => {
                let p = self.emit_patch(Op::Jump);
                self.loops
                    .last_mut()
                    .expect("sema rejects break outside loops")
                    .break_patches
                    .push(p);
            }
            Stmt::Continue => {
                let p = self.emit_patch(Op::Jump);
                self.loops
                    .last_mut()
                    .expect("sema rejects continue outside loops")
                    .continue_patches
                    .push(p);
            }
            Stmt::Return(Some(e)) => {
                self.expr(e);
                self.code.push(Op::Return);
            }
            Stmt::Return(None) => self.code.push(Op::ReturnVoid),
        }
    }

    fn finish_loop(&mut self, continue_target: u32, break_target: u32) {
        let frame = self.loops.pop().expect("pushed in Stmt::Loop");
        for p in frame.break_patches {
            self.patch(p, break_target);
        }
        for p in frame.continue_patches {
            self.patch(p, continue_target);
        }
    }

    /// Emits an expression for its side effects, discarding any value.
    fn expr_for_effect(&mut self, e: &Expr) {
        match e {
            Expr::Assign { place, value, .. } => self.emit_assign(place, value, false),
            Expr::IncDec {
                place, ty, is_inc, ..
            } => self.emit_incdec(place, *ty, *is_inc, false, false),
            other => {
                self.expr(other);
                if other.ty() != Type::Void {
                    self.code.push(Op::Pop);
                }
            }
        }
    }

    // ----- expressions -----------------------------------------------------

    /// Emits `e`, leaving its value on the stack (nothing for `void`).
    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Const { value, .. } => self.code.push(Op::Const(const_to_value(*value))),
            Expr::Local { id, .. } => self.code.push(Op::LoadLocal(id.0 as u16)),
            Expr::Unary { op, expr, .. } => {
                self.expr(expr);
                self.code.push(Op::Un(*op));
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
                self.code.push(Op::Bin(*op));
            }
            Expr::Compare { op, lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
                self.code.push(Op::Cmp(*op));
            }
            Expr::Logical {
                is_and, lhs, rhs, ..
            } => {
                self.expr(lhs);
                if *is_and {
                    let to_false = self.emit_patch(Op::JumpIfFalse);
                    self.expr(rhs);
                    let to_end = self.emit_patch(Op::Jump);
                    let false_at = self.here();
                    self.patch(to_false, false_at);
                    self.code.push(Op::Const(Value::Bool(false)));
                    let end = self.here();
                    self.patch(to_end, end);
                } else {
                    let to_true = self.emit_patch(Op::JumpIfTrue);
                    self.expr(rhs);
                    let to_end = self.emit_patch(Op::Jump);
                    let true_at = self.here();
                    self.patch(to_true, true_at);
                    self.code.push(Op::Const(Value::Bool(true)));
                    let end = self.here();
                    self.patch(to_end, end);
                }
            }
            Expr::Convert { to, expr, .. } => {
                self.expr(expr);
                if *to == ScalarType::Bool {
                    self.code.push(Op::ToBool);
                } else {
                    self.code.push(Op::Convert(*to));
                }
            }
            Expr::Assign { place, value, .. } => self.emit_assign(place, value, true),
            Expr::IncDec {
                place,
                ty,
                is_inc,
                is_post,
                ..
            } => self.emit_incdec(place, *ty, *is_inc, *is_post, true),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                self.expr(cond);
                let to_else = self.emit_patch(Op::JumpIfFalse);
                self.expr(then_expr);
                let to_end = self.emit_patch(Op::Jump);
                let else_at = self.here();
                self.patch(to_else, else_at);
                self.expr(else_expr);
                let end = self.here();
                self.patch(to_end, end);
            }
            Expr::Call { func, args, .. } => {
                for a in args {
                    self.expr(a);
                }
                self.code.push(Op::Call {
                    func: func.0 as u16,
                    argc: args.len() as u8,
                });
            }
            Expr::BuiltinCall { builtin, args, .. } => match builtin.kind() {
                BuiltinKind::WorkItemQuery => {
                    self.expr(&args[0]);
                    self.code.push(Op::WorkItem(*builtin));
                }
                BuiltinKind::WorkDim => self.code.push(Op::WorkItem(*builtin)),
                BuiltinKind::Barrier => {
                    // The flags operand is evaluated (it may have effects in
                    // principle) and discarded; the barrier id is static.
                    self.expr(&args[0]);
                    self.code.push(Op::Pop);
                    let id = *self.barrier_counter;
                    *self.barrier_counter += 1;
                    self.code.push(Op::Barrier { id });
                }
                BuiltinKind::Trap | BuiltinKind::TrapValue => {
                    // TrapValue nominally yields `int`, but the trap makes
                    // the continuation unreachable, so nothing is pushed.
                    self.expr(&args[0]);
                    self.code.push(Op::Trap);
                }
                _ => {
                    for a in args {
                        self.expr(a);
                    }
                    self.code.push(Op::CallPure(*builtin, args.len() as u8));
                }
            },
            Expr::PtrOffset { ptr, offset, .. } => {
                self.expr(ptr);
                self.expr(offset);
                let elem = pointee_of(ptr.ty());
                self.code.push(Op::PtrOffset(elem.size_bytes() as u32));
            }
            Expr::PtrDiff { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
                let elem = pointee_of(lhs.ty());
                self.code.push(Op::PtrDiff(elem.size_bytes() as u32));
            }
            Expr::Load { ptr, elem, .. } => {
                self.expr(ptr);
                self.code.push(Op::LoadMem(*elem));
            }
        }
    }

    /// Emits an assignment; when `want_value` the stored value remains on
    /// the stack.
    fn emit_assign(&mut self, place: &Place, value: &Expr, want_value: bool) {
        match place {
            Place::Local(id) => {
                self.expr(value);
                if want_value {
                    self.code.push(Op::Dup);
                }
                self.code.push(Op::StoreLocal(id.0 as u16));
            }
            Place::Deref { ptr, elem } => {
                let tmp = self.alloc_temp();
                self.expr(ptr);
                self.code.push(Op::StoreLocal(tmp));
                self.expr(value);
                if want_value {
                    self.code.push(Op::Dup);
                }
                self.code.push(Op::LoadLocal(tmp));
                self.code.push(Op::StoreMem(*elem));
                self.free_temp(tmp);
            }
        }
    }

    /// Emits `++`/`--` on a place. When `want_value`, leaves the old
    /// (`is_post`) or new value on the stack.
    fn emit_incdec(
        &mut self,
        place: &Place,
        ty: Type,
        is_inc: bool,
        is_post: bool,
        want_value: bool,
    ) {
        // Load current value.
        let tmp_ptr = match place {
            Place::Local(id) => {
                self.code.push(Op::LoadLocal(id.0 as u16));
                None
            }
            Place::Deref { ptr, elem } => {
                let tmp = self.alloc_temp();
                self.expr(ptr);
                self.code.push(Op::StoreLocal(tmp));
                self.code.push(Op::LoadLocal(tmp));
                self.code.push(Op::LoadMem(*elem));
                Some(tmp)
            }
        };

        if want_value && is_post {
            self.code.push(Op::Dup);
        }

        // Compute the new value.
        match ty {
            Type::Scalar(s) => {
                self.code.push(Op::Const(one_of(s)));
                self.code
                    .push(Op::Bin(if is_inc { BinOp::Add } else { BinOp::Sub }));
            }
            Type::Pointer { pointee, .. } => {
                self.code
                    .push(Op::Const(Value::I64(if is_inc { 1 } else { -1 })));
                self.code.push(Op::PtrOffset(pointee.size_bytes() as u32));
            }
            Type::Void => unreachable!("sema rejects void inc/dec"),
        }

        if want_value && !is_post {
            self.code.push(Op::Dup);
        }

        // Store back.
        match (place, tmp_ptr) {
            (Place::Local(id), _) => self.code.push(Op::StoreLocal(id.0 as u16)),
            (Place::Deref { elem, .. }, Some(tmp)) => {
                self.code.push(Op::LoadLocal(tmp));
                self.code.push(Op::StoreMem(*elem));
                self.free_temp(tmp);
            }
            (Place::Deref { .. }, None) => unreachable!(),
        }

        // Post/pre handling left the desired value below the store inputs:
        // for Local stores the Dup'd copy survives; same for Deref since
        // StoreMem consumed [value, ptr] pushed after the copy.
        let _ = (is_post, want_value);
    }
}

fn pointee_of(ty: Type) -> ScalarType {
    match ty {
        Type::Pointer { pointee, .. } => pointee,
        other => unreachable!("expected pointer type, got {other}"),
    }
}

/// The constant `1` of a scalar type (for inc/dec).
pub(crate) fn one_of(s: ScalarType) -> Value {
    use ScalarType::*;
    match s {
        Bool => Value::Bool(true),
        Char => Value::I8(1),
        UChar => Value::U8(1),
        Short => Value::I16(1),
        UShort => Value::U16(1),
        Int => Value::I32(1),
        UInt => Value::U32(1),
        Long => Value::I64(1),
        ULong => Value::U64(1),
        Float => Value::F32(1.0),
        Double => Value::F64(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use crate::parser::parse;
    use crate::sema::analyze;
    use crate::source::SourceFile;

    fn compile_unit(src: &str) -> Program {
        let f = SourceFile::new("t.cl", src);
        let mut d = Diagnostics::new();
        let tu = parse(&f, &mut d);
        let unit = analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&f)));
        generate(&unit, "t.cl")
    }

    #[test]
    fn simple_function_bytecode() {
        let p = compile_unit("float func(float x){ return -x; }");
        let f = &p.functions()[0];
        assert_eq!(f.param_count, 1);
        assert!(!f.returns_void);
        assert_eq!(
            f.code,
            vec![Op::LoadLocal(0), Op::Un(crate::hir::UnOp::Neg), Op::Return]
        );
    }

    #[test]
    fn void_function_ends_with_return_void() {
        let p = compile_unit("void f(int x){ x + 1; }");
        let f = &p.functions()[0];
        assert_eq!(f.code.last(), Some(&Op::ReturnVoid));
        // The discarded expression must be popped.
        assert!(f.code.contains(&Op::Pop));
    }

    #[test]
    fn non_void_fallthrough_emits_missing_return() {
        let p = compile_unit("int f(int x){ if (x > 0) return 1; }");
        let f = &p.functions()[0];
        assert_eq!(f.code.last(), Some(&Op::MissingReturn));
    }

    #[test]
    fn jumps_are_patched() {
        let p = compile_unit("int f(int x){ if (x > 0) return 1; else return 2; }");
        for op in &p.functions()[0].code {
            if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) = op {
                assert_ne!(
                    *t,
                    u32::MAX,
                    "unpatched jump in {}",
                    p.functions()[0].disassemble()
                );
            }
        }
    }

    #[test]
    fn kernel_param_kinds() {
        let p = compile_unit(
            "__kernel void k(__global float* in, __global char* out, __local int* scratch, float s, int n){ }",
        );
        let k = p.kernel("k").unwrap();
        assert_eq!(k.params.len(), 5);
        assert_eq!(
            k.params[0].kind,
            KernelParamKind::GlobalBuffer {
                elem: ScalarType::Float,
                is_const: false
            }
        );
        assert_eq!(
            k.params[2].kind,
            KernelParamKind::LocalBuffer {
                elem: ScalarType::Int
            }
        );
        assert_eq!(k.params[3].kind, KernelParamKind::Scalar(ScalarType::Float));
    }

    #[test]
    fn local_arrays_are_laid_out_aligned() {
        let p = compile_unit(
            "__kernel void k(){
                __local char small[3];
                __local float tile[8];
                __local char tail[1];
            }",
        );
        let k = p.kernel("k").unwrap();
        assert_eq!(k.local_arrays.len(), 3);
        assert_eq!(k.local_arrays[0].byte_offset, 0);
        assert_eq!(k.local_arrays[0].byte_len, 3);
        // float array aligned to 4.
        assert_eq!(k.local_arrays[1].byte_offset, 4);
        assert_eq!(k.local_arrays[1].byte_len, 32);
        assert_eq!(k.local_arrays[2].byte_offset, 36);
        assert_eq!(k.static_local_bytes, 37);
    }

    #[test]
    fn barrier_sites_get_unique_ids() {
        let p = compile_unit(
            "__kernel void k(){
                barrier(CLK_LOCAL_MEM_FENCE);
                barrier(CLK_LOCAL_MEM_FENCE);
            }",
        );
        let ids: Vec<u32> = p.functions()[0]
            .code
            .iter()
            .filter_map(|op| match op {
                Op::Barrier { id } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
        assert_eq!(p.kernel("k").unwrap().barrier_count, 2);
    }

    #[test]
    fn deref_assignment_uses_temp_slot() {
        let p = compile_unit("void f(__global float* p, int i){ p[i] = 2.0f; }");
        let f = &p.functions()[0];
        // Temp slot allocated beyond the declared locals (2 params).
        assert!(f.local_init.len() > 2);
        assert!(f.code.contains(&Op::StoreMem(ScalarType::Float)));
    }

    #[test]
    fn nested_assignments_use_distinct_temps() {
        let p = compile_unit(
            "void f(__global float* p, __global float* q, int i, int j){ p[i] = q[j] = 1.0f; }",
        );
        let f = &p.functions()[0];
        let stores: Vec<u16> = f
            .code
            .iter()
            .filter_map(|op| match op {
                Op::StoreLocal(s) if *s >= 4 => Some(*s),
                _ => None,
            })
            .collect();
        // Two pointer temps must not collide while both are live.
        assert_eq!(stores.len(), 2);
        assert_ne!(stores[0], stores[1]);
    }

    #[test]
    fn uninitialized_pointer_sentinel() {
        let p = compile_unit("void f(){ float* p; }");
        let f = &p.functions()[0];
        assert_eq!(
            f.local_init[0],
            Value::Ptr(Ptr {
                space: AddressSpace::Private,
                buffer: UNINIT_BUFFER,
                byte_offset: 0
            })
        );
    }

    #[test]
    fn short_circuit_codegen_shape() {
        let p = compile_unit("bool f(int a, int b){ return a != 0 && b != 0; }");
        let f = &p.functions()[0];
        assert!(f.code.iter().any(|o| matches!(o, Op::JumpIfFalse(_))));
        assert!(f.code.contains(&Op::Const(Value::Bool(false))));
    }
}
