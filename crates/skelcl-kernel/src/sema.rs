//! Semantic analysis: name resolution, type checking and lowering of the AST
//! to the typed [HIR](crate::hir).
//!
//! Language rules enforced here (a faithful subset of OpenCL C, with the
//! deviations called out in the crate docs):
//!
//! * kernels return `void`; their pointer parameters must be explicitly
//!   `__global` or `__local`;
//! * unqualified pointer types behave like OpenCL 2.0 *generic* pointers:
//!   they may receive values of any address space (the true space travels
//!   with the runtime value);
//! * `__local` arrays may only be declared inside kernels and their sizes
//!   must be compile-time constants;
//! * recursion (direct or mutual) is rejected, as in OpenCL;
//! * all implicit scalar conversions of C are applied and made explicit.

use std::collections::HashMap;

use crate::ast;
use crate::builtins::{predefined_constant, Builtin, BuiltinKind, WORK_ITEM_QUERY_RESULT};
use crate::diag::Diagnostics;
use crate::fold;
use crate::hir::{
    BinOp, CmpOp, ConstValue, Expr, FuncId, Function, LocalArray, LocalDecl, LocalId, Place, Stmt,
    UnOp, Unit,
};
use crate::source::Span;
use crate::types::{integer_promote, usual_arithmetic_conversion, AddressSpace, ScalarType, Type};

/// Type-checks `tu`, returning the lowered unit, or `None` when errors were
/// reported to `diags`.
pub fn analyze(tu: &ast::TranslationUnit, diags: &mut Diagnostics) -> Option<Unit> {
    let mut sigs: Vec<FuncSig> = Vec::new();
    let mut by_name: HashMap<&str, FuncId> = HashMap::new();

    // Pass 1: collect signatures so functions can be used before their
    // definition (SkelCL welds user functions before generated kernels).
    for f in &tu.functions {
        if Builtin::resolve(&f.name).is_some() {
            diags.error(
                f.name_span,
                format!("cannot redefine builtin function `{}`", f.name),
            );
            continue;
        }
        if let Some(&prev) = by_name.get(f.name.as_str()) {
            diags.push(
                crate::diag::Diagnostic::error(
                    f.name_span,
                    format!("redefinition of function `{}`", f.name),
                )
                .with_note(
                    sigs[prev.0 as usize].name_span,
                    "previous definition is here",
                ),
            );
            continue;
        }
        if f.is_kernel && f.return_type != Type::Void {
            diags.error(f.name_span, "kernel functions must return `void`");
        }
        for p in &f.params {
            if p.ty == Type::Void {
                diags.error(p.span, "parameters cannot have type `void`");
            }
            if f.is_kernel {
                if let Type::Pointer {
                    space: AddressSpace::Private,
                    ..
                } = p.ty
                {
                    diags.error(
                        p.span,
                        "kernel pointer parameters must be `__global` or `__local`",
                    );
                }
            }
        }
        let id = FuncId(sigs.len() as u32);
        by_name.insert(f.name.as_str(), id);
        sigs.push(FuncSig {
            name: f.name.clone(),
            name_span: f.name_span,
            is_kernel: f.is_kernel,
            return_type: f.return_type,
            params: f.params.iter().map(|p| p.ty).collect(),
        });
    }

    if diags.has_errors() {
        return None;
    }

    // Pass 2: check bodies.
    let mut functions = Vec::with_capacity(sigs.len());
    let mut call_edges: Vec<Vec<FuncId>> = vec![Vec::new(); sigs.len()];
    for f in &tu.functions {
        let Some(&id) = by_name.get(f.name.as_str()) else {
            continue;
        };
        let checker = FnChecker {
            sigs: &sigs,
            by_name: &by_name,
            diags,
            func: &sigs[id.0 as usize],
            is_kernel: f.is_kernel,
            locals: Vec::new(),
            scopes: vec![HashMap::new()],
            loop_depth: 0,
            calls: Vec::new(),
        };
        let function = checker.check_function(f);
        call_edges[id.0 as usize] = function.1;
        functions.push(function.0);
    }

    check_recursion(&sigs, &call_edges, diags);

    if diags.has_errors() {
        None
    } else {
        Some(Unit { functions })
    }
}

/// Rejects call cycles (OpenCL forbids recursion).
fn check_recursion(sigs: &[FuncSig], edges: &[Vec<FuncId>], diags: &mut Diagnostics) {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; sigs.len()];
    fn dfs(
        v: usize,
        sigs: &[FuncSig],
        edges: &[Vec<FuncId>],
        marks: &mut [Mark],
        diags: &mut Diagnostics,
    ) {
        marks[v] = Mark::Grey;
        for &t in &edges[v] {
            match marks[t.0 as usize] {
                Mark::White => dfs(t.0 as usize, sigs, edges, marks, diags),
                Mark::Grey => diags.error(
                    sigs[t.0 as usize].name_span,
                    format!(
                        "recursion is not allowed in kernel code: `{}` is reachable from itself",
                        sigs[t.0 as usize].name
                    ),
                ),
                Mark::Black => {}
            }
        }
        marks[v] = Mark::Black;
    }
    for v in 0..sigs.len() {
        if marks[v] == Mark::White {
            dfs(v, sigs, edges, &mut marks, diags);
        }
    }
}

struct FuncSig {
    name: String,
    name_span: Span,
    is_kernel: bool,
    return_type: Type,
    params: Vec<Type>,
}

type CResult<T> = Result<T, ()>;

struct FnChecker<'a> {
    sigs: &'a [FuncSig],
    by_name: &'a HashMap<&'a str, FuncId>,
    diags: &'a mut Diagnostics,
    func: &'a FuncSig,
    is_kernel: bool,
    locals: Vec<LocalDecl>,
    scopes: Vec<HashMap<String, LocalId>>,
    loop_depth: u32,
    calls: Vec<FuncId>,
}

impl<'a> FnChecker<'a> {
    fn check_function(mut self, f: &ast::Function) -> (Function, Vec<FuncId>) {
        for p in &f.params {
            self.declare(p.name.clone(), p.ty, false, None, p.span);
        }
        let param_count = self.locals.len();
        let body = self.check_block(&f.body);

        if f.return_type != Type::Void && !stmts_definitely_return(&body) {
            self.diags.warning(
                f.name_span,
                format!(
                    "control may reach the end of non-void function `{}`",
                    f.name
                ),
            );
        }

        (
            Function {
                is_kernel: f.is_kernel,
                name: f.name.clone(),
                return_type: f.return_type,
                param_count,
                locals: self.locals,
                body,
                span: f.span,
            },
            self.calls,
        )
    }

    // ----- scopes ---------------------------------------------------------

    fn declare(
        &mut self,
        name: String,
        ty: Type,
        is_const: bool,
        local_array: Option<LocalArray>,
        span: Span,
    ) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if let Some(&prev) = scope.get(&name) {
            let prev_span = self.locals[prev.0 as usize].span;
            self.diags.push(
                crate::diag::Diagnostic::error(span, format!("redefinition of `{name}`"))
                    .with_note(prev_span, "previous definition is here"),
            );
        }
        scope.insert(name.clone(), id);
        self.locals.push(LocalDecl {
            name,
            ty,
            is_const,
            local_array,
            span,
        });
        id
    }

    fn lookup(&self, name: &str) -> Option<LocalId> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn in_scope<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        self.scopes.push(HashMap::new());
        let r = f(self);
        self.scopes.pop();
        r
    }

    // ----- statements -------------------------------------------------------

    fn check_block(&mut self, b: &ast::Block) -> Vec<Stmt> {
        self.in_scope(|this| {
            let mut out = Vec::new();
            for s in &b.stmts {
                this.check_stmt_into(s, &mut out);
            }
            out
        })
    }

    /// Checks one statement, appending the lowered form(s) to `out`.
    /// Erroneous statements are dropped (the error is already reported).
    fn check_stmt_into(&mut self, s: &ast::Stmt, out: &mut Vec<Stmt>) {
        match s {
            ast::Stmt::Block(b) => {
                let stmts = self.check_block(b);
                // A bare block still brackets its scope; lowering keeps the
                // statements inline since scoping is resolved here.
                out.extend(stmts);
            }
            ast::Stmt::Empty(_) => {}
            ast::Stmt::Decl(d) => self.check_decl(d, out),
            ast::Stmt::Expr(e) => {
                if let Ok(e) = self.check_expr(e) {
                    out.push(Stmt::Expr(e));
                }
            }
            ast::Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let cond = self.check_condition(cond);
                let then_branch = self.in_scope(|t| {
                    let mut v = Vec::new();
                    t.check_stmt_into(then_branch, &mut v);
                    v
                });
                let else_branch = match else_branch {
                    Some(e) => self.in_scope(|t| {
                        let mut v = Vec::new();
                        t.check_stmt_into(e, &mut v);
                        v
                    }),
                    None => Vec::new(),
                };
                if let Ok(cond) = cond {
                    out.push(Stmt::If {
                        cond,
                        then_branch,
                        else_branch,
                    });
                }
            }
            ast::Stmt::While { cond, body, .. } => {
                let cond = self.check_condition(cond);
                let body = self.check_loop_body(body);
                if let Ok(cond) = cond {
                    out.push(Stmt::Loop {
                        cond,
                        body,
                        step: None,
                        test_at_end: false,
                    });
                }
            }
            ast::Stmt::DoWhile { body, cond, .. } => {
                let body = self.check_loop_body(body);
                let cond = self.check_condition(cond);
                if let Ok(cond) = cond {
                    out.push(Stmt::Loop {
                        cond,
                        body,
                        step: None,
                        test_at_end: true,
                    });
                }
            }
            ast::Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.in_scope(|this| {
                    if let Some(init) = init {
                        this.check_stmt_into(init, out);
                    }
                    let cond = match cond {
                        Some(c) => this.check_condition(c),
                        None => Ok(Expr::Const {
                            value: ConstValue::Bool(true),
                            span: s.span(),
                        }),
                    };
                    let step = match step {
                        Some(e) => this.check_expr(e).ok(),
                        None => None,
                    };
                    let body = this.check_loop_body(body);
                    if let Ok(cond) = cond {
                        out.push(Stmt::Loop {
                            cond,
                            body,
                            step,
                            test_at_end: false,
                        });
                    }
                });
            }
            ast::Stmt::Return { value, span } => {
                let lowered = match (value, self.func.return_type) {
                    (None, Type::Void) => Some(Stmt::Return(None)),
                    (Some(v), Type::Void) => {
                        // Evaluate for errors, then complain.
                        let _ = self.check_expr(v);
                        self.diags
                            .error(*span, "void function cannot return a value");
                        None
                    }
                    (None, _) => {
                        self.diags.error(
                            *span,
                            format!("non-void function `{}` must return a value", self.func.name),
                        );
                        None
                    }
                    (Some(v), ret) => match self.check_expr(v) {
                        Ok(e) => match self.coerce(e, ret, *span) {
                            Ok(e) => Some(Stmt::Return(Some(e))),
                            Err(()) => None,
                        },
                        Err(()) => None,
                    },
                };
                out.extend(lowered);
            }
            ast::Stmt::Break(span) => {
                if self.loop_depth == 0 {
                    self.diags.error(*span, "`break` outside of a loop");
                } else {
                    out.push(Stmt::Break);
                }
            }
            ast::Stmt::Continue(span) => {
                if self.loop_depth == 0 {
                    self.diags.error(*span, "`continue` outside of a loop");
                } else {
                    out.push(Stmt::Continue);
                }
            }
        }
    }

    fn check_loop_body(&mut self, body: &ast::Stmt) -> Vec<Stmt> {
        self.loop_depth += 1;
        let v = self.in_scope(|t| {
            let mut v = Vec::new();
            t.check_stmt_into(body, &mut v);
            v
        });
        self.loop_depth -= 1;
        v
    }

    fn check_decl(&mut self, d: &ast::VarDecl, out: &mut Vec<Stmt>) {
        for decl in &d.declarators {
            if let Some(size) = &decl.array_size {
                self.check_array_decl(d, decl, size);
                continue;
            }
            if d.space == AddressSpace::Local && !d.is_pointer {
                self.diags.error(
                    decl.span,
                    "only `__local` arrays are supported; scalar `__local` variables are not",
                );
                continue;
            }
            if d.space == AddressSpace::Global && !d.is_pointer {
                self.diags.error(
                    decl.span,
                    "`__global` variables cannot be declared in kernel code",
                );
                continue;
            }
            let ty = if d.is_pointer {
                // The address-space qualifier on a pointer declaration
                // qualifies the pointee, as in OpenCL C.
                Type::Pointer {
                    pointee: d.scalar,
                    space: d.space,
                    is_const: d.is_const,
                }
            } else {
                Type::Scalar(d.scalar)
            };
            // `const` scalars remain assignable through their initialiser
            // only; mark the local const when an initialiser exists.
            let init = decl.init.as_ref().map(|e| self.check_expr(e));
            let id = self.declare(
                decl.name.clone(),
                ty,
                d.is_const && !d.is_pointer,
                None,
                decl.span,
            );
            if let Some(Ok(init)) = init {
                if let Ok(value) = self.coerce(init, ty, decl.span) {
                    out.push(Stmt::Expr(Expr::Assign {
                        place: Place::Local(id),
                        value: Box::new(value),
                        ty,
                        span: decl.span,
                    }));
                }
            }
        }
    }

    fn check_array_decl(&mut self, d: &ast::VarDecl, decl: &ast::Declarator, size: &ast::Expr) {
        if d.space != AddressSpace::Local {
            self.diags.error(
                decl.span,
                "arrays are only supported in `__local` memory in SkelCL C",
            );
            return;
        }
        if !self.is_kernel {
            self.diags.error(
                decl.span,
                "`__local` arrays may only be declared inside kernel functions",
            );
            return;
        }
        if d.is_pointer {
            self.diags
                .error(decl.span, "arrays of pointers are not supported");
            return;
        }
        if decl.init.is_some() {
            self.diags
                .error(decl.span, "`__local` arrays cannot have initialisers");
            return;
        }
        let Ok(size_expr) = self.check_expr(size) else {
            return;
        };
        let Some(value) = fold::try_eval(&size_expr) else {
            self.diags.error(
                size.span(),
                "`__local` array size must be a compile-time constant",
            );
            return;
        };
        let len = match value {
            ConstValue::Int(v, _) if v > 0 => v as u64,
            ConstValue::Int(_, _) => {
                self.diags.error(size.span(), "array size must be positive");
                return;
            }
            _ => {
                self.diags
                    .error(size.span(), "array size must be an integer constant");
                return;
            }
        };
        let ty = Type::Pointer {
            pointee: d.scalar,
            space: AddressSpace::Local,
            is_const: false,
        };
        self.declare(
            decl.name.clone(),
            ty,
            true, // the array binding itself is not assignable
            Some(LocalArray {
                elem: d.scalar,
                len,
            }),
            decl.span,
        );
    }

    // ----- expressions ----------------------------------------------------

    /// Checks an expression used as a condition, converting to `bool`.
    fn check_condition(&mut self, e: &ast::Expr) -> CResult<Expr> {
        let checked = self.check_expr(e)?;
        self.coerce_to_bool(checked, e.span())
    }

    fn coerce_to_bool(&mut self, e: Expr, span: Span) -> CResult<Expr> {
        match e.ty() {
            Type::Scalar(ScalarType::Bool) => Ok(e),
            Type::Scalar(_) => Ok(Expr::Convert {
                to: ScalarType::Bool,
                expr: Box::new(e),
                span,
            }),
            other => {
                self.diags.error(
                    span,
                    format!("expected a scalar condition, found `{other}`"),
                );
                Err(())
            }
        }
    }

    /// Inserts an implicit conversion from `e` to `to`, or reports an error.
    fn coerce(&mut self, e: Expr, to: Type, span: Span) -> CResult<Expr> {
        let from = e.ty();
        if from == to {
            return Ok(e);
        }
        match (from, to) {
            (Type::Scalar(_), Type::Scalar(t)) => Ok(Expr::Convert {
                to: t,
                expr: Box::new(e),
                span,
            }),
            (
                Type::Pointer {
                    pointee: pf,
                    is_const: cf,
                    space: sf,
                },
                Type::Pointer {
                    pointee: pt,
                    is_const: ct,
                    space: st,
                },
            ) => {
                if pf != pt {
                    self.diags.error(
                        span,
                        format!("cannot convert `{from}` to `{to}`: element types differ"),
                    );
                    return Err(());
                }
                if cf && !ct {
                    self.diags.error(
                        span,
                        format!("cannot convert `{from}` to `{to}`: discards `const`"),
                    );
                    return Err(());
                }
                // Address spaces: an unqualified (generic) pointer converts
                // freely; explicit spaces must match.
                let compatible =
                    sf == st || sf == AddressSpace::Private || st == AddressSpace::Private;
                if !compatible {
                    self.diags.error(
                        span,
                        format!("cannot convert `{from}` to `{to}`: address spaces differ"),
                    );
                    return Err(());
                }
                // Pointer identity is preserved at runtime; the conversion is
                // purely a typing reinterpretation, so reuse the expression.
                Ok(retype_pointer(e, to))
            }
            _ => {
                self.diags
                    .error(span, format!("cannot convert `{from}` to `{to}`"));
                Err(())
            }
        }
    }

    fn check_expr(&mut self, e: &ast::Expr) -> CResult<Expr> {
        match e {
            ast::Expr::IntLit {
                value,
                unsigned,
                long,
                span,
            } => {
                let (v, ty) = classify_int_literal(*value, *unsigned, *long);
                Ok(Expr::Const {
                    value: ConstValue::Int(v, ty),
                    span: *span,
                })
            }
            ast::Expr::FloatLit {
                value,
                single,
                span,
            } => Ok(Expr::Const {
                value: if *single {
                    ConstValue::F32(*value as f32)
                } else {
                    ConstValue::F64(*value)
                },
                span: *span,
            }),
            ast::Expr::BoolLit { value, span } => Ok(Expr::Const {
                value: ConstValue::Bool(*value),
                span: *span,
            }),
            ast::Expr::CharLit { value, span } => Ok(Expr::Const {
                value: ConstValue::Int(*value as i64, ScalarType::Char),
                span: *span,
            }),
            ast::Expr::Ident { name, span } => {
                if let Some(id) = self.lookup(name) {
                    let ty = self.locals[id.0 as usize].ty;
                    return Ok(Expr::Local {
                        id,
                        ty,
                        span: *span,
                    });
                }
                if let Some(c) = predefined_constant(name) {
                    return Ok(Expr::Const {
                        value: ConstValue::Int(c as i64, ScalarType::Int),
                        span: *span,
                    });
                }
                self.diags
                    .error(*span, format!("use of undeclared identifier `{name}`"));
                Err(())
            }
            ast::Expr::Unary { op, expr, span } => self.check_unary(*op, expr, *span),
            ast::Expr::Binary { op, lhs, rhs, span } => self.check_binary(*op, lhs, rhs, *span),
            ast::Expr::Assign { op, lhs, rhs, span } => self.check_assign(*op, lhs, rhs, *span),
            ast::Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                span,
            } => self.check_ternary(cond, then_expr, else_expr, *span),
            ast::Expr::Call {
                callee,
                callee_span,
                args,
                span,
            } => self.check_call(callee, *callee_span, args, *span),
            ast::Expr::Index { base, index, span } => {
                let ptr = self.check_index_ptr(base, index, *span)?;
                let Type::Pointer { pointee, .. } = ptr.ty() else {
                    unreachable!()
                };
                Ok(Expr::Load {
                    ptr: Box::new(ptr),
                    elem: pointee,
                    span: *span,
                })
            }
            ast::Expr::Cast { ty, expr, span } => {
                let inner = self.check_expr(expr)?;
                match (inner.ty(), *ty) {
                    (Type::Scalar(_), Type::Scalar(t)) => {
                        if inner.ty() == *ty {
                            Ok(inner)
                        } else {
                            Ok(Expr::Convert {
                                to: t,
                                expr: Box::new(inner),
                                span: *span,
                            })
                        }
                    }
                    (Type::Pointer { pointee: pf, .. }, Type::Pointer { pointee: pt, .. }) => {
                        if pf != pt {
                            self.diags
                                .error(*span, "pointer casts may not change the element type");
                            return Err(());
                        }
                        Ok(retype_pointer(inner, *ty))
                    }
                    (from, to) => {
                        self.diags
                            .error(*span, format!("invalid cast from `{from}` to `{to}`"));
                        Err(())
                    }
                }
            }
        }
    }

    fn check_unary(&mut self, op: ast::UnaryOp, operand: &ast::Expr, span: Span) -> CResult<Expr> {
        use ast::UnaryOp as U;
        match op {
            U::Plus | U::Neg => {
                let e = self.check_expr(operand)?;
                let Some(s) = e.ty().as_scalar() else {
                    self.diags.error(
                        span,
                        format!("cannot apply unary `{}` to `{}`", op.symbol(), e.ty()),
                    );
                    return Err(());
                };
                let promoted = if s.is_float() { s } else { integer_promote(s) };
                let e = self.coerce(e, Type::Scalar(promoted), span)?;
                if op == U::Plus {
                    Ok(e)
                } else {
                    Ok(Expr::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(e),
                        ty: promoted,
                        span,
                    })
                }
            }
            U::Not => {
                let e = self.check_expr(operand)?;
                let e = self.coerce_to_bool(e, span)?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                    ty: ScalarType::Bool,
                    span,
                })
            }
            U::BitNot => {
                let e = self.check_expr(operand)?;
                let Some(s) = e
                    .ty()
                    .as_scalar()
                    .filter(|s| s.is_integer() || *s == ScalarType::Bool)
                else {
                    self.diags.error(span, "`~` requires an integer operand");
                    return Err(());
                };
                let promoted = integer_promote(s);
                let e = self.coerce(e, Type::Scalar(promoted), span)?;
                Ok(Expr::Unary {
                    op: UnOp::BitNot,
                    expr: Box::new(e),
                    ty: promoted,
                    span,
                })
            }
            U::Deref => {
                let e = self.check_expr(operand)?;
                let Type::Pointer { pointee, .. } = e.ty() else {
                    self.diags
                        .error(span, format!("cannot dereference `{}`", e.ty()));
                    return Err(());
                };
                Ok(Expr::Load {
                    ptr: Box::new(e),
                    elem: pointee,
                    span,
                })
            }
            U::AddrOf => match operand {
                ast::Expr::Index { base, index, .. } => self.check_index_ptr(base, index, span),
                ast::Expr::Unary {
                    op: U::Deref, expr, ..
                } => {
                    let e = self.check_expr(expr)?;
                    if e.ty().is_pointer() {
                        Ok(e)
                    } else {
                        self.diags
                            .error(span, "cannot take the address of a non-pointer");
                        Err(())
                    }
                }
                _ => {
                    self.diags.error(
                        span,
                        "`&` is only supported on indexed or dereferenced pointers \
                         (private variables are not addressable)",
                    );
                    Err(())
                }
            },
            U::PreInc | U::PreDec | U::PostInc | U::PostDec => {
                let (place, ty) = self.check_place(operand)?;
                let ok = match ty {
                    Type::Scalar(s) => s != ScalarType::Bool,
                    Type::Pointer { .. } => true,
                    Type::Void => false,
                };
                if !ok {
                    self.diags.error(
                        span,
                        format!("cannot increment/decrement a value of type `{ty}`"),
                    );
                    return Err(());
                }
                Ok(Expr::IncDec {
                    place,
                    ty,
                    is_inc: matches!(op, U::PreInc | U::PostInc),
                    is_post: matches!(op, U::PostInc | U::PostDec),
                    span,
                })
            }
        }
    }

    fn check_binary(
        &mut self,
        op: ast::BinaryOp,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        span: Span,
    ) -> CResult<Expr> {
        use ast::BinaryOp as B;
        if op.is_logical() {
            let l = self.check_condition(lhs)?;
            let r = self.check_condition(rhs)?;
            return Ok(Expr::Logical {
                is_and: op == B::LogicalAnd,
                lhs: Box::new(l),
                rhs: Box::new(r),
                span,
            });
        }

        let l = self.check_expr(lhs)?;
        let r = self.check_expr(rhs)?;

        // Pointer arithmetic and comparison.
        if l.ty().is_pointer() || r.ty().is_pointer() {
            return self.check_pointer_binary(op, l, r, span);
        }

        let (Some(ls), Some(rs)) = (l.ty().as_scalar(), r.ty().as_scalar()) else {
            self.diags
                .error(span, format!("invalid operands to `{}`", op.symbol()));
            return Err(());
        };

        if op.is_comparison() {
            let common = usual_arithmetic_conversion(ls, rs);
            let l = self.coerce(l, Type::Scalar(common), span)?;
            let r = self.coerce(r, Type::Scalar(common), span)?;
            return Ok(Expr::Compare {
                op: cmp_op(op),
                lhs: Box::new(l),
                rhs: Box::new(r),
                operand_ty: Some(common),
                span,
            });
        }

        if op.integer_only() && (ls.is_float() || rs.is_float()) {
            self.diags.error(
                span,
                format!("operator `{}` requires integer operands", op.symbol()),
            );
            return Err(());
        }

        // Shifts take the promoted left type, like C.
        let common = if matches!(op, B::Shl | B::Shr) {
            integer_promote(ls)
        } else {
            usual_arithmetic_conversion(ls, rs)
        };
        let l = self.coerce(l, Type::Scalar(common), span)?;
        let r = self.coerce(r, Type::Scalar(common), span)?;
        Ok(Expr::Binary {
            op: bin_op(op),
            lhs: Box::new(l),
            rhs: Box::new(r),
            ty: common,
            span,
        })
    }

    fn check_pointer_binary(
        &mut self,
        op: ast::BinaryOp,
        l: Expr,
        r: Expr,
        span: Span,
    ) -> CResult<Expr> {
        use ast::BinaryOp as B;
        match (l.ty(), r.ty(), op) {
            (Type::Pointer { .. }, Type::Pointer { pointee: rp, .. }, B::Sub) => {
                let Type::Pointer { pointee: lp, .. } = l.ty() else {
                    unreachable!()
                };
                if lp != rp {
                    self.diags
                        .error(span, "cannot subtract pointers to different element types");
                    return Err(());
                }
                Ok(Expr::PtrDiff {
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                    span,
                })
            }
            (Type::Pointer { .. }, Type::Pointer { .. }, cmp) if cmp.is_comparison() => {
                Ok(Expr::Compare {
                    op: cmp_op(cmp),
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                    operand_ty: None,
                    span,
                })
            }
            (Type::Pointer { .. }, Type::Scalar(s), B::Add | B::Sub)
                if s.is_integer() || s == ScalarType::Bool =>
            {
                let ty = l.ty();
                let mut off = self.coerce(r, Type::Scalar(ScalarType::Long), span)?;
                if op == B::Sub {
                    off = Expr::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(off),
                        ty: ScalarType::Long,
                        span,
                    };
                }
                Ok(Expr::PtrOffset {
                    ptr: Box::new(l),
                    offset: Box::new(off),
                    ty,
                    span,
                })
            }
            (Type::Scalar(s), Type::Pointer { .. }, B::Add)
                if s.is_integer() || s == ScalarType::Bool =>
            {
                let ty = r.ty();
                let off = self.coerce(l, Type::Scalar(ScalarType::Long), span)?;
                Ok(Expr::PtrOffset {
                    ptr: Box::new(r),
                    offset: Box::new(off),
                    ty,
                    span,
                })
            }
            _ => {
                self.diags.error(
                    span,
                    format!(
                        "invalid operands to `{}`: `{}` and `{}`",
                        op.symbol(),
                        l.ty(),
                        r.ty()
                    ),
                );
                Err(())
            }
        }
    }

    fn check_assign(
        &mut self,
        op: Option<ast::BinaryOp>,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        span: Span,
    ) -> CResult<Expr> {
        let (place, ty) = self.check_place(lhs)?;
        let value = match op {
            None => {
                let r = self.check_expr(rhs)?;
                self.coerce(r, ty, span)?
            }
            Some(bop) => {
                // Lower `a op= b` to `a = a op b`, re-reading the place.
                let current = self.place_to_expr(&place, ty, lhs.span());
                let combined = self.check_binary_hir(bop, current, rhs, span)?;
                self.coerce(combined, ty, span)?
            }
        };
        Ok(Expr::Assign {
            place,
            value: Box::new(value),
            ty,
            span,
        })
    }

    /// Checks `lhs_hir op rhs_ast` where the left side is already lowered
    /// (used for compound assignment).
    fn check_binary_hir(
        &mut self,
        op: ast::BinaryOp,
        l: Expr,
        rhs: &ast::Expr,
        span: Span,
    ) -> CResult<Expr> {
        use ast::BinaryOp as B;
        let r = self.check_expr(rhs)?;
        if l.ty().is_pointer() || r.ty().is_pointer() {
            return self.check_pointer_binary(op, l, r, span);
        }
        let (Some(ls), Some(rs)) = (l.ty().as_scalar(), r.ty().as_scalar()) else {
            self.diags
                .error(span, format!("invalid operands to `{}`", op.symbol()));
            return Err(());
        };
        if op.integer_only() && (ls.is_float() || rs.is_float()) {
            self.diags.error(
                span,
                format!("operator `{}` requires integer operands", op.symbol()),
            );
            return Err(());
        }
        let common = if matches!(op, B::Shl | B::Shr) {
            integer_promote(ls)
        } else {
            usual_arithmetic_conversion(ls, rs)
        };
        let l = self.coerce(l, Type::Scalar(common), span)?;
        let r = self.coerce(r, Type::Scalar(common), span)?;
        Ok(Expr::Binary {
            op: bin_op(op),
            lhs: Box::new(l),
            rhs: Box::new(r),
            ty: common,
            span,
        })
    }

    fn place_to_expr(&self, place: &Place, ty: Type, span: Span) -> Expr {
        match place {
            Place::Local(id) => Expr::Local { id: *id, ty, span },
            Place::Deref { ptr, elem } => Expr::Load {
                ptr: ptr.clone(),
                elem: *elem,
                span,
            },
        }
    }

    fn check_place(&mut self, e: &ast::Expr) -> CResult<(Place, Type)> {
        match e {
            ast::Expr::Ident { name, span } => {
                let Some(id) = self.lookup(name) else {
                    self.diags
                        .error(*span, format!("use of undeclared identifier `{name}`"));
                    return Err(());
                };
                let decl = &self.locals[id.0 as usize];
                if decl.local_array.is_some() {
                    self.diags.error(
                        *span,
                        format!("`{name}` is an array and cannot be assigned"),
                    );
                    return Err(());
                }
                if decl.is_const {
                    self.diags
                        .error(*span, format!("cannot assign to `const` variable `{name}`"));
                    return Err(());
                }
                Ok((Place::Local(id), decl.ty))
            }
            ast::Expr::Index { base, index, span } => {
                let ptr = self.check_index_ptr(base, index, *span)?;
                let Type::Pointer {
                    pointee, is_const, ..
                } = ptr.ty()
                else {
                    unreachable!()
                };
                if is_const {
                    self.diags
                        .error(*span, "cannot store through a `const` pointer");
                    return Err(());
                }
                Ok((
                    Place::Deref {
                        ptr: Box::new(ptr),
                        elem: pointee,
                    },
                    Type::Scalar(pointee),
                ))
            }
            ast::Expr::Unary {
                op: ast::UnaryOp::Deref,
                expr,
                span,
            } => {
                let ptr = self.check_expr(expr)?;
                let Type::Pointer {
                    pointee, is_const, ..
                } = ptr.ty()
                else {
                    self.diags
                        .error(*span, format!("cannot dereference `{}`", ptr.ty()));
                    return Err(());
                };
                if is_const {
                    self.diags
                        .error(*span, "cannot store through a `const` pointer");
                    return Err(());
                }
                Ok((
                    Place::Deref {
                        ptr: Box::new(ptr),
                        elem: pointee,
                    },
                    Type::Scalar(pointee),
                ))
            }
            other => {
                self.diags
                    .error(other.span(), "expression is not assignable");
                Err(())
            }
        }
    }

    /// Lowers `base[index]` to the pointer expression `base + index`.
    fn check_index_ptr(
        &mut self,
        base: &ast::Expr,
        index: &ast::Expr,
        span: Span,
    ) -> CResult<Expr> {
        let b = self.check_expr(base)?;
        let ty = b.ty();
        if !ty.is_pointer() {
            self.diags
                .error(span, format!("cannot index a value of type `{ty}`"));
            return Err(());
        }
        let i = self.check_expr(index)?;
        let Some(s) = i
            .ty()
            .as_scalar()
            .filter(|s| s.is_integer() || *s == ScalarType::Bool)
        else {
            self.diags
                .error(index.span(), "array index must be an integer");
            return Err(());
        };
        let _ = s;
        let i = self.coerce(i, Type::Scalar(ScalarType::Long), span)?;
        Ok(Expr::PtrOffset {
            ptr: Box::new(b),
            offset: Box::new(i),
            ty,
            span,
        })
    }

    fn check_ternary(
        &mut self,
        cond: &ast::Expr,
        t: &ast::Expr,
        f: &ast::Expr,
        span: Span,
    ) -> CResult<Expr> {
        let cond = self.check_condition(cond)?;
        let te = self.check_expr(t)?;
        let fe = self.check_expr(f)?;
        let ty = match (te.ty(), fe.ty()) {
            (a, b) if a == b => a,
            (Type::Scalar(a), Type::Scalar(b)) => Type::Scalar(usual_arithmetic_conversion(a, b)),
            (a, b) => {
                self.diags.error(
                    span,
                    format!("incompatible ternary branch types `{a}` and `{b}`"),
                );
                return Err(());
            }
        };
        let te = self.coerce(te, ty, span)?;
        let fe = self.coerce(fe, ty, span)?;
        Ok(Expr::Ternary {
            cond: Box::new(cond),
            then_expr: Box::new(te),
            else_expr: Box::new(fe),
            ty,
            span,
        })
    }

    fn check_call(
        &mut self,
        callee: &str,
        callee_span: Span,
        args: &[ast::Expr],
        span: Span,
    ) -> CResult<Expr> {
        if self.lookup(callee).is_some() {
            self.diags.error(
                callee_span,
                format!("`{callee}` is a variable, not a function"),
            );
            return Err(());
        }
        if let Some(b) = Builtin::resolve(callee) {
            return self.check_builtin_call(b, args, span);
        }
        let Some(&func) = self.by_name.get(callee) else {
            self.diags.error(
                callee_span,
                format!("call to undefined function `{callee}`"),
            );
            return Err(());
        };
        let sig = &self.sigs[func.0 as usize];
        if sig.is_kernel {
            self.diags.error(
                callee_span,
                format!("kernel `{callee}` cannot be called from kernel code"),
            );
            return Err(());
        }
        if args.len() != sig.params.len() {
            self.diags.error(
                span,
                format!(
                    "`{callee}` expects {} argument(s), found {}",
                    sig.params.len(),
                    args.len()
                ),
            );
            return Err(());
        }
        let params: Vec<Type> = sig.params.clone();
        let ret = sig.return_type;
        let mut lowered = Vec::with_capacity(args.len());
        for (a, &pty) in args.iter().zip(&params) {
            let e = self.check_expr(a)?;
            lowered.push(self.coerce(e, pty, a.span())?);
        }
        self.calls.push(func);
        Ok(Expr::Call {
            func,
            args: lowered,
            ty: ret,
            span,
        })
    }

    fn check_builtin_call(&mut self, b: Builtin, args: &[ast::Expr], span: Span) -> CResult<Expr> {
        if args.len() != b.arity() {
            self.diags.error(
                span,
                format!(
                    "`{}` expects {} argument(s), found {}",
                    b.name(),
                    b.arity(),
                    args.len()
                ),
            );
            return Err(());
        }
        let mut lowered: Vec<Expr> = Vec::with_capacity(args.len());
        for a in args {
            lowered.push(self.check_expr(a)?);
        }
        let scalar_of = |this: &mut Self, e: &Expr, what: &str| -> CResult<ScalarType> {
            match e.ty().as_scalar() {
                Some(s) => Ok(s),
                None => {
                    this.diags.error(
                        e.span(),
                        format!("`{}` requires scalar arguments ({what})", b.name()),
                    );
                    Err(())
                }
            }
        };
        let ty = match b.kind() {
            BuiltinKind::WorkItemQuery => {
                let a = lowered.pop().expect("arity checked");
                lowered.push(self.coerce(a, Type::Scalar(ScalarType::UInt), span)?);
                Type::Scalar(WORK_ITEM_QUERY_RESULT)
            }
            BuiltinKind::WorkDim => Type::Scalar(ScalarType::UInt),
            BuiltinKind::Barrier | BuiltinKind::Trap => {
                let a = lowered.pop().expect("arity checked");
                lowered.push(self.coerce(a, Type::Scalar(ScalarType::Int), span)?);
                Type::Void
            }
            BuiltinKind::TrapValue => {
                let a = lowered.pop().expect("arity checked");
                lowered.push(self.coerce(a, Type::Scalar(ScalarType::Int), span)?);
                Type::Scalar(ScalarType::Int)
            }
            BuiltinKind::FloatUnary | BuiltinKind::FloatBinary => {
                let mut common = ScalarType::Float;
                for e in &lowered {
                    if scalar_of(self, e, "float math")? == ScalarType::Double {
                        common = ScalarType::Double;
                    }
                }
                for e in &mut lowered {
                    let taken = std::mem::replace(
                        e,
                        Expr::Const {
                            value: ConstValue::Bool(false),
                            span,
                        },
                    );
                    *e = self.coerce(taken, Type::Scalar(common), span)?;
                }
                Type::Scalar(common)
            }
            BuiltinKind::GenUnary => {
                let s = scalar_of(self, &lowered[0], "abs")?;
                let target = if s == ScalarType::Bool {
                    ScalarType::Int
                } else {
                    s
                };
                let a = lowered.pop().expect("arity checked");
                lowered.push(self.coerce(a, Type::Scalar(target), span)?);
                Type::Scalar(target)
            }
            BuiltinKind::GenBinary | BuiltinKind::GenTernary => {
                let mut common = scalar_of(self, &lowered[0], "operands")?;
                for e in &lowered[1..] {
                    common = usual_arithmetic_conversion(common, scalar_of(self, e, "operands")?);
                }
                for e in &mut lowered {
                    let taken = std::mem::replace(
                        e,
                        Expr::Const {
                            value: ConstValue::Bool(false),
                            span,
                        },
                    );
                    *e = self.coerce(taken, Type::Scalar(common), span)?;
                }
                Type::Scalar(common)
            }
        };
        Ok(Expr::BuiltinCall {
            builtin: b,
            args: lowered,
            ty,
            span,
        })
    }
}

/// Re-types a pointer-valued expression (pointer identity is dynamic, so
/// only the static type changes).
fn retype_pointer(e: Expr, to: Type) -> Expr {
    match e {
        Expr::Local { id, span, .. } => Expr::Local { id, ty: to, span },
        Expr::PtrOffset {
            ptr, offset, span, ..
        } => Expr::PtrOffset {
            ptr,
            offset,
            ty: to,
            span,
        },
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            span,
            ..
        } => Expr::Ternary {
            cond,
            then_expr: Box::new(retype_pointer(*then_expr, to)),
            else_expr: Box::new(retype_pointer(*else_expr, to)),
            ty: to,
            span,
        },
        Expr::Call {
            func, args, span, ..
        } => Expr::Call {
            func,
            args,
            ty: to,
            span,
        },
        Expr::Assign {
            place, value, span, ..
        } => Expr::Assign {
            place,
            value,
            ty: to,
            span,
        },
        Expr::IncDec {
            place,
            is_inc,
            is_post,
            span,
            ..
        } => Expr::IncDec {
            place,
            ty: to,
            is_inc,
            is_post,
            span,
        },
        other => other,
    }
}

/// Selects the type of an integer literal: the smallest of `int`/`long`
/// (honouring `u`/`l` suffixes) that fits.
fn classify_int_literal(value: u64, unsigned: bool, long: bool) -> (i64, ScalarType) {
    use ScalarType::*;
    let ty = match (unsigned, long) {
        (false, false) => {
            if value <= i32::MAX as u64 {
                Int
            } else if value <= i64::MAX as u64 {
                Long
            } else {
                ULong
            }
        }
        (true, false) => {
            if value <= u32::MAX as u64 {
                UInt
            } else {
                ULong
            }
        }
        (false, true) => {
            if value <= i64::MAX as u64 {
                Long
            } else {
                ULong
            }
        }
        (true, true) => ULong,
    };
    (value as i64, ty)
}

fn bin_op(op: ast::BinaryOp) -> BinOp {
    use ast::BinaryOp as B;
    match op {
        B::Add => BinOp::Add,
        B::Sub => BinOp::Sub,
        B::Mul => BinOp::Mul,
        B::Div => BinOp::Div,
        B::Rem => BinOp::Rem,
        B::BitAnd => BinOp::BitAnd,
        B::BitOr => BinOp::BitOr,
        B::BitXor => BinOp::BitXor,
        B::Shl => BinOp::Shl,
        B::Shr => BinOp::Shr,
        other => panic!("not a value operator: {other:?}"),
    }
}

fn cmp_op(op: ast::BinaryOp) -> CmpOp {
    use ast::BinaryOp as B;
    match op {
        B::Lt => CmpOp::Lt,
        B::Le => CmpOp::Le,
        B::Gt => CmpOp::Gt,
        B::Ge => CmpOp::Ge,
        B::Eq => CmpOp::Eq,
        B::Ne => CmpOp::Ne,
        other => panic!("not a comparison operator: {other:?}"),
    }
}

/// Conservative "all paths return" analysis used for the missing-return
/// warning.
fn stmts_definitely_return(stmts: &[Stmt]) -> bool {
    stmts.iter().any(stmt_definitely_returns)
}

fn stmt_definitely_returns(s: &Stmt) -> bool {
    match s {
        Stmt::Return(_) => true,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => stmts_definitely_return(then_branch) && stmts_definitely_return(else_branch),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::source::SourceFile;

    fn analyze_src(src: &str) -> Result<Unit, String> {
        let f = SourceFile::new("t.cl", src);
        let mut d = Diagnostics::new();
        let tu = parse(&f, &mut d);
        if d.has_errors() {
            return Err(d.render(&f));
        }
        match analyze(&tu, &mut d) {
            Some(u) => Ok(u),
            None => Err(d.render(&f)),
        }
    }

    fn expect_ok(src: &str) -> Unit {
        analyze_src(src).unwrap_or_else(|e| panic!("unexpected sema errors:\n{e}"))
    }

    fn expect_err(src: &str, needle: &str) {
        let err = analyze_src(src).expect_err("expected sema errors");
        assert!(err.contains(needle), "expected `{needle}` in:\n{err}");
    }

    #[test]
    fn paper_negation_function() {
        let u = expect_ok("float func(float x){ return -x; }");
        let (_, f) = u.function("func").unwrap();
        assert_eq!(f.return_type, Type::scalar(ScalarType::Float));
        assert_eq!(f.param_count, 1);
        assert!(matches!(f.body[0], Stmt::Return(Some(_))));
    }

    #[test]
    fn implicit_conversions_inserted() {
        let u = expect_ok("float func(float x, int n){ return x + n; }");
        let (_, f) = u.function("func").unwrap();
        let Stmt::Return(Some(Expr::Binary { ty, rhs, .. })) = &f.body[0] else {
            panic!()
        };
        assert_eq!(*ty, ScalarType::Float);
        assert!(matches!(
            **rhs,
            Expr::Convert {
                to: ScalarType::Float,
                ..
            }
        ));
    }

    #[test]
    fn char_arithmetic_promotes_to_int() {
        let u = expect_ok("int f(char a, char b){ return a + b; }");
        let (_, f) = u.function("f").unwrap();
        let Stmt::Return(Some(Expr::Binary { ty, .. })) = &f.body[0] else {
            panic!()
        };
        assert_eq!(*ty, ScalarType::Int);
    }

    #[test]
    fn undeclared_identifier() {
        expect_err("float f(float x){ return y; }", "undeclared identifier `y`");
    }

    #[test]
    fn redefinition_of_variable() {
        expect_err("void f(){ int x; float x; }", "redefinition of `x`");
    }

    #[test]
    fn shadowing_in_inner_scope_is_allowed() {
        expect_ok("int f(int x){ { int y = x; { int y2 = y; float y3 = 0.0f; } } return x; }");
        expect_ok("int f(int x){ for (int i = 0; i < 3; ++i) { int x2 = x; } return x; }");
    }

    #[test]
    fn kernel_rules() {
        expect_err("__kernel int k(){ return 0; }", "must return `void`");
        expect_err(
            "__kernel void k(int* p){ }",
            "must be `__global` or `__local`",
        );
        expect_ok("__kernel void k(__global float* p, int n){ }");
        expect_err(
            "__kernel void k(__global int* p){ } void f(){ k(0); }",
            "cannot be called",
        );
    }

    #[test]
    fn recursion_rejected() {
        expect_err(
            "int f(int x){ return f(x - 1); }",
            "recursion is not allowed",
        );
        expect_err(
            "int g(int x){ return h(x); } int h(int x){ return g(x); }",
            "recursion is not allowed",
        );
    }

    #[test]
    fn forward_reference_is_allowed() {
        expect_ok("int f(int x){ return g(x) + 1; } int g(int x){ return x * 2; }");
    }

    #[test]
    fn local_array_rules() {
        expect_ok("__kernel void k(){ __local float tile[16 * 16]; tile[0] = 1.0f; }");
        expect_err(
            "void f(){ __local float tile[4]; }",
            "may only be declared inside kernel",
        );
        expect_err(
            "__kernel void k(int n){ __local float t[n]; }",
            "compile-time constant",
        );
        expect_err(
            "__kernel void k(){ __local float t[0]; }",
            "must be positive",
        );
        expect_err(
            "__kernel void k(){ float t[4]; }",
            "only supported in `__local` memory",
        );
        expect_err(
            "__kernel void k(){ __local int x; }",
            "only `__local` arrays",
        );
        expect_err(
            "__kernel void k(){ __local float t[2]; t = t; }",
            "array and cannot be assigned",
        );
    }

    #[test]
    fn const_rules() {
        expect_err(
            "void f(){ const int x = 1; x = 2; }",
            "cannot assign to `const`",
        );
        expect_err(
            "void f(const float* p){ p[0] = 1.0f; }",
            "cannot store through a `const` pointer",
        );
        expect_err(
            "void f(const float* p, float* q){ q = p; }",
            "discards `const`",
        );
        expect_ok("void f(const float* p, float x){ x = p[0]; }");
    }

    #[test]
    fn pointer_arithmetic_lowering() {
        let u = expect_ok("float f(__global float* a, int i){ return *(a + i) + a[i + 1]; }");
        let (_, f) = u.function("f").unwrap();
        let Stmt::Return(Some(Expr::Binary { lhs, rhs, .. })) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(**lhs, Expr::Load { .. }));
        assert!(matches!(**rhs, Expr::Load { .. }));
    }

    #[test]
    fn pointer_difference() {
        let u = expect_ok("long f(__global float* a, __global float* b){ return a - b; }");
        let (_, f) = u.function("f").unwrap();
        assert!(matches!(
            f.body[0],
            Stmt::Return(Some(Expr::PtrDiff { .. }))
        ));
        expect_err(
            "long f(__global float* a, __global int* b){ return a - b; }",
            "different element types",
        );
    }

    #[test]
    fn address_of_row_pointer() {
        expect_ok(
            "float g(const float* row){ return row[0]; }
             float f(__global float* a, int i){ return g(&a[i * 4]); }",
        );
        expect_err("int f(int x){ int* p = &x; return *p; }", "not addressable");
    }

    #[test]
    fn generic_pointer_accepts_global() {
        expect_ok(
            "float sum3(const float* p){ return p[0] + p[1] + p[2]; }
             __kernel void k(__global float* data, __global float* out){
                 int i = (int)get_global_id(0);
                 out[i] = sum3(&data[i]);
             }",
        );
    }

    #[test]
    fn explicit_space_mismatch_rejected() {
        expect_err(
            "__kernel void k(__global float* g){ __local float t[4]; __global float* p = t; }",
            "address spaces differ",
        );
    }

    #[test]
    fn builtin_calls() {
        let u = expect_ok(
            "__kernel void k(__global float* o){
                int i = (int)get_global_id(0);
                o[i] = sqrt((float)i) + fmax(1.0f, 2.0f);
                barrier(CLK_LOCAL_MEM_FENCE);
            }",
        );
        assert_eq!(u.functions.len(), 1);
        expect_err("void f(){ sqrt(1.0f, 2.0f); }", "expects 1 argument");
        expect_err(
            "float f(float x){ float sqrt = x; return sqrt(x); }",
            "is a variable",
        );
        expect_err(
            "float sqrt(float x){ return x; }",
            "cannot redefine builtin",
        );
    }

    #[test]
    fn float_builtin_promotes_to_double() {
        let u = expect_ok("double f(double x){ return sin(x); }");
        let (_, f) = u.function("f").unwrap();
        let Stmt::Return(Some(Expr::BuiltinCall { ty, .. })) = &f.body[0] else {
            panic!()
        };
        assert_eq!(*ty, Type::scalar(ScalarType::Double));
        let u = expect_ok("float f(int x){ return sin(x); }");
        let (_, f) = u.function("f").unwrap();
        let Stmt::Return(Some(Expr::Convert { .. })) = &f.body[0] else {
            // sin(int) is float; returning as float requires no conversion.
            let Stmt::Return(Some(Expr::BuiltinCall { ty, .. })) = &f.body[0] else {
                panic!()
            };
            assert_eq!(*ty, Type::scalar(ScalarType::Float));
            return;
        };
    }

    #[test]
    fn work_item_query_types() {
        let u = expect_ok("__kernel void k(__global int* o){ o[get_global_id(0)] = 1; }");
        let (_, f) = u.function("k").unwrap();
        assert!(f.is_kernel);
    }

    #[test]
    fn loops_lowered() {
        let u = expect_ok(
            "int f(int n){
                int s = 0;
                for (int i = 0; i < n; ++i) { if (i == 3) continue; s += i; }
                while (s > 100) s -= 1;
                do { s += 1; } while (s < 0);
                return s;
            }",
        );
        let (_, f) = u.function("f").unwrap();
        let loops = f
            .body
            .iter()
            .filter(|s| matches!(s, Stmt::Loop { .. }))
            .count();
        assert_eq!(loops, 3);
    }

    #[test]
    fn break_continue_outside_loop() {
        expect_err("void f(){ break; }", "`break` outside of a loop");
        expect_err("void f(){ continue; }", "`continue` outside of a loop");
    }

    #[test]
    fn return_type_checks() {
        expect_err(
            "void f(){ return 1; }",
            "void function cannot return a value",
        );
        expect_err("int f(){ return; }", "must return a value");
        let u = expect_ok("float f(){ return 1; }");
        let (_, f) = u.function("f").unwrap();
        let Stmt::Return(Some(e)) = &f.body[0] else {
            panic!()
        };
        assert_eq!(e.ty(), Type::scalar(ScalarType::Float));
    }

    #[test]
    fn missing_return_warns_but_compiles() {
        let f = SourceFile::new("t.cl", "int f(int x){ if (x > 0) return 1; }");
        let mut d = Diagnostics::new();
        let tu = parse(&f, &mut d);
        let unit = analyze(&tu, &mut d);
        assert!(unit.is_some());
        assert!(!d.has_errors());
        assert!(d.render(&f).contains("control may reach the end"));
    }

    #[test]
    fn ternary_type_unification() {
        let u = expect_ok("float f(int c, float a, int b){ return c ? a : b; }");
        let (_, f) = u.function("f").unwrap();
        let Stmt::Return(Some(Expr::Ternary { ty, .. })) = &f.body[0] else {
            panic!()
        };
        assert_eq!(*ty, Type::scalar(ScalarType::Float));
        expect_err(
            "void f(__global float* p, int c){ float x = c ? p : 1.0f; }",
            "incompatible ternary branch types",
        );
    }

    #[test]
    fn compound_assignment_reads_place() {
        let u = expect_ok("void f(__global float* p, int i){ p[i] += 2.0f; }");
        let (_, f) = u.function("f").unwrap();
        let Stmt::Expr(Expr::Assign {
            place: Place::Deref { .. },
            value,
            ..
        }) = &f.body[0]
        else {
            panic!()
        };
        assert!(matches!(**value, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn incdec_on_pointer_and_int() {
        expect_ok("void f(__global float* p, int i){ p++; --i; i++; }");
        expect_err("void f(bool b){ b++; }", "cannot increment");
    }

    #[test]
    fn integer_only_operators() {
        expect_err(
            "float f(float a){ return a % 2.0f; }",
            "requires integer operands",
        );
        expect_err(
            "float f(float a){ return a << 1; }",
            "requires integer operands",
        );
        expect_ok("int f(int a){ return (a % 3) ^ (a & 1) | (a << 2) >> 1; }");
    }

    #[test]
    fn literal_classification() {
        let u =
            expect_ok("void f(){ long a = 3000000000; int b = 5; ulong c = 0xFFFFFFFFFFFFFFFF; }");
        let (_, f) = u.function("f").unwrap();
        // `a` initialiser: literal 3000000000 doesn't fit in int -> Long.
        let Stmt::Expr(Expr::Assign { value, .. }) = &f.body[0] else {
            panic!()
        };
        assert_eq!(value.ty(), Type::scalar(ScalarType::Long));
    }

    #[test]
    fn duplicate_function_rejected() {
        expect_err("void f(){ } void f(){ }", "redefinition of function `f`");
    }

    #[test]
    fn call_arity_checked() {
        expect_err(
            "int g(int a, int b){ return a + b; } int f(){ return g(1); }",
            "expects 2 argument(s), found 1",
        );
        expect_err(
            "int f(){ return nothere(); }",
            "undefined function `nothere`",
        );
    }

    #[test]
    fn logical_operators_yield_bool() {
        let u = expect_ok("bool f(int a, float b){ return a && b || !a; }");
        let (_, f) = u.function("f").unwrap();
        let Stmt::Return(Some(e)) = &f.body[0] else {
            panic!()
        };
        assert_eq!(e.ty(), Type::scalar(ScalarType::Bool));
    }

    #[test]
    fn pointer_condition_rejected() {
        expect_err(
            "void f(__global int* p){ if (p) { } }",
            "expected a scalar condition",
        );
    }
}
