//! Builtin functions available to SkelCL C kernels: OpenCL work-item query
//! functions, synchronisation, and the common math library.

use crate::types::ScalarType;
use crate::value::Value;

/// A builtin function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    // Work-item functions (evaluated by the VM against launch geometry).
    /// `get_global_id(dim)`
    GetGlobalId,
    /// `get_local_id(dim)`
    GetLocalId,
    /// `get_group_id(dim)`
    GetGroupId,
    /// `get_global_size(dim)`
    GetGlobalSize,
    /// `get_local_size(dim)`
    GetLocalSize,
    /// `get_num_groups(dim)`
    GetNumGroups,
    /// `get_work_dim()`
    GetWorkDim,
    /// `barrier(flags)` — work-group synchronisation point.
    Barrier,
    /// `__skelcl_trap(code)` — aborts the launch with a runtime error.
    /// Used by generated code for bounds violations.
    Trap,
    /// `__skelcl_trap_int(code)` — like `Trap` but typed as returning
    /// `int`, so generated code can place it in a ternary arm
    /// (`ok ? value : (T)__skelcl_trap_int(code)`). It never actually
    /// returns.
    TrapValue,

    // Unary float math.
    /// `sqrt(x)`
    Sqrt,
    /// `rsqrt(x)` = 1/sqrt(x)
    Rsqrt,
    /// `fabs(x)`
    Fabs,
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `tan(x)`
    Tan,
    /// `asin(x)`
    Asin,
    /// `acos(x)`
    Acos,
    /// `atan(x)`
    Atan,
    /// `exp(x)`
    Exp,
    /// `exp2(x)`
    Exp2,
    /// `log(x)`
    Log,
    /// `log2(x)`
    Log2,
    /// `log10(x)`
    Log10,
    /// `floor(x)`
    Floor,
    /// `ceil(x)`
    Ceil,
    /// `round(x)`
    Round,
    /// `trunc(x)`
    Trunc,

    // Binary float math.
    /// `pow(x, y)`
    Pow,
    /// `atan2(y, x)`
    Atan2,
    /// `fmod(x, y)`
    Fmod,
    /// `fmin(x, y)`
    Fmin,
    /// `fmax(x, y)`
    Fmax,
    /// `hypot(x, y)`
    Hypot,

    // Generic (integer or float) helpers.
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `clamp(x, lo, hi)`
    Clamp,
    /// `abs(x)` — absolute value. Deviation from OpenCL: on signed integers
    /// this returns the same signed type rather than the unsigned type.
    Abs,
    /// `mad(a, b, c)` = a*b + c (float).
    Mad,
}

/// The typing shape of a builtin's signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinKind {
    /// `(uint dim) -> ulong`, evaluated against launch geometry.
    WorkItemQuery,
    /// `() -> uint`.
    WorkDim,
    /// `(int flags) -> void`, synchronisation.
    Barrier,
    /// `(int code) -> void`, aborts the launch.
    Trap,
    /// `(int code) -> int`, aborts the launch (never returns).
    TrapValue,
    /// `(genfloat) -> genfloat` — `float` unless the argument is `double`.
    FloatUnary,
    /// `(genfloat, genfloat) -> genfloat`.
    FloatBinary,
    /// `(gentype, gentype) -> gentype` — integer or float, common type.
    GenBinary,
    /// `(gentype, gentype, gentype) -> gentype`.
    GenTernary,
    /// `(gentype) -> gentype`.
    GenUnary,
}

impl Builtin {
    /// Resolves a source identifier to a builtin.
    pub fn resolve(name: &str) -> Option<Builtin> {
        use Builtin::*;
        Some(match name {
            "get_global_id" => GetGlobalId,
            "get_local_id" => GetLocalId,
            "get_group_id" => GetGroupId,
            "get_global_size" => GetGlobalSize,
            "get_local_size" => GetLocalSize,
            "get_num_groups" => GetNumGroups,
            "get_work_dim" => GetWorkDim,
            "barrier" => Barrier,
            "__skelcl_trap" => Trap,
            "__skelcl_trap_int" => TrapValue,
            "sqrt" | "native_sqrt" => Sqrt,
            "rsqrt" | "native_rsqrt" => Rsqrt,
            "fabs" => Fabs,
            "sin" | "native_sin" => Sin,
            "cos" | "native_cos" => Cos,
            "tan" => Tan,
            "asin" => Asin,
            "acos" => Acos,
            "atan" => Atan,
            "exp" | "native_exp" => Exp,
            "exp2" => Exp2,
            "log" | "native_log" => Log,
            "log2" => Log2,
            "log10" => Log10,
            "floor" => Floor,
            "ceil" => Ceil,
            "round" => Round,
            "trunc" => Trunc,
            "pow" | "powr" => Pow,
            "atan2" => Atan2,
            "fmod" => Fmod,
            "fmin" => Fmin,
            "fmax" => Fmax,
            "hypot" => Hypot,
            "min" => Min,
            "max" => Max,
            "clamp" => Clamp,
            "abs" => Abs,
            "mad" => Mad,
            _ => return None,
        })
    }

    /// The canonical source spelling.
    pub fn name(self) -> &'static str {
        use Builtin::*;
        match self {
            GetGlobalId => "get_global_id",
            GetLocalId => "get_local_id",
            GetGroupId => "get_group_id",
            GetGlobalSize => "get_global_size",
            GetLocalSize => "get_local_size",
            GetNumGroups => "get_num_groups",
            GetWorkDim => "get_work_dim",
            Barrier => "barrier",
            Trap => "__skelcl_trap",
            TrapValue => "__skelcl_trap_int",
            Sqrt => "sqrt",
            Rsqrt => "rsqrt",
            Fabs => "fabs",
            Sin => "sin",
            Cos => "cos",
            Tan => "tan",
            Asin => "asin",
            Acos => "acos",
            Atan => "atan",
            Exp => "exp",
            Exp2 => "exp2",
            Log => "log",
            Log2 => "log2",
            Log10 => "log10",
            Floor => "floor",
            Ceil => "ceil",
            Round => "round",
            Trunc => "trunc",
            Pow => "pow",
            Atan2 => "atan2",
            Fmod => "fmod",
            Fmin => "fmin",
            Fmax => "fmax",
            Hypot => "hypot",
            Min => "min",
            Max => "max",
            Clamp => "clamp",
            Abs => "abs",
            Mad => "mad",
        }
    }

    /// The builtin's signature shape.
    pub fn kind(self) -> BuiltinKind {
        use Builtin::*;
        use BuiltinKind::*;
        match self {
            GetGlobalId | GetLocalId | GetGroupId | GetGlobalSize | GetLocalSize | GetNumGroups => {
                WorkItemQuery
            }
            GetWorkDim => WorkDim,
            Builtin::Barrier => BuiltinKind::Barrier,
            Builtin::Trap => BuiltinKind::Trap,
            Builtin::TrapValue => BuiltinKind::TrapValue,
            Sqrt | Rsqrt | Fabs | Sin | Cos | Tan | Asin | Acos | Atan | Exp | Exp2 | Log
            | Log2 | Log10 | Floor | Ceil | Round | Trunc => FloatUnary,
            Pow | Atan2 | Fmod | Fmin | Fmax | Hypot => FloatBinary,
            Min | Max => GenBinary,
            Clamp | Mad => GenTernary,
            Abs => GenUnary,
        }
    }

    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        match self.kind() {
            BuiltinKind::WorkDim => 0,
            BuiltinKind::WorkItemQuery
            | BuiltinKind::Barrier
            | BuiltinKind::Trap
            | BuiltinKind::TrapValue
            | BuiltinKind::FloatUnary
            | BuiltinKind::GenUnary => 1,
            BuiltinKind::FloatBinary | BuiltinKind::GenBinary => 2,
            BuiltinKind::GenTernary => 3,
        }
    }

    /// Whether the VM must handle the call specially (geometry queries,
    /// barriers, traps) rather than through [`eval_pure`].
    pub fn is_special(self) -> bool {
        matches!(
            self.kind(),
            BuiltinKind::WorkItemQuery
                | BuiltinKind::WorkDim
                | BuiltinKind::Barrier
                | BuiltinKind::Trap
                | BuiltinKind::TrapValue
        )
    }
}

/// Evaluates a pure (math) builtin. Arguments must already be converted to
/// the common type chosen by sema: all-`F32`, all-`F64`, or a uniform
/// integer type for the generic helpers.
///
/// # Panics
///
/// Panics if called for a special builtin or with mismatched argument
/// variants (both indicate compiler bugs; sema guarantees the contract).
pub fn eval_pure(b: Builtin, args: &[Value]) -> Value {
    use Builtin::*;
    match b.kind() {
        BuiltinKind::FloatUnary => match args[0] {
            Value::F32(x) => Value::F32(float_unary(b, x as f64) as f32),
            Value::F64(x) => Value::F64(float_unary(b, x)),
            other => panic!("float builtin {b:?} on {other:?}"),
        },
        BuiltinKind::FloatBinary => match (args[0], args[1]) {
            (Value::F32(x), Value::F32(y)) => {
                Value::F32(float_binary(b, x as f64, y as f64) as f32)
            }
            (Value::F64(x), Value::F64(y)) => Value::F64(float_binary(b, x, y)),
            other => panic!("float builtin {b:?} on {other:?}"),
        },
        BuiltinKind::GenUnary => {
            debug_assert_eq!(b, Abs);
            match args[0] {
                Value::F32(x) => Value::F32(x.abs()),
                Value::F64(x) => Value::F64(x.abs()),
                Value::I8(x) => Value::I8(x.wrapping_abs()),
                Value::I16(x) => Value::I16(x.wrapping_abs()),
                Value::I32(x) => Value::I32(x.wrapping_abs()),
                Value::I64(x) => Value::I64(x.wrapping_abs()),
                v @ (Value::U8(_) | Value::U16(_) | Value::U32(_) | Value::U64(_)) => v,
                other => panic!("abs on {other:?}"),
            }
        }
        BuiltinKind::GenBinary => {
            let take_min = b == Min;
            debug_assert!(take_min || b == Max);
            gen_minmax(args[0], args[1], take_min)
        }
        BuiltinKind::GenTernary => match b {
            Clamp => {
                let lo_clamped = gen_minmax(args[0], args[1], false); // max(x, lo)
                gen_minmax(lo_clamped, args[2], true) // min(.., hi)
            }
            Mad => match (args[0], args[1], args[2]) {
                (Value::F32(a), Value::F32(x), Value::F32(c)) => Value::F32(a * x + c),
                (Value::F64(a), Value::F64(x), Value::F64(c)) => Value::F64(a * x + c),
                other => panic!("mad on {other:?}"),
            },
            other => panic!("unexpected ternary builtin {other:?}"),
        },
        _ => panic!("special builtin {b:?} must be handled by the VM"),
    }
}

fn gen_minmax(a: Value, b: Value, take_min: bool) -> Value {
    macro_rules! mm {
        ($x:expr, $y:expr, $v:ident) => {
            if take_min {
                Value::$v(if $x < $y { $x } else { $y })
            } else {
                Value::$v(if $x > $y { $x } else { $y })
            }
        };
    }
    match (a, b) {
        (Value::I8(x), Value::I8(y)) => mm!(x, y, I8),
        (Value::U8(x), Value::U8(y)) => mm!(x, y, U8),
        (Value::I16(x), Value::I16(y)) => mm!(x, y, I16),
        (Value::U16(x), Value::U16(y)) => mm!(x, y, U16),
        (Value::I32(x), Value::I32(y)) => mm!(x, y, I32),
        (Value::U32(x), Value::U32(y)) => mm!(x, y, U32),
        (Value::I64(x), Value::I64(y)) => mm!(x, y, I64),
        (Value::U64(x), Value::U64(y)) => mm!(x, y, U64),
        (Value::F32(x), Value::F32(y)) => mm!(x, y, F32),
        (Value::F64(x), Value::F64(y)) => mm!(x, y, F64),
        other => panic!("min/max on mismatched operands {other:?}"),
    }
}

fn float_unary(b: Builtin, x: f64) -> f64 {
    use Builtin::*;
    match b {
        Sqrt => x.sqrt(),
        Rsqrt => 1.0 / x.sqrt(),
        Fabs => x.abs(),
        Sin => x.sin(),
        Cos => x.cos(),
        Tan => x.tan(),
        Asin => x.asin(),
        Acos => x.acos(),
        Atan => x.atan(),
        Exp => x.exp(),
        Exp2 => x.exp2(),
        Log => x.ln(),
        Log2 => x.log2(),
        Log10 => x.log10(),
        Floor => x.floor(),
        Ceil => x.ceil(),
        Round => x.round(),
        Trunc => x.trunc(),
        other => panic!("not a unary float builtin: {other:?}"),
    }
}

fn float_binary(b: Builtin, x: f64, y: f64) -> f64 {
    use Builtin::*;
    match b {
        Pow => x.powf(y),
        Atan2 => x.atan2(y),
        Fmod => x % y,
        Fmin => x.min(y),
        Fmax => x.max(y),
        Hypot => x.hypot(y),
        other => panic!("not a binary float builtin: {other:?}"),
    }
}

/// Named integer constants predefined in every SkelCL C compilation, like
/// OpenCL's memory-fence flags.
pub fn predefined_constant(name: &str) -> Option<i32> {
    Some(match name {
        "CLK_LOCAL_MEM_FENCE" => 1,
        "CLK_GLOBAL_MEM_FENCE" => 2,
        _ => None?,
    })
}

/// The result type family of work-item queries: OpenCL `size_t`, which
/// SkelCL C models as `ulong`.
pub const WORK_ITEM_QUERY_RESULT: ScalarType = ScalarType::ULong;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_and_names_agree() {
        for b in [
            Builtin::GetGlobalId,
            Builtin::Barrier,
            Builtin::Sqrt,
            Builtin::Pow,
            Builtin::Min,
            Builtin::Clamp,
            Builtin::Abs,
            Builtin::Mad,
        ] {
            assert_eq!(Builtin::resolve(b.name()), Some(b));
        }
        assert_eq!(Builtin::resolve("nonsense"), None);
        assert_eq!(Builtin::resolve("native_sqrt"), Some(Builtin::Sqrt));
    }

    #[test]
    fn arity_matches_kind() {
        assert_eq!(Builtin::GetWorkDim.arity(), 0);
        assert_eq!(Builtin::Sqrt.arity(), 1);
        assert_eq!(Builtin::Pow.arity(), 2);
        assert_eq!(Builtin::Clamp.arity(), 3);
    }

    #[test]
    fn float_math_f32_and_f64() {
        assert_eq!(
            eval_pure(Builtin::Sqrt, &[Value::F32(9.0)]),
            Value::F32(3.0)
        );
        assert_eq!(
            eval_pure(Builtin::Sqrt, &[Value::F64(16.0)]),
            Value::F64(4.0)
        );
        assert_eq!(
            eval_pure(Builtin::Pow, &[Value::F32(2.0), Value::F32(10.0)]),
            Value::F32(1024.0)
        );
        assert_eq!(
            eval_pure(Builtin::Hypot, &[Value::F64(3.0), Value::F64(4.0)]),
            Value::F64(5.0)
        );
    }

    #[test]
    fn generic_min_max_clamp() {
        assert_eq!(
            eval_pure(Builtin::Min, &[Value::I32(-3), Value::I32(2)]),
            Value::I32(-3)
        );
        assert_eq!(
            eval_pure(Builtin::Max, &[Value::U8(3), Value::U8(200)]),
            Value::U8(200)
        );
        assert_eq!(
            eval_pure(Builtin::Max, &[Value::F32(1.5), Value::F32(-2.0)]),
            Value::F32(1.5)
        );
        assert_eq!(
            eval_pure(
                Builtin::Clamp,
                &[Value::I32(10), Value::I32(0), Value::I32(5)]
            ),
            Value::I32(5)
        );
        assert_eq!(
            eval_pure(
                Builtin::Clamp,
                &[Value::I32(-10), Value::I32(0), Value::I32(5)]
            ),
            Value::I32(0)
        );
    }

    #[test]
    fn abs_behaviour() {
        assert_eq!(eval_pure(Builtin::Abs, &[Value::I32(-5)]), Value::I32(5));
        assert_eq!(eval_pure(Builtin::Abs, &[Value::U32(5)]), Value::U32(5));
        assert_eq!(
            eval_pure(Builtin::Abs, &[Value::F64(-2.5)]),
            Value::F64(2.5)
        );
        assert_eq!(
            eval_pure(Builtin::Abs, &[Value::I32(i32::MIN)]),
            Value::I32(i32::MIN)
        );
    }

    #[test]
    fn mad_fused_shape() {
        assert_eq!(
            eval_pure(
                Builtin::Mad,
                &[Value::F32(2.0), Value::F32(3.0), Value::F32(4.0)]
            ),
            Value::F32(10.0)
        );
    }

    #[test]
    fn special_builtins_flagged() {
        assert!(Builtin::Barrier.is_special());
        assert!(Builtin::GetGlobalId.is_special());
        assert!(!Builtin::Sqrt.is_special());
        assert!(!Builtin::Min.is_special());
    }

    #[test]
    fn fence_constants() {
        assert_eq!(predefined_constant("CLK_LOCAL_MEM_FENCE"), Some(1));
        assert_eq!(predefined_constant("CLK_GLOBAL_MEM_FENCE"), Some(2));
        assert_eq!(predefined_constant("OTHER"), None);
    }
}
