//! Function inlining over the typed HIR.
//!
//! Vendor OpenCL compilers inline (nearly) everything — OpenCL C even
//! forbids recursion to make that possible. This pass reproduces the
//! first-order effect for the cost model: small helper functions (notably
//! the `get()` accessors SkelCL generates for `MapOverlap`, and
//! `fetch_clamped`-style helpers in hand-written kernels) stop paying a
//! call-frame per invocation.
//!
//! A function is inlinable when its body is a (possibly empty) sequence of
//! single-use local initialisations followed by exactly one `return expr;`,
//! with no control flow, no assignments to parameters, and no side effects
//! other than loads and diverging traps. At a call site, substitution only
//! happens when it cannot duplicate work: an argument/local may be
//! referenced more than once only if it is a constant or a plain local
//! read.

use std::collections::HashMap;

use crate::hir::{Expr, FuncId, Function, LocalId, Place, Stmt, Unit};

/// Maximum number of fix-point passes (call chains are short; recursion is
/// rejected by sema).
const MAX_PASSES: usize = 8;

/// Inlines eligible calls everywhere in `unit`, repeatedly, until a fixed
/// point (bounded). Unused helper functions are kept — they are small and
/// the kernel table indexes by position.
pub fn inline_unit(unit: &mut Unit) {
    for _ in 0..MAX_PASSES {
        let templates = collect_templates(unit);
        if templates.is_empty() {
            return;
        }
        let mut changed = false;
        for f in &mut unit.functions {
            for s in &mut f.body {
                changed |= inline_stmt(s, &templates);
            }
        }
        if !changed {
            return;
        }
    }
}

/// An inlinable function body: local initialisers and the result.
#[derive(Debug, Clone)]
struct Template {
    param_count: usize,
    /// `(local, initialiser)` pairs in evaluation order.
    lets: Vec<(LocalId, Expr)>,
    result: Expr,
}

fn collect_templates(unit: &Unit) -> HashMap<FuncId, Template> {
    let mut out = HashMap::new();
    for (i, f) in unit.functions.iter().enumerate() {
        if f.is_kernel {
            continue;
        }
        if let Some(t) = template_of(f) {
            out.insert(FuncId(i as u32), t);
        }
    }
    out
}

/// Extracts a template when the body has the `let*; return e` shape.
fn template_of(f: &Function) -> Option<Template> {
    let (last, init) = f.body.split_last()?;
    let mut lets = Vec::with_capacity(init.len());
    for s in init {
        match s {
            // Sema lowers `T x = e;` to `Expr(Assign{Local(x), e})`.
            Stmt::Expr(Expr::Assign {
                place: Place::Local(id),
                value,
                ..
            }) if id.0 as usize >= f.param_count => {
                if !expr_is_inline_safe(value) {
                    return None;
                }
                lets.push((*id, (**value).clone()));
            }
            _ => return None,
        }
    }
    let Stmt::Return(Some(result)) = last else {
        return None;
    };
    if !expr_is_inline_safe(result) {
        return None;
    }
    // Every let-bound local must be referenced at most once across the
    // remaining initialisers and the result, unless its initialiser is
    // trivially duplicable.
    for (idx, (id, init_expr)) in lets.iter().enumerate() {
        if is_duplicable(init_expr) {
            continue;
        }
        let mut uses = 0usize;
        for (_, later) in &lets[idx + 1..] {
            uses += count_local_uses(later, *id);
        }
        uses += count_local_uses(result, *id);
        if uses > 1 {
            return None;
        }
    }
    Some(Template {
        param_count: f.param_count,
        lets,
        result: result.clone(),
    })
}

/// Whether an expression may be inlined at all: pure except for loads,
/// pointer math, pure builtins and diverging traps. `Assign`, `IncDec`,
/// barriers and nested non-inlined calls are rejected (calls found here
/// may themselves be inlined on a later fix-point pass).
fn expr_is_inline_safe(e: &Expr) -> bool {
    use crate::builtins::BuiltinKind;
    match e {
        Expr::Const { .. } | Expr::Local { .. } => true,
        Expr::Unary { expr, .. } | Expr::Convert { expr, .. } => expr_is_inline_safe(expr),
        Expr::Binary { lhs, rhs, .. }
        | Expr::Compare { lhs, rhs, .. }
        | Expr::Logical { lhs, rhs, .. }
        | Expr::PtrDiff { lhs, rhs, .. } => expr_is_inline_safe(lhs) && expr_is_inline_safe(rhs),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            expr_is_inline_safe(cond)
                && expr_is_inline_safe(then_expr)
                && expr_is_inline_safe(else_expr)
        }
        Expr::PtrOffset { ptr, offset, .. } => {
            expr_is_inline_safe(ptr) && expr_is_inline_safe(offset)
        }
        Expr::Load { ptr, .. } => expr_is_inline_safe(ptr),
        Expr::BuiltinCall { builtin, args, .. } => {
            matches!(
                builtin.kind(),
                BuiltinKind::FloatUnary
                    | BuiltinKind::FloatBinary
                    | BuiltinKind::GenUnary
                    | BuiltinKind::GenBinary
                    | BuiltinKind::GenTernary
                    | BuiltinKind::TrapValue
                    | BuiltinKind::WorkItemQuery
                    | BuiltinKind::WorkDim
            ) && args.iter().all(expr_is_inline_safe)
        }
        Expr::Call { .. } | Expr::Assign { .. } | Expr::IncDec { .. } => false,
    }
}

/// Whether duplicating the expression is (nearly) free and effect-less:
/// constants, plain local reads, and cheap unary wrappers around them
/// (negated literals, casts of locals).
fn is_duplicable(e: &Expr) -> bool {
    match e {
        Expr::Const { .. } | Expr::Local { .. } => true,
        Expr::Unary { expr, .. } | Expr::Convert { expr, .. } => is_duplicable(expr),
        _ => false,
    }
}

fn count_local_uses(e: &Expr, id: LocalId) -> usize {
    let mut n = 0;
    visit(e, &mut |x| {
        if let Expr::Local { id: i, .. } = x {
            if *i == id {
                n += 1;
            }
        }
    });
    n
}

fn visit(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Unary { expr, .. } | Expr::Convert { expr, .. } => visit(expr, f),
        Expr::Binary { lhs, rhs, .. }
        | Expr::Compare { lhs, rhs, .. }
        | Expr::Logical { lhs, rhs, .. }
        | Expr::PtrDiff { lhs, rhs, .. } => {
            visit(lhs, f);
            visit(rhs, f);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            visit(cond, f);
            visit(then_expr, f);
            visit(else_expr, f);
        }
        Expr::Assign { place, value, .. } => {
            if let Place::Deref { ptr, .. } = place {
                visit(ptr, f);
            }
            visit(value, f);
        }
        Expr::IncDec { place, .. } => {
            if let Place::Deref { ptr, .. } = place {
                visit(ptr, f);
            }
        }
        Expr::Call { args, .. } | Expr::BuiltinCall { args, .. } => {
            for a in args {
                visit(a, f);
            }
        }
        Expr::PtrOffset { ptr, offset, .. } => {
            visit(ptr, f);
            visit(offset, f);
        }
        Expr::Load { ptr, .. } => visit(ptr, f),
        Expr::Const { .. } | Expr::Local { .. } => {}
    }
}

fn inline_stmt(s: &mut Stmt, templates: &HashMap<FuncId, Template>) -> bool {
    match s {
        Stmt::Expr(e) | Stmt::Return(Some(e)) => inline_expr(e, templates),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let mut c = inline_expr(cond, templates);
            for s in then_branch {
                c |= inline_stmt(s, templates);
            }
            for s in else_branch {
                c |= inline_stmt(s, templates);
            }
            c
        }
        Stmt::Loop {
            cond, body, step, ..
        } => {
            let mut c = inline_expr(cond, templates);
            for s in body {
                c |= inline_stmt(s, templates);
            }
            if let Some(step) = step {
                c |= inline_expr(step, templates);
            }
            c
        }
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => false,
    }
}

fn inline_expr(e: &mut Expr, templates: &HashMap<FuncId, Template>) -> bool {
    // Recurse into children first so arguments are maximally simplified.
    let mut changed = match e {
        Expr::Unary { expr, .. } | Expr::Convert { expr, .. } => inline_expr(expr, templates),
        Expr::Binary { lhs, rhs, .. }
        | Expr::Compare { lhs, rhs, .. }
        | Expr::Logical { lhs, rhs, .. }
        | Expr::PtrDiff { lhs, rhs, .. } => {
            inline_expr(lhs, templates) | inline_expr(rhs, templates)
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            inline_expr(cond, templates)
                | inline_expr(then_expr, templates)
                | inline_expr(else_expr, templates)
        }
        Expr::Assign { place, value, .. } => {
            let mut c = inline_expr(value, templates);
            if let Place::Deref { ptr, .. } = place {
                c |= inline_expr(ptr, templates);
            }
            c
        }
        Expr::Call { args, .. } | Expr::BuiltinCall { args, .. } => {
            let mut c = false;
            for a in args {
                c |= inline_expr(a, templates);
            }
            c
        }
        Expr::PtrOffset { ptr, offset, .. } => {
            inline_expr(ptr, templates) | inline_expr(offset, templates)
        }
        Expr::Load { ptr, .. } => inline_expr(ptr, templates),
        Expr::Const { .. } | Expr::Local { .. } | Expr::IncDec { .. } => false,
    };

    if let Expr::Call { func, args, .. } = e {
        if let Some(t) = templates.get(func) {
            if let Some(inlined) = try_substitute(t, args) {
                *e = inlined;
                changed = true;
            }
        }
    }
    changed
}

/// Builds the inlined expression, or `None` when substitution would
/// duplicate a non-trivial argument.
fn try_substitute(t: &Template, args: &[Expr]) -> Option<Expr> {
    debug_assert_eq!(args.len(), t.param_count);
    // Environment: local id -> replacement expression.
    let mut env: HashMap<LocalId, Expr> = HashMap::new();
    for (i, a) in args.iter().enumerate() {
        env.insert(LocalId(i as u32), a.clone());
    }
    // Check argument duplication: a parameter used more than once needs a
    // duplicable argument.
    for (i, a) in args.iter().enumerate() {
        if is_duplicable(a) {
            continue;
        }
        let id = LocalId(i as u32);
        let mut uses = 0usize;
        for (_, init) in &t.lets {
            uses += count_local_uses(init, id);
        }
        uses += count_local_uses(&t.result, id);
        if uses > 1 {
            return None;
        }
    }
    for (id, init) in &t.lets {
        let replaced = substitute(init, &env);
        env.insert(*id, replaced);
    }
    Some(substitute(&t.result, &env))
}

fn substitute(e: &Expr, env: &HashMap<LocalId, Expr>) -> Expr {
    match e {
        Expr::Local { id, .. } => env.get(id).cloned().unwrap_or_else(|| e.clone()),
        Expr::Const { .. } => e.clone(),
        Expr::Unary { op, expr, ty, span } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute(expr, env)),
            ty: *ty,
            span: *span,
        },
        Expr::Convert { to, expr, span } => Expr::Convert {
            to: *to,
            expr: Box::new(substitute(expr, env)),
            span: *span,
        },
        Expr::Binary {
            op,
            lhs,
            rhs,
            ty,
            span,
        } => Expr::Binary {
            op: *op,
            lhs: Box::new(substitute(lhs, env)),
            rhs: Box::new(substitute(rhs, env)),
            ty: *ty,
            span: *span,
        },
        Expr::Compare {
            op,
            lhs,
            rhs,
            operand_ty,
            span,
        } => Expr::Compare {
            op: *op,
            lhs: Box::new(substitute(lhs, env)),
            rhs: Box::new(substitute(rhs, env)),
            operand_ty: *operand_ty,
            span: *span,
        },
        Expr::Logical {
            is_and,
            lhs,
            rhs,
            span,
        } => Expr::Logical {
            is_and: *is_and,
            lhs: Box::new(substitute(lhs, env)),
            rhs: Box::new(substitute(rhs, env)),
            span: *span,
        },
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ty,
            span,
        } => Expr::Ternary {
            cond: Box::new(substitute(cond, env)),
            then_expr: Box::new(substitute(then_expr, env)),
            else_expr: Box::new(substitute(else_expr, env)),
            ty: *ty,
            span: *span,
        },
        Expr::Call {
            func,
            args,
            ty,
            span,
        } => Expr::Call {
            func: *func,
            args: args.iter().map(|a| substitute(a, env)).collect(),
            ty: *ty,
            span: *span,
        },
        Expr::BuiltinCall {
            builtin,
            args,
            ty,
            span,
        } => Expr::BuiltinCall {
            builtin: *builtin,
            args: args.iter().map(|a| substitute(a, env)).collect(),
            ty: *ty,
            span: *span,
        },
        Expr::PtrOffset {
            ptr,
            offset,
            ty,
            span,
        } => Expr::PtrOffset {
            ptr: Box::new(substitute(ptr, env)),
            offset: Box::new(substitute(offset, env)),
            ty: *ty,
            span: *span,
        },
        Expr::PtrDiff { lhs, rhs, span } => Expr::PtrDiff {
            lhs: Box::new(substitute(lhs, env)),
            rhs: Box::new(substitute(rhs, env)),
            span: *span,
        },
        Expr::Load { ptr, elem, span } => Expr::Load {
            ptr: Box::new(substitute(ptr, env)),
            elem: *elem,
            span: *span,
        },
        // Templates never contain these (checked by `expr_is_inline_safe`).
        Expr::Assign { .. } | Expr::IncDec { .. } => {
            unreachable!("side-effecting expression in inline template")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use crate::parser::parse;
    use crate::sema::analyze;
    use crate::source::SourceFile;

    fn lower(src: &str) -> Unit {
        let f = SourceFile::new("t.cl", src);
        let mut d = Diagnostics::new();
        let tu = parse(&f, &mut d);
        analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&f)))
    }

    fn count_calls(unit: &Unit, name: &str) -> usize {
        let (target, _) = unit.function(name).unwrap();
        let mut n = 0;
        for f in &unit.functions {
            for s in &f.body {
                count_calls_stmt(s, target, &mut n);
            }
        }
        n
    }

    fn count_calls_expr(e: &Expr, target: FuncId, n: &mut usize) {
        visit(e, &mut |x| {
            if let Expr::Call { func, .. } = x {
                if *func == target {
                    *n += 1;
                }
            }
        });
    }

    fn count_calls_stmt(s: &Stmt, target: FuncId, n: &mut usize) {
        match s {
            Stmt::Expr(e) | Stmt::Return(Some(e)) => count_calls_expr(e, target, n),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                count_calls_expr(cond, target, n);
                for s in then_branch {
                    count_calls_stmt(s, target, n);
                }
                for s in else_branch {
                    count_calls_stmt(s, target, n);
                }
            }
            Stmt::Loop {
                cond, body, step, ..
            } => {
                count_calls_expr(cond, target, n);
                for s in body {
                    count_calls_stmt(s, target, n);
                }
                if let Some(e) = step {
                    count_calls_expr(e, target, n);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn inlines_simple_expression_function() {
        let mut u = lower(
            "float sq(float x){ return x * x; }
             __kernel void k(__global float* o, float v){ o[0] = sq(v) + sq(2.0f); }",
        );
        assert_eq!(count_calls(&u, "sq"), 2);
        inline_unit(&mut u);
        assert_eq!(count_calls(&u, "sq"), 0, "both calls inlined");
    }

    #[test]
    fn inlines_let_chain_function() {
        // fetch_clamped-style helper: single-use lets then a load.
        let mut u = lower(
            "float fetch(const float* p, int i, int n){
                 int j = clamp(i, 0, n - 1);
                 return p[j];
             }
             __kernel void k(__global const float* in, __global float* o, int n){
                 o[0] = fetch(in, -5, n);
             }",
        );
        inline_unit(&mut u);
        assert_eq!(count_calls(&u, "fetch"), 0);

        // A let-local used twice with a non-trivial initialiser must block
        // the template (no duplicated work).
        let mut u = lower(
            "float twice(const float* p, int i){
                 int j = i * 3 + 1;
                 return p[j] + (float)j;
             }
             __kernel void k(__global const float* in, __global float* o){
                 o[0] = twice(in, 2);
             }",
        );
        inline_unit(&mut u);
        assert_eq!(count_calls(&u, "twice"), 1);
    }

    #[test]
    fn refuses_to_duplicate_expensive_arguments() {
        // `x` is used twice in sq; the argument is a load -> must NOT inline.
        let mut u = lower(
            "float sq(float x){ return x * x; }
             __kernel void k(__global const float* in, __global float* o){
                 o[0] = sq(in[3]);
             }",
        );
        inline_unit(&mut u);
        assert_eq!(count_calls(&u, "sq"), 1, "load argument not duplicated");
    }

    #[test]
    fn control_flow_bodies_are_not_templates() {
        let mut u = lower(
            "int f(int x){ if (x > 0) return 1; return 0; }
             __kernel void k(__global int* o, int v){ o[0] = f(v); }",
        );
        inline_unit(&mut u);
        assert_eq!(count_calls(&u, "f"), 1);
    }

    #[test]
    fn side_effecting_bodies_are_not_templates() {
        let mut u = lower(
            "int bump(__global int* p){ return p[0]++; }
             __kernel void k(__global int* p, __global int* o){ o[0] = bump(p); }",
        );
        inline_unit(&mut u);
        assert_eq!(count_calls(&u, "bump"), 1);
    }

    #[test]
    fn chains_inline_through_fixpoint() {
        let mut u = lower(
            "float a(float x){ return x + 1.0f; }
             float b(float x){ return a(x) * 2.0f; }
             float c(float x){ return b(x) - 3.0f; }
             __kernel void k(__global float* o, float v){ o[0] = c(v); }",
        );
        inline_unit(&mut u);
        assert_eq!(count_calls(&u, "a"), 0);
        assert_eq!(count_calls(&u, "b"), 0);
        assert_eq!(count_calls(&u, "c"), 0);
    }

    #[test]
    fn inlined_programs_compute_identically() {
        // Differential check through the VM with inlining on (the default
        // compile pipeline) vs a manually constructed no-inline unit.
        use crate::value::{Ptr, Value};
        use crate::vm::{HostMemory, ItemGeometry, WorkItem};
        let src = "float helper(float x, float y){ return x * y + 1.0f; }
             float outer(float x){ return helper(x, 2.0f) + helper(3.0f, 4.0f); }
             __kernel void k(__global float* o, float v){ o[0] = outer(v); }";
        let run = |program: &crate::program::Program| {
            let mut mem = HostMemory::new();
            let out = mem.add_buffer(vec![0u8; 4]);
            let kernel = program.kernel("k").unwrap();
            let args = [
                Value::Ptr(Ptr {
                    space: crate::types::AddressSpace::Global,
                    buffer: out,
                    byte_offset: 0,
                }),
                Value::F32(5.0),
            ];
            let mut item = WorkItem::new(program, kernel.func, &args, ItemGeometry::single());
            item.run(&mem, &mut []).unwrap();
            f32::from_le_bytes(mem.bytes(out)[..4].try_into().unwrap())
        };
        // Inlining pipeline (crate::compile).
        let with_inline = crate::compile("a.cl", src).unwrap();
        // No-inline pipeline.
        let mut unit = lower(src);
        for f in &mut unit.functions {
            crate::fold::fold_stmts(&mut f.body);
        }
        let without = crate::codegen::generate(&unit, "b.cl");
        assert_eq!(run(&with_inline), run(&without));
        assert_eq!(run(&with_inline), 5.0 * 2.0 + 1.0 + (3.0 * 4.0 + 1.0));
    }

    #[test]
    fn trap_value_bodies_inline() {
        let mut u = lower(
            "float checked(const float* p, int i, int n){
                 return (i >= 0 && i < n) ? p[i] : (float)__skelcl_trap_int(7);
             }
             __kernel void k(__global const float* in, __global float* o, int n){
                 o[0] = checked(in, 2, n);
             }",
        );
        inline_unit(&mut u);
        assert_eq!(count_calls(&u, "checked"), 0);
    }
}
