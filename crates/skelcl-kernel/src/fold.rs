//! Compile-time constant evaluation and folding over the HIR.
//!
//! Used by sema for `__local` array sizes and by codegen to shrink the
//! emitted bytecode (e.g. `16 * 16` tile sizes, `-1 * x` coefficients in the
//! Sobel stencil).

use crate::builtins;
use crate::hir::{ConstValue, Expr, Stmt, UnOp};
use crate::types::ScalarType;
use crate::value::{self, Value};

/// Converts a HIR constant to a runtime value.
pub fn const_to_value(c: ConstValue) -> Value {
    match c {
        ConstValue::Bool(b) => Value::Bool(b),
        ConstValue::F32(f) => Value::F32(f),
        ConstValue::F64(f) => Value::F64(f),
        ConstValue::Int(v, ty) => value::convert(Value::I64(v), ty),
    }
}

/// Converts a runtime scalar value back to a HIR constant.
///
/// # Panics
///
/// Panics on pointer values.
pub fn value_to_const(v: Value) -> ConstValue {
    match v {
        Value::Bool(b) => ConstValue::Bool(b),
        Value::F32(f) => ConstValue::F32(f),
        Value::F64(f) => ConstValue::F64(f),
        Value::Ptr(_) => panic!("pointer value cannot be a compile-time constant"),
        other => {
            let ty = other.scalar_type().expect("scalar");
            ConstValue::Int(other.as_i64(), ty)
        }
    }
}

/// Attempts to evaluate `e` as a compile-time constant. Returns `None` for
/// anything effectful or dependent on runtime state (locals, loads, calls,
/// work-item queries).
pub fn try_eval(e: &Expr) -> Option<ConstValue> {
    let v = eval_value(e)?;
    Some(value_to_const(v))
}

fn eval_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::Const { value, .. } => Some(const_to_value(*value)),
        Expr::Unary { op, expr, .. } => {
            let v = eval_value(expr)?;
            value::unary(*op, v).ok()
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let l = eval_value(lhs)?;
            let r = eval_value(rhs)?;
            value::binary(*op, l, r).ok()
        }
        Expr::Compare { op, lhs, rhs, .. } => {
            let l = eval_value(lhs)?;
            let r = eval_value(rhs)?;
            value::compare(*op, l, r).ok().map(Value::Bool)
        }
        Expr::Logical {
            is_and, lhs, rhs, ..
        } => {
            let l = eval_value(lhs)?.is_truthy();
            // Short-circuit even at compile time so the other operand need
            // not be constant.
            if *is_and && !l {
                return Some(Value::Bool(false));
            }
            if !*is_and && l {
                return Some(Value::Bool(true));
            }
            let r = eval_value(rhs)?.is_truthy();
            Some(Value::Bool(r))
        }
        Expr::Convert { to, expr, .. } => {
            let v = eval_value(expr)?;
            Some(value::convert(v, *to))
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            let c = eval_value(cond)?.is_truthy();
            if c {
                eval_value(then_expr)
            } else {
                eval_value(else_expr)
            }
        }
        Expr::BuiltinCall { builtin, args, .. } if !builtin.is_special() => {
            let vals: Option<Vec<Value>> = args.iter().map(eval_value).collect();
            Some(builtins::eval_pure(*builtin, &vals?))
        }
        _ => None,
    }
}

/// Recursively folds constant sub-expressions of `e` in place, replacing any
/// fully-constant subtree by a [`Expr::Const`] node. Conservative: only pure
/// arithmetic is folded; anything with side effects is left untouched.
pub fn fold_expr(e: &mut Expr) {
    // First fold children.
    match e {
        Expr::Unary { expr, .. } | Expr::Convert { expr, .. } => fold_expr(expr),
        Expr::Binary { lhs, rhs, .. }
        | Expr::Compare { lhs, rhs, .. }
        | Expr::Logical { lhs, rhs, .. }
        | Expr::PtrDiff { lhs, rhs, .. } => {
            fold_expr(lhs);
            fold_expr(rhs);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            fold_expr(cond);
            fold_expr(then_expr);
            fold_expr(else_expr);
        }
        Expr::Assign { value, place, .. } => {
            fold_expr(value);
            if let crate::hir::Place::Deref { ptr, .. } = place {
                fold_expr(ptr);
            }
        }
        Expr::Call { args, .. } | Expr::BuiltinCall { args, .. } => {
            for a in args {
                fold_expr(a);
            }
        }
        Expr::PtrOffset { ptr, offset, .. } => {
            fold_expr(ptr);
            fold_expr(offset);
        }
        Expr::Load { ptr, .. } => fold_expr(ptr),
        Expr::Const { .. } | Expr::Local { .. } | Expr::IncDec { .. } => {}
    }
    // Then try to collapse this node.
    if matches!(e, Expr::Const { .. }) {
        return;
    }
    if let Some(v) = try_eval(e) {
        *e = Expr::Const {
            value: v,
            span: e.span(),
        };
        return;
    }
    // Structural simplifications where only the *condition* is constant
    // (the surviving arm may be effectful, e.g. a load): these arise from
    // inlined bounds checks with literal offsets.
    match e {
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            span,
            ..
        } => {
            if let Some(c) = try_eval(cond) {
                let span = *span;
                let arm = if matches!(c, ConstValue::Bool(true))
                    || matches!(c, ConstValue::Int(v, _) if v != 0)
                {
                    std::mem::replace(
                        then_expr.as_mut(),
                        Expr::Const {
                            value: ConstValue::Bool(false),
                            span,
                        },
                    )
                } else {
                    std::mem::replace(
                        else_expr.as_mut(),
                        Expr::Const {
                            value: ConstValue::Bool(false),
                            span,
                        },
                    )
                };
                *e = arm;
            }
        }
        Expr::Logical {
            is_and,
            lhs,
            rhs,
            span,
        } => {
            if let Some(c) = try_eval(lhs) {
                let truthy = matches!(c, ConstValue::Bool(true))
                    || matches!(c, ConstValue::Int(v, _) if v != 0);
                let span = *span;
                if (*is_and && truthy) || (!*is_and && !truthy) {
                    // `true && x` / `false || x` -> x (already bool-typed).
                    let taken = std::mem::replace(
                        rhs.as_mut(),
                        Expr::Const {
                            value: ConstValue::Bool(false),
                            span,
                        },
                    );
                    *e = taken;
                } else {
                    // `false && x` / `true || x` -> constant. Sound even
                    // for effectful `x`: short-circuit semantics mean `x`
                    // is never evaluated.
                    *e = Expr::Const {
                        value: ConstValue::Bool(!*is_and),
                        span,
                    };
                }
            }
        }
        _ => {}
    }
}

/// Folds all expressions in a statement list (in place).
pub fn fold_stmts(stmts: &mut [Stmt]) {
    for s in stmts {
        match s {
            Stmt::Expr(e) => fold_expr(e),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                fold_expr(cond);
                fold_stmts(then_branch);
                fold_stmts(else_branch);
            }
            Stmt::Loop {
                cond, body, step, ..
            } => {
                fold_expr(cond);
                fold_stmts(body);
                if let Some(step) = step {
                    fold_expr(step);
                }
            }
            Stmt::Return(Some(e)) => fold_expr(e),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        }
    }
}

/// Negation helper used by tests and codegen: `-x` wrapped as HIR.
pub fn negate(e: Expr, ty: ScalarType) -> Expr {
    let span = e.span();
    Expr::Unary {
        op: UnOp::Neg,
        expr: Box::new(e),
        ty,
        span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use crate::parser::parse;
    use crate::sema::analyze;
    use crate::source::SourceFile;

    fn lower(src: &str) -> crate::hir::Unit {
        let f = SourceFile::new("t.cl", src);
        let mut d = Diagnostics::new();
        let tu = parse(&f, &mut d);
        analyze(&tu, &mut d).unwrap_or_else(|| panic!("errors: {}", d.render(&f)))
    }

    fn eval_return(src: &str) -> Option<ConstValue> {
        let u = lower(src);
        let (_, f) = u.function("f").expect("test functions are named `f`");
        let Stmt::Return(Some(e)) = &f.body[f.body.len() - 1] else {
            panic!()
        };
        try_eval(e)
    }

    #[test]
    fn folds_integer_arithmetic() {
        assert_eq!(
            eval_return("int f(){ return 16 * 16 + 1; }"),
            Some(ConstValue::Int(257, ScalarType::Int))
        );
        assert_eq!(
            eval_return("int f(){ return (1 << 10) - 1; }"),
            Some(ConstValue::Int(1023, ScalarType::Int))
        );
    }

    #[test]
    fn folds_float_math_and_casts() {
        assert_eq!(
            eval_return("float f(){ return (float)(3 * 2); }"),
            Some(ConstValue::F32(6.0))
        );
        assert_eq!(
            eval_return("float f(){ return sqrt(16.0f); }"),
            Some(ConstValue::F32(4.0))
        );
    }

    #[test]
    fn folds_comparisons_and_ternary() {
        assert_eq!(
            eval_return("int f(){ return 3 < 4 ? 10 : 20; }"),
            Some(ConstValue::Int(10, ScalarType::Int))
        );
        assert_eq!(
            eval_return("bool f(){ return 1 == 2; }"),
            Some(ConstValue::Bool(false))
        );
    }

    #[test]
    fn short_circuit_ignores_non_constant_side() {
        // `x != 0` is not constant but `false && ...` folds anyway.
        assert_eq!(
            eval_return("bool f(int x){ return false && x != 0; }"),
            Some(ConstValue::Bool(false))
        );
        assert_eq!(
            eval_return("bool f(int x){ return true || x != 0; }"),
            Some(ConstValue::Bool(true))
        );
    }

    #[test]
    fn runtime_values_do_not_fold() {
        assert_eq!(eval_return("int f(int x){ return x + 1; }"), None);
        assert_eq!(
            eval_return("float f(__global float* p){ return p[0]; }"),
            None
        );
        assert_eq!(
            eval_return("__kernel void unused(__global int* o){ o[0]=0; } int f(){ return (int)get_global_id(0); }"),
            None
        );
    }

    #[test]
    fn division_by_zero_does_not_fold() {
        // Folding must not hide the runtime trap.
        assert_eq!(eval_return("int f(){ return 1 / 0; }"), None);
    }

    #[test]
    fn fold_stmts_collapses_subtrees() {
        let mut u = lower("float f(float x){ return x + 2.0f * 8.0f; }");
        let f = &mut u.functions[0];
        fold_stmts(&mut f.body);
        let Stmt::Return(Some(Expr::Binary { rhs, .. })) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(**rhs, Expr::Const { value: ConstValue::F32(v), .. } if v == 16.0));
    }

    #[test]
    fn const_value_round_trip() {
        for c in [
            ConstValue::Bool(true),
            ConstValue::Int(-7, ScalarType::Char),
            ConstValue::Int(70000, ScalarType::Int),
            ConstValue::F32(1.5),
            ConstValue::F64(-2.25),
        ] {
            assert_eq!(value_to_const(const_to_value(c)), c);
        }
    }
}
