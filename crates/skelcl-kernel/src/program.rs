//! Compiled programs: the output of [`crate::compile`], ready for the VM.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ir::FuncCode;
use crate::types::ScalarType;

/// The kind of one kernel parameter, as seen by the host when binding
/// arguments (mirrors `clSetKernelArg` usage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelParamKind {
    /// A `__global T*` argument: the host binds a device buffer.
    GlobalBuffer {
        /// Element type.
        elem: ScalarType,
        /// Whether the kernel only reads through it.
        is_const: bool,
    },
    /// A `__local T*` argument: the host passes a byte size; the runtime
    /// carves the range out of the work-group's local memory.
    LocalBuffer {
        /// Element type.
        elem: ScalarType,
    },
    /// A scalar argument passed by value.
    Scalar(ScalarType),
}

/// A kernel parameter (name + kind), in declaration order.
#[derive(Debug, Clone)]
pub struct KernelParam {
    /// Parameter name.
    pub name: String,
    /// How the host must bind it.
    pub kind: KernelParamKind,
}

/// Binding of a `__local` array declared in a kernel body to its offset in
/// the work-group's local-memory arena.
#[derive(Debug, Clone, Copy)]
pub struct LocalArrayBinding {
    /// Local slot of the array variable in the kernel's frame.
    pub slot: u16,
    /// Byte offset of the array within local memory.
    pub byte_offset: u32,
    /// Size of the array in bytes.
    pub byte_len: u32,
}

/// Launch metadata of one `__kernel` entry point.
#[derive(Debug, Clone)]
pub struct KernelInfo {
    /// Kernel name.
    pub name: String,
    /// Index of the kernel's [`FuncCode`] in the program.
    pub func: u16,
    /// Parameters in declaration order.
    pub params: Vec<KernelParam>,
    /// Statically declared `__local` arrays.
    pub local_arrays: Vec<LocalArrayBinding>,
    /// Total bytes of statically declared local memory.
    pub static_local_bytes: u32,
    /// Number of distinct barrier sites in code reachable from this kernel
    /// (0 means launches never need lockstep rounds).
    pub barrier_count: u32,
}

/// A compiled SkelCL C program: bytecode for every function plus kernel
/// launch metadata. Cheap to clone and share across devices.
#[derive(Debug, Clone)]
pub struct Program {
    inner: Arc<ProgramInner>,
}

#[derive(Debug)]
struct ProgramInner {
    functions: Vec<FuncCode>,
    /// Superinstruction stream per function, parallel to `functions` (see
    /// [`crate::decode`]); consumed by the optimised dispatch loop.
    decoded: Vec<Vec<crate::decode::Decoded>>,
    kernels: Vec<KernelInfo>,
    kernel_index: HashMap<String, usize>,
    source_name: String,
}

impl Program {
    /// Assembles a program from compiled parts. Used by
    /// [`crate::compile`]; not typically called directly.
    pub fn from_parts(
        functions: Vec<FuncCode>,
        kernels: Vec<KernelInfo>,
        source_name: impl Into<String>,
    ) -> Self {
        let kernel_index = kernels
            .iter()
            .enumerate()
            .map(|(i, k)| (k.name.clone(), i))
            .collect();
        let decoded = functions
            .iter()
            .map(|f| crate::decode::decode(&f.code))
            .collect();
        Program {
            inner: Arc::new(ProgramInner {
                functions,
                decoded,
                kernels,
                kernel_index,
                source_name: source_name.into(),
            }),
        }
    }

    /// The pre-decoded superinstruction stream of function `func` (same
    /// `pc` indexing as its `code`; see [`crate::decode`]).
    pub(crate) fn decoded_fn(&self, func: usize) -> &[crate::decode::Decoded] {
        &self.inner.decoded[func]
    }

    /// All compiled functions, indexable by the ids in `Call` instructions.
    pub fn functions(&self) -> &[FuncCode] {
        &self.inner.functions
    }

    /// Static decode summary of function `func`: `(ops, dispatches)`,
    /// where `ops` is the bytecode length and `dispatches` is how many
    /// superinstruction heads cover it. Fusion never spans a jump target,
    /// so every op belongs to exactly one head and a linear scan is exact;
    /// fewer dispatches over the same source means longer fused chains in
    /// the interpreter's hot loop. Benchmarks use this to compare compile
    /// pipelines without running the kernel.
    pub fn decode_stats(&self, func: usize) -> (usize, usize) {
        let dec = &self.inner.decoded[func];
        let (mut pc, mut dispatches) = (0usize, 0usize);
        while pc < dec.len() {
            dispatches += 1;
            pc += dec[pc].cost() as usize;
        }
        (dec.len(), dispatches)
    }

    /// Whether two handles refer to the same compiled program (pointer
    /// identity, not structural equality). Lets executors recycle
    /// [`crate::vm::WorkItem`]s across work-items of one launch without
    /// re-cloning the program `Arc` per item.
    pub fn ptr_eq(a: &Program, b: &Program) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }

    /// All kernels in the program.
    pub fn kernels(&self) -> &[KernelInfo] {
        &self.inner.kernels
    }

    /// Looks up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelInfo> {
        self.inner
            .kernel_index
            .get(name)
            .map(|&i| &self.inner.kernels[i])
    }

    /// The name of the source file the program was compiled from.
    pub fn source_name(&self) -> &str {
        &self.inner.source_name
    }

    /// Disassembles every function (testing/debugging aid).
    pub fn disassemble(&self) -> String {
        self.inner
            .functions
            .iter()
            .map(|f| f.disassemble())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_lookup() {
        let p = Program::from_parts(
            vec![],
            vec![KernelInfo {
                name: "k".into(),
                func: 0,
                params: vec![],
                local_arrays: vec![],
                static_local_bytes: 0,
                barrier_count: 0,
            }],
            "t.cl",
        );
        assert!(p.kernel("k").is_some());
        assert!(p.kernel("missing").is_none());
        assert_eq!(p.source_name(), "t.cl");
    }
}
