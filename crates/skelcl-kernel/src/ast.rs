//! Abstract syntax tree for SkelCL C, produced by the [parser](crate::parser).
//!
//! The tree is untyped; semantic analysis ([`crate::sema`]) lowers it into
//! the typed HIR. Every node carries the [`Span`] it was parsed from so that
//! later phases can report precise diagnostics.

use crate::source::Span;
use crate::types::{AddressSpace, ScalarType, Type};

/// A parsed translation unit: a sequence of function definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslationUnit {
    /// Function definitions in source order.
    pub functions: Vec<Function>,
}

impl TranslationUnit {
    /// Finds a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Whether the function was declared `__kernel`.
    pub is_kernel: bool,
    /// Declared return type.
    pub return_type: Type,
    /// Function name.
    pub name: String,
    /// Span of the name token.
    pub name_span: Span,
    /// Formal parameters in order.
    pub params: Vec<Param>,
    /// The function body.
    pub body: Block,
    /// Span of the whole definition.
    pub span: Span,
}

/// A formal function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
    /// Span of the parameter declaration.
    pub span: Span,
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Span from `{` to `}`.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A nested block.
    Block(Block),
    /// A local variable declaration (possibly several declarators).
    Decl(VarDecl),
    /// An expression evaluated for side effects.
    Expr(Expr),
    /// `if (cond) then else els`.
    If {
        /// Condition expression.
        cond: Expr,
        /// Taken branch.
        then_branch: Box<Stmt>,
        /// Optional `else` branch.
        else_branch: Option<Box<Stmt>>,
        /// Span of the whole statement.
        span: Span,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Loop initialiser (declaration or expression statement).
        init: Option<Box<Stmt>>,
        /// Loop condition; `None` means always true.
        cond: Option<Expr>,
        /// Step expression run after each iteration.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
        /// Span of the whole statement.
        span: Span,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
        /// Span of the whole statement.
        span: Span,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Loop condition, tested after the body.
        cond: Expr,
        /// Span of the whole statement.
        span: Span,
    },
    /// `return;` or `return expr;`.
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Span of the statement.
        span: Span,
    },
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// A lone `;`.
    Empty(Span),
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Block(b) => b.span,
            Stmt::Decl(d) => d.span,
            Stmt::Expr(e) => e.span(),
            Stmt::If { span, .. }
            | Stmt::For { span, .. }
            | Stmt::While { span, .. }
            | Stmt::DoWhile { span, .. }
            | Stmt::Return { span, .. } => *span,
            Stmt::Break(s) | Stmt::Continue(s) | Stmt::Empty(s) => *s,
        }
    }
}

/// A variable declaration statement, e.g. `const int i = 0, j = n;` or a
/// local-memory array `__local float tile[256];`.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Address space of the declared variables (`Private` for plain locals,
    /// `Local` for work-group arrays).
    pub space: AddressSpace,
    /// Whether declared `const`.
    pub is_const: bool,
    /// Element/scalar type of all declarators.
    pub scalar: ScalarType,
    /// Whether the declarators are pointers (e.g. `float* p`).
    pub is_pointer: bool,
    /// Individual declarators.
    pub declarators: Vec<Declarator>,
    /// Span of the whole declaration.
    pub span: Span,
}

/// One name introduced by a [`VarDecl`].
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// Variable name.
    pub name: String,
    /// For array declarators, the (constant) element count expression.
    pub array_size: Option<Expr>,
    /// Optional initialiser.
    pub init: Option<Expr>,
    /// Span of this declarator.
    pub span: Span,
}

/// Unary operators (including increment/decrement forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `+x`
    Plus,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `*p`
    Deref,
    /// `&x`
    AddrOf,
    /// `++x`
    PreInc,
    /// `--x`
    PreDec,
    /// `x++`
    PostInc,
    /// `x--`
    PostDec,
}

impl UnaryOp {
    /// The source spelling (increment/decrement shown in prefix form).
    pub fn symbol(self) -> &'static str {
        use UnaryOp::*;
        match self {
            Neg => "-",
            Plus => "+",
            Not => "!",
            BitNot => "~",
            Deref => "*",
            AddrOf => "&",
            PreInc | PostInc => "++",
            PreDec | PostDec => "--",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    LogicalAnd,
    /// `||`
    LogicalOr,
}

impl BinaryOp {
    /// The source spelling of the operator.
    pub fn symbol(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            LogicalAnd => "&&",
            LogicalOr => "||",
        }
    }

    /// Whether the operator yields `bool` regardless of operand types.
    pub fn is_comparison(self) -> bool {
        use BinaryOp::*;
        matches!(self, Lt | Le | Gt | Ge | Eq | Ne)
    }

    /// Whether the operator is `&&` or `||` (short-circuit).
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::LogicalAnd | BinaryOp::LogicalOr)
    }

    /// Whether the operator only accepts integer operands.
    pub fn integer_only(self) -> bool {
        use BinaryOp::*;
        matches!(self, Rem | BitAnd | BitOr | BitXor | Shl | Shr)
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal. The value is stored unsigned; suffixes select type.
    IntLit {
        /// The literal value.
        value: u64,
        /// Whether a `u`/`U` suffix was present.
        unsigned: bool,
        /// Whether an `l`/`L` suffix was present.
        long: bool,
        /// Source span.
        span: Span,
    },
    /// Floating-point literal.
    FloatLit {
        /// The literal value (as parsed, in double precision).
        value: f64,
        /// Whether an `f`/`F` suffix selected single precision.
        single: bool,
        /// Source span.
        span: Span,
    },
    /// `true` or `false`.
    BoolLit {
        /// The literal value.
        value: bool,
        /// Source span.
        span: Span,
    },
    /// Character literal (type `char`).
    CharLit {
        /// The character's value.
        value: i8,
        /// Source span.
        span: Span,
    },
    /// A variable reference.
    Ident {
        /// The referenced name.
        name: String,
        /// Source span.
        span: Span,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Assignment `lhs = rhs` or compound `lhs op= rhs`.
    Assign {
        /// `None` for plain `=`, otherwise the compound operator.
        op: Option<BinaryOp>,
        /// Assignment target (must be an l-value).
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `cond ? then : els`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value if true.
        then_expr: Box<Expr>,
        /// Value if false.
        else_expr: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// A call `name(args...)`. Callees are plain identifiers (user functions
    /// or builtins); SkelCL C has no function pointers.
    Call {
        /// Callee name.
        callee: String,
        /// Span of the callee identifier.
        callee_span: Span,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Source span of the whole call.
        span: Span,
    },
    /// Indexing `base[index]`.
    Index {
        /// The pointer being indexed.
        base: Box<Expr>,
        /// Element index.
        index: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// An explicit cast `(type)expr`.
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit { span, .. }
            | Expr::FloatLit { span, .. }
            | Expr::BoolLit { span, .. }
            | Expr::CharLit { span, .. }
            | Expr::Ident { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Assign { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Call { span, .. }
            | Expr::Index { span, .. }
            | Expr::Cast { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_op_classification() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert!(BinaryOp::LogicalAnd.is_logical());
        assert!(BinaryOp::Shl.integer_only());
        assert!(!BinaryOp::Div.integer_only());
    }

    #[test]
    fn symbols_round_trip_spelling() {
        assert_eq!(BinaryOp::Shr.symbol(), ">>");
        assert_eq!(UnaryOp::BitNot.symbol(), "~");
        assert_eq!(UnaryOp::PostInc.symbol(), "++");
    }
}
