//! The work-item virtual machine.
//!
//! Each work-item is an independent [`WorkItem`] interpreter over the
//! program bytecode. `barrier()` suspends the item ([`Exit::Barrier`]); the
//! executor (in the `vgpu` crate) runs all items of a work-group in lockstep
//! rounds, resuming them after every item reached the same barrier — exactly
//! the OpenCL work-group execution model.
//!
//! Global memory is abstracted behind [`GlobalMemory`] so that the platform
//! simulator can share buffers between concurrently executing work-groups.

use std::fmt;

use crate::builtins::{self, Builtin};
use crate::codegen::UNINIT_BUFFER;
use crate::decode::{ChainTail, CmpUse, Decoded, Dst, Operand};
use crate::hir::{BinOp, CmpOp};
use crate::ir::Op;
use crate::program::Program;
use crate::types::{AddressSpace, ScalarType};
use crate::value::{self, Ptr, Value};

/// Maximum call depth (OpenCL forbids recursion, so real chains are short).
pub const MAX_CALL_DEPTH: usize = 256;

/// Geometry of one work-item within a launch (OpenCL work-item functions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemGeometry {
    /// Number of dimensions in the launch (1, 2 or 3).
    pub work_dim: u32,
    /// `get_global_id`
    pub global_id: [u64; 3],
    /// `get_local_id`
    pub local_id: [u64; 3],
    /// `get_group_id`
    pub group_id: [u64; 3],
    /// `get_global_size`
    pub global_size: [u64; 3],
    /// `get_local_size`
    pub local_size: [u64; 3],
    /// `get_num_groups`
    pub num_groups: [u64; 3],
}

impl ItemGeometry {
    /// A degenerate 1-D geometry for a single work-item (testing).
    pub fn single() -> Self {
        ItemGeometry {
            work_dim: 1,
            global_id: [0; 3],
            local_id: [0; 3],
            group_id: [0; 3],
            global_size: [1, 1, 1],
            local_size: [1, 1, 1],
            num_groups: [1, 1, 1],
        }
    }
}

/// Execution cost counters of one work-item (or aggregated over many).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounters {
    /// Executed instructions (decoded superinstructions, not source ops).
    ///
    /// The op budget ([`WorkItem::set_ops_budget`]) is charged against this
    /// counter, i.e. against what actually executes. Two compiles of the
    /// same source under different `SKELCL_KERNEL_OPT` settings therefore
    /// report different `ops` for identical buffer results; the gap is
    /// what [`CostCounters::ops_saved`] records.
    pub ops: u64,
    /// Loads from global memory.
    pub global_loads: u64,
    /// Stores to global memory.
    pub global_stores: u64,
    /// Loads from local memory.
    pub local_loads: u64,
    /// Stores to local memory.
    pub local_stores: u64,
    /// Barrier crossings.
    pub barriers: u64,
    /// Bytes moved to or from global memory.
    pub global_bytes: u64,
    /// Executed ops avoided by the optimizing compile pipeline, measured
    /// against an unoptimized reference compile of the same source.
    ///
    /// The VM never sets this field (it is always 0 during execution —
    /// the VM only sees one program and cannot know the counterfactual);
    /// benchmark harnesses fill it in by running both compiles and
    /// subtracting, and [`CostCounters::merge`] sums it like every other
    /// counter.
    pub ops_saved: u64,
}

impl CostCounters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &CostCounters) {
        self.ops += other.ops;
        self.global_loads += other.global_loads;
        self.global_stores += other.global_stores;
        self.local_loads += other.local_loads;
        self.local_stores += other.local_stores;
        self.barriers += other.barriers;
        self.global_bytes += other.global_bytes;
        self.ops_saved += other.ops_saved;
    }

    /// Total global memory operations.
    pub fn global_mem_ops(&self) -> u64 {
        self.global_loads + self.global_stores
    }

    /// Total local memory operations.
    pub fn local_mem_ops(&self) -> u64 {
        self.local_loads + self.local_stores
    }
}

/// A memory access failure description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccessError {
    /// Which address space was accessed.
    pub space: AddressSpace,
    /// The buffer index (global) or 0 (local arena).
    pub buffer: u32,
    /// The offending byte offset.
    pub byte_offset: i64,
    /// The buffer's length in bytes.
    pub len: usize,
    /// The element type of the access.
    pub ty: ScalarType,
}

impl fmt::Display for MemAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out-of-bounds {} access of `{}` at byte offset {} (buffer {} is {} bytes)",
            self.space, self.ty, self.byte_offset, self.buffer, self.len
        )
    }
}

/// A runtime error raised while executing kernel code.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A load or store fell outside its buffer.
    OutOfBounds(MemAccessError),
    /// A pointer local was used before being assigned.
    UninitializedPointer,
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// `__skelcl_trap(code)` was executed (generated bounds checks).
    Trap {
        /// The trap code.
        code: i32,
    },
    /// Control fell off the end of a non-void function.
    MissingReturn {
        /// The function's name.
        function: String,
    },
    /// The call stack exceeded [`MAX_CALL_DEPTH`].
    StackOverflow,
    /// The per-item instruction budget was exhausted (guards against
    /// non-terminating kernels).
    OpLimitExceeded,
    /// Subtraction of pointers into different buffers or address spaces.
    IncompatiblePointers,
    /// An internal VM invariant failed (compiler bug).
    Internal(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutOfBounds(e) => write!(f, "{e}"),
            RuntimeError::UninitializedPointer => f.write_str("use of an uninitialized pointer"),
            RuntimeError::DivisionByZero => f.write_str("integer division by zero"),
            RuntimeError::Trap { code } => write!(f, "kernel trap with code {code}"),
            RuntimeError::MissingReturn { function } => {
                write!(
                    f,
                    "control reached the end of non-void function `{function}`"
                )
            }
            RuntimeError::StackOverflow => f.write_str("kernel call stack overflow"),
            RuntimeError::OpLimitExceeded => {
                f.write_str("kernel instruction budget exceeded (possible infinite loop)")
            }
            RuntimeError::IncompatiblePointers => {
                f.write_str("subtraction of pointers into different buffers")
            }
            RuntimeError::Internal(msg) => write!(f, "internal VM error: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Abstraction over device global memory, implemented by the platform.
///
/// Methods take `&self`: buffers may be shared by concurrently running
/// work-groups, and — as on real hardware — racing unsynchronised accesses
/// yield unspecified (but memory-safe) contents.
pub trait GlobalMemory {
    /// Loads an element of type `ty` at `byte_offset` in `buffer`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemAccessError`] for out-of-range accesses or unknown
    /// buffers.
    fn load(&self, buffer: u32, byte_offset: i64, ty: ScalarType) -> Result<Value, MemAccessError>;

    /// Stores `v` (of type `ty`) at `byte_offset` in `buffer`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemAccessError`] for out-of-range accesses or unknown
    /// buffers.
    fn store(
        &self,
        buffer: u32,
        byte_offset: i64,
        ty: ScalarType,
        v: Value,
    ) -> Result<(), MemAccessError>;
}

/// A simple single-threaded [`GlobalMemory`] backed by `Vec`s (testing and
/// host-side execution).
#[derive(Debug, Default)]
pub struct HostMemory {
    buffers: Vec<std::cell::RefCell<Vec<u8>>>,
}

impl HostMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a buffer, returning its index.
    pub fn add_buffer(&mut self, bytes: Vec<u8>) -> u32 {
        self.buffers.push(std::cell::RefCell::new(bytes));
        (self.buffers.len() - 1) as u32
    }

    /// A copy of a buffer's current contents.
    ///
    /// # Panics
    ///
    /// Panics if the index is unknown.
    pub fn bytes(&self, buffer: u32) -> Vec<u8> {
        self.buffers[buffer as usize].borrow().clone()
    }
}

fn check_range(
    len: usize,
    byte_offset: i64,
    ty: ScalarType,
    space: AddressSpace,
    buffer: u32,
) -> Result<usize, MemAccessError> {
    let size = ty.size_bytes();
    if byte_offset < 0 || (byte_offset as usize).saturating_add(size) > len {
        return Err(MemAccessError {
            space,
            buffer,
            byte_offset,
            len,
            ty,
        });
    }
    Ok(byte_offset as usize)
}

impl GlobalMemory for HostMemory {
    fn load(&self, buffer: u32, byte_offset: i64, ty: ScalarType) -> Result<Value, MemAccessError> {
        let buf = self.buffers.get(buffer as usize).ok_or(MemAccessError {
            space: AddressSpace::Global,
            buffer,
            byte_offset,
            len: 0,
            ty,
        })?;
        let buf = buf.borrow();
        let off = check_range(buf.len(), byte_offset, ty, AddressSpace::Global, buffer)?;
        Ok(value::read_scalar(&buf[off..], ty))
    }

    fn store(
        &self,
        buffer: u32,
        byte_offset: i64,
        ty: ScalarType,
        v: Value,
    ) -> Result<(), MemAccessError> {
        let buf = self.buffers.get(buffer as usize).ok_or(MemAccessError {
            space: AddressSpace::Global,
            buffer,
            byte_offset,
            len: 0,
            ty,
        })?;
        let mut buf = buf.borrow_mut();
        let off = check_range(buf.len(), byte_offset, ty, AddressSpace::Global, buffer)?;
        value::write_scalar(&mut buf[off..], ty, v);
        Ok(())
    }
}

/// How a [`WorkItem::run`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// The kernel finished for this item.
    Done,
    /// The item reached the barrier with the given site id and is suspended.
    Barrier(u32),
}

#[derive(Debug)]
struct Frame {
    func: u16,
    pc: usize,
    locals: Vec<Value>,
    stack: Vec<Value>,
}

impl Frame {
    /// An empty frame shell, ready to be filled from a frame pool.
    fn blank() -> Self {
        Frame {
            func: 0,
            pc: 0,
            locals: Vec::new(),
            stack: Vec::new(),
        }
    }
}

/// A single work-item's suspended or running execution state.
///
/// A `WorkItem` is reusable: [`WorkItem::reset`] rearms a finished (or
/// faulted) item for a new launch geometry while recycling its frame,
/// locals and operand-stack allocations — the executor's barrier-free fast
/// path keeps one item per host thread and resets it per work-item instead
/// of constructing fresh ones.
#[derive(Debug)]
pub struct WorkItem {
    program: Program,
    geometry: ItemGeometry,
    frames: Vec<Frame>,
    /// Retired frames kept for reuse: `Call` draws from this pool instead
    /// of allocating locals/stack vectors per call.
    free_frames: Vec<Frame>,
    /// Cost counters accumulated so far.
    pub counters: CostCounters,
    /// Dispatch-loop iterations so far. Unlike [`CostCounters::ops`] (which
    /// counts *source* ops — a fused superinstruction covering `k` ops
    /// charges `k`, so both engines agree), this counts one per decoded
    /// head in [`WorkItem::run`] and one per op in
    /// [`WorkItem::run_reference`]: it measures interpreter-loop overhead,
    /// the quantity fusion and register lowering exist to shrink. It is
    /// deliberately *not* part of `CostCounters` so the engines' counter
    /// cross-checks stay exact.
    pub dispatches: u64,
    /// Remaining instruction budget.
    ops_budget: u64,
    finished: bool,
}

impl WorkItem {
    /// Creates a work-item poised at the start of kernel function `func`
    /// with the given argument values (buffers as [`Value::Ptr`], scalars as
    /// plain values, in parameter order).
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range or `args` doesn't match the
    /// function's parameter count.
    pub fn new(program: &Program, func: u16, args: &[Value], geometry: ItemGeometry) -> Self {
        let mut item = WorkItem {
            program: program.clone(),
            geometry,
            frames: Vec::with_capacity(4),
            free_frames: Vec::new(),
            counters: CostCounters::default(),
            dispatches: 0,
            ops_budget: u64::MAX,
            finished: false,
        };
        item.push_entry_frame(func, args);
        item
    }

    /// Rearms this item for another work-item of a launch: same `program`
    /// (the `Arc` is only re-cloned when it actually changed), new entry
    /// function, arguments and geometry; counters and budget reset. All
    /// frame/locals/stack allocations are recycled, so a reset item executes
    /// without any steady-state heap allocation.
    ///
    /// # Panics
    ///
    /// As for [`WorkItem::new`].
    pub fn reset(&mut self, program: &Program, func: u16, args: &[Value], geometry: ItemGeometry) {
        if !Program::ptr_eq(&self.program, program) {
            self.program = program.clone();
        }
        self.geometry = geometry;
        self.counters = CostCounters::default();
        self.dispatches = 0;
        self.ops_budget = u64::MAX;
        self.finished = false;
        // A finished item has popped every frame; a faulted or suspended one
        // may still hold some — recycle them all.
        self.free_frames.append(&mut self.frames);
        self.push_entry_frame(func, args);
    }

    fn push_entry_frame(&mut self, func: u16, args: &[Value]) {
        let code = &self.program.functions()[func as usize];
        assert_eq!(
            args.len(),
            code.param_count as usize,
            "kernel `{}` argument count mismatch",
            code.name
        );
        let mut frame = self.free_frames.pop().unwrap_or_else(Frame::blank);
        frame.func = func;
        frame.pc = 0;
        frame.stack.clear();
        frame.locals.clear();
        frame.locals.extend_from_slice(&code.local_init);
        frame.locals[..args.len()].copy_from_slice(args);
        self.frames.push(frame);
    }

    /// Overrides a local slot of the entry frame (used by the executor to
    /// bind `__local` array pointers).
    ///
    /// # Panics
    ///
    /// Panics if called after execution started or the slot is out of range.
    pub fn bind_entry_slot(&mut self, slot: u16, v: Value) {
        let frame = self.frames.first_mut().expect("entry frame exists");
        assert_eq!(frame.pc, 0, "cannot bind slots after execution started");
        frame.locals[slot as usize] = v;
    }

    /// Sets the instruction budget for the rest of this item's execution.
    pub fn set_ops_budget(&mut self, budget: u64) {
        self.ops_budget = budget;
    }

    /// Whether the item has completed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The item's launch geometry.
    pub fn geometry(&self) -> &ItemGeometry {
        &self.geometry
    }

    /// Runs until completion or the next barrier.
    ///
    /// `local_mem` is the work-group's shared local-memory arena; `global`
    /// is the device's global memory.
    ///
    /// This is the optimised dispatch loop: the current function's code
    /// slice is re-derived only on frame transitions (call/return), each
    /// instruction is fetched by reference instead of cloned, call frames
    /// are drawn from the item's frame pool instead of cloning `local_init`
    /// per call, and hot `LoadLocal`/`Const` + `Bin`/`Cmp` sequences run as
    /// pre-decoded superinstructions ([`crate::decode`]) that charge
    /// identical [`CostCounters`]. It is observationally identical to
    /// [`WorkItem::run_reference`]
    /// — same results, same [`CostCounters`] — which the executor's legacy
    /// path and the differential tests use as the semantic baseline.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the kernel faults; the item must not be
    /// resumed afterwards.
    ///
    /// # Panics
    ///
    /// Panics if called again after [`Exit::Done`].
    pub fn run(
        &mut self,
        global: &dyn GlobalMemory,
        local_mem: &mut [u8],
    ) -> Result<Exit, RuntimeError> {
        assert!(!self.finished, "work-item already finished");
        // A local handle keeps the `functions` borrow independent of
        // `self`, so the frame stack stays mutable for call/return.
        let program = self.program.clone();
        let functions = program.functions();
        'frame: loop {
            // Call depth is constant between frame transitions, so the
            // overflow check below needs no extra borrow of the stack.
            let depth = self.frames.len();
            let frame = self
                .frames
                .last_mut()
                .expect("frame stack never empty while running");
            let func = &functions[frame.func as usize];
            let dec = program.decoded_fn(frame.func as usize);
            loop {
                let d = &dec[frame.pc];
                self.dispatches += 1;
                let op = match d {
                    Decoded::Plain(op) => op,
                    fused => {
                        // A fused instruction covers `k` source ops: charge
                        // all of them, and run out of budget iff the
                        // reference would have inside the block.
                        let k = fused.cost();
                        if self.counters.ops + (k - 1) >= self.ops_budget {
                            return Err(RuntimeError::OpLimitExceeded);
                        }
                        self.counters.ops += k;
                        frame.pc += k as usize;
                        match fused {
                            Decoded::Bin { l, r, op, dst, .. } => {
                                // The rhs is popped first when unfused.
                                let rv = operand_value(frame, r)?;
                                let lv = operand_value(frame, l)?;
                                let v = vm_binary(*op, lv, rv)?;
                                match dst {
                                    Dst::Stack => frame.stack.push(v),
                                    Dst::Local(s) => frame.locals[*s as usize] = v,
                                }
                            }
                            Decoded::Cmp {
                                l, r, op, along, ..
                            } => {
                                let rv = operand_value(frame, r)?;
                                let lv = operand_value(frame, l)?;
                                let b = vm_compare(*op, lv, rv)?;
                                cmp_use(frame, *along, b);
                            }
                            Decoded::Chain(c) => {
                                let rv = operand_value(frame, &c.r)?;
                                let lv = operand_value(frame, &c.l)?;
                                let mut acc = vm_binary(c.op, lv, rv)?;
                                if let Some((l2, r2, op2, comb)) = &c.tree {
                                    // Both producer results stay in
                                    // registers; the unfused push/pop pair
                                    // cancels out.
                                    let rv2 = operand_value(frame, r2)?;
                                    let lv2 = operand_value(frame, l2)?;
                                    let acc2 = vm_binary(*op2, lv2, rv2)?;
                                    acc = vm_binary(*comb, acc, acc2)?;
                                }
                                for (op, r) in &c.links {
                                    // Link operands are fused loads, never
                                    // stack pops; the accumulator is the lhs.
                                    let rv = operand_value(frame, r)?;
                                    acc = vm_binary(*op, acc, rv)?;
                                }
                                match &c.tail {
                                    ChainTail::Push => frame.stack.push(acc),
                                    ChainTail::Store(s) => frame.locals[*s as usize] = acc,
                                    ChainTail::Cmp { op, r, along } => {
                                        let rv = operand_value(frame, r)?;
                                        let b = vm_compare(*op, acc, rv)?;
                                        cmp_use(frame, *along, b);
                                    }
                                }
                            }
                            Decoded::StMem { v, ptr, ty, .. } => {
                                // The pointer is popped (and checked) before
                                // the value when unfused; keep that order.
                                let p = match frame.locals[*ptr as usize] {
                                    Value::Ptr(p) => p,
                                    other => {
                                        return Err(RuntimeError::Internal(format!(
                                            "expected pointer, found {other}"
                                        )))
                                    }
                                };
                                let vv = operand_value(frame, v)?;
                                mem_store(&mut self.counters, global, local_mem, p, *ty, vv)?;
                            }
                            Decoded::StIdx {
                                v,
                                ptr,
                                idx,
                                size,
                                conv,
                                ty,
                                ..
                            } => {
                                let count = if *conv {
                                    value::convert(frame.locals[*idx as usize], ScalarType::Long)
                                        .as_i64()
                                } else {
                                    frame.locals[*idx as usize].as_i64()
                                };
                                let base = match frame.locals[*ptr as usize] {
                                    Value::Ptr(p) => p,
                                    other => {
                                        return Err(RuntimeError::Internal(format!(
                                            "expected pointer, found {other}"
                                        )))
                                    }
                                };
                                let p = Ptr {
                                    byte_offset: base
                                        .byte_offset
                                        .wrapping_add(count.wrapping_mul(*size as i64)),
                                    ..base
                                };
                                let vv = operand_value(frame, v)?;
                                mem_store(&mut self.counters, global, local_mem, p, *ty, vv)?;
                            }
                            Decoded::Mov(a, s) => {
                                frame.locals[*s as usize] = frame.locals[*a as usize];
                            }
                            Decoded::MovC(c, s) => {
                                frame.locals[*s as usize] = *c;
                            }
                            Decoded::PtrIdx {
                                ptr,
                                idx,
                                size,
                                conv,
                                load,
                                dst,
                                ..
                            } => {
                                // Conversion happens before the pointer
                                // check when unfused; keep that order. When
                                // the widening was hoisted (`conv` false)
                                // the slot is read exactly as the bare
                                // `PtrOffset` pops it.
                                let count = if *conv {
                                    value::convert(frame.locals[*idx as usize], ScalarType::Long)
                                        .as_i64()
                                } else {
                                    frame.locals[*idx as usize].as_i64()
                                };
                                let base = match frame.locals[*ptr as usize] {
                                    Value::Ptr(p) => p,
                                    other => {
                                        return Err(RuntimeError::Internal(format!(
                                            "expected pointer, found {other}"
                                        )))
                                    }
                                };
                                let p = Ptr {
                                    byte_offset: base
                                        .byte_offset
                                        .wrapping_add(count.wrapping_mul(*size as i64)),
                                    ..base
                                };
                                let v = match load {
                                    Some(ty) => {
                                        mem_load(&mut self.counters, global, local_mem, p, *ty)?
                                    }
                                    None => Value::Ptr(p),
                                };
                                match dst {
                                    Dst::Stack => frame.stack.push(v),
                                    Dst::Local(s) => frame.locals[*s as usize] = v,
                                }
                            }
                            Decoded::Cvt { src, to, dst, .. } => {
                                let v = value::convert(operand_value(frame, src)?, *to);
                                match dst {
                                    Dst::Stack => frame.stack.push(v),
                                    Dst::Local(s) => frame.locals[*s as usize] = v,
                                }
                            }
                            Decoded::Plain(_) => unreachable!("matched above"),
                        }
                        continue;
                    }
                };
                if self.counters.ops >= self.ops_budget {
                    return Err(RuntimeError::OpLimitExceeded);
                }
                self.counters.ops += 1;
                frame.pc += 1;

                match op {
                    Op::Const(v) => frame.stack.push(*v),
                    Op::LoadLocal(s) => {
                        let v = frame.locals[*s as usize];
                        frame.stack.push(v);
                    }
                    Op::StoreLocal(s) => {
                        let v = pop(frame)?;
                        frame.locals[*s as usize] = v;
                    }
                    Op::Dup => {
                        let v = *frame.stack.last().ok_or_else(stack_underflow)?;
                        frame.stack.push(v);
                    }
                    Op::Pop => {
                        pop(frame)?;
                    }
                    Op::Un(un) => {
                        let v = pop(frame)?;
                        frame.stack.push(value::unary(*un, v).map_err(eval_err)?);
                    }
                    Op::Bin(bin) => {
                        let r = pop(frame)?;
                        let l = pop(frame)?;
                        frame.stack.push(vm_binary(*bin, l, r)?);
                    }
                    Op::Cmp(cmp) => {
                        let r = pop(frame)?;
                        let l = pop(frame)?;
                        frame.stack.push(Value::Bool(vm_compare(*cmp, l, r)?));
                    }
                    Op::Convert(to) => {
                        let v = pop(frame)?;
                        frame.stack.push(value::convert(v, *to));
                    }
                    Op::ToBool => {
                        let v = pop(frame)?;
                        frame.stack.push(Value::Bool(v.is_truthy()));
                    }
                    Op::Jump(t) => frame.pc = *t as usize,
                    Op::JumpIfFalse(t) => {
                        if !pop(frame)?.is_truthy() {
                            frame.pc = *t as usize;
                        }
                    }
                    Op::JumpIfTrue(t) => {
                        if pop(frame)?.is_truthy() {
                            frame.pc = *t as usize;
                        }
                    }
                    Op::Call { func, argc } => {
                        if depth >= MAX_CALL_DEPTH {
                            return Err(RuntimeError::StackOverflow);
                        }
                        let callee = &functions[*func as usize];
                        let mut callee_frame = self.free_frames.pop().unwrap_or_else(Frame::blank);
                        callee_frame.func = *func;
                        callee_frame.pc = 0;
                        callee_frame.stack.clear();
                        callee_frame.locals.clear();
                        callee_frame.locals.extend_from_slice(&callee.local_init);
                        for i in (0..*argc as usize).rev() {
                            callee_frame.locals[i] = pop(frame)?;
                        }
                        self.frames.push(callee_frame);
                        continue 'frame;
                    }
                    Op::CallPure(b, argc) => {
                        let start = frame
                            .stack
                            .len()
                            .checked_sub(*argc as usize)
                            .ok_or_else(stack_underflow)?;
                        let result = builtins::eval_pure(*b, &frame.stack[start..]);
                        frame.stack.truncate(start);
                        frame.stack.push(result);
                    }
                    Op::WorkItem(b) => {
                        let v = work_item_query(&self.geometry, frame, *b)?;
                        frame.stack.push(v);
                    }
                    Op::Barrier { id } => {
                        self.counters.barriers += 1;
                        return Ok(Exit::Barrier(*id));
                    }
                    Op::Trap => {
                        let code = pop(frame)?;
                        return Err(RuntimeError::Trap {
                            code: code.as_i64() as i32,
                        });
                    }
                    Op::LoadMem(ty) => {
                        let p = pop_ptr(frame)?;
                        let v = mem_load(&mut self.counters, global, local_mem, p, *ty)?;
                        frame.stack.push(v);
                    }
                    Op::StoreMem(ty) => {
                        let p = pop_ptr(frame)?;
                        let v = pop(frame)?;
                        mem_store(&mut self.counters, global, local_mem, p, *ty, v)?;
                    }
                    Op::PtrOffset(size) => {
                        let count = pop(frame)?.as_i64();
                        let p = pop_ptr(frame)?;
                        frame.stack.push(Value::Ptr(Ptr {
                            byte_offset: p
                                .byte_offset
                                .wrapping_add(count.wrapping_mul(*size as i64)),
                            ..p
                        }));
                    }
                    Op::PtrDiff(size) => {
                        let r = pop_ptr(frame)?;
                        let l = pop_ptr(frame)?;
                        if l.space != r.space || l.buffer != r.buffer {
                            return Err(RuntimeError::IncompatiblePointers);
                        }
                        frame
                            .stack
                            .push(Value::I64((l.byte_offset - r.byte_offset) / *size as i64));
                    }
                    Op::Return => {
                        let v = pop(frame)?;
                        let retired = self.frames.pop().expect("frame");
                        self.free_frames.push(retired);
                        match self.frames.last_mut() {
                            Some(caller) => {
                                caller.stack.push(v);
                                continue 'frame;
                            }
                            None => {
                                self.finished = true;
                                return Ok(Exit::Done);
                            }
                        }
                    }
                    Op::ReturnVoid => {
                        let retired = self.frames.pop().expect("frame");
                        self.free_frames.push(retired);
                        if self.frames.is_empty() {
                            self.finished = true;
                            return Ok(Exit::Done);
                        }
                        continue 'frame;
                    }
                    Op::MissingReturn => {
                        return Err(RuntimeError::MissingReturn {
                            function: func.name.clone(),
                        });
                    }
                }
            }
        }
    }

    /// The reference interpreter: the original straight-line dispatch loop,
    /// kept byte-for-byte in behaviour (per-op clone, per-call `local_init`
    /// clone, no frame pooling). The executor's legacy lockstep path runs on
    /// it, which makes the `lockstep`-vs-`fast` benchmark an honest A/B of
    /// the whole optimisation stack and gives the equivalence tests a
    /// semantic baseline that shares no dispatch code with [`WorkItem::run`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the kernel faults; the item must not be
    /// resumed afterwards.
    ///
    /// # Panics
    ///
    /// Panics if called again after [`Exit::Done`].
    pub fn run_reference(
        &mut self,
        global: &dyn GlobalMemory,
        local_mem: &mut [u8],
    ) -> Result<Exit, RuntimeError> {
        assert!(!self.finished, "work-item already finished");
        loop {
            if self.counters.ops >= self.ops_budget {
                return Err(RuntimeError::OpLimitExceeded);
            }
            self.counters.ops += 1;
            self.dispatches += 1;

            let frame = self
                .frames
                .last_mut()
                .expect("frame stack never empty while running");
            let code = &self.program.functions()[frame.func as usize];
            let op = code.code[frame.pc].clone();
            frame.pc += 1;

            match op {
                Op::Const(v) => frame.stack.push(v),
                Op::LoadLocal(s) => {
                    let v = frame.locals[s as usize];
                    frame.stack.push(v);
                }
                Op::StoreLocal(s) => {
                    let v = pop(frame)?;
                    frame.locals[s as usize] = v;
                }
                Op::Dup => {
                    let v = *frame.stack.last().ok_or_else(stack_underflow)?;
                    frame.stack.push(v);
                }
                Op::Pop => {
                    pop(frame)?;
                }
                Op::Un(un) => {
                    let v = pop(frame)?;
                    frame.stack.push(value::unary(un, v).map_err(eval_err)?);
                }
                Op::Bin(bin) => {
                    let r = pop(frame)?;
                    let l = pop(frame)?;
                    frame
                        .stack
                        .push(value::binary(bin, l, r).map_err(eval_err)?);
                }
                Op::Cmp(cmp) => {
                    let r = pop(frame)?;
                    let l = pop(frame)?;
                    frame
                        .stack
                        .push(Value::Bool(value::compare(cmp, l, r).map_err(eval_err)?));
                }
                Op::Convert(to) => {
                    let v = pop(frame)?;
                    frame.stack.push(value::convert(v, to));
                }
                Op::ToBool => {
                    let v = pop(frame)?;
                    frame.stack.push(Value::Bool(v.is_truthy()));
                }
                Op::Jump(t) => frame.pc = t as usize,
                Op::JumpIfFalse(t) => {
                    if !pop(frame)?.is_truthy() {
                        frame.pc = t as usize;
                    }
                }
                Op::JumpIfTrue(t) => {
                    if pop(frame)?.is_truthy() {
                        frame.pc = t as usize;
                    }
                }
                Op::Call { func, argc } => {
                    if self.frames.len() >= MAX_CALL_DEPTH {
                        return Err(RuntimeError::StackOverflow);
                    }
                    let callee = &self.program.functions()[func as usize];
                    let mut locals = callee.local_init.clone();
                    let frame = self.frames.last_mut().expect("caller frame");
                    for i in (0..argc as usize).rev() {
                        locals[i] = pop(frame)?;
                    }
                    self.frames.push(Frame {
                        func,
                        pc: 0,
                        locals,
                        stack: Vec::new(),
                    });
                }
                Op::CallPure(b, argc) => {
                    let frame = self.frames.last_mut().expect("frame");
                    let start = frame
                        .stack
                        .len()
                        .checked_sub(argc as usize)
                        .ok_or_else(stack_underflow)?;
                    let result = builtins::eval_pure(b, &frame.stack[start..]);
                    frame.stack.truncate(start);
                    frame.stack.push(result);
                }
                Op::WorkItem(b) => {
                    let frame = self.frames.last_mut().expect("frame");
                    let v = work_item_query(&self.geometry, frame, b)?;
                    frame.stack.push(v);
                }
                Op::Barrier { id } => {
                    self.counters.barriers += 1;
                    return Ok(Exit::Barrier(id));
                }
                Op::Trap => {
                    let code = pop(self.frames.last_mut().expect("frame"))?;
                    return Err(RuntimeError::Trap {
                        code: code.as_i64() as i32,
                    });
                }
                Op::LoadMem(ty) => {
                    let p = pop_ptr(self.frames.last_mut().expect("frame"))?;
                    let v = mem_load(&mut self.counters, global, local_mem, p, ty)?;
                    self.frames.last_mut().expect("frame").stack.push(v);
                }
                Op::StoreMem(ty) => {
                    let frame = self.frames.last_mut().expect("frame");
                    let p = pop_ptr(frame)?;
                    let v = pop(frame)?;
                    mem_store(&mut self.counters, global, local_mem, p, ty, v)?;
                }
                Op::PtrOffset(size) => {
                    let frame = self.frames.last_mut().expect("frame");
                    let count = pop(frame)?.as_i64();
                    let p = pop_ptr(frame)?;
                    frame.stack.push(Value::Ptr(Ptr {
                        byte_offset: p.byte_offset.wrapping_add(count.wrapping_mul(size as i64)),
                        ..p
                    }));
                }
                Op::PtrDiff(size) => {
                    let frame = self.frames.last_mut().expect("frame");
                    let r = pop_ptr(frame)?;
                    let l = pop_ptr(frame)?;
                    if l.space != r.space || l.buffer != r.buffer {
                        return Err(RuntimeError::IncompatiblePointers);
                    }
                    frame
                        .stack
                        .push(Value::I64((l.byte_offset - r.byte_offset) / size as i64));
                }
                Op::Return => {
                    let frame = self.frames.last_mut().expect("frame");
                    let v = pop(frame)?;
                    self.frames.pop();
                    match self.frames.last_mut() {
                        Some(caller) => caller.stack.push(v),
                        None => {
                            self.finished = true;
                            return Ok(Exit::Done);
                        }
                    }
                }
                Op::ReturnVoid => {
                    self.frames.pop();
                    if self.frames.is_empty() {
                        self.finished = true;
                        return Ok(Exit::Done);
                    }
                }
                Op::MissingReturn => {
                    let name = self.program.functions()
                        [self.frames.last().expect("frame").func as usize]
                        .name
                        .clone();
                    return Err(RuntimeError::MissingReturn { function: name });
                }
            }
        }
    }
}

/// Evaluates a work-item query builtin against `geometry`, popping the
/// dimension argument (if any) off `frame`'s operand stack. Free function so
/// both dispatch loops can call it while holding a frame borrow.
fn work_item_query(
    geometry: &ItemGeometry,
    frame: &mut Frame,
    b: Builtin,
) -> Result<Value, RuntimeError> {
    if b == Builtin::GetWorkDim {
        return Ok(Value::U32(geometry.work_dim));
    }
    let dim = pop(frame)?.as_i64();
    // OpenCL: out-of-range dims yield 0 (sizes yield 1).
    let (arr, default): (&[u64; 3], u64) = match b {
        Builtin::GetGlobalId => (&geometry.global_id, 0),
        Builtin::GetLocalId => (&geometry.local_id, 0),
        Builtin::GetGroupId => (&geometry.group_id, 0),
        Builtin::GetGlobalSize => (&geometry.global_size, 1),
        Builtin::GetLocalSize => (&geometry.local_size, 1),
        Builtin::GetNumGroups => (&geometry.num_groups, 1),
        other => {
            return Err(RuntimeError::Internal(format!(
                "not a work-item query: {other:?}"
            )))
        }
    };
    let v = if (0..3).contains(&dim) {
        arr[dim as usize]
    } else {
        default
    };
    Ok(Value::U64(v))
}

/// Typed load through `p`, charging `counters`. Free function so the
/// dispatch loops can call it while holding a frame borrow.
fn mem_load(
    counters: &mut CostCounters,
    global: &dyn GlobalMemory,
    local_mem: &[u8],
    p: Ptr,
    ty: ScalarType,
) -> Result<Value, RuntimeError> {
    if p.buffer == UNINIT_BUFFER && p.space == AddressSpace::Private {
        return Err(RuntimeError::UninitializedPointer);
    }
    match p.space {
        AddressSpace::Global => {
            counters.global_loads += 1;
            counters.global_bytes += ty.size_bytes() as u64;
            global
                .load(p.buffer, p.byte_offset, ty)
                .map_err(RuntimeError::OutOfBounds)
        }
        AddressSpace::Local => {
            counters.local_loads += 1;
            let off = check_range(local_mem.len(), p.byte_offset, ty, p.space, p.buffer)
                .map_err(RuntimeError::OutOfBounds)?;
            Ok(value::read_scalar(&local_mem[off..], ty))
        }
        AddressSpace::Private => Err(RuntimeError::UninitializedPointer),
    }
}

/// Typed store through `p`, charging `counters`. Free function so the
/// dispatch loops can call it while holding a frame borrow.
fn mem_store(
    counters: &mut CostCounters,
    global: &dyn GlobalMemory,
    local_mem: &mut [u8],
    p: Ptr,
    ty: ScalarType,
    v: Value,
) -> Result<(), RuntimeError> {
    if p.buffer == UNINIT_BUFFER && p.space == AddressSpace::Private {
        return Err(RuntimeError::UninitializedPointer);
    }
    match p.space {
        AddressSpace::Global => {
            counters.global_stores += 1;
            counters.global_bytes += ty.size_bytes() as u64;
            global
                .store(p.buffer, p.byte_offset, ty, v)
                .map_err(RuntimeError::OutOfBounds)
        }
        AddressSpace::Local => {
            counters.local_stores += 1;
            let off = check_range(local_mem.len(), p.byte_offset, ty, p.space, p.buffer)
                .map_err(RuntimeError::OutOfBounds)?;
            value::write_scalar(&mut local_mem[off..], ty, v);
            Ok(())
        }
        AddressSpace::Private => Err(RuntimeError::UninitializedPointer),
    }
}

fn pop(frame: &mut Frame) -> Result<Value, RuntimeError> {
    frame.stack.pop().ok_or_else(stack_underflow)
}

/// Materialises one fused operand (see [`crate::decode`]). Callers evaluate
/// the rhs before the lhs so stack pops happen in the unfused order.
#[inline]
fn operand_value(frame: &mut Frame, operand: &Operand) -> Result<Value, RuntimeError> {
    match operand {
        Operand::Stack => pop(frame),
        Operand::Local(s) => Ok(frame.locals[*s as usize]),
        Operand::Const(c) => Ok(*c),
    }
}

/// Arithmetic for the optimised dispatch loop: inlines the hot scalar
/// cases — bit-identically to [`value::binary`], whose float and wrapping
/// integer expressions these are — and falls back to it for every other
/// type and for the fallible operations. The reference loop keeps calling
/// [`value::binary`] so its machine code is untouched.
#[inline(always)]
fn vm_binary(op: BinOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
    match (a, b) {
        (Value::F32(x), Value::F32(y)) => match op {
            BinOp::Add => return Ok(Value::F32(x + y)),
            BinOp::Sub => return Ok(Value::F32(x - y)),
            BinOp::Mul => return Ok(Value::F32(x * y)),
            BinOp::Div => return Ok(Value::F32(x / y)),
            _ => {}
        },
        (Value::I32(x), Value::I32(y)) => match op {
            BinOp::Add => return Ok(Value::I32(x.wrapping_add(y))),
            BinOp::Sub => return Ok(Value::I32(x.wrapping_sub(y))),
            BinOp::Mul => return Ok(Value::I32(x.wrapping_mul(y))),
            BinOp::BitAnd => return Ok(Value::I32(x & y)),
            BinOp::BitOr => return Ok(Value::I32(x | y)),
            BinOp::BitXor => return Ok(Value::I32(x ^ y)),
            _ => {}
        },
        _ => {}
    }
    value::binary(op, a, b).map_err(eval_err)
}

/// Routes a fused comparison's boolean (see [`CmpUse`]): pushed, or a
/// branch with one or both successors resolved at decode time. The caller
/// has already advanced `pc` past the fused block.
#[inline(always)]
fn cmp_use(frame: &mut Frame, along: CmpUse, b: bool) {
    match along {
        CmpUse::Push => frame.stack.push(Value::Bool(b)),
        CmpUse::BranchIfFalse(t) => {
            if !b {
                frame.pc = t as usize;
            }
        }
        CmpUse::BranchIfTrue(t) => {
            if b {
                frame.pc = t as usize;
            }
        }
        CmpUse::BranchBoth { if_true, if_false } => {
            frame.pc = if b { if_true } else { if_false } as usize;
        }
    }
}

/// Comparison twin of [`vm_binary`]: native float operators implement the
/// same IEEE semantics as the reference's `float_cmp` (ordered comparisons
/// with NaN are false, `!=` is true), and integer operators match its
/// `Ord`-based table.
#[inline(always)]
fn vm_compare(op: CmpOp, a: Value, b: Value) -> Result<bool, RuntimeError> {
    match (a, b) {
        (Value::F32(x), Value::F32(y)) => Ok(match op {
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
        }),
        (Value::I32(x), Value::I32(y)) => Ok(match op {
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
        }),
        _ => value::compare(op, a, b).map_err(eval_err),
    }
}

fn pop_ptr(frame: &mut Frame) -> Result<Ptr, RuntimeError> {
    match pop(frame)? {
        Value::Ptr(p) => Ok(p),
        other => Err(RuntimeError::Internal(format!(
            "expected pointer, found {other}"
        ))),
    }
}

fn stack_underflow() -> RuntimeError {
    RuntimeError::Internal("operand stack underflow".into())
}

fn eval_err(e: value::EvalError) -> RuntimeError {
    match e {
        value::EvalError::DivisionByZero => RuntimeError::DivisionByZero,
        value::EvalError::TypeMismatch { context } => {
            RuntimeError::Internal(format!("type mismatch during {context}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::value::Ptr;

    fn program(src: &str) -> Program {
        compile("test.cl", src).unwrap_or_else(|e| panic!("compile failed:\n{e}"))
    }

    fn gptr(buffer: u32) -> Value {
        Value::Ptr(Ptr {
            space: AddressSpace::Global,
            buffer,
            byte_offset: 0,
        })
    }

    fn f32_buffer(vals: &[f32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn read_f32s(bytes: &[u8]) -> Vec<f32> {
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Runs a 1-D kernel over `n` items sequentially (no barriers).
    fn run_simple(p: &Program, kernel: &str, args: &[Value], n: u64) -> CostCounters {
        let mem = HostMemory::new();
        run_simple_mem(p, kernel, args, n, &mem)
    }

    fn run_simple_mem(
        p: &Program,
        kernel: &str,
        args: &[Value],
        n: u64,
        mem: &dyn GlobalMemory,
    ) -> CostCounters {
        let k = p.kernel(kernel).expect("kernel exists");
        let mut total = CostCounters::default();
        let mut local = vec![0u8; k.static_local_bytes as usize];
        for i in 0..n {
            let geom = ItemGeometry {
                work_dim: 1,
                global_id: [i, 0, 0],
                local_id: [i, 0, 0],
                group_id: [0, 0, 0],
                global_size: [n, 1, 1],
                local_size: [n, 1, 1],
                num_groups: [1, 1, 1],
            };
            let mut item = WorkItem::new(p, k.func, args, geom);
            for b in &k.local_arrays {
                item.bind_entry_slot(
                    b.slot,
                    Value::Ptr(Ptr {
                        space: AddressSpace::Local,
                        buffer: 0,
                        byte_offset: b.byte_offset as i64,
                    }),
                );
            }
            let exit = item.run(mem, &mut local).expect("kernel ran");
            assert_eq!(exit, Exit::Done);
            total.merge(&item.counters);
        }
        total
    }

    #[test]
    fn negation_map_kernel() {
        let p = program(
            "float func(float x){ return -x; }
             __kernel void map_neg(__global const float* in, __global float* out, int n){
                 int i = (int)get_global_id(0);
                 if (i < n) out[i] = func(in[i]);
             }",
        );
        let mut mem = HostMemory::new();
        let input = mem.add_buffer(f32_buffer(&[1.0, -2.5, 0.0, 7.0]));
        let output = mem.add_buffer(vec![0u8; 16]);
        run_simple_mem(
            &p,
            "map_neg",
            &[gptr(input), gptr(output), Value::I32(4)],
            4,
            &mem,
        );
        assert_eq!(read_f32s(&mem.bytes(output)), vec![-1.0, 2.5, 0.0, -7.0]);
    }

    #[test]
    fn loop_and_accumulate() {
        let p = program(
            "__kernel void sum_to(__global int* out, int n){
                 int s = 0;
                 for (int i = 1; i <= n; ++i) s += i;
                 out[get_global_id(0)] = s;
             }",
        );
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 4]);
        run_simple_mem(&p, "sum_to", &[gptr(out), Value::I32(10)], 1, &mem);
        assert_eq!(
            i32::from_le_bytes(mem.bytes(out)[..4].try_into().unwrap()),
            55
        );
    }

    #[test]
    fn break_continue_do_while() {
        let p = program(
            "__kernel void tricky(__global int* out){
                 int s = 0;
                 for (int i = 0; i < 100; ++i) {
                     if (i == 5) continue;
                     if (i == 8) break;
                     s += i;
                 }
                 int j = 0;
                 do { s += 1000; j++; } while (j < 2);
                 out[0] = s;
             }",
        );
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 4]);
        run_simple_mem(&p, "tricky", &[gptr(out)], 1, &mem);
        // 0+1+2+3+4+6+7 = 23, plus 2000.
        assert_eq!(
            i32::from_le_bytes(mem.bytes(out)[..4].try_into().unwrap()),
            2023
        );
    }

    #[test]
    fn mandelbrot_style_kernel() {
        let p = program(
            "__kernel void mandel(__global uchar* out, int width, float scale, int max_iter){
                 int gid = (int)get_global_id(0);
                 int px = gid % width;
                 int py = gid / width;
                 float cr = (float)px * scale - 2.0f;
                 float ci = (float)py * scale - 1.0f;
                 float zr = 0.0f; float zi = 0.0f;
                 int it = 0;
                 while (zr*zr + zi*zi <= 4.0f && it < max_iter) {
                     float t = zr*zr - zi*zi + cr;
                     zi = 2.0f*zr*zi + ci;
                     zr = t;
                     it++;
                 }
                 out[gid] = (uchar)(255 * it / max_iter);
             }",
        );
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 16]);
        run_simple_mem(
            &p,
            "mandel",
            &[gptr(out), Value::I32(4), Value::F32(0.5), Value::I32(32)],
            16,
            &mem,
        );
        let bytes = mem.bytes(out);
        // Points inside the set reach max_iter -> 255; outside escape sooner.
        assert!(bytes.contains(&255), "some pixel in the set: {bytes:?}");
        assert!(
            bytes.iter().any(|&b| b < 255),
            "some pixel escapes: {bytes:?}"
        );
    }

    #[test]
    fn local_memory_and_barrier_lockstep() {
        // Reverse within a work-group through local memory: requires a
        // real barrier between the write and the read phase.
        let p = program(
            "__kernel void reverse(__global const int* in, __global int* out){
                 __local int tile[8];
                 int lid = (int)get_local_id(0);
                 int n = (int)get_local_size(0);
                 tile[lid] = in[lid];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[lid] = tile[n - 1 - lid];
             }",
        );
        let k = p.kernel("reverse").unwrap();
        let mut mem = HostMemory::new();
        let input = mem.add_buffer((0..8i32).flat_map(|v| v.to_le_bytes()).collect());
        let out = mem.add_buffer(vec![0u8; 32]);
        let args = [gptr(input), gptr(out)];

        // Run the 8 items of one work-group in lockstep rounds.
        let mut local = vec![0u8; k.static_local_bytes as usize];
        let mut items: Vec<WorkItem> = (0..8u64)
            .map(|i| {
                let geom = ItemGeometry {
                    work_dim: 1,
                    global_id: [i, 0, 0],
                    local_id: [i, 0, 0],
                    group_id: [0, 0, 0],
                    global_size: [8, 1, 1],
                    local_size: [8, 1, 1],
                    num_groups: [1, 1, 1],
                };
                let mut it = WorkItem::new(&p, k.func, &args, geom);
                for b in &k.local_arrays {
                    it.bind_entry_slot(
                        b.slot,
                        Value::Ptr(Ptr {
                            space: AddressSpace::Local,
                            buffer: 0,
                            byte_offset: b.byte_offset as i64,
                        }),
                    );
                }
                it
            })
            .collect();

        // Round 1: everyone reaches barrier 0.
        for it in &mut items {
            assert_eq!(it.run(&mem, &mut local).unwrap(), Exit::Barrier(0));
        }
        // Round 2: everyone finishes.
        for it in &mut items {
            assert_eq!(it.run(&mem, &mut local).unwrap(), Exit::Done);
        }

        let out_vals: Vec<i32> = mem
            .bytes(out)
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(out_vals, vec![7, 6, 5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn out_of_bounds_global_access_traps() {
        let p = program("__kernel void oob(__global float* out){ out[100] = 1.0f; }");
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 16]);
        let k = p.kernel("oob").unwrap();
        let mut item = WorkItem::new(&p, k.func, &[gptr(out)], ItemGeometry::single());
        let err = item.run(&mem, &mut []).unwrap_err();
        match err {
            RuntimeError::OutOfBounds(e) => {
                assert_eq!(e.byte_offset, 400);
                assert_eq!(e.len, 16);
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn negative_index_traps() {
        let p = program("__kernel void neg(__global float* out, int i){ out[i] = 1.0f; }");
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 16]);
        let k = p.kernel("neg").unwrap();
        let mut item = WorkItem::new(
            &p,
            k.func,
            &[gptr(out), Value::I32(-1)],
            ItemGeometry::single(),
        );
        assert!(matches!(
            item.run(&mem, &mut []).unwrap_err(),
            RuntimeError::OutOfBounds(_)
        ));
    }

    #[test]
    fn division_by_zero_traps() {
        let p = program("__kernel void div(__global int* out, int d){ out[0] = 10 / d; }");
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 4]);
        let k = p.kernel("div").unwrap();
        let mut item = WorkItem::new(
            &p,
            k.func,
            &[gptr(out), Value::I32(0)],
            ItemGeometry::single(),
        );
        assert_eq!(
            item.run(&mem, &mut []).unwrap_err(),
            RuntimeError::DivisionByZero
        );
    }

    #[test]
    fn uninitialized_pointer_traps() {
        let p = program("__kernel void bad(__global float* out){ float* p; out[0] = p[0]; }");
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 4]);
        let k = p.kernel("bad").unwrap();
        let mut item = WorkItem::new(&p, k.func, &[gptr(out)], ItemGeometry::single());
        assert_eq!(
            item.run(&mem, &mut []).unwrap_err(),
            RuntimeError::UninitializedPointer
        );
    }

    #[test]
    fn infinite_loop_hits_op_budget() {
        let p = program("__kernel void spin(__global int* out){ while (true) { } out[0] = 1; }");
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 4]);
        let k = p.kernel("spin").unwrap();
        let mut item = WorkItem::new(&p, k.func, &[gptr(out)], ItemGeometry::single());
        item.set_ops_budget(10_000);
        assert_eq!(
            item.run(&mem, &mut []).unwrap_err(),
            RuntimeError::OpLimitExceeded
        );
    }

    #[test]
    fn trap_builtin_aborts() {
        let p = program("__kernel void t(__global int* out){ __skelcl_trap(42); out[0] = 1; }");
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 4]);
        let k = p.kernel("t").unwrap();
        let mut item = WorkItem::new(&p, k.func, &[gptr(out)], ItemGeometry::single());
        assert_eq!(
            item.run(&mem, &mut []).unwrap_err(),
            RuntimeError::Trap { code: 42 }
        );
    }

    #[test]
    fn missing_return_traps_at_runtime() {
        let p = program(
            "int f(int x){ if (x > 0) return 1; }
             __kernel void k(__global int* out){ out[0] = f(-1); }",
        );
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 4]);
        let k = p.kernel("k").unwrap();
        let mut item = WorkItem::new(&p, k.func, &[gptr(out)], ItemGeometry::single());
        assert_eq!(
            item.run(&mem, &mut []).unwrap_err(),
            RuntimeError::MissingReturn {
                function: "f".into()
            }
        );
    }

    #[test]
    fn counters_track_memory_traffic() {
        let p = program(
            "__kernel void copy(__global const float* in, __global float* out){
                 int i = (int)get_global_id(0);
                 out[i] = in[i];
             }",
        );
        let mut mem = HostMemory::new();
        let a = mem.add_buffer(f32_buffer(&[1.0; 10]));
        let b = mem.add_buffer(vec![0u8; 40]);
        let c = run_simple_mem(&p, "copy", &[gptr(a), gptr(b)], 10, &mem);
        assert_eq!(c.global_loads, 10);
        assert_eq!(c.global_stores, 10);
        assert_eq!(c.global_bytes, 80);
        assert!(c.ops > 0);
        assert_eq!(c.barriers, 0);
    }

    #[test]
    fn work_item_queries_2d() {
        let p = program(
            "__kernel void geom(__global ulong* out){
                 out[0] = get_global_id(0);
                 out[1] = get_global_id(1);
                 out[2] = get_global_size(1);
                 out[3] = get_num_groups(0);
                 out[4] = get_global_id(7);   // out of range -> 0
                 out[5] = get_global_size(7); // out of range -> 1
                 out[6] = (ulong)get_work_dim();
             }",
        );
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 7 * 8]);
        let k = p.kernel("geom").unwrap();
        let geom = ItemGeometry {
            work_dim: 2,
            global_id: [3, 5, 0],
            local_id: [3, 1, 0],
            group_id: [0, 1, 0],
            global_size: [8, 6, 1],
            local_size: [8, 4, 1],
            num_groups: [1, 2, 1],
        };
        let mut item = WorkItem::new(&p, k.func, &[gptr(out)], geom);
        item.run(&mem, &mut []).unwrap();
        let vals: Vec<u64> = mem
            .bytes(out)
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![3, 5, 6, 1, 0, 1, 2]);
    }

    #[test]
    fn pointer_arithmetic_row_access() {
        let p = program(
            "float row_sum(const float* row, int d){
                 float s = 0.0f;
                 for (int k = 0; k < d; ++k) s += row[k];
                 return s;
             }
             __kernel void sums(__global const float* m, __global float* out, int d){
                 int i = (int)get_global_id(0);
                 out[i] = row_sum(&m[i * d], d);
             }",
        );
        let mut mem = HostMemory::new();
        let m = mem.add_buffer(f32_buffer(&[1.0, 2.0, 3.0, 10.0, 20.0, 30.0]));
        let out = mem.add_buffer(vec![0u8; 8]);
        run_simple_mem(&p, "sums", &[gptr(m), gptr(out), Value::I32(3)], 2, &mem);
        assert_eq!(read_f32s(&mem.bytes(out)), vec![6.0, 60.0]);
    }

    #[test]
    fn optimized_and_reference_interpreters_agree() {
        // A kernel exercising calls, loops, conversions and memory traffic;
        // the optimized loop must match the reference loop bit-for-bit in
        // output and exactly in counters.
        let p = program(
            "float poly(float x, int k){
                 float acc = 0.0f;
                 for (int i = 0; i < k; ++i) acc = acc * x + (float)i;
                 return acc;
             }
             __kernel void stress(__global const float* in, __global float* out, int n){
                 int i = (int)get_global_id(0);
                 if (i < n) out[i] = poly(in[i], i + 3);
             }",
        );
        let k = p.kernel("stress").unwrap();
        let input = f32_buffer(&[0.5, -1.25, 3.0, 0.0, 9.5, -0.125]);
        let n = 6u64;

        let run_with = |reference: bool| -> (Vec<u8>, CostCounters) {
            let mut mem = HostMemory::new();
            let a = mem.add_buffer(input.clone());
            let b = mem.add_buffer(vec![0u8; input.len()]);
            let args = [gptr(a), gptr(b), Value::I32(n as i32)];
            let mut total = CostCounters::default();
            // One item reset per element also exercises WorkItem reuse.
            let mut item = None;
            for i in 0..n {
                let geom = ItemGeometry {
                    work_dim: 1,
                    global_id: [i, 0, 0],
                    local_id: [i, 0, 0],
                    group_id: [0, 0, 0],
                    global_size: [n, 1, 1],
                    local_size: [n, 1, 1],
                    num_groups: [1, 1, 1],
                };
                let it = match item.as_mut() {
                    None => item.insert(WorkItem::new(&p, k.func, &args, geom)),
                    Some(it) => {
                        it.reset(&p, k.func, &args, geom);
                        it
                    }
                };
                let exit = if reference {
                    it.run_reference(&mem, &mut []).expect("kernel ran")
                } else {
                    it.run(&mem, &mut []).expect("kernel ran")
                };
                assert_eq!(exit, Exit::Done);
                total.merge(&it.counters);
            }
            (mem.bytes(b), total)
        };

        let (ref_bytes, ref_counters) = run_with(true);
        let (fast_bytes, fast_counters) = run_with(false);
        assert_eq!(ref_bytes, fast_bytes, "outputs must be bit-identical");
        assert_eq!(ref_counters, fast_counters, "counters must not drift");
    }

    #[test]
    fn reset_recycles_across_programs() {
        let p1 = program("__kernel void a(__global int* out){ out[0] = 1; }");
        let p2 = program("__kernel void b(__global int* out){ out[0] = 2; }");
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 4]);
        let k1 = p1.kernel("a").unwrap();
        let k2 = p2.kernel("b").unwrap();
        let mut item = WorkItem::new(&p1, k1.func, &[gptr(out)], ItemGeometry::single());
        assert_eq!(item.run(&mem, &mut []).unwrap(), Exit::Done);
        // Reset onto a different program must rebind the handle.
        item.reset(&p2, k2.func, &[gptr(out)], ItemGeometry::single());
        assert_eq!(item.run(&mem, &mut []).unwrap(), Exit::Done);
        assert_eq!(
            i32::from_le_bytes(mem.bytes(out)[..4].try_into().unwrap()),
            2
        );
        // Counters reflect only the latest run after a reset.
        assert!(item.counters.ops > 0 && item.counters.ops < 10);
    }

    #[test]
    fn run_simple_counts_total_ops() {
        let p = program("__kernel void nop(__global int* out){ }");
        let mut mem = HostMemory::new();
        let out = mem.add_buffer(vec![0u8; 4]);
        let c = run_simple_mem(&p, "nop", &[gptr(out)], 100, &mem);
        assert_eq!(c.ops, 100); // one ReturnVoid per item
        let _ = run_simple(&p, "nop", &[gptr(out)], 0);
    }
}
