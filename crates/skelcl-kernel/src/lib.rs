//! # skelcl-kernel — compiler and VM for SkelCL C
//!
//! SkelCL customizes its algorithmic skeletons with user functions written
//! as plain OpenCL-C source strings, welded into complete kernels at runtime
//! and compiled by the OpenCL driver. This crate is that driver's compiler
//! for the reproduction: a lexer, parser, type checker, constant folder,
//! bytecode generator and work-item virtual machine for **SkelCL C**, a
//! subset of OpenCL C.
//!
//! ## Language subset
//!
//! * scalar types `bool`..`double`, pointers-to-scalar with `__global` /
//!   `__local` address spaces (unqualified pointers act like OpenCL 2.0
//!   generic pointers);
//! * functions, `if`/`for`/`while`/`do-while`, `break`/`continue`/`return`;
//! * full C expression grammar (assignments, ternary, casts, pointer
//!   arithmetic, increments);
//! * `__local` arrays with compile-time sizes, `barrier()`,
//!   work-item queries, and the common math builtins;
//! * **not** supported: structs, vector types (`float4`), pointer-to-pointer,
//!   recursion, private arrays, and `goto` — none of which SkelCL-generated
//!   kernels need.
//!
//! ## Example
//!
//! ```
//! use skelcl_kernel::{compile, vm::{HostMemory, ItemGeometry, WorkItem}};
//! use skelcl_kernel::value::{Ptr, Value};
//! use skelcl_kernel::types::AddressSpace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = compile(
//!     "neg.cl",
//!     "float func(float x) { return -x; }
//!      __kernel void map(__global const float* in, __global float* out) {
//!          int i = (int)get_global_id(0);
//!          out[i] = func(in[i]);
//!      }",
//! )?;
//! let kernel = program.kernel("map").expect("kernel exists");
//!
//! let mut mem = HostMemory::new();
//! let input = mem.add_buffer(4.0f32.to_le_bytes().to_vec());
//! let output = mem.add_buffer(vec![0u8; 4]);
//! let args = [
//!     Value::Ptr(Ptr { space: AddressSpace::Global, buffer: input, byte_offset: 0 }),
//!     Value::Ptr(Ptr { space: AddressSpace::Global, buffer: output, byte_offset: 0 }),
//! ];
//! let mut item = WorkItem::new(&program, kernel.func, &args, ItemGeometry::single());
//! item.run(&mem, &mut [])?;
//! assert_eq!(mem.bytes(output), (-4.0f32).to_le_bytes());
//! # Ok(())
//! # }
//! ```
//!
//! The multi-device execution engine (work-group scheduling, cost model,
//! profiling) lives in the `vgpu` crate; the skeletons and containers live
//! in the `skelcl` crate.

#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod cfg;
pub mod codegen;
mod decode;
pub mod diag;
pub mod fold;
pub mod hir;
pub mod inline;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod mir;
pub mod parser;
pub mod passes;
pub mod pretty;
pub mod program;
pub mod sema;
pub mod source;
pub mod token;
pub mod types;
pub mod value;
pub mod vm;

use std::fmt;

pub use passes::OptConfig;
pub use program::Program;
pub use source::SourceFile;

/// A failed compilation: the diagnostics plus their rendered build log.
#[derive(Debug, Clone)]
pub struct CompileError {
    /// The structured diagnostics.
    pub diagnostics: Vec<diag::Diagnostic>,
    /// The full build log, rendered against the source.
    pub log: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.log)
    }
}

impl std::error::Error for CompileError {}

/// Compiles SkelCL C source into an executable [`Program`].
///
/// `name` is the file name used in diagnostics (kernels are generated
/// in-memory, so this is typically a synthetic name like `"map.cl"`).
///
/// The optimization pipeline is selected by the `SKELCL_KERNEL_OPT`
/// environment variable (see [`OptConfig`]); use [`compile_with_config`]
/// to pick it programmatically. `SKELCL_KERNEL_DUMP=mir|mir-opt` prints
/// the mid-level IR before/after optimization to stderr.
///
/// # Errors
///
/// Returns a [`CompileError`] with a rendered build log when the source has
/// lexical, syntactic or semantic errors.
pub fn compile(name: &str, source: &str) -> Result<Program, CompileError> {
    compile_with_config(name, source, &OptConfig::from_env())
}

/// Compiles with an explicit pipeline configuration instead of reading
/// `SKELCL_KERNEL_OPT`.
///
/// [`OptConfig::legacy`] reproduces the pre-MIR pipeline exactly (HIR
/// constant folding plus the stack code generator); every other
/// configuration lowers through the MIR, runs the enabled passes, and
/// emits bytecode through the register-allocating scheduler in
/// [`lower`]. All configurations produce bit-identical buffer results.
///
/// # Errors
///
/// Returns a [`CompileError`] with a rendered build log when the source has
/// lexical, syntactic or semantic errors.
pub fn compile_with_config(
    name: &str,
    source: &str,
    cfg: &OptConfig,
) -> Result<Program, CompileError> {
    let file = SourceFile::new(name, source);
    let mut diags = diag::Diagnostics::new();
    let tu = parser::parse(&file, &mut diags);
    let unit = if diags.has_errors() {
        None
    } else {
        sema::analyze(&tu, &mut diags)
    };
    match unit {
        Some(mut unit) => {
            inline::inline_unit(&mut unit);
            if !cfg.enabled {
                for f in &mut unit.functions {
                    fold::fold_stmts(&mut f.body);
                }
                return Ok(codegen::generate(&unit, name));
            }
            let dump = std::env::var("SKELCL_KERNEL_DUMP").unwrap_or_default();
            let mut mir = mir::lower_unit(&unit);
            if dump == "mir" {
                eprintln!("{}", pretty::mir_unit_to_string(&mir));
            }
            passes::run(&mut mir, cfg);
            if dump == "mir-opt" {
                eprintln!("{}", pretty::mir_unit_to_string(&mir));
            }
            Ok(lower::emit_unit(&mir, &unit, name))
        }
        None => {
            let log = diags.render(&file);
            Err(CompileError {
                diagnostics: diags.into_vec(),
                log,
            })
        }
    }
}

/// Parses and type-checks `source` without generating code — used by SkelCL
/// to validate user-provided customizing functions early and to inspect
/// their signatures.
///
/// # Errors
///
/// Returns a [`CompileError`] when the source does not type-check.
pub fn check(name: &str, source: &str) -> Result<hir::Unit, CompileError> {
    let file = SourceFile::new(name, source);
    let mut diags = diag::Diagnostics::new();
    let tu = parser::parse(&file, &mut diags);
    let unit = if diags.has_errors() {
        None
    } else {
        sema::analyze(&tu, &mut diags)
    };
    unit.ok_or_else(|| {
        let log = diags.render(&file);
        CompileError {
            diagnostics: diags.into_vec(),
            log,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_reports_errors_with_log() {
        let err = compile("bad.cl", "float f(){ return x; }").unwrap_err();
        assert!(err.log.contains("undeclared identifier"));
        assert!(!err.diagnostics.is_empty());
        assert!(err.to_string().contains("bad.cl"));
    }

    #[test]
    fn check_returns_typed_unit() {
        let unit = check("ok.cl", "float func(float x){ return -x; }").unwrap();
        let (_, f) = unit.function("func").unwrap();
        assert_eq!(f.return_type, types::Type::scalar(types::ScalarType::Float));
    }

    #[test]
    fn compile_folds_constants() {
        let p = compile("fold.cl", "int f(){ return 16 * 16; }").unwrap();
        let code = &p.functions()[0].code;
        assert_eq!(code.len(), 2, "folded to const+return: {:?}", code);
    }
}
