//! Constant propagation and folding over the MIR.
//!
//! Subsumes the legacy HIR-level folder (`crate::fold`) on the optimized
//! pipeline: register results are folded flow-insensitively (registers are
//! single-def), local slots are tracked with a forward dataflow over the
//! CFG (meet = same-constant intersection), and branches on constant
//! conditions are rewritten to jumps. All evaluation goes through
//! [`crate::value`] and [`crate::builtins::eval_pure`] — the exact code the
//! VM executes — so folded results are bit-identical to runtime results.
//! Faulting operations (integer division by zero) are left in place for the
//! VM to trap on.
//!
//! Calls to strictly pure user functions (see [`super::UnitInfo`]) with
//! all-constant arguments are folded too, by interpreting the callee's MIR
//! under a step budget — the loop below a ternary-heavy helper like a
//! stencil coefficient table evaluates away entirely once unrolling makes
//! its arguments constant.

use std::collections::HashMap;

use crate::builtins;
use crate::cfg;
use crate::mir::{BlockId, Inst, MirFunction, Terminator, VReg};
use crate::value::{self, Value};

use super::{values_identical, UnitInfo};

/// Runs the pass to a fixed point.
pub fn run(f: &mut MirFunction, info: &UnitInfo) {
    loop {
        let mut changed = fold_registers(f, info);
        changed |= propagate_locals(f);
        changed |= fold_branches(f);
        if !changed {
            break;
        }
    }
}

/// Folds instructions whose operands are all constants. Returns whether
/// anything changed.
fn fold_registers(f: &mut MirFunction, info: &UnitInfo) -> bool {
    let mut consts: HashMap<VReg, Value> = super::const_defs(f);
    let mut changed = false;
    // Iterate locally: one linear scan may expose operands for the next.
    loop {
        let mut round = false;
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                if matches!(inst, Inst::Const { .. }) {
                    continue;
                }
                let Some(dst) = inst.dst() else { continue };
                if consts.contains_key(&dst) {
                    continue;
                }
                let folded = try_fold(inst, &consts, info);
                if let Some(v) = folded {
                    *inst = Inst::Const { dst, value: v };
                    consts.insert(dst, v);
                    round = true;
                }
            }
        }
        changed |= round;
        if !round {
            break;
        }
    }
    changed
}

/// Attempts to evaluate one instruction over known constants. Returns
/// `None` for effectful, unfoldable or faulting instructions.
fn try_fold(inst: &Inst, consts: &HashMap<VReg, Value>, info: &UnitInfo) -> Option<Value> {
    let c = |v: &VReg| consts.get(v).copied();
    match inst {
        Inst::Un { op, src, .. } => value::unary(*op, c(src)?).ok(),
        Inst::Bin { op, lhs, rhs, .. } => {
            // Division by zero must keep its runtime trap.
            value::binary(*op, c(lhs)?, c(rhs)?).ok()
        }
        Inst::Cmp { op, lhs, rhs, .. } => {
            value::compare(*op, c(lhs)?, c(rhs)?).ok().map(Value::Bool)
        }
        Inst::Convert { to, src, .. } => Some(value::convert(c(src)?, *to)),
        Inst::ToBool { src, .. } => Some(Value::Bool(c(src)?.is_truthy())),
        Inst::CallPure { builtin, args, .. } => {
            let vals: Option<Vec<Value>> = args.iter().map(&c).collect();
            Some(builtins::eval_pure(*builtin, &vals?))
        }
        Inst::Call {
            dst: Some(_),
            func,
            args,
            ..
        } if info.is_pure(*func) => {
            let vals: Option<Vec<Value>> = args.iter().map(c).collect();
            let mut budget = EVAL_BUDGET;
            eval_pure_call(info, *func, &vals?, &mut budget)
        }
        // Loads, geometry queries, pointer math on runtime pointers,
        // impure calls and stores never fold.
        _ => None,
    }
}

/// Instruction budget for evaluating one pure call at compile time,
/// shared across nested calls — bounds loops inside callees so a
/// long-running helper falls back to runtime evaluation instead of
/// stalling the compile.
const EVAL_BUDGET: usize = 4096;

/// Interprets pure function `func` over constant arguments, mirroring the
/// VM's semantics exactly ([`value`] / [`builtins::eval_pure`] are the
/// same code it executes). Returns `None` when the budget runs out, a
/// fault would occur, or an instruction outside the pure subset appears —
/// in every such case the call simply stays for the VM.
fn eval_pure_call(info: &UnitInfo, func: u16, args: &[Value], budget: &mut usize) -> Option<Value> {
    let f = info.pure_body(func)?;
    let mut locals = f.local_init.clone();
    if args.len() > locals.len() {
        return None;
    }
    locals[..args.len()].copy_from_slice(args);
    let mut regs: Vec<Option<Value>> = vec![None; f.vreg_count as usize];
    let mut bb = BlockId(0);
    loop {
        let b = f.blocks.get(bb.idx())?;
        for inst in &b.insts {
            if *budget == 0 {
                return None;
            }
            *budget -= 1;
            let get = |v: &VReg| regs.get(v.0 as usize).copied().flatten();
            let result = match inst {
                Inst::Const { value, .. } => Some(*value),
                Inst::GetLocal { slot, .. } => locals.get(*slot as usize).copied(),
                Inst::SetLocal { slot, src } => {
                    locals[*slot as usize] = get(src)?;
                    None
                }
                Inst::Un { op, src, .. } => Some(value::unary(*op, get(src)?).ok()?),
                Inst::Bin { op, lhs, rhs, .. } => {
                    Some(value::binary(*op, get(lhs)?, get(rhs)?).ok()?)
                }
                Inst::Cmp { op, lhs, rhs, .. } => {
                    Some(Value::Bool(value::compare(*op, get(lhs)?, get(rhs)?).ok()?))
                }
                Inst::Convert { to, src, .. } => Some(value::convert(get(src)?, *to)),
                Inst::ToBool { src, .. } => Some(Value::Bool(get(src)?.is_truthy())),
                Inst::CallPure { builtin, args, .. } => {
                    let vals: Option<Vec<Value>> = args.iter().map(&get).collect();
                    Some(builtins::eval_pure(*builtin, &vals?))
                }
                Inst::Call { func, args, .. } => {
                    let vals: Option<Vec<Value>> = args.iter().map(get).collect();
                    Some(eval_pure_call(info, *func, &vals?, budget)?)
                }
                // Geometry queries, memory access and barriers cannot be
                // evaluated at compile time (purity analysis admits
                // work-item queries, which are only runtime-constant).
                _ => return None,
            };
            if let (Some(d), Some(v)) = (inst.dst(), result) {
                regs[d.0 as usize] = Some(v);
            }
        }
        match &b.term {
            Terminator::Jump(t) => bb = *t,
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = regs.get(cond.0 as usize).copied().flatten()?;
                bb = if c.is_truthy() { *then_bb } else { *else_bb };
            }
            Terminator::Return(Some(v)) => return regs.get(v.0 as usize).copied().flatten(),
            Terminator::Return(None) | Terminator::MissingReturn | Terminator::Trap { .. } => {
                return None
            }
        }
    }
}

/// One lattice point for a local slot.
#[derive(Debug, Clone, Copy)]
enum Lattice {
    /// No path has reached this point yet (identity for the meet).
    Unknown,
    /// The slot holds this exact value on every path.
    Const(Value),
    /// The slot's value differs between paths or is runtime-dependent.
    Varying,
}

/// Point equality for the convergence check. Constants compare bit-exact
/// (`values_identical`), NOT with `Value`'s float semantics — a derived
/// `PartialEq` would make a `Const(NaN)` state never equal itself and the
/// fixpoint below would spin forever.
fn lattice_eq(a: Lattice, b: Lattice) -> bool {
    match (a, b) {
        (Lattice::Unknown, Lattice::Unknown) | (Lattice::Varying, Lattice::Varying) => true,
        (Lattice::Const(x), Lattice::Const(y)) => values_identical(x, y),
        _ => false,
    }
}

fn meet(a: Lattice, b: Lattice) -> Lattice {
    match (a, b) {
        (Lattice::Unknown, x) | (x, Lattice::Unknown) => x,
        (Lattice::Varying, _) | (_, Lattice::Varying) => Lattice::Varying,
        (Lattice::Const(x), Lattice::Const(y)) => {
            if values_identical(x, y) {
                Lattice::Const(x)
            } else {
                Lattice::Varying
            }
        }
    }
}

/// Forward dataflow over local slots: replaces `GetLocal` of a
/// known-constant slot with a `Const`. Returns whether anything changed.
fn propagate_locals(f: &mut MirFunction) -> bool {
    let consts = super::const_defs(f);
    let nslots = f.local_init.len();
    let nblocks = f.blocks.len();
    // Entry state: every slot varying (parameters and `__local` arrays are
    // bound by the caller; other locals could use their init value, but
    // treating them as varying keeps the pass independent of binding
    // rules).
    let mut in_state: Vec<Vec<Lattice>> = vec![vec![Lattice::Unknown; nslots]; nblocks];
    in_state[0] = vec![Lattice::Varying; nslots];

    let transfer = |state: &mut Vec<Lattice>, inst: &Inst| {
        if let Inst::SetLocal { slot, src } = inst {
            state[*slot as usize] = match consts.get(src) {
                Some(v) => Lattice::Const(*v),
                None => Lattice::Varying,
            };
        }
    };

    // Iterate to fixpoint.
    let rpo = cfg::reverse_post_order(f);
    loop {
        let mut changed = false;
        for &bb in &rpo {
            let mut state = in_state[bb.idx()].clone();
            for inst in &f.blocks[bb.idx()].insts {
                transfer(&mut state, inst);
            }
            for succ in f.blocks[bb.idx()].term.successors() {
                let merged: Vec<Lattice> = in_state[succ.idx()]
                    .iter()
                    .zip(&state)
                    .map(|(&a, &b)| meet(a, b))
                    .collect();
                let same = merged
                    .iter()
                    .zip(&in_state[succ.idx()])
                    .all(|(&m, &o)| lattice_eq(m, o));
                if !same {
                    in_state[succ.idx()] = merged;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Rewrite GetLocal of known-constant slots.
    let mut rewrote = false;
    for &bb in &rpo {
        let mut state = in_state[bb.idx()].clone();
        for inst in &mut f.blocks[bb.idx()].insts {
            if let Inst::GetLocal { dst, slot } = *inst {
                if let Lattice::Const(v) = state[slot as usize] {
                    *inst = Inst::Const { dst, value: v };
                    rewrote = true;
                }
            }
            transfer(&mut state, inst);
        }
    }
    rewrote
}

/// Rewrites branches on constant conditions to unconditional jumps.
fn fold_branches(f: &mut MirFunction) -> bool {
    let consts = super::const_defs(f);
    let mut changed = false;
    for b in &mut f.blocks {
        if let Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = b.term
        {
            if let Some(v) = consts.get(&cond) {
                b.term = Terminator::Jump(if v.is_truthy() { then_bb } else { else_bb });
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::lower_unit;

    fn lowered(src: &str) -> MirFunction {
        let f = crate::SourceFile::new("t.cl", src);
        let mut d = crate::diag::Diagnostics::new();
        let tu = crate::parser::parse(&f, &mut d);
        let unit = crate::sema::analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&f)));
        lower_unit(&unit).functions.remove(0)
    }

    fn run(f: &mut MirFunction) {
        super::run(f, &UnitInfo::opaque());
    }

    fn count_insts(f: &MirFunction, pred: impl Fn(&Inst) -> bool) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut f = lowered("int f(){ return 16 * 16 + 1; }");
        run(&mut f);
        assert_eq!(count_insts(&f, |i| matches!(i, Inst::Bin { .. })), 0);
    }

    #[test]
    fn folds_through_local_slots() {
        let mut f = lowered("int f(){ int a = 5; int b = a * 3; return b; }");
        run(&mut f);
        cfg::simplify(&mut f);
        assert_eq!(count_insts(&f, |i| matches!(i, Inst::Bin { .. })), 0);
        // The final return reads a constant.
        let consts = super::super::const_defs(&f);
        let Terminator::Return(Some(v)) = f.blocks.last().unwrap().term else {
            panic!("expected return");
        };
        assert!(values_identical(consts[&v], Value::I32(15)));
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let mut f = lowered("int f(){ return 1 / 0; }");
        run(&mut f);
        assert_eq!(count_insts(&f, |i| matches!(i, Inst::Bin { .. })), 1);
    }

    #[test]
    fn branch_on_constant_becomes_jump() {
        let mut f = lowered("int f(){ if (3 < 4) return 1; return 2; }");
        run(&mut f);
        assert!(!f
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Branch { .. })));
    }

    #[test]
    fn runtime_values_stay() {
        let mut f = lowered("int f(int x){ return x + 1; }");
        run(&mut f);
        assert_eq!(count_insts(&f, |i| matches!(i, Inst::Bin { .. })), 1);
    }

    #[test]
    fn folds_pure_builtins() {
        let mut f = lowered("float f(){ return sqrt(16.0f); }");
        run(&mut f);
        assert_eq!(count_insts(&f, |i| matches!(i, Inst::CallPure { .. })), 0);
    }

    #[test]
    fn pure_call_on_constants_folds() {
        // `coef` has control flow the HIR inliner rejects; compile-time
        // evaluation of the pure call must fold it anyway.
        let src = "int coef(int d){
                int a = d < 0 ? -d : d;
                return a == 0 ? 6 : (a == 1 ? 4 : 1);
            }
            int f(){ return coef(-2) + coef(1); }";
        let f = crate::SourceFile::new("t.cl", src);
        let mut d = crate::diag::Diagnostics::new();
        let tu = crate::parser::parse(&f, &mut d);
        let unit = crate::sema::analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&f)));
        let mut m = lower_unit(&unit);
        let info = UnitInfo::analyze(&m);
        assert!(info.is_pure(0), "coef is strictly pure");
        let callee = m.functions.remove(1);
        let mut callee = callee;
        super::run(&mut callee, &info);
        cfg::simplify(&mut callee);
        assert_eq!(
            count_insts(&callee, |i| matches!(i, Inst::Call { .. })),
            0,
            "both calls folded"
        );
        let consts = super::super::const_defs(&callee);
        let Terminator::Return(Some(v)) = callee.blocks[0].term else {
            panic!("expected straight-line return");
        };
        assert!(values_identical(consts[&v], Value::I32(1 + 4)));
    }

    #[test]
    fn impure_call_is_not_folded() {
        let src = "int g(__global int* p){ return p[0]; }
            int f(__global int* p){ return g(p); }";
        let f = crate::SourceFile::new("t.cl", src);
        let mut d = crate::diag::Diagnostics::new();
        let tu = crate::parser::parse(&f, &mut d);
        let unit = crate::sema::analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&f)));
        let m = lower_unit(&unit);
        let info = UnitInfo::analyze(&m);
        assert!(!info.is_pure(0), "memory loads make g impure");
    }

    #[test]
    fn divergent_paths_meet_to_varying() {
        let mut f = lowered("int f(int x){ int a = 1; if (x > 0) a = 2; return a * 10; }");
        run(&mut f);
        // `a` is 1 or 2 at the join — must not fold.
        assert_eq!(count_insts(&f, |i| matches!(i, Inst::Bin { .. })), 1);
    }
}
