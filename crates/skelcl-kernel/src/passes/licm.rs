//! Loop-invariant code motion.
//!
//! Hoists effect-free, non-faulting instructions whose operands are
//! loop-invariant into a preheader block, innermost loops first. Hoisted
//! instructions may execute even when the loop body would not have run —
//! safe precisely because they are pure and cannot fault (integer division
//! with an unknown divisor and memory loads are never hoisted; loads
//! additionally because another work-item may store between iterations).
//! `GetLocal` is invariant when no `SetLocal` in the loop writes the slot
//! (locals cannot alias memory), and work-item queries are invariant
//! because launch geometry is fixed for a work-item's lifetime.

use std::collections::HashSet;

use crate::cfg::{self, NaturalLoop};
use crate::mir::{BlockId, Inst, MirFunction, VReg};

use super::UnitInfo;

/// Runs the pass over every natural loop of `f`, innermost first.
pub fn run(f: &mut MirFunction, info: &UnitInfo) {
    let mut processed: HashSet<Vec<BlockId>> = HashSet::new();
    loop {
        let loops = cfg::natural_loops(f);
        let Some(l) = loops
            .into_iter()
            .find(|l| l.header != BlockId(0) && !processed.contains(&loop_key(l)))
        else {
            break;
        };
        processed.insert(loop_key(&l));
        hoist_loop(f, &l, info);
    }
}

/// Identity of a loop across recomputations (header + sorted latches).
fn loop_key(l: &NaturalLoop) -> Vec<BlockId> {
    let mut k = vec![l.header];
    let mut latches = l.latches.clone();
    latches.sort();
    k.extend(latches);
    k
}

fn hoist_loop(f: &mut MirFunction, l: &NaturalLoop, info: &UnitInfo) {
    let consts = super::const_defs(f);

    // Slots written anywhere in the loop: their reads are not invariant.
    let mut written_slots: HashSet<u16> = HashSet::new();
    for bb in &l.blocks {
        for inst in &f.blocks[bb.idx()].insts {
            if let Inst::SetLocal { slot, .. } = inst {
                written_slots.insert(*slot);
            }
        }
    }

    // Registers defined inside the loop.
    let mut defined_in_loop: HashSet<VReg> = HashSet::new();
    for bb in &l.blocks {
        for inst in &f.blocks[bb.idx()].insts {
            if let Some(d) = inst.dst() {
                defined_in_loop.insert(d);
            }
        }
    }

    // Grow the invariant set to a fixed point. Order of discovery follows
    // block order, which preserves def-before-use among hoisted
    // instructions.
    let mut invariant: HashSet<VReg> = HashSet::new();
    loop {
        let mut changed = false;
        for bb in &l.blocks {
            for inst in &f.blocks[bb.idx()].insts {
                let Some(dst) = inst.dst() else { continue };
                if invariant.contains(&dst) {
                    continue;
                }
                // A strictly pure call is hoistable like arithmetic: no
                // effects, and purity already excludes anything that can
                // fault, so executing it when the body would not have run
                // is unobservable.
                let pure_call = matches!(inst, Inst::Call { func, .. } if info.is_pure(*func));
                if !pure_call {
                    if inst.has_side_effects() {
                        continue;
                    }
                    if inst.can_fault(|rhs| super::div_is_safe(&consts, rhs)) {
                        continue;
                    }
                }
                if let Inst::GetLocal { slot, .. } = inst {
                    if written_slots.contains(slot) {
                        continue;
                    }
                }
                let mut ok = true;
                inst.for_each_use(|u| {
                    if defined_in_loop.contains(&u) && !invariant.contains(&u) {
                        ok = false;
                    }
                });
                if ok {
                    invariant.insert(dst);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    if invariant.is_empty() {
        return;
    }

    // Move the invariant instructions (in block/program order) into a
    // preheader.
    let pre = cfg::insert_preheader(f, l.header, &l.blocks);
    let mut hoisted: Vec<Inst> = Vec::new();
    for bb in &l.blocks {
        let block = &mut f.blocks[bb.idx()];
        let mut kept = Vec::with_capacity(block.insts.len());
        for inst in block.insts.drain(..) {
            match inst.dst() {
                Some(d) if invariant.contains(&d) => hoisted.push(inst),
                _ => kept.push(inst),
            }
        }
        block.insts = kept;
    }
    f.blocks[pre.idx()].insts = hoisted;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::lower_unit;

    fn lowered(src: &str) -> MirFunction {
        let f = crate::SourceFile::new("t.cl", src);
        let mut d = crate::diag::Diagnostics::new();
        let tu = crate::parser::parse(&f, &mut d);
        let unit = crate::sema::analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&f)));
        let mut mf = lower_unit(&unit).functions.remove(0);
        crate::cfg::simplify(&mut mf);
        mf
    }

    fn run(f: &mut MirFunction) {
        super::run(f, &UnitInfo::opaque());
    }

    /// Instruction count inside loop bodies (blocks that belong to a
    /// natural loop).
    fn loop_insts(f: &MirFunction, pred: impl Fn(&Inst) -> bool) -> usize {
        let loops = cfg::natural_loops(f);
        let mut in_loop = HashSet::new();
        for l in &loops {
            in_loop.extend(l.blocks.iter().copied());
        }
        in_loop
            .iter()
            .flat_map(|bb| f.blocks[bb.idx()].insts.iter())
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn invariant_multiply_is_hoisted() {
        let mut f = lowered(
            "int f(int n, int a, int b){
                int s = 0;
                for (int i = 0; i < n; i++) s = s + a * b;
                return s;
            }",
        );
        assert!(
            loop_insts(&f, |i| matches!(
                i,
                Inst::Bin {
                    op: crate::hir::BinOp::Mul,
                    ..
                }
            )) > 0
        );
        run(&mut f);
        assert_eq!(
            loop_insts(&f, |i| matches!(
                i,
                Inst::Bin {
                    op: crate::hir::BinOp::Mul,
                    ..
                }
            )),
            0
        );
    }

    #[test]
    fn loop_varying_reads_stay() {
        let mut f =
            lowered("int f(int n){ int s = 0; for (int i = 0; i < n; i++) s = s + i; return s; }");
        run(&mut f);
        // The read of `i` inside the loop must stay put.
        assert!(loop_insts(&f, |i| matches!(i, Inst::GetLocal { .. })) > 0);
    }

    #[test]
    fn memory_loads_are_not_hoisted() {
        let mut f = lowered(
            "float f(__global float* p, int n){
                float s = 0.0f;
                for (int i = 0; i < n; i++) s = s + p[0];
                return s;
            }",
        );
        run(&mut f);
        assert!(loop_insts(&f, |i| matches!(i, Inst::LoadMem { .. })) > 0);
    }

    #[test]
    fn pure_call_with_invariant_args_is_hoisted() {
        let src = "int coef(int d){
                int a = d < 0 ? -d : d;
                return a == 0 ? 6 : (a == 1 ? 4 : 1);
            }
            int f(int n, int x){
                int s = 0;
                for (int i = 0; i < n; i++) s = s + coef(x);
                return s;
            }";
        let fsrc = crate::SourceFile::new("t.cl", src);
        let mut d = crate::diag::Diagnostics::new();
        let tu = crate::parser::parse(&fsrc, &mut d);
        let unit =
            crate::sema::analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&fsrc)));
        let m = lower_unit(&unit);
        let info = UnitInfo::analyze(&m);
        assert!(info.is_pure(0), "coef is strictly pure");
        let mut f = m.functions.into_iter().nth(1).unwrap();
        crate::cfg::simplify(&mut f);
        assert!(loop_insts(&f, |i| matches!(i, Inst::Call { .. })) > 0);
        super::run(&mut f, &info);
        assert_eq!(
            loop_insts(&f, |i| matches!(i, Inst::Call { .. })),
            0,
            "the pure call left the loop body"
        );
    }

    #[test]
    fn work_item_queries_are_hoisted() {
        let mut f = lowered(
            "__kernel void k(__global int* out, int n){
                for (int i = 0; i < n; i++) out[i] = (int)get_global_id(0);
            }",
        );
        run(&mut f);
        assert_eq!(loop_insts(&f, |i| matches!(i, Inst::WorkItem { .. })), 0);
    }
}
