//! Dead-code elimination over the MIR.
//!
//! Two cooperating analyses, iterated to a fixed point:
//!
//! * **dead registers** — an effect-free, non-faulting instruction whose
//!   destination is never used is removed (integer division with an
//!   unknown divisor stays: deleting it could hide a runtime trap);
//! * **dead local stores** — a `SetLocal` to a slot that is never read
//!   again on any path is removed (backward liveness over the CFG).
//!
//! A `Call` whose result is unused keeps its side effects but drops its
//! destination, which later saves the result spill during lowering.

use std::collections::HashSet;

use crate::mir::{Inst, MirFunction};

use super::UnitInfo;

/// Runs the pass to a fixed point.
pub fn run(f: &mut MirFunction, info: &UnitInfo) {
    loop {
        let mut changed = remove_dead_registers(f, info);
        changed |= remove_dead_stores(f);
        if !changed {
            break;
        }
    }
}

fn remove_dead_registers(f: &mut MirFunction, info: &UnitInfo) -> bool {
    let consts = super::const_defs(f);
    let mut changed = false;
    loop {
        let mut used = vec![false; f.vreg_count as usize];
        for b in &f.blocks {
            for i in &b.insts {
                i.for_each_use(|u| used[u.0 as usize] = true);
            }
            b.term.for_each_use(|u| used[u.0 as usize] = true);
        }

        let mut round = false;
        for b in &mut f.blocks {
            b.insts.retain(|inst| {
                // A strictly pure call cannot trap or touch memory; with
                // no used result it is dead like any arithmetic.
                if let Inst::Call { dst, func, .. } = inst {
                    if info.is_pure(*func) && dst.is_none_or(|d| !used[d.0 as usize]) {
                        round = true;
                        return false;
                    }
                    return true;
                }
                let Some(dst) = inst.dst() else { return true };
                if used[dst.0 as usize] {
                    return true;
                }
                if inst.has_side_effects() {
                    return true;
                }
                if inst.can_fault(|rhs| super::div_is_safe(&consts, rhs)) {
                    return true;
                }
                round = true;
                false
            });
            // A call whose result is ignored keeps running for its effects
            // but no longer defines a register.
            for inst in &mut b.insts {
                if let Inst::Call { dst, .. } = inst {
                    if dst.is_some_and(|d| !used[d.0 as usize]) {
                        *dst = None;
                        round = true;
                    }
                }
            }
        }
        changed |= round;
        if !round {
            return changed;
        }
    }
}

fn remove_dead_stores(f: &mut MirFunction) -> bool {
    let nblocks = f.blocks.len();
    // live-out slot sets per block, grown to fixpoint.
    let mut live_out: Vec<HashSet<u16>> = vec![HashSet::new(); nblocks];
    let mut live_in: Vec<HashSet<u16>> = vec![HashSet::new(); nblocks];
    loop {
        let mut changed = false;
        for i in (0..nblocks).rev() {
            let mut out: HashSet<u16> = HashSet::new();
            for s in f.blocks[i].term.successors() {
                out.extend(live_in[s.idx()].iter().copied());
            }
            let mut live = out.clone();
            for inst in f.blocks[i].insts.iter().rev() {
                match inst {
                    Inst::GetLocal { slot, .. } => {
                        live.insert(*slot);
                    }
                    Inst::SetLocal { slot, .. } => {
                        live.remove(slot);
                    }
                    _ => {}
                }
            }
            if out != live_out[i] || live != live_in[i] {
                live_out[i] = out;
                live_in[i] = live;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut removed = false;
    for (i, b) in f.blocks.iter_mut().enumerate() {
        // Walk backward, tracking liveness inside the block.
        let mut live = live_out[i].clone();
        let mut keep: Vec<bool> = Vec::with_capacity(b.insts.len());
        for inst in b.insts.iter().rev() {
            match inst {
                Inst::SetLocal { slot, .. } => {
                    if live.contains(slot) {
                        keep.push(true);
                        live.remove(slot);
                    } else {
                        keep.push(false);
                        removed = true;
                    }
                }
                Inst::GetLocal { slot, .. } => {
                    live.insert(*slot);
                    keep.push(true);
                }
                _ => keep.push(true),
            }
        }
        keep.reverse();
        let mut it = keep.into_iter();
        b.insts.retain(|_| it.next().unwrap());
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::lower_unit;

    fn lowered(src: &str) -> MirFunction {
        let f = crate::SourceFile::new("t.cl", src);
        let mut d = crate::diag::Diagnostics::new();
        let tu = crate::parser::parse(&f, &mut d);
        let unit = crate::sema::analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&f)));
        let mut mf = lower_unit(&unit).functions.remove(0);
        crate::cfg::simplify(&mut mf);
        mf
    }

    fn run(f: &mut MirFunction) {
        super::run(f, &UnitInfo::opaque());
    }

    fn count(f: &MirFunction, pred: impl Fn(&Inst) -> bool) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn unused_pure_computation_is_removed() {
        let mut f = lowered("int f(int a){ a * 2; return a; }");
        run(&mut f);
        assert_eq!(count(&f, |i| matches!(i, Inst::Bin { .. })), 0);
    }

    #[test]
    fn unused_variable_store_is_removed() {
        let mut f = lowered("int f(int a){ int t = a * 3; return a; }");
        run(&mut f);
        assert_eq!(count(&f, |i| matches!(i, Inst::SetLocal { .. })), 0);
        assert_eq!(count(&f, |i| matches!(i, Inst::Bin { .. })), 0);
    }

    #[test]
    fn stores_read_in_loops_stay() {
        let mut f =
            lowered("int f(int n){ int s = 0; for (int i = 0; i < n; i++) s = s + 1; return s; }");
        run(&mut f);
        // `s` and `i` stores all survive (read on later iterations).
        assert!(count(&f, |i| matches!(i, Inst::SetLocal { .. })) >= 3);
    }

    #[test]
    fn possible_division_fault_is_kept() {
        let mut f = lowered("int f(int a, int b){ int t = a / b; return a; }");
        run(&mut f);
        assert_eq!(count(&f, |i| matches!(i, Inst::Bin { .. })), 1);
        // But the store of the unused result goes away.
        assert_eq!(count(&f, |i| matches!(i, Inst::SetLocal { .. })), 0);
    }

    #[test]
    fn memory_stores_always_stay() {
        let mut f = lowered("void f(__global int* p){ p[0] = 1; }");
        run(&mut f);
        assert_eq!(count(&f, |i| matches!(i, Inst::StoreMem { .. })), 1);
    }
}
