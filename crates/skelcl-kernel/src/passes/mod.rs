//! The MIR optimization pipeline.
//!
//! Pass order for the full pipeline is `const-prop → cse → licm → unroll →
//! const-prop → cse → dce` with CFG simplification interleaved: unrolling
//! relies on constants exposed by the first propagation round, and the
//! second round evaporates the per-iteration loop tests the unroller leaves
//! behind. Every pass preserves observable behaviour bit-for-bit: constant
//! folding evaluates through [`crate::value`] / [`crate::builtins`] (the
//! same code the VM runs), faulting operations are never folded, hoisted or
//! deleted speculatively, and no pass reassociates floating-point math.
//!
//! The pipeline is driven by the `SKELCL_KERNEL_OPT` environment variable
//! (see [`OptConfig::from_env`]) or programmatically through
//! [`crate::compile_with_config`].

mod const_prop;
mod cse;
mod dce;
mod licm;
mod unroll;

use std::collections::HashMap;

use crate::cfg;
use crate::mir::{BlockId, Inst, MirFunction, MirUnit, Terminator, VReg};
use crate::value::Value;

/// Which compile pipeline and optimization passes to run.
///
/// Parsed from `SKELCL_KERNEL_OPT`:
///
/// * `0` — legacy pipeline (HIR folding + stack codegen), no MIR;
/// * `1`, unset or empty — MIR pipeline with every pass (the default);
/// * a comma list of pass names (`const-prop`, `cse`, `dce`, `licm`,
///   `unroll`) — MIR pipeline with just those passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// `false` selects the legacy HIR → stack-codegen pipeline.
    pub enabled: bool,
    /// Constant propagation and folding (subsumes the legacy HIR folder).
    pub const_prop: bool,
    /// Common-subexpression elimination + local copy propagation.
    pub cse: bool,
    /// Dead-code elimination (unused pure defs, dead local stores).
    pub dce: bool,
    /// Loop-invariant code motion.
    pub licm: bool,
    /// Unrolling of small constant-trip loops.
    pub unroll: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig::all()
    }
}

impl OptConfig {
    /// The full pipeline: every pass enabled.
    pub fn all() -> Self {
        OptConfig {
            enabled: true,
            const_prop: true,
            cse: true,
            dce: true,
            licm: true,
            unroll: true,
        }
    }

    /// The legacy pipeline (`SKELCL_KERNEL_OPT=0`): HIR constant folding
    /// plus the stack code generator, exactly as before the MIR existed.
    pub fn legacy() -> Self {
        OptConfig {
            enabled: false,
            const_prop: false,
            cse: false,
            dce: false,
            licm: false,
            unroll: false,
        }
    }

    /// The MIR pipeline with no passes (lowering + register allocation
    /// only).
    pub fn none() -> Self {
        OptConfig {
            enabled: true,
            const_prop: false,
            cse: false,
            dce: false,
            licm: false,
            unroll: false,
        }
    }

    /// Parses a `SKELCL_KERNEL_OPT` value. Unrecognised pass names are
    /// ignored (so typos degrade to fewer passes, never to a crash).
    pub fn from_str_spec(spec: &str) -> Self {
        let spec = spec.trim();
        match spec {
            "" | "1" => OptConfig::all(),
            "0" => OptConfig::legacy(),
            list => {
                let mut cfg = OptConfig::none();
                for name in list.split(',') {
                    match name.trim() {
                        "const-prop" | "constprop" | "const_prop" => cfg.const_prop = true,
                        "cse" => cfg.cse = true,
                        "dce" => cfg.dce = true,
                        "licm" => cfg.licm = true,
                        "unroll" => cfg.unroll = true,
                        _ => {}
                    }
                }
                cfg
            }
        }
    }

    /// Reads the configuration from `SKELCL_KERNEL_OPT`.
    pub fn from_env() -> Self {
        match std::env::var("SKELCL_KERNEL_OPT") {
            Ok(v) => OptConfig::from_str_spec(&v),
            Err(_) => OptConfig::all(),
        }
    }

    /// The list of enabled pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.const_prop {
            out.push("const-prop");
        }
        if self.cse {
            out.push("cse");
        }
        if self.dce {
            out.push("dce");
        }
        if self.licm {
            out.push("licm");
        }
        if self.unroll {
            out.push("unroll");
        }
        out
    }
}

/// Runs the configured passes over every function of `unit`.
pub fn run(unit: &mut MirUnit, cfg: &OptConfig) {
    if !cfg.enabled {
        return;
    }
    let info = UnitInfo::analyze(unit);
    for f in &mut unit.functions {
        run_function(f, cfg, &info);
    }
}

fn run_function(f: &mut MirFunction, cfg: &OptConfig, info: &UnitInfo) {
    cfg::simplify(f);
    if cfg.const_prop {
        const_prop::run(f, info);
        cfg::simplify(f);
    }
    if cfg.cse {
        cse::run(f, info);
    }
    if cfg.licm {
        licm::run(f, info);
        cfg::simplify(f);
    }
    if cfg.unroll {
        unroll::run(f);
        cfg::simplify(f);
        // Clean up the per-iteration copies the unroller leaves behind.
        if cfg.const_prop {
            const_prop::run(f, info);
            cfg::simplify(f);
        }
        if cfg.cse {
            cse::run(f, info);
        }
    }
    if cfg.dce {
        dce::run(f, info);
        cfg::simplify(f);
    }
}

/// Unit-wide context shared by the passes: which user functions are
/// strictly pure, plus a pre-pass snapshot of every body so constant
/// propagation can evaluate pure calls on constant arguments.
pub(crate) struct UnitInfo {
    /// `pure[f]` — every instruction reachable in `f`'s body is free of
    /// memory access, barriers and possible faults, and calls only other
    /// pure functions. A call to such a function behaves like an
    /// arithmetic instruction: deterministic within a work-item, no
    /// effects, no traps — so it may be folded, merged, hoisted or
    /// deleted like one.
    pure: Vec<bool>,
    /// Function bodies as lowered, before any pass mutates them (callee
    /// results are identical either way; the snapshot sidesteps borrowing
    /// the unit while one of its functions is being rewritten).
    snapshot: Vec<MirFunction>,
}

impl UnitInfo {
    /// Analyzes `unit` before any pass runs.
    pub(crate) fn analyze(unit: &MirUnit) -> Self {
        let n = unit.functions.len();
        let mut pure = vec![false; n];
        // Sema rejects recursion, so call chains are acyclic and this
        // fixpoint converges in at most `n` rounds.
        loop {
            let mut changed = false;
            for (i, f) in unit.functions.iter().enumerate() {
                if !pure[i] && !f.is_kernel && function_is_pure(f, &pure) {
                    pure[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        UnitInfo {
            pure,
            snapshot: unit.functions.clone(),
        }
    }

    /// A context with no known functions (every call treated as opaque).
    #[cfg(test)]
    pub(crate) fn opaque() -> Self {
        UnitInfo {
            pure: Vec::new(),
            snapshot: Vec::new(),
        }
    }

    /// Whether calls to function `func` are strictly pure.
    pub(crate) fn is_pure(&self, func: u16) -> bool {
        self.pure.get(func as usize).copied().unwrap_or(false)
    }

    /// The pre-pass body of pure function `func`.
    pub(crate) fn pure_body(&self, func: u16) -> Option<&MirFunction> {
        if self.is_pure(func) {
            self.snapshot.get(func as usize)
        } else {
            None
        }
    }
}

/// Whether every reachable instruction of `f` is effect-free and
/// non-faulting, with `pure` giving the verdict for already-classified
/// callees. `SetLocal` is allowed (the callee's frame is private to the
/// call), work-item queries are allowed (launch geometry is fixed for a
/// work-item's lifetime); reachable `MissingReturn`/`Trap` terminators,
/// memory access, barriers and possibly-faulting arithmetic are not.
fn function_is_pure(f: &MirFunction, pure: &[bool]) -> bool {
    let consts = const_defs(f);
    let mut seen = vec![false; f.blocks.len()];
    let mut stack = vec![BlockId(0)];
    seen[0] = true;
    while let Some(bb) = stack.pop() {
        let b = &f.blocks[bb.idx()];
        for inst in &b.insts {
            let ok = match inst {
                Inst::SetLocal { .. } => true,
                Inst::Call { func, .. } => pure.get(*func as usize).copied().unwrap_or(false),
                Inst::Barrier { .. } | Inst::StoreMem { .. } => false,
                _ => !inst.can_fault(|rhs| div_is_safe(&consts, rhs)),
            };
            if !ok {
                return false;
            }
        }
        match &b.term {
            Terminator::MissingReturn | Terminator::Trap { .. } => return false,
            t => {
                for s in t.successors() {
                    if !seen[s.idx()] {
                        seen[s.idx()] = true;
                        stack.push(s);
                    }
                }
            }
        }
    }
    true
}

// ----- shared pass helpers --------------------------------------------------

/// Bit-exact value identity: unlike `PartialEq`, distinguishes `-0.0` from
/// `0.0` and compares NaNs by representation, so replacing one value by an
/// "identical" one can never change observable results.
pub(crate) fn values_identical(a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::F32(x), Value::F32(y)) => x.to_bits() == y.to_bits(),
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        (Value::F32(_) | Value::F64(_), _) | (_, Value::F32(_) | Value::F64(_)) => false,
        (x, y) => x == y,
    }
}

/// Map from every register defined by a `Const` instruction to its value.
/// Registers are single-def, so the map is flow-insensitive.
pub(crate) fn const_defs(f: &MirFunction) -> HashMap<VReg, Value> {
    let mut map = HashMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            if let Inst::Const { dst, value } = i {
                map.insert(*dst, *value);
            }
        }
    }
    map
}

/// Whether dividing by `rhs` can fault, given the known constant defs: a
/// non-zero integer constant or any float constant cannot.
pub(crate) fn div_is_safe(consts: &HashMap<VReg, Value>, rhs: VReg) -> bool {
    match consts.get(&rhs) {
        Some(Value::F32(_) | Value::F64(_)) => true,
        Some(v) => v.as_i64() != 0 && !matches!(v, Value::Ptr(_)),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_spec_parsing() {
        assert_eq!(OptConfig::from_str_spec("1"), OptConfig::all());
        assert_eq!(OptConfig::from_str_spec(""), OptConfig::all());
        assert_eq!(OptConfig::from_str_spec("0"), OptConfig::legacy());
        let c = OptConfig::from_str_spec("const-prop,dce");
        assert!(c.enabled && c.const_prop && c.dce);
        assert!(!c.cse && !c.licm && !c.unroll);
        // Unknown names are ignored.
        let c = OptConfig::from_str_spec("licm,bogus");
        assert!(c.licm && !c.cse);
    }

    #[test]
    fn value_identity_is_bit_exact() {
        assert!(values_identical(Value::F32(1.5), Value::F32(1.5)));
        assert!(!values_identical(Value::F32(0.0), Value::F32(-0.0)));
        assert!(values_identical(Value::F64(f64::NAN), Value::F64(f64::NAN)));
        assert!(values_identical(Value::I32(3), Value::I32(3)));
        assert!(!values_identical(Value::I32(3), Value::I64(3)));
    }
}
