//! Per-block common-subexpression elimination and local copy propagation.
//!
//! Classic local value numbering over the pure instructions: two
//! instructions in one block computing the same operation over the same
//! operands share one register. Local slots get copy propagation on top:
//! after `SetLocal s, v` a following `GetLocal s` in the same block is an
//! alias of `v` (SkelCL C has no address-of and no private arrays, so local
//! slots cannot alias memory — only another `SetLocal` invalidates them).
//! Memory loads are never value-numbered: a store or barrier in between may
//! change the loaded value.

use std::collections::HashMap;

use crate::builtins::Builtin;
use crate::hir::{BinOp, CmpOp, UnOp};
use crate::mir::{Inst, MirFunction, VReg};
use crate::types::ScalarType;
use crate::value::Value;

use super::UnitInfo;

/// Hashable identity of a value (bit-exact for floats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ValueKey {
    Int(u8, i64),
    F32(u32),
    F64(u64),
    Bool(bool),
    Ptr(u8, u32, i64),
}

fn value_key(v: Value) -> ValueKey {
    match v {
        Value::Bool(b) => ValueKey::Bool(b),
        Value::F32(x) => ValueKey::F32(x.to_bits()),
        Value::F64(x) => ValueKey::F64(x.to_bits()),
        Value::Ptr(p) => ValueKey::Ptr(p.space as u8, p.buffer, p.byte_offset),
        other => ValueKey::Int(
            other.scalar_type().map(|t| t as u8).unwrap_or(u8::MAX),
            other.as_i64(),
        ),
    }
}

/// Value number of one pure computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(ValueKey),
    Un(UnOp, VReg),
    Bin(BinOp, VReg, VReg),
    Cmp(CmpOp, VReg, VReg),
    Convert(ScalarType, VReg),
    ToBool(VReg),
    CallPure(Builtin, Vec<VReg>),
    /// Call of a strictly pure user function (see [`UnitInfo`]).
    Call(u16, Vec<VReg>),
    WorkItem(Builtin, Option<VReg>),
    PtrOffset(u32, VReg, VReg),
    PtrDiff(u32, VReg, VReg),
}

/// Runs the pass over every block of `f`.
pub fn run(f: &mut MirFunction, info: &UnitInfo) {
    // dst -> surviving equivalent register, applied transitively.
    let mut replace: HashMap<VReg, VReg> = HashMap::new();
    let resolve = |replace: &HashMap<VReg, VReg>, mut v: VReg| {
        while let Some(&r) = replace.get(&v) {
            v = r;
        }
        v
    };

    for b in &mut f.blocks {
        let mut table: HashMap<Key, VReg> = HashMap::new();
        let mut cur_local: HashMap<u16, VReg> = HashMap::new();
        let mut kept: Vec<Inst> = Vec::with_capacity(b.insts.len());

        for mut inst in b.insts.drain(..) {
            inst.for_each_use_mut(|u| *u = resolve(&replace, *u));

            match &inst {
                Inst::GetLocal { dst, slot } => {
                    if let Some(&v) = cur_local.get(slot) {
                        replace.insert(*dst, v);
                        continue; // drop the redundant read
                    }
                    cur_local.insert(*slot, *dst);
                    kept.push(inst);
                    continue;
                }
                Inst::SetLocal { slot, src } => {
                    if cur_local.get(slot) == Some(src) {
                        continue; // re-storing the value the slot holds
                    }
                    cur_local.insert(*slot, *src);
                    kept.push(inst);
                    continue;
                }
                _ => {}
            }

            let key = match &inst {
                Inst::Const { value, .. } => Some(Key::Const(value_key(*value))),
                Inst::Un { op, src, .. } => Some(Key::Un(*op, *src)),
                Inst::Bin { op, lhs, rhs, .. } => Some(Key::Bin(*op, *lhs, *rhs)),
                Inst::Cmp { op, lhs, rhs, .. } => Some(Key::Cmp(*op, *lhs, *rhs)),
                Inst::Convert { to, src, .. } => Some(Key::Convert(*to, *src)),
                Inst::ToBool { src, .. } => Some(Key::ToBool(*src)),
                Inst::CallPure { builtin, args, .. } => Some(Key::CallPure(*builtin, args.clone())),
                Inst::Call {
                    dst: Some(_),
                    func,
                    args,
                    ..
                } if info.is_pure(*func) => Some(Key::Call(*func, args.clone())),
                Inst::WorkItem { builtin, dim, .. } => Some(Key::WorkItem(*builtin, *dim)),
                Inst::PtrOffset {
                    size, ptr, count, ..
                } => Some(Key::PtrOffset(*size, *ptr, *count)),
                Inst::PtrDiff { size, lhs, rhs, .. } => Some(Key::PtrDiff(*size, *lhs, *rhs)),
                // Loads, stores, impure calls and barriers are not
                // value-numbered.
                _ => None,
            };

            match (key, inst.dst()) {
                (Some(k), Some(dst)) => match table.get(&k) {
                    Some(&prev) => {
                        replace.insert(dst, prev);
                        // drop the duplicate computation
                    }
                    None => {
                        table.insert(k, dst);
                        kept.push(inst);
                    }
                },
                _ => kept.push(inst),
            }
        }
        b.insts = kept;
    }

    // Rewrite any remaining uses (later blocks reference registers whose
    // defs were dropped above; the surviving def is earlier in the same
    // block, so it dominates every rewritten use).
    if !replace.is_empty() {
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                inst.for_each_use_mut(|u| *u = resolve(&replace, *u));
            }
            b.term.for_each_use_mut(|u| *u = resolve(&replace, *u));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::lower_unit;

    fn lowered(src: &str) -> MirFunction {
        let f = crate::SourceFile::new("t.cl", src);
        let mut d = crate::diag::Diagnostics::new();
        let tu = crate::parser::parse(&f, &mut d);
        let unit = crate::sema::analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&f)));
        let mut mf = lower_unit(&unit).functions.remove(0);
        crate::cfg::simplify(&mut mf);
        mf
    }

    fn run(f: &mut MirFunction) {
        super::run(f, &UnitInfo::opaque());
    }

    fn count(f: &MirFunction, pred: impl Fn(&Inst) -> bool) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn duplicate_binary_ops_share_a_register() {
        let mut f = lowered("int f(int a, int b){ return (a + b) * (a + b); }");
        let before = count(&f, |i| matches!(i, Inst::Bin { op: BinOp::Add, .. }));
        assert_eq!(before, 2);
        run(&mut f);
        assert_eq!(
            count(&f, |i| matches!(i, Inst::Bin { op: BinOp::Add, .. })),
            1
        );
    }

    #[test]
    fn repeated_local_reads_collapse() {
        let mut f = lowered("int f(int a){ return a + a; }");
        run(&mut f);
        assert_eq!(count(&f, |i| matches!(i, Inst::GetLocal { .. })), 1);
    }

    #[test]
    fn store_then_load_copy_propagates() {
        let mut f = lowered("int f(int a){ int t = a * 2; return t + 1; }");
        run(&mut f);
        // The GetLocal of `t` right after its SetLocal is gone.
        assert_eq!(count(&f, |i| matches!(i, Inst::GetLocal { .. })), 1);
    }

    #[test]
    fn loads_are_not_merged() {
        let mut f = lowered("float f(__global float* p){ return p[0] + p[0]; }");
        run(&mut f);
        // Two loads stay (a store from another work-item could intervene),
        // but the address computation is shared.
        assert_eq!(count(&f, |i| matches!(i, Inst::LoadMem { .. })), 2);
        assert_eq!(count(&f, |i| matches!(i, Inst::PtrOffset { .. })), 1);
    }

    #[test]
    fn duplicate_pure_calls_merge() {
        let src = "int coef(int d){
                int a = d < 0 ? -d : d;
                return a == 0 ? 6 : (a == 1 ? 4 : 1);
            }
            int f(int x){ return coef(x) * coef(x); }";
        let fsrc = crate::SourceFile::new("t.cl", src);
        let mut d = crate::diag::Diagnostics::new();
        let tu = crate::parser::parse(&fsrc, &mut d);
        let unit =
            crate::sema::analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&fsrc)));
        let mut m = lower_unit(&unit);
        let info = UnitInfo::analyze(&m);
        let mut f = m.functions.remove(1);
        crate::cfg::simplify(&mut f);
        assert_eq!(count(&f, |i| matches!(i, Inst::Call { .. })), 2);
        super::run(&mut f, &info);
        assert_eq!(
            count(&f, |i| matches!(i, Inst::Call { .. })),
            1,
            "identical pure calls share one register"
        );
    }

    #[test]
    fn duplicate_constants_merge() {
        let mut f = lowered("int f(int a){ return (a + 7) * (a + 7); }");
        run(&mut f);
        assert_eq!(count(&f, |i| matches!(i, Inst::Const { .. })), 1);
    }
}
