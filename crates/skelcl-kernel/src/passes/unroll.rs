//! Unrolling of small constant-trip loops.
//!
//! Recognizes counted loops of the canonical shape the lowering produces:
//! a header testing one induction slot against a constant, a single latch
//! carrying the only in-loop update of that slot (`i = i ± const`), and a
//! constant initial value in the block entering the loop. The trip count is
//! obtained by *simulating* the test and the update through
//! [`crate::value::compare`] / [`crate::value::binary`] — the exact
//! arithmetic the VM would run, wrapping and all — so the count is exact,
//! never inferred algebraically. Loops with barriers are never unrolled
//! (each barrier site must keep its unique id); loops above
//! [`MAX_TRIP`] iterations or [`MAX_GROWTH`] cloned instructions are left
//! alone (mandelbrot's 120-trip escape loop deliberately stays rolled).
//!
//! The loop blocks are cloned once per iteration with fresh registers,
//! each clone's back edge chained to the next clone's header and the last
//! clone's back edge routed straight to the loop exit (the simulated trip
//! count proves the final test false). Early exits (`break`, `return`)
//! inside the body are cloned as-is and still leave the loop. The cloned
//! per-iteration header tests are constant-foldable; the pipeline re-runs
//! constant propagation after unrolling to evaporate them.

use std::collections::{HashMap, HashSet};

use crate::cfg;
use crate::hir::BinOp;
use crate::mir::{BlockId, Inst, MirFunction, Terminator, VReg};
use crate::value::{self, Value};

/// Maximum trip count considered for unrolling.
const MAX_TRIP: u64 = 16;
/// Maximum `trip × loop-instruction-count` growth budget.
const MAX_GROWTH: usize = 512;

/// Runs the pass: repeatedly recomputes natural loops (innermost first)
/// and unrolls each eligible one until none are left.
pub fn run(f: &mut MirFunction) {
    let mut processed: HashSet<Vec<BlockId>> = HashSet::new();
    loop {
        let loops = cfg::natural_loops(f);
        let Some(l) = loops
            .into_iter()
            .find(|l| l.header != BlockId(0) && !processed.contains(&loop_key(l)))
        else {
            break;
        };
        processed.insert(loop_key(&l));
        try_unroll(f, &l);
        // Whether or not it unrolled, move on; unrolling leaves the
        // original blocks unreachable, so the processed set never grows
        // past the function's loop count.
    }
}

fn loop_key(l: &cfg::NaturalLoop) -> Vec<BlockId> {
    let mut k = vec![l.header];
    let mut latches = l.latches.clone();
    latches.sort();
    k.extend(latches);
    k
}

/// The recognized counted-loop shape.
struct Counted {
    /// Initial value at loop entry.
    init: Value,
    /// The header comparison, with the constant on the recorded side.
    cmp: crate::hir::CmpOp,
    cmp_const: Value,
    /// Whether the induction variable is the *left* comparison operand.
    var_on_left: bool,
    /// Induction step: `i = i <op> step`.
    step_op: BinOp,
    step: Value,
    /// The single block entering the loop from outside.
    entry_pred: BlockId,
    /// Header successor outside the loop.
    exit: BlockId,
}

fn try_unroll(f: &mut MirFunction, l: &cfg::NaturalLoop) {
    let Some(shape) = recognize(f, l) else { return };
    let Some(trip) = simulate_trip(&shape) else {
        return;
    };
    if trip == 0 {
        return;
    }
    let loop_size: usize = l
        .blocks
        .iter()
        .map(|bb| f.blocks[bb.idx()].insts.len() + 1)
        .sum();
    if trip as usize * loop_size > MAX_GROWTH {
        return;
    }
    clone_iterations(f, l, &shape, trip as usize);
}

/// Matches the loop against the counted shape, or returns `None`.
fn recognize(f: &MirFunction, l: &cfg::NaturalLoop) -> Option<Counted> {
    if l.latches.len() != 1 {
        return None;
    }
    let latch = l.latches[0];
    let in_loop: HashSet<BlockId> = l.blocks.iter().copied().collect();
    let consts = super::const_defs(f);

    // No barriers anywhere in the loop: every barrier site carries a
    // unique id and cloning would duplicate it.
    for bb in &l.blocks {
        if f.blocks[bb.idx()]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Barrier { .. }))
        {
            return None;
        }
    }

    // Header: exactly one GetLocal (the induction read), any constants,
    // exactly one Cmp over (induction, const), branch on the Cmp.
    let header = &f.blocks[l.header.idx()];
    let mut ind_read: Option<(VReg, u16)> = None;
    let mut cmp: Option<(crate::hir::CmpOp, VReg, VReg, VReg)> = None; // (op, lhs, rhs, dst)
    for inst in &header.insts {
        match inst {
            Inst::GetLocal { dst, slot } => {
                if ind_read.is_some() {
                    return None;
                }
                ind_read = Some((*dst, *slot));
            }
            Inst::Const { .. } => {}
            Inst::Cmp { dst, op, lhs, rhs } => {
                if cmp.is_some() {
                    return None;
                }
                cmp = Some((*op, *lhs, *rhs, *dst));
            }
            _ => return None,
        }
    }
    let (ind_vreg, slot) = ind_read?;
    let (cmp_op, cmp_lhs, cmp_rhs, cmp_dst) = cmp?;
    let Terminator::Branch {
        cond,
        then_bb,
        else_bb,
    } = header.term
    else {
        return None;
    };
    if cond != cmp_dst {
        return None;
    }
    let exit = match (in_loop.contains(&then_bb), in_loop.contains(&else_bb)) {
        (true, false) => else_bb,
        (false, true) => then_bb,
        _ => return None,
    };
    let (var_on_left, cmp_const) = if cmp_lhs == ind_vreg {
        (true, *consts.get(&cmp_rhs)?)
    } else if cmp_rhs == ind_vreg {
        (false, *consts.get(&cmp_lhs)?)
    } else {
        return None;
    };

    // Exactly one in-loop SetLocal of the induction slot, in the latch,
    // storing `GetLocal(slot) <Add|Sub> const`.
    let mut updates = Vec::new();
    for bb in &l.blocks {
        for inst in &f.blocks[bb.idx()].insts {
            if let Inst::SetLocal { slot: s, src } = inst {
                if *s == slot {
                    updates.push((*bb, *src));
                }
            }
        }
    }
    let [(update_bb, update_src)] = updates[..] else {
        return None;
    };
    if update_bb != latch {
        return None;
    }
    // Find the Bin feeding the update and the GetLocal feeding the Bin.
    let mut step_found: Option<(BinOp, Value)> = None;
    'outer: for bb in &l.blocks {
        for inst in &f.blocks[bb.idx()].insts {
            if let Inst::Bin { dst, op, lhs, rhs } = inst {
                if *dst != update_src {
                    continue;
                }
                if !matches!(op, BinOp::Add | BinOp::Sub) {
                    return None;
                }
                let step = *consts.get(rhs)?;
                // `lhs` must be a read of the induction slot inside the
                // loop.
                let lhs_is_read = l.blocks.iter().any(|b2| {
                    f.blocks[b2.idx()]
                        .insts
                        .iter()
                        .any(|i| matches!(i, Inst::GetLocal { dst: d, slot: s } if d == lhs && *s == slot))
                });
                if !lhs_is_read {
                    return None;
                }
                step_found = Some((*op, step));
                break 'outer;
            }
        }
    }
    let (step_op, step) = step_found?;

    // Exactly one predecessor of the header from outside the loop, whose
    // last write of the slot is a known constant.
    let preds = cfg::predecessors(f);
    let outside: Vec<BlockId> = preds[l.header.idx()]
        .iter()
        .copied()
        .filter(|p| !in_loop.contains(p))
        .collect();
    let [entry_pred] = outside[..] else {
        return None;
    };
    let mut init: Option<Value> = None;
    for inst in &f.blocks[entry_pred.idx()].insts {
        if let Inst::SetLocal { slot: s, src } = inst {
            if *s == slot {
                init = consts.get(src).copied();
                init?;
            }
        }
    }
    let init = init?;

    Some(Counted {
        init,
        cmp: cmp_op,
        cmp_const,
        var_on_left,
        step_op,
        step,
        entry_pred,
        exit,
    })
}

/// Runs the loop test and induction update symbolically, returning the
/// exact trip count, or `None` when it exceeds [`MAX_TRIP`] or the
/// arithmetic faults.
fn simulate_trip(c: &Counted) -> Option<u64> {
    let mut v = c.init;
    let mut trip = 0u64;
    loop {
        let taken = if c.var_on_left {
            value::compare(c.cmp, v, c.cmp_const).ok()?
        } else {
            value::compare(c.cmp, c.cmp_const, v).ok()?
        };
        if !taken {
            return Some(trip);
        }
        trip += 1;
        if trip > MAX_TRIP {
            return None;
        }
        v = value::binary(c.step_op, v, c.step).ok()?;
    }
}

/// Clones the loop `trip` times, chains the copies, and redirects the
/// entry edge into the first copy. The original loop blocks become
/// unreachable; `cfg::simplify` removes them afterwards.
fn clone_iterations(f: &mut MirFunction, l: &cfg::NaturalLoop, c: &Counted, trip: usize) {
    let header = l.header;
    let mut first_header: Option<BlockId> = None;
    // Previous copy's (latch, header): its back edge still points at its
    // own header and must be re-aimed at the next copy (or the exit).
    let mut prev: Option<(BlockId, BlockId)> = None;

    for _ in 0..trip {
        // Pre-assign fresh block ids and fresh registers for every in-loop
        // def, so uses can be remapped regardless of block order.
        let base = f.blocks.len() as u32;
        let mut bmap: HashMap<BlockId, BlockId> = HashMap::new();
        for (i, &bb) in l.blocks.iter().enumerate() {
            bmap.insert(bb, BlockId(base + i as u32));
        }
        let mut defs: Vec<VReg> = Vec::new();
        for &bb in &l.blocks {
            for inst in &f.blocks[bb.idx()].insts {
                if let Some(d) = inst.dst() {
                    defs.push(d);
                }
            }
        }
        let mut vmap: HashMap<VReg, VReg> = HashMap::new();
        for d in defs {
            let fresh = f.new_vreg();
            vmap.insert(d, fresh);
        }

        for &bb in &l.blocks {
            let mut block = f.blocks[bb.idx()].clone();
            for inst in &mut block.insts {
                if let Some(d) = inst.dst() {
                    if let Some(&nd) = vmap.get(&d) {
                        inst.set_dst(nd);
                    }
                }
                inst.for_each_use_mut(|u| {
                    if let Some(&nu) = vmap.get(u) {
                        *u = nu;
                    }
                });
            }
            block.term.for_each_use_mut(|u| {
                if let Some(&nu) = vmap.get(u) {
                    *u = nu;
                }
            });
            block.term.for_each_succ_mut(|s| {
                if let Some(&ns) = bmap.get(s) {
                    *s = ns;
                }
            });
            f.blocks.push(block);
        }

        let this_header = bmap[&header];
        if let Some((latch, own_header)) = prev {
            redirect(f, latch, own_header, this_header);
        }
        if first_header.is_none() {
            first_header = Some(this_header);
        }
        prev = Some((bmap[&l.latches[0]], this_header));
    }

    // Final copy's back edge exits the loop: the simulated trip count
    // proves the next header test false.
    let (last_latch, last_header) = prev.unwrap();
    redirect(f, last_latch, last_header, c.exit);

    // Enter the first copy instead of the original loop.
    let first = first_header.unwrap();
    redirect(f, c.entry_pred, header, first);
}

/// Rewrites every `from` successor of `block` to `to`.
fn redirect(f: &mut MirFunction, block: BlockId, from: BlockId, to: BlockId) {
    f.blocks[block.idx()].term.for_each_succ_mut(|s| {
        if *s == from {
            *s = to;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::lower_unit;
    use crate::passes::OptConfig;

    fn optimized(src: &str, cfg_: &OptConfig) -> MirFunction {
        let f = crate::SourceFile::new("t.cl", src);
        let mut d = crate::diag::Diagnostics::new();
        let tu = crate::parser::parse(&f, &mut d);
        let unit = crate::sema::analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&f)));
        let mut mu = lower_unit(&unit);
        crate::passes::run(&mut mu, cfg_);
        mu.functions.remove(0)
    }

    fn has_loop(f: &MirFunction) -> bool {
        !cfg::natural_loops(f).is_empty()
    }

    #[test]
    fn small_constant_loop_fully_unrolls() {
        let f = optimized(
            "int f(int a){ int s = 0; for (int i = 0; i < 4; i++) s = s + a; return s; }",
            &OptConfig::all(),
        );
        assert!(!has_loop(&f), "4-trip loop should be unrolled:\n{f:?}");
    }

    #[test]
    fn runtime_bound_loop_stays() {
        let f = optimized(
            "int f(int n){ int s = 0; for (int i = 0; i < n; i++) s = s + 1; return s; }",
            &OptConfig::all(),
        );
        assert!(has_loop(&f));
    }

    #[test]
    fn large_trip_count_stays() {
        let f = optimized(
            "int f(int a){ int s = 0; for (int i = 0; i < 120; i++) s = s + a; return s; }",
            &OptConfig::all(),
        );
        assert!(has_loop(&f), "120-trip loop must stay rolled");
    }

    #[test]
    fn barrier_loops_stay() {
        let f = crate::SourceFile::new(
            "t.cl",
            "__kernel void k(__local int* t){
                for (int i = 0; i < 2; i++) barrier(CLK_LOCAL_MEM_FENCE);
            }",
        );
        let mut d = crate::diag::Diagnostics::new();
        let tu = crate::parser::parse(&f, &mut d);
        let unit = crate::sema::analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&f)));
        let mut mu = lower_unit(&unit);
        crate::passes::run(&mut mu, &OptConfig::all());
        assert!(has_loop(&mu.functions[0]));
    }

    #[test]
    fn down_counting_loop_unrolls() {
        let f = optimized(
            "int f(int a){ int s = 0; for (int i = 8; i > 0; i = i - 2) s = s + a; return s; }",
            &OptConfig::all(),
        );
        assert!(!has_loop(&f));
    }
}
