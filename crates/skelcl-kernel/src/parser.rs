//! Recursive-descent parser for SkelCL C with operator-precedence expression
//! parsing and statement-level error recovery.

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::lexer::lex;
use crate::source::SourceFile;
use crate::token::{Token, TokenKind};
use crate::types::{AddressSpace, ScalarType, Type};

/// Parses `file` into a [`TranslationUnit`].
///
/// Parse errors are recorded in `diags`; the returned tree contains every
/// function that parsed successfully, so later phases can still analyse a
/// partially broken unit.
pub fn parse(file: &SourceFile, diags: &mut Diagnostics) -> TranslationUnit {
    let tokens = lex(file, diags);
    let mut p = Parser {
        file,
        tokens,
        pos: 0,
        diags,
    };
    p.translation_unit()
}

/// Parses a single expression (used by tests and by SkelCL's user-function
/// validation). Returns `None` if the input is not a complete expression.
pub fn parse_expr(file: &SourceFile, diags: &mut Diagnostics) -> Option<Expr> {
    let tokens = lex(file, diags);
    let mut p = Parser {
        file,
        tokens,
        pos: 0,
        diags,
    };
    let e = p.expr().ok()?;
    if p.peek().kind != TokenKind::Eof {
        p.error_here("expected end of expression");
        return None;
    }
    if p.diags.has_errors() {
        None
    } else {
        Some(e)
    }
}

type PResult<T> = Result<T, ()>;

struct Parser<'a> {
    file: &'a SourceFile,
    tokens: Vec<Token>,
    pos: usize,
    diags: &'a mut Diagnostics,
}

impl<'a> Parser<'a> {
    // ----- token plumbing ----------------------------------------------------

    fn peek(&self) -> Token {
        self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> TokenKind {
        self.peek().kind
    }

    fn peek_ahead(&self, n: usize) -> TokenKind {
        self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: TokenKind) -> Option<Token> {
        if self.at(kind) {
            Some(self.bump())
        } else {
            None
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<Token> {
        if let Some(t) = self.eat(kind) {
            Ok(t)
        } else {
            let found = self.peek();
            self.diags.error(
                found.span,
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    found.kind.describe()
                ),
            );
            Err(())
        }
    }

    fn error_here(&mut self, msg: impl Into<String>) {
        let span = self.peek().span;
        self.diags.error(span, msg);
    }

    fn text(&self, t: Token) -> &'a str {
        self.file.snippet(t.span)
    }

    // ----- top level ---------------------------------------------------------

    fn translation_unit(&mut self) -> TranslationUnit {
        let mut functions = Vec::new();
        while !self.at(TokenKind::Eof) {
            match self.function() {
                Ok(f) => functions.push(f),
                Err(()) => self.recover_to_function_start(),
            }
        }
        TranslationUnit { functions }
    }

    /// Skips tokens until something that plausibly starts a new function.
    fn recover_to_function_start(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek_kind() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    self.bump();
                    if depth <= 1 {
                        return;
                    }
                    depth -= 1;
                }
                TokenKind::KwKernel => return,
                k if depth == 0 && k.starts_type() => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn function(&mut self) -> PResult<Function> {
        let start = self.peek().span;
        let is_kernel = self.eat(TokenKind::KwKernel).is_some();
        let return_type = self.type_spec(true)?;
        let name_tok = self.expect(TokenKind::Ident)?;
        let name = self.text(name_tok).to_string();
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                params.push(self.param()?);
                if self.eat(TokenKind::Comma).is_none() {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        let span = start.to(body.span);
        Ok(Function {
            is_kernel,
            return_type,
            name,
            name_span: name_tok.span,
            params,
            body,
            span,
        })
    }

    fn param(&mut self) -> PResult<Param> {
        let start = self.peek().span;
        let ty = self.type_spec(false)?;
        let name_tok = self.expect(TokenKind::Ident)?;
        Ok(Param {
            ty,
            name: self.text(name_tok).to_string(),
            span: start.to(name_tok.span),
        })
    }

    // ----- types -------------------------------------------------------------

    /// Parses a type specifier: qualifiers, base scalar type, optional `*`.
    /// `allow_void` permits a bare `void` (function returns).
    fn type_spec(&mut self, allow_void: bool) -> PResult<Type> {
        let (is_const, space, scalar, is_void) = self.base_type()?;
        if is_void {
            if self.eat(TokenKind::Star).is_some() {
                self.error_here("pointers to void are not supported in SkelCL C");
                return Err(());
            }
            if !allow_void {
                self.error_here("`void` is only valid as a return type");
                return Err(());
            }
            return Ok(Type::Void);
        }
        if self.eat(TokenKind::Star).is_some() {
            // Trailing `const` after `*` (pointer itself const) is accepted
            // and ignored: SkelCL C pointers cannot be reseated anyway.
            let _ = self.eat(TokenKind::KwConst);
            let space = if space == AddressSpace::Private {
                AddressSpace::Private
            } else {
                space
            };
            Ok(Type::Pointer {
                pointee: scalar,
                space,
                is_const,
            })
        } else {
            if space != AddressSpace::Private {
                // e.g. `__global int x` as a value: invalid.
                self.error_here(format!(
                    "address-space qualifier `{space}` requires a pointer or array type"
                ));
            }
            Ok(Type::Scalar(scalar))
        }
    }

    /// Parses qualifiers and a base scalar type. Returns
    /// `(is_const, address_space, scalar, is_void)`.
    fn base_type(&mut self) -> PResult<(bool, AddressSpace, ScalarType, bool)> {
        let mut is_const = false;
        let mut space = AddressSpace::Private;
        loop {
            match self.peek_kind() {
                TokenKind::KwConst => {
                    self.bump();
                    is_const = true;
                }
                TokenKind::KwGlobal => {
                    self.bump();
                    space = AddressSpace::Global;
                }
                TokenKind::KwLocal => {
                    self.bump();
                    space = AddressSpace::Local;
                }
                TokenKind::KwPrivate => {
                    self.bump();
                    space = AddressSpace::Private;
                }
                _ => break,
            }
        }
        use ScalarType::*;
        let tok = self.peek();
        let scalar = match tok.kind {
            TokenKind::KwVoid => {
                self.bump();
                return Ok((is_const, space, Int, true));
            }
            TokenKind::KwBool => Bool,
            TokenKind::KwChar => Char,
            TokenKind::KwUchar => UChar,
            TokenKind::KwShort => Short,
            TokenKind::KwUshort => UShort,
            TokenKind::KwInt => Int,
            TokenKind::KwUint => UInt,
            TokenKind::KwLong => Long,
            TokenKind::KwUlong => ULong,
            TokenKind::KwFloat => Float,
            TokenKind::KwDouble => Double,
            TokenKind::KwUnsigned | TokenKind::KwSigned => {
                let signed = tok.kind == TokenKind::KwSigned;
                self.bump();
                let base = match self.peek_kind() {
                    TokenKind::KwChar => {
                        self.bump();
                        if signed {
                            Char
                        } else {
                            UChar
                        }
                    }
                    TokenKind::KwShort => {
                        self.bump();
                        if signed {
                            Short
                        } else {
                            UShort
                        }
                    }
                    TokenKind::KwInt => {
                        self.bump();
                        if signed {
                            Int
                        } else {
                            UInt
                        }
                    }
                    TokenKind::KwLong => {
                        self.bump();
                        if signed {
                            Long
                        } else {
                            ULong
                        }
                    }
                    // Bare `unsigned`.
                    _ => {
                        if signed {
                            Int
                        } else {
                            UInt
                        }
                    }
                };
                // `const` may also follow the base type (e.g. `uchar const`).
                if self.at(TokenKind::KwConst) {
                    self.bump();
                }
                return Ok((is_const, space, base, false));
            }
            other => {
                self.diags.error(
                    tok.span,
                    format!("expected a type, found {}", other.describe()),
                );
                return Err(());
            }
        };
        self.bump();
        if self.at(TokenKind::KwConst) {
            self.bump();
            is_const = true;
        }
        Ok((is_const, space, scalar, false))
    }

    // ----- statements ----------------------------------------------------

    fn block(&mut self) -> PResult<Block> {
        let open = self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        loop {
            match self.peek_kind() {
                TokenKind::RBrace => break,
                TokenKind::Eof => {
                    self.error_here("expected `}` before end of input");
                    return Err(());
                }
                _ => match self.stmt() {
                    Ok(s) => stmts.push(s),
                    Err(()) => self.recover_in_block(),
                },
            }
        }
        let close = self.expect(TokenKind::RBrace)?;
        Ok(Block {
            stmts,
            span: open.span.to(close.span),
        })
    }

    /// After a statement parse error, skips to the next `;` (consumed) or to
    /// a `}`/EOF (left in place).
    fn recover_in_block(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek_kind() {
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::RBrace if depth == 0 => return,
                TokenKind::RBrace => {
                    depth -= 1;
                    self.bump();
                }
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        match self.peek_kind() {
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            TokenKind::Semi => {
                let t = self.bump();
                Ok(Stmt::Empty(t.span))
            }
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwWhile => self.while_stmt(),
            TokenKind::KwDo => self.do_while_stmt(),
            TokenKind::KwReturn => {
                let kw = self.bump();
                let value = if self.at(TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                let semi = self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return {
                    value,
                    span: kw.span.to(semi.span),
                })
            }
            TokenKind::KwBreak => {
                let kw = self.bump();
                let semi = self.expect(TokenKind::Semi)?;
                Ok(Stmt::Break(kw.span.to(semi.span)))
            }
            TokenKind::KwContinue => {
                let kw = self.bump();
                let semi = self.expect(TokenKind::Semi)?;
                Ok(Stmt::Continue(kw.span.to(semi.span)))
            }
            k if k.starts_type() => {
                let d = self.var_decl()?;
                Ok(Stmt::Decl(d))
            }
            _ => {
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        let kw = self.bump();
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_branch = Box::new(self.stmt()?);
        let (else_branch, end) = if self.eat(TokenKind::KwElse).is_some() {
            let e = self.stmt()?;
            let sp = e.span();
            (Some(Box::new(e)), sp)
        } else {
            (None, then_branch.span())
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
            span: kw.span.to(end),
        })
    }

    fn for_stmt(&mut self) -> PResult<Stmt> {
        let kw = self.bump();
        self.expect(TokenKind::LParen)?;
        let init = if self.at(TokenKind::Semi) {
            self.bump();
            None
        } else if self.peek_kind().starts_type() {
            Some(Box::new(Stmt::Decl(self.var_decl()?)))
        } else {
            let e = self.expr()?;
            self.expect(TokenKind::Semi)?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.at(TokenKind::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let step = if self.at(TokenKind::RParen) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::RParen)?;
        let body = Box::new(self.stmt()?);
        let span = kw.span.to(body.span());
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            span,
        })
    }

    fn while_stmt(&mut self) -> PResult<Stmt> {
        let kw = self.bump();
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let body = Box::new(self.stmt()?);
        let span = kw.span.to(body.span());
        Ok(Stmt::While { cond, body, span })
    }

    fn do_while_stmt(&mut self) -> PResult<Stmt> {
        let kw = self.bump();
        let body = Box::new(self.stmt()?);
        self.expect(TokenKind::KwWhile)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let semi = self.expect(TokenKind::Semi)?;
        Ok(Stmt::DoWhile {
            body,
            cond,
            span: kw.span.to(semi.span),
        })
    }

    /// Parses a declaration statement including the trailing `;`.
    ///
    /// Note: in SkelCL C the pointer-ness of a declaration applies to every
    /// declarator in the statement (`float* p, q;` declares two pointers),
    /// unlike C where `*` binds per declarator.
    fn var_decl(&mut self) -> PResult<VarDecl> {
        let start = self.peek().span;
        let (is_const, space, scalar, is_void) = self.base_type()?;
        if is_void {
            self.error_here("cannot declare a variable of type `void`");
            return Err(());
        }
        let is_pointer = self.eat(TokenKind::Star).is_some();
        if is_pointer {
            let _ = self.eat(TokenKind::KwConst);
        }
        let mut declarators = Vec::new();
        loop {
            let name_tok = self.expect(TokenKind::Ident)?;
            let name = self.text(name_tok).to_string();
            let mut d_span = name_tok.span;
            let array_size = if self.eat(TokenKind::LBracket).is_some() {
                let size = self.expr()?;
                let close = self.expect(TokenKind::RBracket)?;
                d_span = d_span.to(close.span);
                Some(size)
            } else {
                None
            };
            let init = if self.eat(TokenKind::Eq).is_some() {
                let e = self.assignment_expr()?;
                d_span = d_span.to(e.span());
                Some(e)
            } else {
                None
            };
            declarators.push(Declarator {
                name,
                array_size,
                init,
                span: d_span,
            });
            if self.eat(TokenKind::Comma).is_none() {
                break;
            }
        }
        let semi = self.expect(TokenKind::Semi)?;
        Ok(VarDecl {
            space,
            is_const,
            scalar,
            is_pointer,
            declarators,
            span: start.to(semi.span),
        })
    }

    // ----- expressions ------------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.assignment_expr()
    }

    fn assignment_expr(&mut self) -> PResult<Expr> {
        let lhs = self.ternary_expr()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => None,
            TokenKind::PlusEq => Some(BinaryOp::Add),
            TokenKind::MinusEq => Some(BinaryOp::Sub),
            TokenKind::StarEq => Some(BinaryOp::Mul),
            TokenKind::SlashEq => Some(BinaryOp::Div),
            TokenKind::PercentEq => Some(BinaryOp::Rem),
            TokenKind::AmpEq => Some(BinaryOp::BitAnd),
            TokenKind::PipeEq => Some(BinaryOp::BitOr),
            TokenKind::CaretEq => Some(BinaryOp::BitXor),
            TokenKind::ShlEq => Some(BinaryOp::Shl),
            TokenKind::ShrEq => Some(BinaryOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment_expr()?;
        let span = lhs.span().to(rhs.span());
        Ok(Expr::Assign {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn ternary_expr(&mut self) -> PResult<Expr> {
        let cond = self.binary_expr(0)?;
        if self.eat(TokenKind::Question).is_none() {
            return Ok(cond);
        }
        let then_expr = self.expr()?;
        self.expect(TokenKind::Colon)?;
        let else_expr = self.assignment_expr()?;
        let span = cond.span().to(else_expr.span());
        Ok(Expr::Ternary {
            cond: Box::new(cond),
            then_expr: Box::new(then_expr),
            else_expr: Box::new(else_expr),
            span,
        })
    }

    /// Precedence-climbing binary expression parser.
    fn binary_expr(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let Some((op, prec)) = binary_op_of(self.peek_kind()) else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        let t = self.peek();
        let op = match t.kind {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Plus => Some(UnaryOp::Plus),
            TokenKind::Bang => Some(UnaryOp::Not),
            TokenKind::Tilde => Some(UnaryOp::BitNot),
            TokenKind::Star => Some(UnaryOp::Deref),
            TokenKind::Amp => Some(UnaryOp::AddrOf),
            TokenKind::PlusPlus => Some(UnaryOp::PreInc),
            TokenKind::MinusMinus => Some(UnaryOp::PreDec),
            TokenKind::LParen if self.peek_ahead(1).starts_type() => {
                // A cast: `(type) unary-expr`.
                self.bump();
                let ty = self.type_spec(false)?;
                let close = self.expect(TokenKind::RParen)?;
                let expr = self.unary_expr()?;
                let span = t.span.to(close.span).to(expr.span());
                return Ok(Expr::Cast {
                    ty,
                    expr: Box::new(expr),
                    span,
                });
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.unary_expr()?;
            let span = t.span.to(expr.span());
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
                span,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek_kind() {
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    let close = self.expect(TokenKind::RBracket)?;
                    let span = e.span().to(close.span);
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                        span,
                    };
                }
                TokenKind::LParen => {
                    let Expr::Ident {
                        name,
                        span: callee_span,
                    } = &e
                    else {
                        self.error_here("only named functions can be called");
                        return Err(());
                    };
                    let callee = name.clone();
                    let callee_span = *callee_span;
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(TokenKind::RParen) {
                        loop {
                            args.push(self.assignment_expr()?);
                            if self.eat(TokenKind::Comma).is_none() {
                                break;
                            }
                        }
                    }
                    let close = self.expect(TokenKind::RParen)?;
                    let span = callee_span.to(close.span);
                    e = Expr::Call {
                        callee,
                        callee_span,
                        args,
                        span,
                    };
                }
                TokenKind::PlusPlus => {
                    let t = self.bump();
                    let span = e.span().to(t.span);
                    e = Expr::Unary {
                        op: UnaryOp::PostInc,
                        expr: Box::new(e),
                        span,
                    };
                }
                TokenKind::MinusMinus => {
                    let t = self.bump();
                    let span = e.span().to(t.span);
                    e = Expr::Unary {
                        op: UnaryOp::PostDec,
                        expr: Box::new(e),
                        span,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let t = self.peek();
        match t.kind {
            TokenKind::IntLit => {
                self.bump();
                self.int_lit(t)
            }
            TokenKind::FloatLit => {
                self.bump();
                self.float_lit(t)
            }
            TokenKind::CharLit => {
                self.bump();
                self.char_lit(t)
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr::BoolLit {
                    value: true,
                    span: t.span,
                })
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr::BoolLit {
                    value: false,
                    span: t.span,
                })
            }
            TokenKind::Ident => {
                self.bump();
                Ok(Expr::Ident {
                    name: self.text(t).to_string(),
                    span: t.span,
                })
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => {
                self.diags.error(
                    t.span,
                    format!("expected an expression, found {}", other.describe()),
                );
                Err(())
            }
        }
    }

    fn int_lit(&mut self, t: Token) -> PResult<Expr> {
        let text = self.text(t);
        let lower = text.to_ascii_lowercase();
        let body = lower.trim_end_matches(['u', 'l']);
        let suffix = &lower[body.len()..];
        let unsigned = suffix.contains('u');
        let long = suffix.contains('l');
        let parsed = if let Some(hex) = body.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            body.parse::<u64>()
        };
        match parsed {
            Ok(value) => Ok(Expr::IntLit {
                value,
                unsigned,
                long,
                span: t.span,
            }),
            Err(_) => {
                self.diags
                    .error(t.span, format!("integer literal `{text}` is out of range"));
                Err(())
            }
        }
    }

    fn float_lit(&mut self, t: Token) -> PResult<Expr> {
        let text = self.text(t);
        let single = text.ends_with(['f', 'F']);
        let body = text.trim_end_matches(['f', 'F']);
        match body.parse::<f64>() {
            Ok(value) => Ok(Expr::FloatLit {
                value,
                single,
                span: t.span,
            }),
            Err(_) => {
                self.diags
                    .error(t.span, format!("invalid floating-point literal `{text}`"));
                Err(())
            }
        }
    }

    fn char_lit(&mut self, t: Token) -> PResult<Expr> {
        let text = self.text(t);
        let inner = &text[1..text.len().saturating_sub(1)];
        let value = match inner.as_bytes() {
            [b'\\', esc] => match esc {
                b'n' => b'\n' as i8,
                b't' => b'\t' as i8,
                b'r' => b'\r' as i8,
                b'0' => 0,
                b'\\' => b'\\' as i8,
                b'\'' => b'\'' as i8,
                other => {
                    self.diags.error(
                        t.span,
                        format!("unknown escape sequence `\\{}`", *other as char),
                    );
                    return Err(());
                }
            },
            [c] => *c as i8,
            _ => {
                self.diags.error(t.span, "invalid character literal");
                return Err(());
            }
        };
        Ok(Expr::CharLit {
            value,
            span: t.span,
        })
    }
}

/// Maps a token to its binary operator and precedence (higher binds tighter).
fn binary_op_of(kind: TokenKind) -> Option<(BinaryOp, u8)> {
    use BinaryOp::*;
    use TokenKind as K;
    Some(match kind {
        K::PipePipe => (LogicalOr, 1),
        K::AmpAmp => (LogicalAnd, 2),
        K::Pipe => (BitOr, 3),
        K::Caret => (BitXor, 4),
        K::Amp => (BitAnd, 5),
        K::EqEq => (Eq, 6),
        K::BangEq => (Ne, 6),
        K::Lt => (Lt, 7),
        K::Le => (Le, 7),
        K::Gt => (Gt, 7),
        K::Ge => (Ge, 7),
        K::Shl => (Shl, 8),
        K::Shr => (Shr, 8),
        K::Plus => (Add, 9),
        K::Minus => (Sub, 9),
        K::Star => (Mul, 10),
        K::Slash => (Div, 10),
        K::Percent => (Rem, 10),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> TranslationUnit {
        let f = SourceFile::new("t.cl", src);
        let mut d = Diagnostics::new();
        let tu = parse(&f, &mut d);
        assert!(!d.has_errors(), "parse errors:\n{}", d.render(&f));
        tu
    }

    fn parse_err(src: &str) -> String {
        let f = SourceFile::new("t.cl", src);
        let mut d = Diagnostics::new();
        let _ = parse(&f, &mut d);
        assert!(d.has_errors(), "expected parse errors for: {src}");
        d.render(&f)
    }

    #[test]
    fn parses_paper_map_function() {
        let tu = parse_ok("float func(float x){ return -x; }");
        assert_eq!(tu.functions.len(), 1);
        let f = &tu.functions[0];
        assert_eq!(f.name, "func");
        assert!(!f.is_kernel);
        assert_eq!(f.return_type, Type::scalar(ScalarType::Float));
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].ty, Type::scalar(ScalarType::Float));
    }

    #[test]
    fn parses_kernel_with_global_pointers() {
        let tu = parse_ok(
            "__kernel void sum_up(__global float* m_in, __global float* m_out, int width) { }",
        );
        let f = &tu.functions[0];
        assert!(f.is_kernel);
        assert_eq!(f.return_type, Type::Void);
        assert_eq!(f.params[0].ty, Type::global_ptr(ScalarType::Float));
        assert_eq!(f.params[2].ty, Type::scalar(ScalarType::Int));
    }

    #[test]
    fn parses_const_pointer_param() {
        let tu = parse_ok("char func(const char* img) { return img[0]; }");
        let f = &tu.functions[0];
        assert_eq!(
            f.params[0].ty,
            Type::Pointer {
                pointee: ScalarType::Char,
                space: AddressSpace::Private,
                is_const: true
            }
        );
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let tu = parse_ok("int f(int a, int b, int c){ return a + b * c; }");
        let body = &tu.functions[0].body.stmts[0];
        let Stmt::Return {
            value: Some(Expr::Binary { op, rhs, .. }),
            ..
        } = body
        else {
            panic!("expected return of binary expr, got {body:?}");
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            **rhs,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn shift_and_relational_precedence() {
        let tu = parse_ok("bool f(int a){ return a << 1 < a + 2; }");
        let Stmt::Return {
            value: Some(Expr::Binary { op, .. }),
            ..
        } = &tu.functions[0].body.stmts[0]
        else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Lt);
    }

    #[test]
    fn assignment_is_right_associative() {
        let tu = parse_ok("void f(int a, int b){ a = b = 1; }");
        let Stmt::Expr(Expr::Assign { op: None, rhs, .. }) = &tu.functions[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(**rhs, Expr::Assign { .. }));
    }

    #[test]
    fn compound_assignment_ops() {
        let tu = parse_ok("void f(int a){ a += 1; a <<= 2; a %= 3; }");
        let ops: Vec<_> = tu.functions[0]
            .body
            .stmts
            .iter()
            .map(|s| match s {
                Stmt::Expr(Expr::Assign { op, .. }) => *op,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                Some(BinaryOp::Add),
                Some(BinaryOp::Shl),
                Some(BinaryOp::Rem)
            ]
        );
    }

    #[test]
    fn cast_vs_parenthesized_expression() {
        let tu = parse_ok("float f(int x){ return (float)x + (x); }");
        let Stmt::Return {
            value: Some(Expr::Binary { lhs, .. }),
            ..
        } = &tu.functions[0].body.stmts[0]
        else {
            panic!()
        };
        assert!(matches!(
            **lhs,
            Expr::Cast {
                ty: Type::Scalar(ScalarType::Float),
                ..
            }
        ));
    }

    #[test]
    fn for_loop_with_decl_init() {
        let tu =
            parse_ok("int f(int n){ int s = 0; for (int i = 0; i < n; ++i) s += i; return s; }");
        let Stmt::For {
            init, cond, step, ..
        } = &tu.functions[0].body.stmts[1]
        else {
            panic!()
        };
        assert!(matches!(**init.as_ref().unwrap(), Stmt::Decl(_)));
        assert!(cond.is_some());
        assert!(step.is_some());
    }

    #[test]
    fn nested_loops_from_paper_listing() {
        // Listing 1.2 shape: nested for loops and a call to get().
        let tu = parse_ok(
            "float func(float* m_in){
                float sum = 0.0f;
                for (int i = -1; i <= 1; ++i)
                    for (int j = -1; j <= 1; ++j)
                        sum += get(m_in, i, j);
                return sum;
            }",
        );
        let Stmt::For { body, .. } = &tu.functions[0].body.stmts[1] else {
            panic!()
        };
        assert!(matches!(**body, Stmt::For { .. }));
    }

    #[test]
    fn local_array_declaration() {
        let tu = parse_ok("__kernel void k(){ __local float tile[256]; tile[0] = 1.0f; }");
        let Stmt::Decl(d) = &tu.functions[0].body.stmts[0] else {
            panic!()
        };
        assert_eq!(d.space, AddressSpace::Local);
        assert_eq!(d.scalar, ScalarType::Float);
        assert!(d.declarators[0].array_size.is_some());
    }

    #[test]
    fn multiple_declarators() {
        let tu = parse_ok("void f(){ int i = 0, j, k = 2; }");
        let Stmt::Decl(d) = &tu.functions[0].body.stmts[0] else {
            panic!()
        };
        assert_eq!(d.declarators.len(), 3);
        assert!(d.declarators[0].init.is_some());
        assert!(d.declarators[1].init.is_none());
    }

    #[test]
    fn ternary_and_call() {
        let tu = parse_ok("float f(float a, float b){ return a < b ? fmin(a, b) : b; }");
        let Stmt::Return {
            value: Some(Expr::Ternary { then_expr, .. }),
            ..
        } = &tu.functions[0].body.stmts[0]
        else {
            panic!()
        };
        assert!(matches!(**then_expr, Expr::Call { ref callee, .. } if callee == "fmin"));
    }

    #[test]
    fn do_while_and_unary_ops() {
        parse_ok("void f(int n){ int i = 0; do { i++; } while (i < n); }");
        parse_ok("int f(int x){ return ~-!x; }");
        parse_ok("int f(int* p){ return *p + p[1]; }");
    }

    #[test]
    fn postfix_increment_parsed() {
        let tu = parse_ok("void f(int i){ i++; --i; }");
        assert!(matches!(
            tu.functions[0].body.stmts[0],
            Stmt::Expr(Expr::Unary {
                op: UnaryOp::PostInc,
                ..
            })
        ));
        assert!(matches!(
            tu.functions[0].body.stmts[1],
            Stmt::Expr(Expr::Unary {
                op: UnaryOp::PreDec,
                ..
            })
        ));
    }

    #[test]
    fn unsigned_base_types() {
        let tu = parse_ok("unsigned int f(unsigned char c, unsigned x){ return c + x; }");
        assert_eq!(tu.functions[0].return_type, Type::scalar(ScalarType::UInt));
        assert_eq!(
            tu.functions[0].params[0].ty,
            Type::scalar(ScalarType::UChar)
        );
        assert_eq!(tu.functions[0].params[1].ty, Type::scalar(ScalarType::UInt));
    }

    #[test]
    fn dangling_else_binds_to_nearest_if() {
        let tu = parse_ok("void f(int a){ if (a) if (a > 1) a = 2; else a = 3; }");
        let Stmt::If {
            then_branch,
            else_branch: outer_else,
            ..
        } = &tu.functions[0].body.stmts[0]
        else {
            panic!()
        };
        assert!(outer_else.is_none());
        assert!(matches!(
            **then_branch,
            Stmt::If {
                else_branch: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn error_missing_semicolon() {
        let log = parse_err("void f(){ int x = 1 int y = 2; }");
        assert!(log.contains("expected"), "log: {log}");
    }

    #[test]
    fn error_recovery_keeps_later_functions() {
        let f = SourceFile::new(
            "t.cl",
            "void bad(){ int = ; }\nint good(int x){ return x; }",
        );
        let mut d = Diagnostics::new();
        let tu = parse(&f, &mut d);
        assert!(d.has_errors());
        assert!(tu.function("good").is_some());
    }

    #[test]
    fn error_address_space_on_value() {
        let log = parse_err("void f(__global int x){ }");
        assert!(log.contains("requires a pointer"), "log: {log}");
    }

    #[test]
    fn error_void_variable() {
        let log = parse_err("void f(){ void x; }");
        assert!(log.contains("void"), "log: {log}");
    }

    #[test]
    fn hex_and_suffixed_literals() {
        let tu = parse_ok("void f(){ int a = 0xFF; unsigned b = 7u; long c = 9L; }");
        let Stmt::Decl(d) = &tu.functions[0].body.stmts[0] else {
            panic!()
        };
        let Some(Expr::IntLit { value, .. }) = &d.declarators[0].init else {
            panic!()
        };
        assert_eq!(*value, 255);
    }

    #[test]
    fn char_literal_escapes() {
        let tu = parse_ok(r"void f(){ char a = 'x'; char b = '\n'; char c = '\0'; }");
        let inits: Vec<i8> = tu.functions[0]
            .body
            .stmts
            .iter()
            .map(|s| match s {
                Stmt::Decl(d) => match d.declarators[0].init {
                    Some(Expr::CharLit { value, .. }) => value,
                    _ => panic!(),
                },
                _ => panic!(),
            })
            .collect();
        assert_eq!(inits, vec![b'x' as i8, b'\n' as i8, 0]);
    }

    #[test]
    fn parse_expr_entry_point() {
        let f = SourceFile::new("e.cl", "1 + 2 * 3");
        let mut d = Diagnostics::new();
        let e = parse_expr(&f, &mut d).unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::Add,
                ..
            }
        ));

        let f = SourceFile::new("e.cl", "1 +");
        let mut d = Diagnostics::new();
        assert!(parse_expr(&f, &mut d).is_none());
    }
}
