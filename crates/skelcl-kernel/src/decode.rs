//! Superinstruction pre-decode for the optimised dispatch loop.
//!
//! The interpreter's hot cost is not the arithmetic, it is the traffic
//! around it: `LoadLocal x; LoadLocal y; Bin Mul; StoreLocal z` costs four
//! dispatches and five operand-stack moves for one multiply. This module
//! rewrites each function's bytecode once, at [`Program`] construction,
//! into a parallel stream of [`Decoded`] instructions in which such
//! sequences run as a single dispatch reading operands straight from the
//! locals (or constants) and writing the result straight back.
//!
//! Fusion must not change what the reference interpreter observes:
//!
//! * **`CostCounters` parity** — a fused instruction covering `k` source
//!   ops charges exactly `k` to `ops` (and errors on the instruction
//!   budget iff the reference would have run out somewhere inside the
//!   block), so both engines report identical counters on success;
//! * **`pc` identity** — the decoded stream has one slot per source op
//!   and every fused instruction lives at its first op's index, advancing
//!   `pc` by `k`. Jump targets therefore need no remapping, and a
//!   sequence is only fused when its interior ops are not jump targets;
//!   the interior slots keep their own (possibly themselves fused)
//!   decoding so a jump into them executes the original semantics;
//! * **fault parity** — operand reads and error checks happen in the
//!   order the source sequence performs them (lhs before rhs, conversion
//!   before the pointer check), so a faulting kernel faults identically.
//!
//! [`Program`]: crate::program::Program

use crate::hir::{BinOp, CmpOp};
use crate::ir::Op;
use crate::types::ScalarType;
use crate::value::Value;

/// Where a fused binary/compare reads an operand from.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Operand {
    /// Pop from the operand stack (the unfused position).
    Stack,
    /// Read a local slot (a fused `LoadLocal`).
    Local(u16),
    /// An immediate (a fused `Const`).
    Const(Value),
}

/// Where a fused instruction writes its result.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Dst {
    /// Push onto the operand stack (the unfused position).
    Stack,
    /// Write a local slot (a fused trailing `StoreLocal`).
    Local(u16),
}

/// What a fused compare does with its boolean (a fused trailing
/// conditional jump).
#[derive(Debug, Clone, Copy)]
pub(crate) enum CmpUse {
    /// Push the boolean.
    Push,
    /// `JumpIfFalse(target)`.
    BranchIfFalse(u32),
    /// `JumpIfTrue(target)`.
    BranchIfTrue(u32),
    /// `Jump(t)` where the op at `t` is itself a conditional jump — the
    /// short-circuit `&&`/`||` idiom. The boolean is produced, jumped
    /// with, and consumed in one step; both successors are resolved at
    /// decode time. `k` includes the remote conditional (the reference
    /// executes it on every path through the `Jump`).
    BranchBoth {
        /// `pc` when the boolean is true.
        if_true: u32,
        /// `pc` when the boolean is false.
        if_false: u32,
    },
}

/// A fused linear arithmetic chain: `acc = l op r`, then for every link
/// `acc = acc op_i r_i`, then the tail consumes `acc`. Covers expression
/// trees the compiler emits left-to-right, e.g.
/// `y = 2.0f * x * y + y0` (eight source ops, one dispatch). Link operands
/// are always fused loads (local/const), never stack pops, so the only
/// stack traffic left is what the unfused prefix produced.
#[derive(Debug, Clone)]
pub(crate) struct Chain {
    /// First left operand (popped second when unfused).
    pub l: Operand,
    /// First right operand (popped first when unfused).
    pub r: Operand,
    /// First operation.
    pub op: BinOp,
    /// Optional second producer `(l2, r2, op2, comb)`: the accumulator
    /// becomes `comb(acc, op2(l2, r2))`. Covers two-branch expression
    /// trees like `x*x + y*y` (the compiler emits both producers before
    /// the combining op). Both of its operands are fused loads, so the
    /// intermediate results never touch the stack.
    pub tree: Option<(Operand, Operand, BinOp, BinOp)>,
    /// Follow-on operations applied to the accumulator.
    pub links: Vec<(BinOp, Operand)>,
    /// What consumes the accumulator.
    pub tail: ChainTail,
    /// Source ops covered.
    pub k: u8,
}

/// How a [`Chain`] disposes of its accumulator.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ChainTail {
    /// Push it (no trailing op fused).
    Push,
    /// Fused trailing `StoreLocal`.
    Store(u16),
    /// Fused `[load] Cmp [JumpIf*]`: compare the accumulator (lhs) with
    /// `r`, then use the boolean.
    Cmp {
        /// The comparison.
        op: CmpOp,
        /// Right operand of the comparison.
        r: Operand,
        /// What to do with the boolean.
        along: CmpUse,
    },
}

/// One pre-decoded instruction: either a single source op, or a fused
/// sequence of `k` source ops.
#[derive(Debug, Clone)]
pub(crate) enum Decoded {
    /// An unfused source op, executed exactly as the reference does.
    Plain(Op),
    /// `[lhs load] [rhs load] Bin [StoreLocal]` fused arithmetic.
    Bin {
        /// Left operand (popped second when unfused).
        l: Operand,
        /// Right operand (popped first when unfused).
        r: Operand,
        /// The operation.
        op: BinOp,
        /// Result destination.
        dst: Dst,
        /// Source ops covered.
        k: u8,
    },
    /// `[lhs load] [rhs load] Cmp [JumpIf*]` fused comparison.
    Cmp {
        /// Left operand.
        l: Operand,
        /// Right operand.
        r: Operand,
        /// The comparison.
        op: CmpOp,
        /// What to do with the boolean.
        along: CmpUse,
        /// Source ops covered.
        k: u8,
    },
    /// A multi-operation arithmetic chain (boxed to keep the common
    /// variants small).
    Chain(Box<Chain>),
    /// `[value load] LoadLocal ptr; StoreMem ty` — store a value through a
    /// pointer held in a local.
    StMem {
        /// The value to store.
        v: Operand,
        /// Local slot holding the destination pointer.
        ptr: u16,
        /// Element type written.
        ty: ScalarType,
        /// Source ops covered.
        k: u8,
    },
    /// `LoadLocal src; StoreLocal dst` (k = 2).
    Mov(u16, u16),
    /// `Const v; StoreLocal dst` (k = 2).
    MovC(Value, u16),
    /// `LoadLocal ptr; LoadLocal idx; [Convert long;] PtrOffset size` — the
    /// array-indexing idiom: push (or store) `locals[ptr] + idx*size`. The
    /// legacy codegen widens the index inline (`conv` true); the
    /// register-allocating lowering usually hoists the widening into the
    /// index slot, leaving a bare `PtrOffset` (`conv` false).
    PtrIdx {
        /// Local slot holding the base pointer.
        ptr: u16,
        /// Local slot holding the element index.
        idx: u16,
        /// Element byte size.
        size: u32,
        /// Whether a fused `Convert long` widens the index first.
        conv: bool,
        /// When `Some(ty)`, a fused trailing `LoadMem ty`: push the loaded
        /// element instead of the pointer.
        load: Option<ScalarType>,
        /// Result destination.
        dst: Dst,
        /// Source ops covered.
        k: u8,
    },
    /// `[v load] LoadLocal ptr; LoadLocal idx; [Convert long;]
    /// PtrOffset size; StoreMem ty` — store a value at an array index
    /// computed inline. The register lowering keeps the address on the
    /// operand stack instead of spilling it to a slot, which puts it out
    /// of reach of the plain [`Decoded::StMem`] fusion; this covers the
    /// whole indexed store in one dispatch with the pointer never touching
    /// the stack.
    StIdx {
        /// The value to store.
        v: Operand,
        /// Local slot holding the base pointer.
        ptr: u16,
        /// Local slot holding the element index.
        idx: u16,
        /// Element byte size.
        size: u32,
        /// Whether a fused `Convert long` widens the index first.
        conv: bool,
        /// Element type written.
        ty: ScalarType,
        /// Source ops covered.
        k: u8,
    },
    /// `[load] Convert ty [StoreLocal]` — convert a local, constant or
    /// stack value and push or store the result. The register lowering
    /// rematerialises conversion sources and spills results to slots, so
    /// this shape is common in its output.
    Cvt {
        /// The value to convert.
        src: Operand,
        /// Target scalar type.
        to: ScalarType,
        /// Result destination.
        dst: Dst,
        /// Source ops covered.
        k: u8,
    },
}

impl Decoded {
    /// Number of source ops this instruction covers (what it charges to
    /// `CostCounters::ops` and adds to `pc`).
    pub(crate) fn cost(&self) -> u64 {
        match self {
            Decoded::Plain(_) => 1,
            Decoded::Mov(..) | Decoded::MovC(..) => 2,
            Decoded::Chain(c) => c.k as u64,
            Decoded::Bin { k, .. }
            | Decoded::Cmp { k, .. }
            | Decoded::PtrIdx { k, .. }
            | Decoded::StIdx { k, .. }
            | Decoded::Cvt { k, .. }
            | Decoded::StMem { k, .. } => *k as u64,
        }
    }
}

/// Resolves what a fused comparison does with its boolean: a direct
/// conditional jump, the short-circuit idiom (`Jump` to a conditional
/// jump), or a plain push. Advances `t` past the consumed ops and returns
/// the extra charge for a remotely-executed conditional (see
/// [`CmpUse::BranchBoth`]).
fn cmp_along(code: &[Op], t: &mut usize, free: &impl Fn(usize) -> bool) -> (CmpUse, u8) {
    if free(*t) {
        match &code[*t] {
            Op::JumpIfFalse(target) => {
                *t += 1;
                return (CmpUse::BranchIfFalse(*target), 0);
            }
            Op::JumpIfTrue(target) => {
                *t += 1;
                return (CmpUse::BranchIfTrue(*target), 0);
            }
            Op::Jump(jt) => match code.get(*jt as usize) {
                Some(Op::JumpIfFalse(u)) => {
                    *t += 1;
                    return (
                        CmpUse::BranchBoth {
                            if_true: *jt + 1,
                            if_false: *u,
                        },
                        1,
                    );
                }
                Some(Op::JumpIfTrue(u)) => {
                    *t += 1;
                    return (
                        CmpUse::BranchBoth {
                            if_true: *u,
                            if_false: *jt + 1,
                        },
                        1,
                    );
                }
                _ => {}
            },
            _ => {}
        }
    }
    (CmpUse::Push, 0)
}

/// Parses what may follow a chain's last `Bin`: a trailing `StoreLocal`,
/// or a `[load] Cmp [JumpIf*]` comparison consuming the accumulator as its
/// lhs, or nothing. Advances `t` past the consumed ops and returns any
/// extra remote-conditional charge.
fn chain_tail(code: &[Op], t: &mut usize, free: &impl Fn(usize) -> bool) -> (ChainTail, u8) {
    if free(*t) {
        if let Op::StoreLocal(s) = &code[*t] {
            *t += 1;
            return (ChainTail::Store(*s), 0);
        }
        if free(*t + 1) {
            if let (Some(o), Op::Cmp(op)) = (operand(&code[*t]), &code[*t + 1]) {
                *t += 2;
                let (along, extra) = cmp_along(code, t, free);
                return (
                    ChainTail::Cmp {
                        op: *op,
                        r: o,
                        along,
                    },
                    extra,
                );
            }
        }
    }
    (ChainTail::Push, 0)
}

/// A fusable operand-producing op.
fn operand(op: &Op) -> Option<Operand> {
    match op {
        Op::LoadLocal(s) => Some(Operand::Local(*s)),
        Op::Const(c) => Some(Operand::Const(*c)),
        _ => None,
    }
}

/// Pre-decodes one function's bytecode (see the module docs for the
/// invariants).
pub(crate) fn decode(code: &[Op]) -> Vec<Decoded> {
    // Any op some jump lands on must stay addressable; fused blocks may
    // not span such an op (except as their first).
    let mut is_target = vec![false; code.len() + 1];
    for op in code {
        if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) = op {
            if let Some(slot) = is_target.get_mut(*t as usize) {
                *slot = true;
            }
        }
    }
    (0..code.len())
        .map(|i| decode_at(code, i, &is_target))
        .collect()
}

fn decode_at(code: &[Op], i: usize, is_target: &[bool]) -> Decoded {
    // `j` walks the candidate block; every op after the first must not be
    // a jump target.
    let free = |j: usize| j < code.len() && !is_target[j];

    // Leading operand loads (0, 1 or 2 of them) feeding a Bin/Cmp.
    let mut j = i;
    let mut loads: [Option<Operand>; 2] = [None, None];
    for slot in &mut loads {
        if (j == i || free(j)) && j < code.len() {
            if let Some(o) = operand(&code[j]) {
                *slot = Some(o);
                j += 1;
                continue;
            }
        }
        break;
    }
    let n_loads = loads.iter().flatten().count();
    // (l, r): the operand pushed last is the rhs.
    let (l, r) = match (loads[0], loads[1]) {
        (Some(a), Some(b)) => (a, b),
        (Some(a), None) => (Operand::Stack, a),
        _ => (Operand::Stack, Operand::Stack),
    };

    if (j == i || free(j)) && j < code.len() {
        match &code[j] {
            Op::Bin(op) => {
                let mut t = j + 1;
                // A second load-fed producer followed by a combining op is
                // a two-branch expression tree (`x*x + y*y`): fold it into
                // the accumulator without touching the stack.
                let mut tree = None;
                if free(t) && free(t + 1) && free(t + 2) && free(t + 3) {
                    if let (Some(l2), Some(r2), Op::Bin(op2), Op::Bin(comb)) = (
                        operand(&code[t]),
                        operand(&code[t + 1]),
                        &code[t + 2],
                        &code[t + 3],
                    ) {
                        tree = Some((l2, r2, *op2, *comb));
                        t += 4;
                    }
                }
                // Follow the expression tail: every `[load] Bin` pair
                // extends the accumulator chain (a bare mid-chain `Bin`
                // would make the accumulator the *rhs*, so it ends the
                // chain instead).
                let mut links = Vec::new();
                while free(t) && free(t + 1) {
                    if let (Some(o), Op::Bin(op2)) = (operand(&code[t]), &code[t + 1]) {
                        links.push((*op2, o));
                        t += 2;
                    } else {
                        break;
                    }
                }
                let (tail, extra) = chain_tail(code, &mut t, &free);
                if tree.is_some() || !links.is_empty() || matches!(tail, ChainTail::Cmp { .. }) {
                    return Decoded::Chain(Box::new(Chain {
                        l,
                        r,
                        op: *op,
                        tree,
                        links,
                        tail,
                        k: (t - i) as u8 + extra,
                    }));
                }
                let mut k = (n_loads + 1) as u8;
                let mut dst = Dst::Stack;
                if let ChainTail::Store(s) = tail {
                    dst = Dst::Local(s);
                    k += 1;
                }
                // A bare stack-stack Bin pushing its result is what the
                // plain path already does in one dispatch.
                if k > 1 {
                    return Decoded::Bin {
                        l,
                        r,
                        op: *op,
                        dst,
                        k,
                    };
                }
            }
            Op::Cmp(op) => {
                let mut t = j + 1;
                let (along, extra) = cmp_along(code, &mut t, &free);
                let k = (t - i) as u8 + extra;
                if k > 1 {
                    return Decoded::Cmp {
                        l,
                        r,
                        op: *op,
                        along,
                        k,
                    };
                }
            }
            _ => {}
        }
    }

    // Indexed stores: `[v load] LoadLocal p; LoadLocal i; [Convert long;]
    // PtrOffset; StoreMem`. Checked before the plain indexing idiom below
    // so the trailing `StoreMem` joins the fusion.
    // Try the fused-value form first (`[v load] LoadLocal p; ...`), then
    // the stack-value form (the head op itself is `LoadLocal p`).
    for (v, base) in [(operand(&code[i]), i + 1), (Some(Operand::Stack), i)] {
        let Some(v) = v else { continue };
        if base > i && !free(base) {
            continue;
        }
        let (Some(Op::LoadLocal(p)), Some(Op::LoadLocal(idx))) =
            (code.get(base), code.get(base + 1))
        else {
            continue;
        };
        if !free(base + 1) {
            continue;
        }
        let parsed = match &code[base + 2..] {
            [Op::Convert(ScalarType::Long), Op::PtrOffset(size), Op::StoreMem(ty), ..]
                if free(base + 2) && free(base + 3) && free(base + 4) =>
            {
                Some((*size, true, *ty, base + 5))
            }
            [Op::PtrOffset(size), Op::StoreMem(ty), ..] if free(base + 2) && free(base + 3) => {
                Some((*size, false, *ty, base + 4))
            }
            _ => None,
        };
        if let Some((size, conv, ty, end)) = parsed {
            return Decoded::StIdx {
                v,
                ptr: *p,
                idx: *idx,
                size,
                conv,
                ty,
                k: (end - i) as u8,
            };
        }
    }

    // The array-indexing idiom, with an optional fused load. The index
    // widening is either inline (legacy codegen) or already hoisted into
    // the slot (register lowering) — both forms fuse.
    if free(i + 1) {
        if let (Op::LoadLocal(p), Op::LoadLocal(idx)) = (&code[i], &code[i + 1]) {
            let parsed = match (&code[i + 1..], free(i + 2), free(i + 3)) {
                ([_, Op::Convert(ScalarType::Long), Op::PtrOffset(size), ..], true, true) => {
                    Some((*size, true, 4u8))
                }
                ([_, Op::PtrOffset(size), ..], true, _) => Some((*size, false, 3u8)),
                _ => None,
            };
            if let Some((size, conv, mut k)) = parsed {
                let mut load = None;
                let mut dst = Dst::Stack;
                if free(i + k as usize) {
                    if let Op::LoadMem(ty) = &code[i + k as usize] {
                        load = Some(*ty);
                        k += 1;
                    }
                }
                if free(i + k as usize) {
                    if let Op::StoreLocal(s) = &code[i + k as usize] {
                        dst = Dst::Local(*s);
                        k += 1;
                    }
                }
                return Decoded::PtrIdx {
                    ptr: *p,
                    idx: *idx,
                    size,
                    conv,
                    load,
                    dst,
                    k,
                };
            }
        }
    }

    // Conversions, with the source and destination fused where possible.
    if free(i + 1) {
        if let Some(src) = operand(&code[i]) {
            if let Op::Convert(to) = &code[i + 1] {
                let mut k = 2u8;
                let mut dst = Dst::Stack;
                if free(i + 2) {
                    if let Op::StoreLocal(s) = &code[i + 2] {
                        dst = Dst::Local(*s);
                        k = 3;
                    }
                }
                return Decoded::Cvt {
                    src,
                    to: *to,
                    dst,
                    k,
                };
            }
        }
        if let (Op::Convert(to), Op::StoreLocal(s)) = (&code[i], &code[i + 1]) {
            return Decoded::Cvt {
                src: Operand::Stack,
                to: *to,
                dst: Dst::Local(*s),
                k: 2,
            };
        }
    }

    // Stores through a pointer held in a local, with the value either
    // fused ([load v; LoadLocal p; StoreMem]) or left on the stack
    // ([LoadLocal p; StoreMem]).
    if free(i + 1) && free(i + 2) {
        if let (Some(v), Op::LoadLocal(p), Op::StoreMem(ty)) =
            (operand(&code[i]), &code[i + 1], &code[i + 2])
        {
            return Decoded::StMem {
                v,
                ptr: *p,
                ty: *ty,
                k: 3,
            };
        }
    }
    if free(i + 1) {
        if let (Op::LoadLocal(p), Op::StoreMem(ty)) = (&code[i], &code[i + 1]) {
            return Decoded::StMem {
                v: Operand::Stack,
                ptr: *p,
                ty: *ty,
                k: 2,
            };
        }
    }

    // Local-to-local and constant-to-local moves.
    if free(i + 1) {
        match (&code[i], &code[i + 1]) {
            (Op::LoadLocal(a), Op::StoreLocal(s)) => return Decoded::Mov(*a, *s),
            (Op::Const(c), Op::StoreLocal(s)) => return Decoded::MovC(*c, *s),
            _ => {}
        }
    }

    Decoded::Plain(code[i].clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuses_load_load_bin_store() {
        let code = [
            Op::LoadLocal(0),
            Op::LoadLocal(1),
            Op::Bin(BinOp::Mul),
            Op::StoreLocal(2),
        ];
        let dec = decode(&code);
        assert_eq!(dec.len(), 4);
        assert!(matches!(
            dec[0],
            Decoded::Bin {
                l: Operand::Local(0),
                r: Operand::Local(1),
                op: BinOp::Mul,
                dst: Dst::Local(2),
                k: 4,
            }
        ));
        assert_eq!(dec[0].cost(), 4);
        // Interior slots keep their own decoding for jump entry.
        assert!(matches!(
            dec[1],
            Decoded::Bin {
                l: Operand::Stack,
                r: Operand::Local(1),
                k: 3,
                ..
            }
        ));
        assert!(matches!(
            dec[2],
            Decoded::Bin {
                l: Operand::Stack,
                r: Operand::Stack,
                k: 2,
                ..
            }
        ));
        assert!(matches!(dec[3], Decoded::Plain(Op::StoreLocal(2))));
    }

    #[test]
    fn jump_target_blocks_fusion() {
        // Something jumps to the middle LoadLocal: the fusion at 1 must
        // not swallow it, but the tail starting there may fuse.
        let code = [
            Op::Jump(2),
            Op::LoadLocal(0),
            Op::LoadLocal(1),
            Op::Bin(BinOp::Add),
        ];
        let dec = decode(&code);
        assert!(matches!(dec[1], Decoded::Plain(Op::LoadLocal(0))));
        assert!(matches!(
            dec[2],
            Decoded::Bin {
                l: Operand::Stack,
                r: Operand::Local(1),
                op: BinOp::Add,
                k: 2,
                ..
            }
        ));
    }

    #[test]
    fn fuses_compare_and_branch() {
        let code = [
            Op::LoadLocal(3),
            Op::Const(Value::F32(2.0)),
            Op::Cmp(CmpOp::Lt),
            Op::JumpIfFalse(9),
        ];
        let dec = decode(&code);
        assert!(matches!(
            dec[0],
            Decoded::Cmp {
                l: Operand::Local(3),
                r: Operand::Const(Value::F32(_)),
                op: CmpOp::Lt,
                along: CmpUse::BranchIfFalse(9),
                k: 4,
            }
        ));
    }

    #[test]
    fn bare_stack_bin_stays_plain() {
        let code = [Op::Bin(BinOp::Add), Op::ReturnVoid];
        let dec = decode(&code);
        assert!(matches!(dec[0], Decoded::Plain(Op::Bin(BinOp::Add))));
    }

    #[test]
    fn fuses_array_load_into_one_dispatch() {
        let code = [
            Op::LoadLocal(0),
            Op::LoadLocal(5),
            Op::Convert(ScalarType::Long),
            Op::PtrOffset(4),
            Op::LoadMem(ScalarType::Float),
        ];
        let dec = decode(&code);
        assert!(matches!(
            dec[0],
            Decoded::PtrIdx {
                ptr: 0,
                idx: 5,
                size: 4,
                conv: true,
                load: Some(ScalarType::Float),
                dst: Dst::Stack,
                k: 5,
            }
        ));
    }

    #[test]
    fn fuses_array_access_with_hoisted_widening() {
        // The register lowering widens the index ahead of time, so the
        // access is `LoadLocal; LoadLocal; PtrOffset; LoadMem; StoreLocal`
        // with no inline `Convert` — five ops, one dispatch.
        let code = [
            Op::LoadLocal(0),
            Op::LoadLocal(13),
            Op::PtrOffset(4),
            Op::LoadMem(ScalarType::Float),
            Op::StoreLocal(15),
        ];
        let dec = decode(&code);
        assert!(matches!(
            dec[0],
            Decoded::PtrIdx {
                ptr: 0,
                idx: 13,
                size: 4,
                conv: false,
                load: Some(ScalarType::Float),
                dst: Dst::Local(15),
                k: 5,
            }
        ));
        assert_eq!(dec[0].cost(), 5);
    }

    #[test]
    fn fuses_conversions() {
        let code = [
            Op::LoadLocal(6),
            Op::Convert(ScalarType::Long),
            Op::StoreLocal(10),
            Op::Convert(ScalarType::Int),
            Op::StoreLocal(7),
            Op::Const(Value::I32(3)),
            Op::Convert(ScalarType::Float),
        ];
        let dec = decode(&code);
        assert!(matches!(
            dec[0],
            Decoded::Cvt {
                src: Operand::Local(6),
                to: ScalarType::Long,
                dst: Dst::Local(10),
                k: 3,
            }
        ));
        assert!(matches!(
            dec[3],
            Decoded::Cvt {
                src: Operand::Stack,
                to: ScalarType::Int,
                dst: Dst::Local(7),
                k: 2,
            }
        ));
        assert!(matches!(
            dec[5],
            Decoded::Cvt {
                src: Operand::Const(Value::I32(3)),
                to: ScalarType::Float,
                dst: Dst::Stack,
                k: 2,
            }
        ));
    }

    #[test]
    fn fuses_pointer_temp_store() {
        let code = [
            Op::LoadLocal(0),
            Op::LoadLocal(5),
            Op::Convert(ScalarType::Long),
            Op::PtrOffset(4),
            Op::StoreLocal(12),
        ];
        let dec = decode(&code);
        assert!(matches!(
            dec[0],
            Decoded::PtrIdx {
                load: None,
                dst: Dst::Local(12),
                k: 5,
                ..
            }
        ));
    }

    #[test]
    fn fuses_moves() {
        let code = [
            Op::LoadLocal(11),
            Op::StoreLocal(8),
            Op::Const(Value::I32(0)),
            Op::StoreLocal(9),
        ];
        let dec = decode(&code);
        assert!(matches!(dec[0], Decoded::Mov(11, 8)));
        assert!(matches!(dec[2], Decoded::MovC(Value::I32(0), 9)));
    }

    #[test]
    fn unfusable_ops_stay_plain() {
        let code = [Op::Dup, Op::Pop, Op::ReturnVoid];
        let dec = decode(&code);
        assert!(dec.iter().all(|d| matches!(d, Decoded::Plain(_))));
    }

    #[test]
    fn fuses_expression_tree_into_compare_branch() {
        // `x*x + y*y <= 4.0f` with a conditional exit: one dispatch.
        let code = [
            Op::LoadLocal(8),
            Op::LoadLocal(8),
            Op::Bin(BinOp::Mul),
            Op::LoadLocal(9),
            Op::LoadLocal(9),
            Op::Bin(BinOp::Mul),
            Op::Bin(BinOp::Add),
            Op::Const(Value::F32(4.0)),
            Op::Cmp(CmpOp::Le),
            Op::JumpIfFalse(20),
        ];
        let dec = decode(&code);
        match &dec[0] {
            Decoded::Chain(c) => {
                assert!(matches!(c.l, Operand::Local(8)));
                assert!(matches!(
                    c.tree,
                    Some((Operand::Local(9), Operand::Local(9), BinOp::Mul, BinOp::Add))
                ));
                assert!(matches!(
                    c.tail,
                    ChainTail::Cmp {
                        op: CmpOp::Le,
                        along: CmpUse::BranchIfFalse(20),
                        ..
                    }
                ));
                assert_eq!(c.k, 10);
            }
            other => panic!("expected chain, got {other:?}"),
        }
    }

    #[test]
    fn fuses_link_chain_into_store() {
        // `y = 2.0f * x * y + y0`: eight source ops, one dispatch.
        let code = [
            Op::Const(Value::F32(2.0)),
            Op::LoadLocal(8),
            Op::Bin(BinOp::Mul),
            Op::LoadLocal(9),
            Op::Bin(BinOp::Mul),
            Op::LoadLocal(7),
            Op::Bin(BinOp::Add),
            Op::StoreLocal(9),
        ];
        let dec = decode(&code);
        match &dec[0] {
            Decoded::Chain(c) => {
                assert_eq!(c.links.len(), 2);
                assert!(matches!(c.tail, ChainTail::Store(9)));
                assert_eq!(c.k, 8);
            }
            other => panic!("expected chain, got {other:?}"),
        }
    }

    #[test]
    fn fuses_short_circuit_branch_pair() {
        // `Jump` to a conditional jump (the `&&` idiom): both successors
        // resolve at decode time, and `k` charges the remote conditional.
        let code = [
            Op::LoadLocal(0),
            Op::LoadLocal(1),
            Op::Cmp(CmpOp::Lt),
            Op::Jump(5),
            Op::Const(Value::Bool(false)),
            Op::JumpIfFalse(9),
        ];
        let dec = decode(&code);
        assert!(matches!(
            dec[0],
            Decoded::Cmp {
                along: CmpUse::BranchBoth {
                    if_true: 6,
                    if_false: 9,
                },
                k: 5,
                ..
            }
        ));
        // The remote conditional keeps its own slot (it is a jump target).
        assert!(matches!(dec[5], Decoded::Plain(Op::JumpIfFalse(9))));
    }

    #[test]
    fn fuses_indexed_store_into_one_dispatch() {
        // The register lowering's store idiom: value from a local, address
        // computed inline — six ops, one dispatch.
        let code = [
            Op::LoadLocal(6),
            Op::LoadLocal(1),
            Op::LoadLocal(5),
            Op::Convert(ScalarType::Long),
            Op::PtrOffset(4),
            Op::StoreMem(ScalarType::Float),
        ];
        let dec = decode(&code);
        assert!(matches!(
            dec[0],
            Decoded::StIdx {
                v: Operand::Local(6),
                ptr: 1,
                idx: 5,
                size: 4,
                conv: true,
                ty: ScalarType::Float,
                k: 6,
            }
        ));
        // Entered one op in (value already on the stack), the rest still
        // fuses.
        assert!(matches!(
            dec[1],
            Decoded::StIdx {
                v: Operand::Stack,
                ptr: 1,
                idx: 5,
                k: 5,
                ..
            }
        ));
    }

    #[test]
    fn fuses_indexed_store_with_hoisted_widening() {
        let code = [
            Op::Const(Value::I32(7)),
            Op::LoadLocal(2),
            Op::LoadLocal(9),
            Op::PtrOffset(8),
            Op::StoreMem(ScalarType::Double),
        ];
        let dec = decode(&code);
        assert!(matches!(
            dec[0],
            Decoded::StIdx {
                v: Operand::Const(Value::I32(7)),
                ptr: 2,
                idx: 9,
                size: 8,
                conv: false,
                ty: ScalarType::Double,
                k: 5,
            }
        ));
    }

    #[test]
    fn jump_target_blocks_indexed_store_fusion() {
        // A jump lands on the StoreMem: the fusion must stop short of it.
        let code = [
            Op::Jump(4),
            Op::LoadLocal(1),
            Op::LoadLocal(5),
            Op::PtrOffset(4),
            Op::StoreMem(ScalarType::Float),
        ];
        let dec = decode(&code);
        assert!(!matches!(dec[1], Decoded::StIdx { .. }));
    }

    #[test]
    fn fuses_store_through_pointer() {
        let code = [
            Op::LoadLocal(10),
            Op::LoadLocal(12),
            Op::StoreMem(ScalarType::Int),
        ];
        let dec = decode(&code);
        assert!(matches!(
            dec[0],
            Decoded::StMem {
                v: Operand::Local(10),
                ptr: 12,
                ty: ScalarType::Int,
                k: 3,
            }
        ));
        assert!(matches!(
            dec[1],
            Decoded::StMem {
                v: Operand::Stack,
                ptr: 12,
                k: 2,
                ..
            }
        ));
    }
}
