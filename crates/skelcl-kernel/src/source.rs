//! Source text handling: files, byte spans and line/column mapping.

use std::fmt;
use std::sync::Arc;

/// A half-open byte range `[start, end)` into a [`SourceFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "span start {start} past end {end}");
        Span { start, end }
    }

    /// A zero-width span at `pos`, used for end-of-file diagnostics.
    pub fn point(pos: u32) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An immutable source file with a precomputed line index.
///
/// Cheap to clone (`Arc` internally); spans produced by the lexer and parser
/// refer back into the file's text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    inner: Arc<SourceInner>,
}

#[derive(Debug)]
struct SourceInner {
    name: String,
    text: String,
    /// Byte offset of the start of each line.
    line_starts: Vec<u32>,
}

impl SourceFile {
    /// Creates a source file from a name (shown in diagnostics) and its text.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile {
            inner: Arc::new(SourceInner {
                name: name.into(),
                text,
                line_starts,
            }),
        }
    }

    /// The display name of the file.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The full source text.
    pub fn text(&self) -> &str {
        &self.inner.text
    }

    /// The text covered by `span`.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds or does not fall on UTF-8
    /// boundaries.
    pub fn snippet(&self, span: Span) -> &str {
        &self.inner.text[span.start as usize..span.end as usize]
    }

    /// Converts a byte offset to a 1-based line/column position.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let starts = &self.inner.line_starts;
        let line_idx = match starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - starts[line_idx] + 1,
        }
    }

    /// Returns the full text of the (1-based) line containing `offset`,
    /// without its trailing newline.
    pub fn line_text(&self, offset: u32) -> &str {
        let starts = &self.inner.line_starts;
        let line_idx = match starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let start = starts[line_idx] as usize;
        let end = starts
            .get(line_idx + 1)
            .map(|&e| e as usize)
            .unwrap_or(self.inner.text.len());
        self.inner.text[start..end].trim_end_matches(['\n', '\r'])
    }

    /// Number of lines in the file (at least 1, even when empty).
    pub fn line_count(&self) -> usize {
        self.inner.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_and_len() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::point(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn span_rejects_inverted_range() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn line_col_mapping() {
        let f = SourceFile::new("t.cl", "ab\ncd\n\nxyz");
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(f.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(f.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(f.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(f.line_col(7), LineCol { line: 4, col: 1 });
        assert_eq!(f.line_col(9), LineCol { line: 4, col: 3 });
        assert_eq!(f.line_count(), 4);
    }

    #[test]
    fn line_text_extraction() {
        let f = SourceFile::new("t.cl", "first\nsecond\r\nthird");
        assert_eq!(f.line_text(0), "first");
        assert_eq!(f.line_text(8), "second");
        assert_eq!(f.line_text(15), "third");
    }

    #[test]
    fn snippet_returns_span_text() {
        let f = SourceFile::new("t.cl", "float func(float x)");
        assert_eq!(f.snippet(Span::new(6, 10)), "func");
    }

    #[test]
    fn empty_file_has_one_line() {
        let f = SourceFile::new("e.cl", "");
        assert_eq!(f.line_count(), 1);
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
    }
}
