//! Pretty-printer from the AST back to SkelCL C source.
//!
//! Used by SkelCL's skeleton code generator: user functions are parsed,
//! rewritten (e.g. `get(m, i, j)` stencil accesses), then printed back into
//! the generated kernel source. Sub-expressions are fully parenthesised so
//! the output reparses to a structurally identical tree regardless of the
//! original spelling.

use std::fmt::Write;

use crate::ast::*;
use crate::types::Type;

/// Prints a whole translation unit.
pub fn print_unit(tu: &TranslationUnit) -> String {
    let mut out = String::new();
    for f in &tu.functions {
        out.push_str(&print_function(f));
        out.push('\n');
    }
    out
}

/// Prints one function definition.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    if f.is_kernel {
        out.push_str("__kernel ");
    }
    write!(out, "{} {}(", print_type(f.return_type), f.name).unwrap();
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{} {}", print_type(p.ty), p.name).unwrap();
    }
    out.push_str(") ");
    print_block(&mut out, &f.body, 0);
    out
}

/// Prints a type in parameter/declaration position.
pub fn print_type(ty: Type) -> String {
    ty.to_string()
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(out: &mut String, b: &Block, level: usize) {
    out.push_str("{\n");
    for s in &b.stmts {
        print_stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push('}');
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Block(b) => {
            indent(out, level);
            print_block(out, b, level);
            out.push('\n');
        }
        Stmt::Decl(d) => {
            indent(out, level);
            print_decl(out, d);
            out.push('\n');
        }
        Stmt::Expr(e) => {
            indent(out, level);
            writeln!(out, "{};", print_expr(e)).unwrap();
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            indent(out, level);
            write!(out, "if ({}) ", print_expr(cond)).unwrap();
            print_substmt(out, then_branch, level);
            if let Some(e) = else_branch {
                indent(out, level);
                out.push_str("else ");
                print_substmt(out, e, level);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            indent(out, level);
            out.push_str("for (");
            match init.as_deref() {
                Some(Stmt::Decl(d)) => print_decl(out, d),
                Some(Stmt::Expr(e)) => write!(out, "{};", print_expr(e)).unwrap(),
                Some(other) => unreachable!("parser produces decl/expr init only: {other:?}"),
                None => out.push(';'),
            }
            out.push(' ');
            if let Some(c) = cond {
                out.push_str(&print_expr(c));
            }
            out.push_str("; ");
            if let Some(st) = step {
                out.push_str(&print_expr(st));
            }
            out.push_str(") ");
            print_substmt(out, body, level);
        }
        Stmt::While { cond, body, .. } => {
            indent(out, level);
            write!(out, "while ({}) ", print_expr(cond)).unwrap();
            print_substmt(out, body, level);
        }
        Stmt::DoWhile { body, cond, .. } => {
            indent(out, level);
            out.push_str("do ");
            print_substmt(out, body, level);
            indent(out, level);
            writeln!(out, "while ({});", print_expr(cond)).unwrap();
        }
        Stmt::Return { value, .. } => {
            indent(out, level);
            match value {
                Some(v) => writeln!(out, "return {};", print_expr(v)).unwrap(),
                None => out.push_str("return;\n"),
            }
        }
        Stmt::Break(_) => {
            indent(out, level);
            out.push_str("break;\n");
        }
        Stmt::Continue(_) => {
            indent(out, level);
            out.push_str("continue;\n");
        }
        Stmt::Empty(_) => {
            indent(out, level);
            out.push_str(";\n");
        }
    }
}

/// Prints a statement used as a loop/if body, bracing non-blocks.
fn print_substmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Block(b) => {
            print_block(out, b, level);
            out.push('\n');
        }
        other => {
            out.push_str("{\n");
            print_stmt(out, other, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

fn print_decl(out: &mut String, d: &VarDecl) {
    use crate::types::AddressSpace;
    if d.space == AddressSpace::Local {
        out.push_str("__local ");
    }
    if d.is_const {
        out.push_str("const ");
    }
    write!(out, "{}", d.scalar).unwrap();
    if d.is_pointer {
        out.push('*');
    }
    out.push(' ');
    for (i, dec) in d.declarators.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&dec.name);
        if let Some(size) = &dec.array_size {
            write!(out, "[{}]", print_expr(size)).unwrap();
        }
        if let Some(init) = &dec.init {
            write!(out, " = {}", print_expr(init)).unwrap();
        }
    }
    out.push(';');
}

/// Prints an expression (fully parenthesised composites).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::IntLit {
            value,
            unsigned,
            long,
            ..
        } => {
            let mut s = value.to_string();
            if *unsigned {
                s.push('u');
            }
            if *long {
                s.push('L');
            }
            s
        }
        Expr::FloatLit { value, single, .. } => {
            let mut s = format_float(*value);
            if *single {
                s.push('f');
            }
            s
        }
        Expr::BoolLit { value, .. } => value.to_string(),
        Expr::CharLit { value, .. } => match *value as u8 {
            b'\n' => "'\\n'".into(),
            b'\t' => "'\\t'".into(),
            b'\r' => "'\\r'".into(),
            0 => "'\\0'".into(),
            b'\\' => "'\\\\'".into(),
            b'\'' => "'\\''".into(),
            c if c.is_ascii_graphic() || c == b' ' => format!("'{}'", c as char),
            c => format!("{}", c as i8), // non-printable: emit numeric value
        },
        Expr::Ident { name, .. } => name.clone(),
        Expr::Unary { op, expr, .. } => match op {
            UnaryOp::PostInc => format!("({})++", print_expr(expr)),
            UnaryOp::PostDec => format!("({})--", print_expr(expr)),
            _ => format!("({}({}))", op.symbol(), print_expr(expr)),
        },
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("({} {} {})", print_expr(lhs), op.symbol(), print_expr(rhs))
        }
        Expr::Assign { op, lhs, rhs, .. } => {
            let sym = match op {
                Some(o) => format!("{}=", o.symbol()),
                None => "=".into(),
            };
            format!("{} {} {}", print_expr(lhs), sym, print_expr(rhs))
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => format!(
            "({} ? {} : {})",
            print_expr(cond),
            print_expr(then_expr),
            print_expr(else_expr)
        ),
        Expr::Call { callee, args, .. } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{}({})", callee, args.join(", "))
        }
        Expr::Index { base, index, .. } => {
            format!("{}[{}]", print_primary(base), print_expr(index))
        }
        Expr::Cast { ty, expr, .. } => format!("(({})({}))", print_type(*ty), print_expr(expr)),
    }
}

/// Prints an expression in a position that needs a primary (index base).
fn print_primary(e: &Expr) -> String {
    match e {
        Expr::Ident { .. } | Expr::Call { .. } | Expr::Index { .. } => print_expr(e),
        other => format!("({})", print_expr(other)),
    }
}

// ----- MIR printing ---------------------------------------------------------

/// Renders a whole MIR unit (one function after another), as dumped by
/// `SKELCL_KERNEL_DUMP=mir|mir-opt`.
pub fn mir_unit_to_string(unit: &crate::mir::MirUnit) -> String {
    let mut out = String::new();
    for f in &unit.functions {
        out.push_str(&mir_function_to_string(f));
        out.push('\n');
    }
    out
}

/// Renders one MIR function: a header line followed by its basic blocks.
pub fn mir_function_to_string(f: &crate::mir::MirFunction) -> String {
    use crate::mir::{Inst, Terminator};
    let mut out = String::new();
    writeln!(
        out,
        "{}fn {} (params: {}, locals: {}, vregs: {})",
        if f.is_kernel { "kernel " } else { "" },
        f.name,
        f.param_count,
        f.local_init.len(),
        f.vreg_count
    )
    .unwrap();
    let v = |r: crate::mir::VReg| format!("v{}", r.0);
    for (bi, b) in f.blocks.iter().enumerate() {
        writeln!(out, "bb{bi}:").unwrap();
        for inst in &b.insts {
            out.push_str("    ");
            let line = match inst {
                Inst::Const { dst, value } => format!("{} = const {value}", v(*dst)),
                Inst::GetLocal { dst, slot } => format!("{} = get_local {slot}", v(*dst)),
                Inst::SetLocal { slot, src } => format!("set_local {slot}, {}", v(*src)),
                Inst::Un { dst, op, src } => format!("{} = un {op:?} {}", v(*dst), v(*src)),
                Inst::Bin { dst, op, lhs, rhs } => {
                    format!("{} = bin {op:?} {}, {}", v(*dst), v(*lhs), v(*rhs))
                }
                Inst::Cmp { dst, op, lhs, rhs } => {
                    format!("{} = cmp {op:?} {}, {}", v(*dst), v(*lhs), v(*rhs))
                }
                Inst::Convert { dst, to, src } => {
                    format!("{} = convert {to} {}", v(*dst), v(*src))
                }
                Inst::ToBool { dst, src } => format!("{} = to_bool {}", v(*dst), v(*src)),
                Inst::Call {
                    dst, func, args, ..
                } => {
                    let args: Vec<String> = args.iter().map(|a| v(*a)).collect();
                    match dst {
                        Some(d) => format!("{} = call f{func}({})", v(*d), args.join(", ")),
                        None => format!("call f{func}({})", args.join(", ")),
                    }
                }
                Inst::CallPure { dst, builtin, args } => {
                    let args: Vec<String> = args.iter().map(|a| v(*a)).collect();
                    format!("{} = {}({})", v(*dst), builtin.name(), args.join(", "))
                }
                Inst::WorkItem { dst, builtin, dim } => match dim {
                    Some(d) => format!("{} = {}({})", v(*dst), builtin.name(), v(*d)),
                    None => format!("{} = {}()", v(*dst), builtin.name()),
                },
                Inst::Barrier { id } => format!("barrier #{id}"),
                Inst::LoadMem { dst, ty, ptr } => {
                    format!("{} = load {ty} [{}]", v(*dst), v(*ptr))
                }
                Inst::StoreMem { ty, ptr, value } => {
                    format!("store {ty} [{}], {}", v(*ptr), v(*value))
                }
                Inst::PtrOffset {
                    dst,
                    size,
                    ptr,
                    count,
                } => format!(
                    "{} = ptr_offset x{size} {}, {}",
                    v(*dst),
                    v(*ptr),
                    v(*count)
                ),
                Inst::PtrDiff {
                    dst,
                    size,
                    lhs,
                    rhs,
                } => format!("{} = ptr_diff x{size} {}, {}", v(*dst), v(*lhs), v(*rhs)),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str("    ");
        let line = match &b.term {
            Terminator::Jump(t) => format!("jump bb{}", t.0),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => format!("branch {}, bb{}, bb{}", v(*cond), then_bb.0, else_bb.0),
            Terminator::Return(Some(r)) => format!("return {}", v(*r)),
            Terminator::Return(None) => "return".into(),
            Terminator::MissingReturn => "missing_return".into(),
            Terminator::Trap { code } => format!("trap {}", v(*code)),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Formats a float so it round-trips and always contains `.` or `e`.
fn format_float(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use crate::parser::parse;
    use crate::source::SourceFile;

    fn parse_ok(src: &str) -> TranslationUnit {
        let f = SourceFile::new("t.cl", src);
        let mut d = Diagnostics::new();
        let tu = parse(&f, &mut d);
        assert!(!d.has_errors(), "{}", d.render(&f));
        tu
    }

    /// Parsing the printed output must reproduce the printed output
    /// (fixed-point) — a strong structural round-trip check.
    fn assert_round_trip(src: &str) {
        let once = print_unit(&parse_ok(src));
        let twice = print_unit(&parse_ok(&once));
        assert_eq!(once, twice, "printer not a fixed point for:\n{src}");
    }

    #[test]
    fn round_trip_paper_functions() {
        assert_round_trip("float func(float x){ return -x; }");
        assert_round_trip("float func(float x, float y){ return x + y; }");
        assert_round_trip(
            "float func(float* m_in){
                float sum = 0.0f;
                for (int i = -1; i <= 1; ++i)
                    for (int j = -1; j <= 1; ++j)
                        sum += get(m_in, i, j);
                return sum;
            }",
        );
        assert_round_trip(
            "char func(const char* img){
                short h = -1*get(img,-1,-1) + 1*get(img,1,-1)
                          -2*get(img,-1,0) + 2*get(img,1,0)
                          -1*get(img,-1,1) + 1*get(img,1,1);
                return (char)sqrt((float)(h*h));
            }",
        );
    }

    #[test]
    fn round_trip_control_flow() {
        assert_round_trip(
            "__kernel void k(__global int* a, int n){
                int i = 0;
                while (i < n) { if (i % 2 == 0) a[i] = i; else a[i] = -i; i++; }
                do { n--; } while (n > 0);
                for (;;) break;
            }",
        );
    }

    #[test]
    fn round_trip_declarations() {
        assert_round_trip(
            "__kernel void k(__global float* p, __local float* q){
                __local float tile[16 * 16];
                const int a = 1, b = 2;
                float* r = p;
                tile[0] = q[0] + (float)(a + b);
            }",
        );
    }

    #[test]
    fn round_trip_operators() {
        assert_round_trip(
            "int f(int a, int b){
                a += b; a <<= 2; a ^= b;
                int c = a < b ? a : b;
                bool d = a == b || !(a != c) && true;
                return c + (d ? 1 : 0) + (a++) + (--b);
            }",
        );
    }

    #[test]
    fn char_literals_print_escaped() {
        assert_round_trip(
            r"void f(){ char a = 'x'; char b = '\n'; char c = '\0'; char d = '\\'; }",
        );
    }

    #[test]
    fn float_literals_keep_suffix() {
        let tu = parse_ok("float f(){ return 2.5f + 1.0 + 3f; }");
        let printed = print_unit(&tu);
        assert!(printed.contains("2.5f"), "{printed}");
        assert!(printed.contains("1.0"), "{printed}");
        assert!(
            printed.contains("3.0f") || printed.contains("3f"),
            "{printed}"
        );
        assert_round_trip("float f(){ return 2.5f + 1.0 + 3f; }");
    }

    #[test]
    fn printed_output_is_semantically_identical() {
        // Compile both original and printed source and compare behaviour.
        let src = "__kernel void k(__global int* out, int n){
            int s = 0;
            for (int i = 0; i < n; ++i) s += i * i;
            out[0] = s;
        }";
        let printed = print_unit(&parse_ok(src));
        let p1 = crate::compile("a.cl", src).unwrap();
        let p2 = crate::compile("b.cl", &printed).unwrap();
        use crate::types::AddressSpace;
        use crate::value::{Ptr, Value};
        use crate::vm::{HostMemory, ItemGeometry, WorkItem};
        let run = |p: &crate::program::Program| {
            let mut mem = HostMemory::new();
            let out = mem.add_buffer(vec![0u8; 4]);
            let k = p.kernel("k").unwrap();
            let args = [
                Value::Ptr(Ptr {
                    space: AddressSpace::Global,
                    buffer: out,
                    byte_offset: 0,
                }),
                Value::I32(10),
            ];
            let mut item = WorkItem::new(p, k.func, &args, ItemGeometry::single());
            item.run(&mem, &mut []).unwrap();
            i32::from_le_bytes(mem.bytes(out)[..4].try_into().unwrap())
        };
        assert_eq!(run(&p1), run(&p2));
        assert_eq!(run(&p1), 285);
    }
}
