//! Typed high-level IR produced by semantic analysis.
//!
//! Compared to the AST, the HIR:
//!
//! * resolves every identifier to a local slot, function id or builtin;
//! * annotates every expression with its [`Type`];
//! * makes all implicit conversions explicit ([`Expr::Convert`]);
//! * lowers `for`/`while`/`do-while` to a single loop form;
//! * turns pointer arithmetic and indexing into explicit [`Expr::PtrOffset`]
//!   and [`Expr::Load`]/[`Place::Deref`] nodes.

use crate::builtins::Builtin;
use crate::source::Span;
use crate::types::{ScalarType, Type};

/// Index of a local variable (including parameters) within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

/// Index of a function within a [`Unit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// A fully type-checked translation unit.
#[derive(Debug, Clone)]
pub struct Unit {
    /// Functions, indexable by [`FuncId`].
    pub functions: Vec<Function>,
}

impl Unit {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// The function for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }
}

/// A type-checked function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Whether declared `__kernel`.
    pub is_kernel: bool,
    /// Function name.
    pub name: String,
    /// Return type.
    pub return_type: Type,
    /// Number of leading entries in [`Self::locals`] that are parameters.
    pub param_count: usize,
    /// Every local variable (parameters first, then declarations in order).
    pub locals: Vec<LocalDecl>,
    /// Lowered body.
    pub body: Vec<Stmt>,
    /// Source span of the definition.
    pub span: Span,
}

impl Function {
    /// The declared parameters.
    pub fn params(&self) -> &[LocalDecl] {
        &self.locals[..self.param_count]
    }

    /// Iterates over local `__local` array declarations (kernel local
    /// memory), in declaration order.
    pub fn local_arrays(&self) -> impl Iterator<Item = (LocalId, &LocalDecl)> {
        self.locals
            .iter()
            .enumerate()
            .filter(|(_, l)| l.local_array.is_some())
            .map(|(i, l)| (LocalId(i as u32), l))
    }
}

/// A declared local variable or parameter.
#[derive(Debug, Clone)]
pub struct LocalDecl {
    /// Variable name (for diagnostics and debugging).
    pub name: String,
    /// The variable's type. For `__local` arrays this is the decayed
    /// local-memory pointer type.
    pub ty: Type,
    /// Whether the variable was declared `const`.
    pub is_const: bool,
    /// For `__local T name[N];` declarations: the element type and constant
    /// length. The VM binds the slot to a pointer into local memory.
    pub local_array: Option<LocalArray>,
    /// Declaration site.
    pub span: Span,
}

/// Metadata of a `__local` array declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalArray {
    /// Element type.
    pub elem: ScalarType,
    /// Compile-time constant element count.
    pub len: u64,
}

/// A lowered statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Evaluate an expression for its side effects.
    Expr(Expr),
    /// Two-armed conditional (empty `else` allowed).
    If {
        /// Boolean condition.
        cond: Expr,
        /// Statements when true.
        then_branch: Vec<Stmt>,
        /// Statements when false.
        else_branch: Vec<Stmt>,
    },
    /// Unified loop covering `for`, `while` and `do-while`.
    Loop {
        /// Boolean condition, tested before each iteration (after the first
        /// when `test_at_end`).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Step expression executed after the body and on `continue`
        /// (from `for` loops).
        step: Option<Expr>,
        /// `true` for `do-while`.
        test_at_end: bool,
    },
    /// Exit the innermost loop.
    Break,
    /// Jump to the innermost loop's step/condition.
    Continue,
    /// Return from the function.
    Return(Option<Expr>),
}

/// A compile-time constant scalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstValue {
    /// A boolean.
    Bool(bool),
    /// Any integer type; the payload is the sign-extended value and the
    /// `ScalarType` the constant has.
    Int(i64, ScalarType),
    /// `float`.
    F32(f32),
    /// `double`.
    F64(f64),
}

impl ConstValue {
    /// The scalar type of the constant.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            ConstValue::Bool(_) => ScalarType::Bool,
            ConstValue::Int(_, t) => *t,
            ConstValue::F32(_) => ScalarType::Float,
            ConstValue::F64(_) => ScalarType::Double,
        }
    }
}

/// An assignable location.
#[derive(Debug, Clone)]
pub enum Place {
    /// A local variable slot.
    Local(LocalId),
    /// A store through a pointer: `*ptr` where `ptr` evaluates to a pointer
    /// to `elem`.
    Deref {
        /// Pointer expression.
        ptr: Box<Expr>,
        /// Element type stored through the pointer.
        elem: ScalarType,
    },
}

/// Unary operations that survive into HIR (pure value ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (bool → bool).
    Not,
    /// Bitwise complement (integers).
    BitNot,
}

/// Binary value operations (no short-circuit, no comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder (integers).
    Rem,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise xor.
    BitXor,
    /// Left shift.
    Shl,
    /// Right shift (arithmetic for signed, logical for unsigned).
    Shr,
}

/// Comparison operators (result type `bool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// A typed expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A compile-time constant.
    Const {
        /// The value.
        value: ConstValue,
        /// Source span.
        span: Span,
    },
    /// Read of a local variable.
    Local {
        /// The slot.
        id: LocalId,
        /// The variable's type.
        ty: Type,
        /// Source span.
        span: Span,
    },
    /// A unary value operation on a scalar.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand (already converted to `ty`).
        expr: Box<Expr>,
        /// Operand and result scalar type.
        ty: ScalarType,
        /// Source span.
        span: Span,
    },
    /// A binary value operation; both operands have type `ty`.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Operand and result scalar type.
        ty: ScalarType,
        /// Source span.
        span: Span,
    },
    /// A comparison; both operands have scalar type `operand_ty` (or both are
    /// pointers, compared by address). Result is `bool`.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Common operand scalar type (`None` when comparing pointers).
        operand_ty: Option<ScalarType>,
        /// Source span.
        span: Span,
    },
    /// Short-circuit `&&` / `||`; operands and result are `bool`.
    Logical {
        /// `true` for `&&`, `false` for `||`.
        is_and: bool,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// A scalar conversion.
    Convert {
        /// Target type.
        to: ScalarType,
        /// Operand.
        expr: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Assignment; evaluates to the stored value. The stored value has the
    /// place's element type.
    Assign {
        /// Target location.
        place: Place,
        /// Value to store (already converted).
        value: Box<Expr>,
        /// Type of the stored value (= type of the whole expression).
        ty: Type,
        /// Source span.
        span: Span,
    },
    /// Pre/post increment or decrement of a scalar or pointer place.
    IncDec {
        /// Target location.
        place: Place,
        /// The place's type.
        ty: Type,
        /// `true` for `++`.
        is_inc: bool,
        /// `true` when the expression yields the *old* value.
        is_post: bool,
        /// Source span.
        span: Span,
    },
    /// `cond ? a : b`; both arms have type `ty`.
    Ternary {
        /// Boolean condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
        /// Result type.
        ty: Type,
        /// Source span.
        span: Span,
    },
    /// Call of a user-defined function.
    Call {
        /// Callee.
        func: FuncId,
        /// Arguments, converted to parameter types.
        args: Vec<Expr>,
        /// The callee's return type.
        ty: Type,
        /// Source span.
        span: Span,
    },
    /// Call of a builtin function.
    BuiltinCall {
        /// Which builtin.
        builtin: Builtin,
        /// Arguments, converted per the builtin's signature.
        args: Vec<Expr>,
        /// Result type.
        ty: Type,
        /// Source span.
        span: Span,
    },
    /// Pointer arithmetic: `ptr + offset` in elements. `ty` is the pointer
    /// type of the result.
    PtrOffset {
        /// Pointer operand.
        ptr: Box<Expr>,
        /// Signed element offset (type `long`).
        offset: Box<Expr>,
        /// Resulting pointer type.
        ty: Type,
        /// Source span.
        span: Span,
    },
    /// Difference of two pointers to the same element type, in elements
    /// (type `long`).
    PtrDiff {
        /// Left pointer.
        lhs: Box<Expr>,
        /// Right pointer.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Load through a pointer (`*p`, `p[i]` after lowering).
    Load {
        /// Pointer expression.
        ptr: Box<Expr>,
        /// Loaded element type.
        elem: ScalarType,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// The type of the expression.
    pub fn ty(&self) -> Type {
        match self {
            Expr::Const { value, .. } => Type::Scalar(value.scalar_type()),
            Expr::Local { ty, .. } => *ty,
            Expr::Unary { ty, .. } | Expr::Binary { ty, .. } => Type::Scalar(*ty),
            Expr::Compare { .. } | Expr::Logical { .. } => Type::Scalar(ScalarType::Bool),
            Expr::Convert { to, .. } => Type::Scalar(*to),
            Expr::Assign { ty, .. } => *ty,
            Expr::IncDec { ty, .. } => *ty,
            Expr::Ternary { ty, .. } => *ty,
            Expr::Call { ty, .. } => *ty,
            Expr::BuiltinCall { ty, .. } => *ty,
            Expr::PtrOffset { ty, .. } => *ty,
            Expr::PtrDiff { .. } => Type::Scalar(ScalarType::Long),
            Expr::Load { elem, .. } => Type::Scalar(*elem),
        }
    }

    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Const { span, .. }
            | Expr::Local { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Compare { span, .. }
            | Expr::Logical { span, .. }
            | Expr::Convert { span, .. }
            | Expr::Assign { span, .. }
            | Expr::IncDec { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Call { span, .. }
            | Expr::BuiltinCall { span, .. }
            | Expr::PtrOffset { span, .. }
            | Expr::PtrDiff { span, .. }
            | Expr::Load { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_value_types() {
        assert_eq!(ConstValue::Bool(true).scalar_type(), ScalarType::Bool);
        assert_eq!(
            ConstValue::Int(-1, ScalarType::Int).scalar_type(),
            ScalarType::Int
        );
        assert_eq!(ConstValue::F32(1.0).scalar_type(), ScalarType::Float);
        assert_eq!(ConstValue::F64(1.0).scalar_type(), ScalarType::Double);
    }

    #[test]
    fn expr_type_of_compare_is_bool() {
        let span = Span::point(0);
        let one = Expr::Const {
            value: ConstValue::Int(1, ScalarType::Int),
            span,
        };
        let two = Expr::Const {
            value: ConstValue::Int(2, ScalarType::Int),
            span,
        };
        let cmp = Expr::Compare {
            op: CmpOp::Lt,
            lhs: Box::new(one),
            rhs: Box::new(two),
            operand_ty: Some(ScalarType::Int),
            span,
        };
        assert_eq!(cmp.ty(), Type::Scalar(ScalarType::Bool));
    }
}
