//! Runtime scalar and pointer values, plus the arithmetic shared between the
//! constant folder and the work-item VM.
//!
//! Semantics notes (deterministic replacements for C undefined behaviour,
//! matching common GPU hardware):
//!
//! * integer overflow wraps;
//! * shift amounts are masked to the operand width;
//! * float→integer casts saturate (Rust `as` semantics);
//! * integer division by zero is a reported evaluation error, not UB.

use std::fmt;

use crate::hir::{BinOp, CmpOp, UnOp};
use crate::types::{AddressSpace, ScalarType};

/// A typed pointer value.
///
/// Pointers address one of the buffers bound to the running kernel (global
/// address space) or the work-group's local-memory arena. The `byte_offset`
/// may go transiently negative or past the end during pointer arithmetic;
/// bounds are enforced on dereference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ptr {
    /// The address space the pointer actually refers to (dynamic — an
    /// unqualified pointer parameter can receive either space).
    pub space: AddressSpace,
    /// For `Global`: the index of the kernel buffer argument. For `Local`:
    /// always 0 (the work-group arena).
    pub buffer: u32,
    /// Byte offset from the start of the buffer.
    pub byte_offset: i64,
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// `bool`
    Bool(bool),
    /// `char`
    I8(i8),
    /// `uchar`
    U8(u8),
    /// `short`
    I16(i16),
    /// `ushort`
    U16(u16),
    /// `int`
    I32(i32),
    /// `uint`
    U32(u32),
    /// `long`
    I64(i64),
    /// `ulong`
    U64(u64),
    /// `float`
    F32(f32),
    /// `double`
    F64(f64),
    /// Any pointer.
    Ptr(Ptr),
}

/// An error produced while evaluating an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Internal invariant violation (mismatched operand types reaching the
    /// evaluator); indicates a compiler bug rather than a user error.
    TypeMismatch {
        /// What was being evaluated.
        context: &'static str,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::DivisionByZero => f.write_str("integer division by zero"),
            EvalError::TypeMismatch { context } => {
                write!(f, "internal type mismatch during {context}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl Value {
    /// The scalar type of the value (`None` for pointers).
    pub fn scalar_type(&self) -> Option<ScalarType> {
        use ScalarType::*;
        Some(match self {
            Value::Bool(_) => Bool,
            Value::I8(_) => Char,
            Value::U8(_) => UChar,
            Value::I16(_) => Short,
            Value::U16(_) => UShort,
            Value::I32(_) => Int,
            Value::U32(_) => UInt,
            Value::I64(_) => Long,
            Value::U64(_) => ULong,
            Value::F32(_) => Float,
            Value::F64(_) => Double,
            Value::Ptr(_) => return None,
        })
    }

    /// The zero/default value of a scalar type.
    pub fn zero(ty: ScalarType) -> Value {
        use ScalarType::*;
        match ty {
            Bool => Value::Bool(false),
            Char => Value::I8(0),
            UChar => Value::U8(0),
            Short => Value::I16(0),
            UShort => Value::U16(0),
            Int => Value::I32(0),
            UInt => Value::U32(0),
            Long => Value::I64(0),
            ULong => Value::U64(0),
            Float => Value::F32(0.0),
            Double => Value::F64(0.0),
        }
    }

    /// Interprets the value as an `i64`, sign- or zero-extending integers,
    /// truncating floats toward zero, mapping `bool` to 0/1.
    ///
    /// # Panics
    ///
    /// Panics on pointer values.
    pub fn as_i64(&self) -> i64 {
        match *self {
            Value::Bool(b) => b as i64,
            Value::I8(v) => v as i64,
            Value::U8(v) => v as i64,
            Value::I16(v) => v as i64,
            Value::U16(v) => v as i64,
            Value::I32(v) => v as i64,
            Value::U32(v) => v as i64,
            Value::I64(v) => v,
            Value::U64(v) => v as i64,
            Value::F32(v) => v as i64,
            Value::F64(v) => v as i64,
            Value::Ptr(_) => panic!("pointer value used as integer"),
        }
    }

    /// Interprets the value as an `f64`.
    ///
    /// # Panics
    ///
    /// Panics on pointer values.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Value::Bool(b) => b as u8 as f64,
            Value::I8(v) => v as f64,
            Value::U8(v) => v as f64,
            Value::I16(v) => v as f64,
            Value::U16(v) => v as f64,
            Value::I32(v) => v as f64,
            Value::U32(v) => v as f64,
            Value::I64(v) => v as f64,
            Value::U64(v) => v as f64,
            Value::F32(v) => v as f64,
            Value::F64(v) => v,
            Value::Ptr(_) => panic!("pointer value used as float"),
        }
    }

    /// Whether the value is "truthy" (non-zero / non-null), as in C
    /// conditions.
    pub fn is_truthy(&self) -> bool {
        match *self {
            Value::Bool(b) => b,
            Value::I8(v) => v != 0,
            Value::U8(v) => v != 0,
            Value::I16(v) => v != 0,
            Value::U16(v) => v != 0,
            Value::I32(v) => v != 0,
            Value::U32(v) => v != 0,
            Value::I64(v) => v != 0,
            Value::U64(v) => v != 0,
            Value::F32(v) => v != 0.0,
            Value::F64(v) => v != 0.0,
            Value::Ptr(_) => true,
        }
    }

    /// The pointer payload, if this is a pointer.
    pub fn as_ptr(&self) -> Option<Ptr> {
        match self {
            Value::Ptr(p) => Some(*p),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::I8(v) => write!(f, "{v}"),
            Value::U8(v) => write!(f, "{v}"),
            Value::I16(v) => write!(f, "{v}"),
            Value::U16(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::U32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Ptr(p) => write!(f, "{:?}+{}", p.space, p.byte_offset),
        }
    }
}

/// Converts `v` to scalar type `to` with C cast semantics.
///
/// # Panics
///
/// Panics if `v` is a pointer (pointer/scalar conversions are rejected by
/// sema).
pub fn convert(v: Value, to: ScalarType) -> Value {
    use ScalarType::*;
    if to == Bool {
        return Value::Bool(v.is_truthy());
    }
    match v {
        Value::F32(x) => float_to(x as f64, to, || x as f64),
        Value::F64(x) => float_to(x, to, || x),
        Value::Ptr(_) => panic!("pointer value in scalar conversion"),
        other => {
            let bits = other.as_i64();
            match to {
                Bool => unreachable!(),
                Char => Value::I8(bits as i8),
                UChar => Value::U8(bits as u8),
                Short => Value::I16(bits as i16),
                UShort => Value::U16(bits as u16),
                Int => Value::I32(bits as i32),
                UInt => Value::U32(bits as u32),
                Long => Value::I64(bits),
                ULong => Value::U64(bits as u64),
                Float => match other {
                    // Preserve full unsigned range.
                    Value::U64(u) => Value::F32(u as f32),
                    _ => Value::F32(bits as f32),
                },
                Double => match other {
                    Value::U64(u) => Value::F64(u as f64),
                    _ => Value::F64(bits as f64),
                },
            }
        }
    }
}

fn float_to(x: f64, to: ScalarType, exact: impl Fn() -> f64) -> Value {
    use ScalarType::*;
    match to {
        Bool => Value::Bool(x != 0.0),
        Char => Value::I8(x as i8),
        UChar => Value::U8(x as u8),
        Short => Value::I16(x as i16),
        UShort => Value::U16(x as u16),
        Int => Value::I32(x as i32),
        UInt => Value::U32(x as u32),
        Long => Value::I64(x as i64),
        ULong => Value::U64(x as u64),
        Float => Value::F32(exact() as f32),
        Double => Value::F64(exact()),
    }
}

macro_rules! int_binop {
    ($op:expr, $a:expr, $b:expr, $t:ident, $unsigned:expr) => {{
        let a = $a;
        let b = $b;
        let width_mask = (std::mem::size_of_val(&a) * 8 - 1) as u32;
        Ok(Value::$t(match $op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                a.wrapping_rem(b)
            }
            BinOp::BitAnd => a & b,
            BinOp::BitOr => a | b,
            BinOp::BitXor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & width_mask),
            BinOp::Shr => a.wrapping_shr(b as u32 & width_mask),
        }))
    }};
}

macro_rules! float_binop {
    ($op:expr, $a:expr, $b:expr, $t:ident) => {{
        let a = $a;
        let b = $b;
        Ok(Value::$t(match $op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Rem => a % b,
            _ => {
                return Err(EvalError::TypeMismatch {
                    context: "float bit operation",
                })
            }
        }))
    }};
}

/// Evaluates a binary value operation. Operands must have identical scalar
/// types (guaranteed by sema/codegen).
///
/// # Errors
///
/// Returns [`EvalError::DivisionByZero`] for integer `/ 0` or `% 0`, and
/// [`EvalError::TypeMismatch`] if operand variants disagree (compiler bug).
pub fn binary(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    match (a, b) {
        (Value::I8(x), Value::I8(y)) => int_binop!(op, x, y, I8, false),
        (Value::U8(x), Value::U8(y)) => int_binop!(op, x, y, U8, true),
        (Value::I16(x), Value::I16(y)) => int_binop!(op, x, y, I16, false),
        (Value::U16(x), Value::U16(y)) => int_binop!(op, x, y, U16, true),
        (Value::I32(x), Value::I32(y)) => int_binop!(op, x, y, I32, false),
        (Value::U32(x), Value::U32(y)) => int_binop!(op, x, y, U32, true),
        (Value::I64(x), Value::I64(y)) => int_binop!(op, x, y, I64, false),
        (Value::U64(x), Value::U64(y)) => int_binop!(op, x, y, U64, true),
        (Value::F32(x), Value::F32(y)) => float_binop!(op, x, y, F32),
        (Value::F64(x), Value::F64(y)) => float_binop!(op, x, y, F64),
        _ => Err(EvalError::TypeMismatch {
            context: "binary operation",
        }),
    }
}

/// Evaluates a comparison. Operands must have identical scalar types, or
/// both be pointers.
///
/// # Errors
///
/// Returns [`EvalError::TypeMismatch`] if operand variants disagree.
pub fn compare(op: CmpOp, a: Value, b: Value) -> Result<bool, EvalError> {
    use std::cmp::Ordering;
    let ord = match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(&y),
        (Value::I8(x), Value::I8(y)) => x.cmp(&y),
        (Value::U8(x), Value::U8(y)) => x.cmp(&y),
        (Value::I16(x), Value::I16(y)) => x.cmp(&y),
        (Value::U16(x), Value::U16(y)) => x.cmp(&y),
        (Value::I32(x), Value::I32(y)) => x.cmp(&y),
        (Value::U32(x), Value::U32(y)) => x.cmp(&y),
        (Value::I64(x), Value::I64(y)) => x.cmp(&y),
        (Value::U64(x), Value::U64(y)) => x.cmp(&y),
        (Value::F32(x), Value::F32(y)) => {
            return Ok(float_cmp(op, x.partial_cmp(&y)));
        }
        (Value::F64(x), Value::F64(y)) => {
            return Ok(float_cmp(op, x.partial_cmp(&y)));
        }
        (Value::Ptr(x), Value::Ptr(y)) => (x.buffer, x.byte_offset).cmp(&(y.buffer, y.byte_offset)),
        _ => {
            return Err(EvalError::TypeMismatch {
                context: "comparison",
            })
        }
    };
    Ok(match op {
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
    })
}

fn float_cmp(op: CmpOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::*;
    // IEEE semantics: all ordered comparisons with NaN are false; != is true.
    match (op, ord) {
        (CmpOp::Ne, None) => true,
        (_, None) => false,
        (CmpOp::Lt, Some(o)) => o == Less,
        (CmpOp::Le, Some(o)) => o != Greater,
        (CmpOp::Gt, Some(o)) => o == Greater,
        (CmpOp::Ge, Some(o)) => o != Less,
        (CmpOp::Eq, Some(o)) => o == Equal,
        (CmpOp::Ne, Some(o)) => o != Equal,
    }
}

/// Evaluates a unary value operation.
///
/// # Errors
///
/// Returns [`EvalError::TypeMismatch`] for an operator/operand mismatch
/// (compiler bug; sema rejects these statically).
pub fn unary(op: UnOp, v: Value) -> Result<Value, EvalError> {
    match op {
        UnOp::Not => Ok(Value::Bool(!v.is_truthy())),
        UnOp::Neg => Ok(match v {
            Value::I8(x) => Value::I8(x.wrapping_neg()),
            Value::U8(x) => Value::U8(x.wrapping_neg()),
            Value::I16(x) => Value::I16(x.wrapping_neg()),
            Value::U16(x) => Value::U16(x.wrapping_neg()),
            Value::I32(x) => Value::I32(x.wrapping_neg()),
            Value::U32(x) => Value::U32(x.wrapping_neg()),
            Value::I64(x) => Value::I64(x.wrapping_neg()),
            Value::U64(x) => Value::U64(x.wrapping_neg()),
            Value::F32(x) => Value::F32(-x),
            Value::F64(x) => Value::F64(-x),
            _ => {
                return Err(EvalError::TypeMismatch {
                    context: "negation",
                })
            }
        }),
        UnOp::BitNot => Ok(match v {
            Value::I8(x) => Value::I8(!x),
            Value::U8(x) => Value::U8(!x),
            Value::I16(x) => Value::I16(!x),
            Value::U16(x) => Value::U16(!x),
            Value::I32(x) => Value::I32(!x),
            Value::U32(x) => Value::U32(!x),
            Value::I64(x) => Value::I64(!x),
            Value::U64(x) => Value::U64(!x),
            _ => {
                return Err(EvalError::TypeMismatch {
                    context: "bitwise complement",
                })
            }
        }),
    }
}

/// Reads a scalar of type `ty` from the start of `bytes` (little-endian).
///
/// # Panics
///
/// Panics if `bytes` is shorter than the scalar's size.
pub fn read_scalar(bytes: &[u8], ty: ScalarType) -> Value {
    use ScalarType::*;
    match ty {
        Bool => Value::Bool(bytes[0] != 0),
        Char => Value::I8(bytes[0] as i8),
        UChar => Value::U8(bytes[0]),
        Short => Value::I16(i16::from_le_bytes([bytes[0], bytes[1]])),
        UShort => Value::U16(u16::from_le_bytes([bytes[0], bytes[1]])),
        Int => Value::I32(i32::from_le_bytes(bytes[..4].try_into().unwrap())),
        UInt => Value::U32(u32::from_le_bytes(bytes[..4].try_into().unwrap())),
        Long => Value::I64(i64::from_le_bytes(bytes[..8].try_into().unwrap())),
        ULong => Value::U64(u64::from_le_bytes(bytes[..8].try_into().unwrap())),
        Float => Value::F32(f32::from_le_bytes(bytes[..4].try_into().unwrap())),
        Double => Value::F64(f64::from_le_bytes(bytes[..8].try_into().unwrap())),
    }
}

/// Writes `v` (which must match `ty`) into the start of `bytes`
/// (little-endian).
///
/// # Panics
///
/// Panics if `bytes` is shorter than the scalar's size or if `v`'s variant
/// does not match `ty`.
pub fn write_scalar(bytes: &mut [u8], ty: ScalarType, v: Value) {
    use ScalarType::*;
    match (ty, v) {
        (Bool, Value::Bool(x)) => bytes[0] = x as u8,
        (Char, Value::I8(x)) => bytes[0] = x as u8,
        (UChar, Value::U8(x)) => bytes[0] = x,
        (Short, Value::I16(x)) => bytes[..2].copy_from_slice(&x.to_le_bytes()),
        (UShort, Value::U16(x)) => bytes[..2].copy_from_slice(&x.to_le_bytes()),
        (Int, Value::I32(x)) => bytes[..4].copy_from_slice(&x.to_le_bytes()),
        (UInt, Value::U32(x)) => bytes[..4].copy_from_slice(&x.to_le_bytes()),
        (Long, Value::I64(x)) => bytes[..8].copy_from_slice(&x.to_le_bytes()),
        (ULong, Value::U64(x)) => bytes[..8].copy_from_slice(&x.to_le_bytes()),
        (Float, Value::F32(x)) => bytes[..4].copy_from_slice(&x.to_le_bytes()),
        (Double, Value::F64(x)) => bytes[..8].copy_from_slice(&x.to_le_bytes()),
        (ty, v) => panic!("value {v:?} does not match scalar type {ty}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ScalarType::*;

    #[test]
    fn conversion_widen_and_narrow() {
        assert_eq!(convert(Value::I8(-1), Int), Value::I32(-1));
        assert_eq!(convert(Value::I32(257), Char), Value::I8(1));
        assert_eq!(convert(Value::I32(-1), UInt), Value::U32(u32::MAX));
        assert_eq!(convert(Value::F32(2.9), Int), Value::I32(2));
        assert_eq!(convert(Value::F64(-2.9), Int), Value::I32(-2));
        assert_eq!(convert(Value::I32(3), Float), Value::F32(3.0));
        assert_eq!(
            convert(Value::U64(u64::MAX), Double),
            Value::F64(u64::MAX as f64)
        );
        assert_eq!(convert(Value::I32(0), Bool), Value::Bool(false));
        assert_eq!(convert(Value::F32(0.5), Bool), Value::Bool(true));
        assert_eq!(convert(Value::Bool(true), Float), Value::F32(1.0));
    }

    #[test]
    fn float_to_int_saturates() {
        assert_eq!(convert(Value::F32(1e20), Int), Value::I32(i32::MAX));
        assert_eq!(convert(Value::F32(-1e20), Int), Value::I32(i32::MIN));
        assert_eq!(convert(Value::F32(f32::NAN), Int), Value::I32(0));
    }

    #[test]
    fn integer_arithmetic_wraps() {
        assert_eq!(
            binary(BinOp::Add, Value::I32(i32::MAX), Value::I32(1)).unwrap(),
            Value::I32(i32::MIN)
        );
        assert_eq!(
            binary(BinOp::Mul, Value::U8(200), Value::U8(2)).unwrap(),
            Value::U8(144)
        );
    }

    #[test]
    fn division_by_zero_is_error() {
        assert_eq!(
            binary(BinOp::Div, Value::I32(1), Value::I32(0)),
            Err(EvalError::DivisionByZero)
        );
        assert_eq!(
            binary(BinOp::Rem, Value::U64(1), Value::U64(0)),
            Err(EvalError::DivisionByZero)
        );
        // Float division by zero is IEEE infinity, not an error.
        assert_eq!(
            binary(BinOp::Div, Value::F32(1.0), Value::F32(0.0)).unwrap(),
            Value::F32(f32::INFINITY)
        );
    }

    #[test]
    fn shift_amounts_are_masked() {
        assert_eq!(
            binary(BinOp::Shl, Value::I32(1), Value::I32(33)).unwrap(),
            Value::I32(2)
        );
        assert_eq!(
            binary(BinOp::Shr, Value::U8(128), Value::U8(9)).unwrap(),
            Value::U8(64)
        );
    }

    #[test]
    fn signed_vs_unsigned_shift_right() {
        assert_eq!(
            binary(BinOp::Shr, Value::I32(-8), Value::I32(1)).unwrap(),
            Value::I32(-4)
        );
        assert_eq!(
            binary(BinOp::Shr, Value::U32(0x8000_0000), Value::U32(1)).unwrap(),
            Value::U32(0x4000_0000)
        );
    }

    #[test]
    fn comparisons_and_nan() {
        assert!(compare(CmpOp::Lt, Value::I32(-1), Value::I32(2)).unwrap());
        assert!(compare(CmpOp::Gt, Value::U32(3), Value::U32(2)).unwrap());
        assert!(!compare(CmpOp::Lt, Value::F32(f32::NAN), Value::F32(0.0)).unwrap());
        assert!(!compare(CmpOp::Eq, Value::F32(f32::NAN), Value::F32(f32::NAN)).unwrap());
        assert!(compare(CmpOp::Ne, Value::F32(f32::NAN), Value::F32(f32::NAN)).unwrap());
    }

    #[test]
    fn pointer_comparison_by_offset() {
        let p = |off| {
            Value::Ptr(Ptr {
                space: AddressSpace::Global,
                buffer: 0,
                byte_offset: off,
            })
        };
        assert!(compare(CmpOp::Lt, p(0), p(8)).unwrap());
        assert!(compare(CmpOp::Eq, p(4), p(4)).unwrap());
    }

    #[test]
    fn unary_operations() {
        assert_eq!(unary(UnOp::Neg, Value::F32(2.0)).unwrap(), Value::F32(-2.0));
        assert_eq!(
            unary(UnOp::Neg, Value::I32(i32::MIN)).unwrap(),
            Value::I32(i32::MIN)
        );
        assert_eq!(
            unary(UnOp::BitNot, Value::U8(0xF0)).unwrap(),
            Value::U8(0x0F)
        );
        assert_eq!(unary(UnOp::Not, Value::I32(0)).unwrap(), Value::Bool(true));
        assert_eq!(
            unary(UnOp::Not, Value::F64(1.5)).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn scalar_io_roundtrip_all_types() {
        let samples: Vec<(ScalarType, Value)> = vec![
            (Bool, Value::Bool(true)),
            (Char, Value::I8(-5)),
            (UChar, Value::U8(200)),
            (Short, Value::I16(-1234)),
            (UShort, Value::U16(60000)),
            (Int, Value::I32(-100000)),
            (UInt, Value::U32(4000000000)),
            (Long, Value::I64(-1i64 << 40)),
            (ULong, Value::U64(u64::MAX)),
            (Float, Value::F32(3.25)),
            (Double, Value::F64(-1.5e100)),
        ];
        for (ty, v) in samples {
            let mut buf = [0u8; 8];
            write_scalar(&mut buf, ty, v);
            assert_eq!(read_scalar(&buf, ty), v, "{ty}");
        }
    }

    #[test]
    fn truthiness() {
        assert!(Value::F64(-0.5).is_truthy());
        assert!(!Value::F32(0.0).is_truthy());
        assert!(!Value::U64(0).is_truthy());
        assert!(Value::I8(-1).is_truthy());
    }
}
