//! Token definitions for SkelCL C.

use std::fmt;

use crate::source::Span;

/// The kind of a lexed token.
///
/// Keyword and punctuation variants are self-describing (see
/// [`TokenKind::describe`]) and intentionally undocumented individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TokenKind {
    // Literals and identifiers ------------------------------------------------
    /// An identifier or keyword candidate, e.g. `func`, `x1`.
    Ident,
    /// An integer literal, e.g. `42`, `0xFF`, `7u`, `9L`.
    IntLit,
    /// A floating-point literal, e.g. `1.0`, `2.5f`, `1e-3`.
    FloatLit,
    /// A character literal, e.g. `'a'`, `'\n'`.
    CharLit,

    // Keywords ----------------------------------------------------------------
    KwVoid,
    KwBool,
    KwChar,
    KwUchar,
    KwShort,
    KwUshort,
    KwInt,
    KwUint,
    KwLong,
    KwUlong,
    KwFloat,
    KwDouble,
    /// `unsigned` (combines with a following base type).
    KwUnsigned,
    /// `signed` (combines with a following base type).
    KwSigned,
    KwConst,
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwDo,
    KwReturn,
    KwBreak,
    KwContinue,
    KwTrue,
    KwFalse,
    /// `__kernel` or `kernel`.
    KwKernel,
    /// `__global` or `global`.
    KwGlobal,
    /// `__local` or `local`.
    KwLocal,
    /// `__private` or `private`.
    KwPrivate,

    // Punctuation ---------------------------------------------------------
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Question,
    Colon,

    // Operators -------------------------------------------------------------
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    BangEq,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parse errors.
    pub fn describe(self) -> &'static str {
        use TokenKind::*;
        match self {
            Ident => "identifier",
            IntLit => "integer literal",
            FloatLit => "floating-point literal",
            CharLit => "character literal",
            KwVoid => "`void`",
            KwBool => "`bool`",
            KwChar => "`char`",
            KwUchar => "`uchar`",
            KwShort => "`short`",
            KwUshort => "`ushort`",
            KwInt => "`int`",
            KwUint => "`uint`",
            KwLong => "`long`",
            KwUlong => "`ulong`",
            KwFloat => "`float`",
            KwDouble => "`double`",
            KwUnsigned => "`unsigned`",
            KwSigned => "`signed`",
            KwConst => "`const`",
            KwIf => "`if`",
            KwElse => "`else`",
            KwFor => "`for`",
            KwWhile => "`while`",
            KwDo => "`do`",
            KwReturn => "`return`",
            KwBreak => "`break`",
            KwContinue => "`continue`",
            KwTrue => "`true`",
            KwFalse => "`false`",
            KwKernel => "`__kernel`",
            KwGlobal => "`__global`",
            KwLocal => "`__local`",
            KwPrivate => "`__private`",
            LParen => "`(`",
            RParen => "`)`",
            LBrace => "`{`",
            RBrace => "`}`",
            LBracket => "`[`",
            RBracket => "`]`",
            Comma => "`,`",
            Semi => "`;`",
            Question => "`?`",
            Colon => "`:`",
            Plus => "`+`",
            Minus => "`-`",
            Star => "`*`",
            Slash => "`/`",
            Percent => "`%`",
            Amp => "`&`",
            Pipe => "`|`",
            Caret => "`^`",
            Tilde => "`~`",
            Bang => "`!`",
            Lt => "`<`",
            Gt => "`>`",
            Le => "`<=`",
            Ge => "`>=`",
            EqEq => "`==`",
            BangEq => "`!=`",
            AmpAmp => "`&&`",
            PipePipe => "`||`",
            Shl => "`<<`",
            Shr => "`>>`",
            Eq => "`=`",
            PlusEq => "`+=`",
            MinusEq => "`-=`",
            StarEq => "`*=`",
            SlashEq => "`/=`",
            PercentEq => "`%=`",
            AmpEq => "`&=`",
            PipeEq => "`|=`",
            CaretEq => "`^=`",
            ShlEq => "`<<=`",
            ShrEq => "`>>=`",
            PlusPlus => "`++`",
            MinusMinus => "`--`",
            Eof => "end of input",
        }
    }

    /// Whether this token starts a type specifier.
    pub fn starts_type(self) -> bool {
        use TokenKind::*;
        matches!(
            self,
            KwVoid
                | KwBool
                | KwChar
                | KwUchar
                | KwShort
                | KwUshort
                | KwInt
                | KwUint
                | KwLong
                | KwUlong
                | KwFloat
                | KwDouble
                | KwUnsigned
                | KwSigned
                | KwConst
                | KwGlobal
                | KwLocal
                | KwPrivate
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

/// A lexed token: its kind and the source span it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification of the token text.
    pub kind: TokenKind,
    /// Where in the source the token appears.
    pub span: Span,
}

/// Maps an identifier spelling to a keyword kind, if it is one.
///
/// OpenCL address-space and kernel qualifiers are accepted both with and
/// without the double-underscore prefix, as in OpenCL C.
pub fn keyword(ident: &str) -> Option<TokenKind> {
    use TokenKind::*;
    Some(match ident {
        "void" => KwVoid,
        "bool" => KwBool,
        "char" => KwChar,
        "uchar" => KwUchar,
        "short" => KwShort,
        "ushort" => KwUshort,
        "int" => KwInt,
        "uint" => KwUint,
        "long" => KwLong,
        "ulong" => KwUlong,
        "float" => KwFloat,
        "double" => KwDouble,
        "unsigned" => KwUnsigned,
        "signed" => KwSigned,
        "const" => KwConst,
        "if" => KwIf,
        "else" => KwElse,
        "for" => KwFor,
        "while" => KwWhile,
        "do" => KwDo,
        "return" => KwReturn,
        "break" => KwBreak,
        "continue" => KwContinue,
        "true" => KwTrue,
        "false" => KwFalse,
        "__kernel" | "kernel" => KwKernel,
        "__global" | "global" => KwGlobal,
        "__local" | "local" => KwLocal,
        "__private" | "private" => KwPrivate,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve_with_and_without_prefix() {
        assert_eq!(keyword("__global"), Some(TokenKind::KwGlobal));
        assert_eq!(keyword("global"), Some(TokenKind::KwGlobal));
        assert_eq!(keyword("__kernel"), Some(TokenKind::KwKernel));
        assert_eq!(keyword("float"), Some(TokenKind::KwFloat));
        assert_eq!(keyword("funky"), None);
    }

    #[test]
    fn type_starters() {
        assert!(TokenKind::KwFloat.starts_type());
        assert!(TokenKind::KwConst.starts_type());
        assert!(TokenKind::KwGlobal.starts_type());
        assert!(!TokenKind::Ident.starts_type());
        assert!(!TokenKind::KwIf.starts_type());
    }
}
