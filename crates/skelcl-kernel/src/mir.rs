//! Mid-level IR: a control-flow graph of virtual-register instructions.
//!
//! The MIR sits between the typed HIR and the stack bytecode:
//!
//! ```text
//! HIR  --lower-->  MIR  --passes-->  MIR  --lower.rs-->  bytecode  --decode-->  VM
//! ```
//!
//! Design notes:
//!
//! * **SSA-lite**: every [`VReg`] is defined exactly once, but HIR locals
//!   stay mutable storage accessed through [`Inst::GetLocal`] /
//!   [`Inst::SetLocal`] — no phi nodes. Join-point values (ternaries,
//!   short-circuit logic) round-trip through temporary local slots, which
//!   the optimization passes later clean up.
//! * Blocks own their instructions and end in exactly one [`Terminator`].
//!   [`BlockId(0)`](BlockId) is the entry block.
//! * Local slot numbering matches the HIR (parameters first), so kernel
//!   argument binding and `__local`-array binding work unchanged.
//! * Barrier sites get program-unique ids at lowering time, in the same
//!   function/source order the legacy code generator uses.

use crate::builtins::{Builtin, BuiltinKind};
use crate::codegen::UNINIT_BUFFER;
use crate::fold::const_to_value;
use crate::hir::{self, BinOp, CmpOp, Expr, Place, Stmt, UnOp};
use crate::types::{AddressSpace, ScalarType, Type};
use crate::value::{Ptr, Value};

/// A virtual register: holds one scalar or pointer value, defined exactly
/// once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

/// Index of a basic block within a [`MirFunction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The index as `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One MIR instruction. Instructions that produce a value name their
/// destination register first.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = constant`.
    Const {
        /// Destination register.
        dst: VReg,
        /// The constant value.
        value: Value,
    },
    /// `dst = local[slot]` — read a mutable local slot.
    GetLocal {
        /// Destination register.
        dst: VReg,
        /// Local slot index.
        slot: u16,
    },
    /// `local[slot] = src` — write a mutable local slot.
    SetLocal {
        /// Local slot index.
        slot: u16,
        /// Source register.
        src: VReg,
    },
    /// `dst = op src` — unary value operation.
    Un {
        /// Destination register.
        dst: VReg,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: VReg,
    },
    /// `dst = lhs op rhs` — binary value operation.
    Bin {
        /// Destination register.
        dst: VReg,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// `dst = lhs op rhs` — comparison producing `bool`.
    Cmp {
        /// Destination register.
        dst: VReg,
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// `dst = (to)src` — scalar conversion.
    Convert {
        /// Destination register.
        dst: VReg,
        /// Target scalar type.
        to: ScalarType,
        /// Operand.
        src: VReg,
    },
    /// `dst = (bool)src` — truthiness conversion.
    ToBool {
        /// Destination register.
        dst: VReg,
        /// Operand.
        src: VReg,
    },
    /// Call of a user function.
    Call {
        /// Destination register (`None` when the result is discarded or the
        /// callee returns `void`).
        dst: Option<VReg>,
        /// Callee index in the program function table.
        func: u16,
        /// Arguments in order.
        args: Vec<VReg>,
        /// Whether the callee pushes a return value.
        returns_value: bool,
    },
    /// Call of a pure math builtin.
    CallPure {
        /// Destination register.
        dst: VReg,
        /// Which builtin.
        builtin: Builtin,
        /// Arguments in order.
        args: Vec<VReg>,
    },
    /// Work-item geometry query.
    WorkItem {
        /// Destination register.
        dst: VReg,
        /// Which query.
        builtin: Builtin,
        /// The dimension operand (absent for `get_work_dim`).
        dim: Option<VReg>,
    },
    /// Work-group barrier with a program-unique site id.
    Barrier {
        /// Unique site id.
        id: u32,
    },
    /// `dst = *ptr` — load through a pointer.
    LoadMem {
        /// Destination register.
        dst: VReg,
        /// Loaded element type.
        ty: ScalarType,
        /// Pointer operand.
        ptr: VReg,
    },
    /// `*ptr = value` — store through a pointer.
    StoreMem {
        /// Stored element type.
        ty: ScalarType,
        /// Pointer operand.
        ptr: VReg,
        /// Value operand.
        value: VReg,
    },
    /// `dst = ptr + count` — element-scaled pointer arithmetic.
    PtrOffset {
        /// Destination register.
        dst: VReg,
        /// Element byte size.
        size: u32,
        /// Pointer operand.
        ptr: VReg,
        /// Signed element count (`long`).
        count: VReg,
    },
    /// `dst = lhs - rhs` in elements (`long`).
    PtrDiff {
        /// Destination register.
        dst: VReg,
        /// Element byte size.
        size: u32,
        /// Left pointer.
        lhs: VReg,
        /// Right pointer.
        rhs: VReg,
    },
}

impl Inst {
    /// The destination register, if the instruction defines one.
    pub fn dst(&self) -> Option<VReg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::GetLocal { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Convert { dst, .. }
            | Inst::ToBool { dst, .. }
            | Inst::CallPure { dst, .. }
            | Inst::WorkItem { dst, .. }
            | Inst::LoadMem { dst, .. }
            | Inst::PtrOffset { dst, .. }
            | Inst::PtrDiff { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::SetLocal { .. } | Inst::Barrier { .. } | Inst::StoreMem { .. } => None,
        }
    }

    /// Replaces the destination register (used when cloning instructions).
    /// No-op for instructions that define none.
    pub fn set_dst(&mut self, new: VReg) {
        match self {
            Inst::Const { dst, .. }
            | Inst::GetLocal { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Convert { dst, .. }
            | Inst::ToBool { dst, .. }
            | Inst::CallPure { dst, .. }
            | Inst::WorkItem { dst, .. }
            | Inst::LoadMem { dst, .. }
            | Inst::PtrOffset { dst, .. }
            | Inst::PtrDiff { dst, .. } => *dst = new,
            Inst::Call { dst, .. } => *dst = Some(new),
            Inst::SetLocal { .. } | Inst::Barrier { .. } | Inst::StoreMem { .. } => {}
        }
    }

    /// Calls `f` for every register the instruction reads.
    pub fn for_each_use(&self, mut f: impl FnMut(VReg)) {
        match self {
            Inst::Const { .. } | Inst::GetLocal { .. } | Inst::Barrier { .. } => {}
            Inst::SetLocal { src, .. } => f(*src),
            Inst::Un { src, .. } | Inst::Convert { src, .. } | Inst::ToBool { src, .. } => f(*src),
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Call { args, .. } | Inst::CallPure { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            Inst::WorkItem { dim, .. } => {
                if let Some(d) = dim {
                    f(*d);
                }
            }
            Inst::LoadMem { ptr, .. } => f(*ptr),
            Inst::StoreMem { ptr, value, .. } => {
                f(*ptr);
                f(*value);
            }
            Inst::PtrOffset { ptr, count, .. } => {
                f(*ptr);
                f(*count);
            }
            Inst::PtrDiff { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
        }
    }

    /// Calls `f` with a mutable reference to every register the instruction
    /// reads (for operand rewriting).
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut VReg)) {
        match self {
            Inst::Const { .. } | Inst::GetLocal { .. } | Inst::Barrier { .. } => {}
            Inst::SetLocal { src, .. } => f(src),
            Inst::Un { src, .. } | Inst::Convert { src, .. } | Inst::ToBool { src, .. } => f(src),
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Call { args, .. } | Inst::CallPure { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::WorkItem { dim, .. } => {
                if let Some(d) = dim {
                    f(d);
                }
            }
            Inst::LoadMem { ptr, .. } => f(ptr),
            Inst::StoreMem { ptr, value, .. } => {
                f(ptr);
                f(value);
            }
            Inst::PtrOffset { ptr, count, .. } => {
                f(ptr);
                f(count);
            }
            Inst::PtrDiff { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
        }
    }

    /// Whether the instruction writes observable state (locals, memory,
    /// synchronisation, calls). Effect-free instructions may still fault
    /// (see [`Inst::can_fault`]).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::SetLocal { .. }
                | Inst::Barrier { .. }
                | Inst::StoreMem { .. }
                | Inst::Call { .. }
        )
    }

    /// Whether executing the instruction can raise a runtime error even
    /// though it has no side effects. `is_div_safe(vreg)` must report
    /// whether a divisor register is known non-faulting (a non-zero integer
    /// constant or any float constant).
    pub fn can_fault(&self, is_div_safe: impl Fn(VReg) -> bool) -> bool {
        match self {
            Inst::Bin {
                op: BinOp::Div | BinOp::Rem,
                rhs,
                ..
            } => !is_div_safe(*rhs),
            // Loads fault on out-of-bounds or uninitialised pointers.
            Inst::LoadMem { .. } => true,
            // Pointer difference errors on mismatched buffers.
            Inst::PtrDiff { .. } => true,
            _ => false,
        }
    }
}

/// The closing instruction of a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a boolean register.
    Branch {
        /// Condition register.
        cond: VReg,
        /// Successor when true.
        then_bb: BlockId,
        /// Successor when false.
        else_bb: BlockId,
    },
    /// Return from the function (value absent for `void`).
    Return(Option<VReg>),
    /// Control fell off the end of a non-void function (faults at runtime).
    MissingReturn,
    /// Abort the launch with an `int` error code.
    Trap {
        /// Error-code register.
        code: VReg,
    },
}

impl Terminator {
    /// The successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) | Terminator::MissingReturn | Terminator::Trap { .. } => vec![],
        }
    }

    /// Calls `f` with a mutable reference to every successor block id.
    pub fn for_each_succ_mut(&mut self, mut f: impl FnMut(&mut BlockId)) {
        match self {
            Terminator::Jump(t) => f(t),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                f(then_bb);
                f(else_bb);
            }
            Terminator::Return(_) | Terminator::MissingReturn | Terminator::Trap { .. } => {}
        }
    }

    /// Calls `f` for every register the terminator reads.
    pub fn for_each_use(&self, mut f: impl FnMut(VReg)) {
        match self {
            Terminator::Branch { cond, .. } => f(*cond),
            Terminator::Return(Some(v)) => f(*v),
            Terminator::Trap { code } => f(*code),
            Terminator::Jump(_) | Terminator::Return(None) | Terminator::MissingReturn => {}
        }
    }

    /// Calls `f` with a mutable reference to every register the terminator
    /// reads.
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut VReg)) {
        match self {
            Terminator::Branch { cond, .. } => f(cond),
            Terminator::Return(Some(v)) => f(v),
            Terminator::Trap { code } => f(code),
            Terminator::Jump(_) | Terminator::Return(None) | Terminator::MissingReturn => {}
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone)]
pub struct Block {
    /// The instructions, in execution order.
    pub insts: Vec<Inst>,
    /// The closing control transfer.
    pub term: Terminator,
}

/// One function in MIR form.
#[derive(Debug, Clone)]
pub struct MirFunction {
    /// Function name.
    pub name: String,
    /// Whether declared `__kernel`.
    pub is_kernel: bool,
    /// Number of parameter slots (the first locals).
    pub param_count: u16,
    /// Initial values for every local slot. The leading entries mirror the
    /// HIR locals (so argument/`__local`-array binding works unchanged);
    /// trailing entries are compiler temporaries.
    pub local_init: Vec<Value>,
    /// Basic blocks; [`BlockId(0)`](BlockId) is the entry.
    pub blocks: Vec<Block>,
    /// Number of virtual registers allocated (ids are `0..vreg_count`).
    pub vreg_count: u32,
    /// Whether the function returns `void`.
    pub returns_void: bool,
}

impl MirFunction {
    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let v = VReg(self.vreg_count);
        self.vreg_count += 1;
        v
    }

    /// Allocates a fresh temporary local slot (always written before read).
    pub fn new_temp_slot(&mut self) -> u16 {
        let slot = self.local_init.len() as u16;
        self.local_init.push(Value::I64(0));
        slot
    }

    /// Total instruction count across all blocks (terminators included).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }
}

/// A whole translation unit in MIR form.
#[derive(Debug, Clone)]
pub struct MirUnit {
    /// Functions, in HIR order (ids in `Call` instructions index this).
    pub functions: Vec<MirFunction>,
    /// Total number of barrier sites assigned across the unit.
    pub barrier_count: u32,
}

/// Lowers a type-checked HIR unit to MIR.
pub fn lower_unit(unit: &hir::Unit) -> MirUnit {
    let mut barrier_counter = 0u32;
    let functions = unit
        .functions
        .iter()
        .map(|f| FnLower::new(f, &mut barrier_counter).run())
        .collect();
    MirUnit {
        functions,
        barrier_count: barrier_counter,
    }
}

/// Deferred write-back of an increment/decrement result to its place.
type StoreBack<'a, 'b> = Box<dyn FnOnce(&mut FnLower<'a>, VReg) + 'b>;

/// Per-function HIR → MIR lowering.
struct FnLower<'a> {
    f: &'a hir::Function,
    out: MirFunction,
    /// Terminators assigned so far (parallel to `out.blocks` being built);
    /// `None` means the block is still open.
    terms: Vec<Option<Terminator>>,
    insts: Vec<Vec<Inst>>,
    cur: BlockId,
    loops: Vec<LoopCtx>,
    free_temps: Vec<u16>,
    barrier_counter: &'a mut u32,
}

struct LoopCtx {
    continue_bb: BlockId,
    break_bb: BlockId,
}

impl<'a> FnLower<'a> {
    fn new(f: &'a hir::Function, barrier_counter: &'a mut u32) -> Self {
        let local_init = f
            .locals
            .iter()
            .map(|l| match l.ty {
                Type::Scalar(s) => Value::zero(s),
                Type::Pointer { .. } => Value::Ptr(Ptr {
                    space: AddressSpace::Private,
                    buffer: UNINIT_BUFFER,
                    byte_offset: 0,
                }),
                Type::Void => unreachable!("no void locals"),
            })
            .collect();
        FnLower {
            f,
            out: MirFunction {
                name: f.name.clone(),
                is_kernel: f.is_kernel,
                param_count: f.param_count as u16,
                local_init,
                blocks: Vec::new(),
                vreg_count: 0,
                returns_void: f.return_type == Type::Void,
            },
            terms: vec![None],
            insts: vec![Vec::new()],
            cur: BlockId(0),
            loops: Vec::new(),
            free_temps: Vec::new(),
            barrier_counter,
        }
    }

    fn run(mut self) -> MirFunction {
        let body = self.f.body.clone();
        self.stmts(&body);
        // Seal the fall-through block with the implicit epilogue.
        let epilogue = if self.f.return_type == Type::Void {
            Terminator::Return(None)
        } else {
            Terminator::MissingReturn
        };
        self.seal(epilogue);
        // The seal above opened a trailing unreachable block; give it a
        // terminator too so every block is closed.
        let last = self.cur;
        self.terms[last.idx()] = Some(Terminator::MissingReturn);

        let mut out = self.out;
        out.blocks = self
            .insts
            .into_iter()
            .zip(self.terms)
            .map(|(insts, term)| Block {
                insts,
                term: term.expect("every block sealed"),
            })
            .collect();
        out
    }

    // ----- block plumbing --------------------------------------------------

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.insts.len() as u32);
        self.insts.push(Vec::new());
        self.terms.push(None);
        id
    }

    fn push(&mut self, inst: Inst) {
        self.insts[self.cur.idx()].push(inst);
    }

    /// Closes the current block with `t` and continues in a fresh
    /// (initially unreachable) block.
    fn seal(&mut self, t: Terminator) {
        debug_assert!(self.terms[self.cur.idx()].is_none(), "block sealed twice");
        self.terms[self.cur.idx()] = Some(t);
        self.cur = self.new_block();
    }

    /// Closes the current block with `t` and continues in `next`.
    fn seal_to(&mut self, t: Terminator, next: BlockId) {
        debug_assert!(self.terms[self.cur.idx()].is_none(), "block sealed twice");
        self.terms[self.cur.idx()] = Some(t);
        self.cur = next;
    }

    fn alloc_temp(&mut self) -> u16 {
        if let Some(t) = self.free_temps.pop() {
            t
        } else {
            self.out.new_temp_slot()
        }
    }

    fn free_temp(&mut self, t: u16) {
        self.free_temps.push(t);
    }

    fn def(&mut self, make: impl FnOnce(VReg) -> Inst) -> VReg {
        let dst = self.out.new_vreg();
        let inst = make(dst);
        self.push(inst);
        dst
    }

    // ----- statements ------------------------------------------------------

    fn stmts(&mut self, list: &[Stmt]) {
        for s in list {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Expr(e) => self.expr_effect(e),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let then_bb = self.new_block();
                let join_bb = self.new_block();
                let else_bb = if else_branch.is_empty() {
                    join_bb
                } else {
                    self.new_block()
                };
                self.lower_cond(cond, then_bb, else_bb);
                self.cur = then_bb;
                self.stmts(then_branch);
                self.seal_to(Terminator::Jump(join_bb), join_bb);
                if !else_branch.is_empty() {
                    self.cur = else_bb;
                    self.stmts(else_branch);
                    let t = Terminator::Jump(join_bb);
                    debug_assert!(self.terms[self.cur.idx()].is_none());
                    self.terms[self.cur.idx()] = Some(t);
                }
                self.cur = join_bb;
            }
            Stmt::Loop {
                cond,
                body,
                step,
                test_at_end,
            } => {
                let cond_bb = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let exit_bb = self.new_block();
                self.loops.push(LoopCtx {
                    continue_bb: step_bb,
                    break_bb: exit_bb,
                });
                if *test_at_end {
                    // do-while: body first, condition after the step.
                    self.seal_to(Terminator::Jump(body_bb), body_bb);
                    self.stmts(body);
                    self.seal_to(Terminator::Jump(step_bb), step_bb);
                    if let Some(step) = step {
                        self.expr_effect(step);
                    }
                    self.seal_to(Terminator::Jump(cond_bb), cond_bb);
                    self.lower_cond(cond, body_bb, exit_bb);
                } else {
                    self.seal_to(Terminator::Jump(cond_bb), cond_bb);
                    self.lower_cond(cond, body_bb, exit_bb);
                    self.cur = body_bb;
                    self.stmts(body);
                    self.seal_to(Terminator::Jump(step_bb), step_bb);
                    if let Some(step) = step {
                        self.expr_effect(step);
                    }
                    self.seal_to(Terminator::Jump(cond_bb), cond_bb);
                    // cond_bb is already sealed by lower_cond above; move on.
                }
                self.loops.pop();
                self.cur = exit_bb;
            }
            Stmt::Break => {
                let target = self
                    .loops
                    .last()
                    .expect("sema rejects stray break")
                    .break_bb;
                self.seal(Terminator::Jump(target));
            }
            Stmt::Continue => {
                let target = self
                    .loops
                    .last()
                    .expect("sema rejects stray continue")
                    .continue_bb;
                self.seal(Terminator::Jump(target));
            }
            Stmt::Return(Some(e)) => {
                let v = self.expr(e);
                self.seal(Terminator::Return(Some(v)));
            }
            Stmt::Return(None) => self.seal(Terminator::Return(None)),
        }
    }

    /// Lowers a boolean condition with direct branching: control reaches
    /// `t_bb` when the condition is truthy and `f_bb` otherwise. Seals the
    /// current block.
    fn lower_cond(&mut self, e: &Expr, t_bb: BlockId, f_bb: BlockId) {
        match e {
            Expr::Logical {
                is_and, lhs, rhs, ..
            } => {
                let mid = self.new_block();
                if *is_and {
                    self.lower_cond(lhs, mid, f_bb);
                } else {
                    self.lower_cond(lhs, t_bb, mid);
                }
                self.cur = mid;
                self.lower_cond(rhs, t_bb, f_bb);
            }
            Expr::Unary {
                op: UnOp::Not,
                expr,
                ..
            } => self.lower_cond(expr, f_bb, t_bb),
            Expr::Const { value, .. } => {
                let truthy = const_to_value(*value).is_truthy();
                self.seal_to(Terminator::Jump(if truthy { t_bb } else { f_bb }), t_bb);
                // `seal_to` left `cur` pointing at t_bb only as a dummy; the
                // caller always re-targets `cur` right after lower_cond.
            }
            other => {
                let cond = self.expr(other);
                self.seal_to(
                    Terminator::Branch {
                        cond,
                        then_bb: t_bb,
                        else_bb: f_bb,
                    },
                    t_bb,
                );
            }
        }
    }

    /// Lowers an expression for its side effects, discarding the value.
    fn expr_effect(&mut self, e: &Expr) {
        match e {
            Expr::Assign { place, value, .. } => {
                self.lower_assign(place, value);
            }
            Expr::IncDec {
                place,
                ty,
                is_inc,
                is_post,
                ..
            } => {
                self.lower_incdec(place, *ty, *is_inc, *is_post);
            }
            Expr::Call { func, args, ty, .. } => {
                let argv: Vec<VReg> = args.iter().map(|a| self.expr(a)).collect();
                let returns_value = *ty != Type::Void;
                self.push(Inst::Call {
                    dst: None,
                    func: func.0 as u16,
                    args: argv,
                    returns_value,
                });
            }
            Expr::BuiltinCall { builtin, args, .. } if builtin.kind() == BuiltinKind::Barrier => {
                // The flags operand is evaluated (it may have effects in
                // principle) and discarded; the barrier id is static.
                let _ = self.expr(&args[0]);
                let id = *self.barrier_counter;
                *self.barrier_counter += 1;
                self.push(Inst::Barrier { id });
            }
            Expr::BuiltinCall { builtin, args, .. }
                if matches!(builtin.kind(), BuiltinKind::Trap | BuiltinKind::TrapValue) =>
            {
                let code = self.expr(&args[0]);
                self.seal(Terminator::Trap { code });
            }
            other if other.ty() == Type::Void => {
                unreachable!("void expression not handled: {other:?}")
            }
            other => {
                let _ = self.expr(other);
            }
        }
    }

    // ----- expressions -----------------------------------------------------

    /// Lowers `e`, returning the register holding its value.
    fn expr(&mut self, e: &Expr) -> VReg {
        match e {
            Expr::Const { value, .. } => {
                let v = const_to_value(*value);
                self.def(|dst| Inst::Const { dst, value: v })
            }
            Expr::Local { id, .. } => {
                let slot = id.0 as u16;
                self.def(|dst| Inst::GetLocal { dst, slot })
            }
            Expr::Unary { op, expr, .. } => {
                let src = self.expr(expr);
                let op = *op;
                self.def(|dst| Inst::Un { dst, op, src })
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                let op = *op;
                self.def(|dst| Inst::Bin {
                    dst,
                    op,
                    lhs: l,
                    rhs: r,
                })
            }
            Expr::Compare { op, lhs, rhs, .. } => {
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                let op = *op;
                self.def(|dst| Inst::Cmp {
                    dst,
                    op,
                    lhs: l,
                    rhs: r,
                })
            }
            Expr::Logical { .. } => {
                // Value position: route the boolean through a temp slot via
                // direct branch lowering (the passes clean this up).
                let tmp = self.alloc_temp();
                let t_bb = self.new_block();
                let f_bb = self.new_block();
                let join = self.new_block();
                self.lower_cond(e, t_bb, f_bb);
                self.cur = t_bb;
                let vt = self.def(|dst| Inst::Const {
                    dst,
                    value: Value::Bool(true),
                });
                self.push(Inst::SetLocal { slot: tmp, src: vt });
                self.seal_to(Terminator::Jump(join), f_bb);
                let vf = self.def(|dst| Inst::Const {
                    dst,
                    value: Value::Bool(false),
                });
                self.push(Inst::SetLocal { slot: tmp, src: vf });
                self.seal_to(Terminator::Jump(join), join);
                self.free_temp(tmp);
                self.def(|dst| Inst::GetLocal { dst, slot: tmp })
            }
            Expr::Convert { to, expr, .. } => {
                let src = self.expr(expr);
                if *to == ScalarType::Bool {
                    self.def(|dst| Inst::ToBool { dst, src })
                } else {
                    let to = *to;
                    self.def(|dst| Inst::Convert { dst, to, src })
                }
            }
            Expr::Assign { place, value, .. } => self.lower_assign(place, value),
            Expr::IncDec {
                place,
                ty,
                is_inc,
                is_post,
                ..
            } => self.lower_incdec(place, *ty, *is_inc, *is_post),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                let tmp = self.alloc_temp();
                let t_bb = self.new_block();
                let e_bb = self.new_block();
                let join = self.new_block();
                self.lower_cond(cond, t_bb, e_bb);
                self.cur = t_bb;
                let vt = self.expr(then_expr);
                self.push(Inst::SetLocal { slot: tmp, src: vt });
                self.seal_to(Terminator::Jump(join), e_bb);
                let ve = self.expr(else_expr);
                self.push(Inst::SetLocal { slot: tmp, src: ve });
                self.seal_to(Terminator::Jump(join), join);
                self.free_temp(tmp);
                self.def(|dst| Inst::GetLocal { dst, slot: tmp })
            }
            Expr::Call { func, args, ty, .. } => {
                let argv: Vec<VReg> = args.iter().map(|a| self.expr(a)).collect();
                debug_assert_ne!(*ty, Type::Void, "void call in value position");
                let func = func.0 as u16;
                let dst = self.out.new_vreg();
                self.push(Inst::Call {
                    dst: Some(dst),
                    func,
                    args: argv,
                    returns_value: true,
                });
                dst
            }
            Expr::BuiltinCall {
                builtin, args, ty, ..
            } => match builtin.kind() {
                BuiltinKind::WorkItemQuery => {
                    let dim = self.expr(&args[0]);
                    let b = *builtin;
                    self.def(|dst| Inst::WorkItem {
                        dst,
                        builtin: b,
                        dim: Some(dim),
                    })
                }
                BuiltinKind::WorkDim => {
                    let b = *builtin;
                    self.def(|dst| Inst::WorkItem {
                        dst,
                        builtin: b,
                        dim: None,
                    })
                }
                BuiltinKind::TrapValue => {
                    // The trap aborts; the continuation is unreachable, but
                    // the expression still needs a register of its type.
                    let code = self.expr(&args[0]);
                    self.seal(Terminator::Trap { code });
                    let zero = Value::zero(ty.as_scalar().unwrap_or(ScalarType::Int));
                    self.def(|dst| Inst::Const { dst, value: zero })
                }
                BuiltinKind::Barrier | BuiltinKind::Trap => {
                    unreachable!("void builtin in value position")
                }
                _ => {
                    let argv: Vec<VReg> = args.iter().map(|a| self.expr(a)).collect();
                    let b = *builtin;
                    self.def(|dst| Inst::CallPure {
                        dst,
                        builtin: b,
                        args: argv,
                    })
                }
            },
            Expr::PtrOffset { ptr, offset, .. } => {
                let p = self.expr(ptr);
                let c = self.expr(offset);
                let size = pointee_of(ptr.ty()).size_bytes() as u32;
                self.def(|dst| Inst::PtrOffset {
                    dst,
                    size,
                    ptr: p,
                    count: c,
                })
            }
            Expr::PtrDiff { lhs, rhs, .. } => {
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                let size = pointee_of(lhs.ty()).size_bytes() as u32;
                self.def(|dst| Inst::PtrDiff {
                    dst,
                    size,
                    lhs: l,
                    rhs: r,
                })
            }
            Expr::Load { ptr, elem, .. } => {
                let p = self.expr(ptr);
                let ty = *elem;
                self.def(|dst| Inst::LoadMem { dst, ty, ptr: p })
            }
        }
    }

    /// Lowers an assignment, returning the register holding the stored
    /// value. Pointer operands are evaluated before the value (matching the
    /// legacy code generator's effect order).
    fn lower_assign(&mut self, place: &Place, value: &Expr) -> VReg {
        match place {
            Place::Local(id) => {
                let v = self.expr(value);
                self.push(Inst::SetLocal {
                    slot: id.0 as u16,
                    src: v,
                });
                v
            }
            Place::Deref { ptr, elem } => {
                let p = self.expr(ptr);
                let v = self.expr(value);
                self.push(Inst::StoreMem {
                    ty: *elem,
                    ptr: p,
                    value: v,
                });
                v
            }
        }
    }

    /// Lowers `++`/`--`, returning the old (`is_post`) or new value.
    fn lower_incdec(&mut self, place: &Place, ty: Type, is_inc: bool, is_post: bool) -> VReg {
        let (old, store): (VReg, StoreBack<'a, '_>) = match place {
            Place::Local(id) => {
                let slot = id.0 as u16;
                let old = self.def(|dst| Inst::GetLocal { dst, slot });
                (
                    old,
                    Box::new(move |this: &mut Self, v: VReg| {
                        this.push(Inst::SetLocal { slot, src: v });
                    }),
                )
            }
            Place::Deref { ptr, elem } => {
                let p = self.expr(ptr);
                let elem = *elem;
                let old = self.def(|dst| Inst::LoadMem {
                    dst,
                    ty: elem,
                    ptr: p,
                });
                (
                    old,
                    Box::new(move |this: &mut Self, v: VReg| {
                        this.push(Inst::StoreMem {
                            ty: elem,
                            ptr: p,
                            value: v,
                        });
                    }),
                )
            }
        };

        let new = match ty {
            Type::Scalar(s) => {
                let one = crate::codegen::one_of(s);
                let one_v = self.def(|dst| Inst::Const { dst, value: one });
                let op = if is_inc { BinOp::Add } else { BinOp::Sub };
                self.def(|dst| Inst::Bin {
                    dst,
                    op,
                    lhs: old,
                    rhs: one_v,
                })
            }
            Type::Pointer { pointee, .. } => {
                let step = Value::I64(if is_inc { 1 } else { -1 });
                let step_v = self.def(|dst| Inst::Const { dst, value: step });
                let size = pointee.size_bytes() as u32;
                self.def(|dst| Inst::PtrOffset {
                    dst,
                    size,
                    ptr: old,
                    count: step_v,
                })
            }
            Type::Void => unreachable!("sema rejects void inc/dec"),
        };
        store(self, new);
        if is_post {
            old
        } else {
            new
        }
    }
}

fn pointee_of(ty: Type) -> ScalarType {
    match ty {
        Type::Pointer { pointee, .. } => pointee,
        other => unreachable!("expected pointer type, got {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use crate::parser::parse;
    use crate::sema::analyze;
    use crate::source::SourceFile;

    fn lower(src: &str) -> MirUnit {
        let f = SourceFile::new("t.cl", src);
        let mut d = Diagnostics::new();
        let tu = parse(&f, &mut d);
        let unit = analyze(&tu, &mut d).unwrap_or_else(|| panic!("{}", d.render(&f)));
        lower_unit(&unit)
    }

    #[test]
    fn simple_function_lowers_to_one_return() {
        let u = lower("float f(float x){ return -x; }");
        let f = &u.functions[0];
        assert_eq!(f.param_count, 1);
        assert!(!f.returns_void);
        let entry = &f.blocks[0];
        assert!(matches!(entry.term, Terminator::Return(Some(_))));
        assert!(entry
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Un { op: UnOp::Neg, .. })));
    }

    #[test]
    fn if_produces_branch() {
        let u = lower("int f(int x){ if (x > 0) return 1; return 2; }");
        let f = &u.functions[0];
        assert!(f
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Branch { .. })));
    }

    #[test]
    fn loop_has_backedge_structure() {
        let u =
            lower("int f(int n){ int s = 0; for (int i = 0; i < n; i++) s = s + i; return s; }");
        let f = &u.functions[0];
        // Some block jumps to an earlier block (the loop back edge).
        let has_backedge = f.blocks.iter().enumerate().any(|(i, b)| {
            b.term
                .successors()
                .iter()
                .any(|s| s.idx() <= i && matches!(b.term, Terminator::Jump(_)))
        });
        assert!(has_backedge);
    }

    #[test]
    fn barrier_sites_get_unique_ids() {
        let u = lower(
            "__kernel void k(){
                barrier(CLK_LOCAL_MEM_FENCE);
                barrier(CLK_LOCAL_MEM_FENCE);
            }",
        );
        let mut ids = vec![];
        for b in &u.functions[0].blocks {
            for i in &b.insts {
                if let Inst::Barrier { id } = i {
                    ids.push(*id);
                }
            }
        }
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
        assert_eq!(u.barrier_count, 2);
    }

    #[test]
    fn vregs_are_defined_once() {
        let u = lower(
            "int f(int n){ int s = 0; for (int i = 0; i < n; i++) { if (i > 2 && i < 7) s += i; } return s; }",
        );
        let f = &u.functions[0];
        let mut defined = vec![false; f.vreg_count as usize];
        for b in &f.blocks {
            for i in &b.insts {
                if let Some(d) = i.dst() {
                    assert!(!defined[d.0 as usize], "vreg {d:?} defined twice");
                    defined[d.0 as usize] = true;
                }
            }
        }
    }
}
