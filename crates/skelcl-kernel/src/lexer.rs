//! Hand-written lexer for SkelCL C.
//!
//! Produces a flat token stream with spans; malformed input is reported
//! through [`Diagnostics`] and lexing continues so that several errors can be
//! reported in one build, as vendor OpenCL compilers do.

use crate::diag::Diagnostics;
use crate::source::{SourceFile, Span};
use crate::token::{keyword, Token, TokenKind};

/// Lexes `file` into tokens, appending problems to `diags`.
///
/// The returned stream always ends with a single [`TokenKind::Eof`] token.
pub fn lex(file: &SourceFile, diags: &mut Diagnostics) -> Vec<Token> {
    Lexer {
        src: file.text().as_bytes(),
        file,
        pos: 0,
        diags,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    file: &'a SourceFile,
    pos: usize,
    diags: &'a mut Diagnostics,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos as u32;
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::point(start),
                });
                return out;
            };
            let kind = self.scan_token(c);
            let span = Span::new(start, self.pos as u32);
            if let Some(kind) = kind {
                out.push(Token { kind, span });
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    /// Consumes `c` if it is next, returning whether it was.
    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == b'*' && self.eat(b'/') {
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        self.diags
                            .error(Span::new(start, start + 2), "unterminated block comment");
                    }
                }
                _ => return,
            }
        }
    }

    fn scan_token(&mut self, first: u8) -> Option<TokenKind> {
        use TokenKind::*;
        let start = self.pos;
        self.pos += 1;
        let kind = match first {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b',' => Comma,
            b';' => Semi,
            b'?' => Question,
            b':' => Colon,
            b'~' => Tilde,
            b'+' => {
                if self.eat(b'+') {
                    PlusPlus
                } else if self.eat(b'=') {
                    PlusEq
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.eat(b'-') {
                    MinusMinus
                } else if self.eat(b'=') {
                    MinusEq
                } else {
                    Minus
                }
            }
            b'*' => {
                if self.eat(b'=') {
                    StarEq
                } else {
                    Star
                }
            }
            b'/' => {
                if self.eat(b'=') {
                    SlashEq
                } else {
                    Slash
                }
            }
            b'%' => {
                if self.eat(b'=') {
                    PercentEq
                } else {
                    Percent
                }
            }
            b'&' => {
                if self.eat(b'&') {
                    AmpAmp
                } else if self.eat(b'=') {
                    AmpEq
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.eat(b'|') {
                    PipePipe
                } else if self.eat(b'=') {
                    PipeEq
                } else {
                    Pipe
                }
            }
            b'^' => {
                if self.eat(b'=') {
                    CaretEq
                } else {
                    Caret
                }
            }
            b'!' => {
                if self.eat(b'=') {
                    BangEq
                } else {
                    Bang
                }
            }
            b'=' => {
                if self.eat(b'=') {
                    EqEq
                } else {
                    Eq
                }
            }
            b'<' => {
                if self.eat(b'<') {
                    if self.eat(b'=') {
                        ShlEq
                    } else {
                        Shl
                    }
                } else if self.eat(b'=') {
                    Le
                } else {
                    Lt
                }
            }
            b'>' => {
                if self.eat(b'>') {
                    if self.eat(b'=') {
                        ShrEq
                    } else {
                        Shr
                    }
                } else if self.eat(b'=') {
                    Ge
                } else {
                    Gt
                }
            }
            b'\'' => return Some(self.scan_char_lit(start)),
            c if c.is_ascii_digit() => return Some(self.scan_number(start)),
            b'.' if self.peek().is_some_and(|c| c.is_ascii_digit()) => {
                return Some(self.scan_number(start))
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                while self
                    .peek()
                    .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("identifier bytes are ASCII");
                keyword(text).unwrap_or(Ident)
            }
            _ => {
                let span = Span::new(start as u32, self.pos as u32);
                let snippet = self.file.snippet(span);
                self.diags
                    .error(span, format!("unexpected character `{snippet}`"));
                return None;
            }
        };
        Some(kind)
    }

    /// Scans an integer or floating-point literal starting at `start`.
    fn scan_number(&mut self, start: usize) -> TokenKind {
        self.pos = start;
        // Hexadecimal integers.
        if self.peek() == Some(b'0') && matches!(self.peek_at(1), Some(b'x' | b'X')) {
            self.pos += 2;
            let digits_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            if self.pos == digits_start {
                self.diags.error(
                    Span::new(start as u32, self.pos as u32),
                    "hexadecimal literal needs at least one digit",
                );
            }
            self.eat_int_suffix();
            return TokenKind::IntLit;
        }

        let mut is_float = false;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') && self.peek_at(1) != Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let mut look = 1;
            if matches!(self.peek_at(1), Some(b'+' | b'-')) {
                look = 2;
            }
            if self.peek_at(look).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.pos += look;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        if is_float {
            // Optional f/F (float) or no suffix (double).
            if matches!(self.peek(), Some(b'f' | b'F')) {
                self.pos += 1;
            }
            TokenKind::FloatLit
        } else {
            if matches!(self.peek(), Some(b'f' | b'F')) {
                // `1f` style literal: accept as float for convenience.
                self.pos += 1;
                return TokenKind::FloatLit;
            }
            self.eat_int_suffix();
            TokenKind::IntLit
        }
    }

    fn eat_int_suffix(&mut self) {
        // Accept u/U and l/L in either order, at most one each.
        if matches!(self.peek(), Some(b'u' | b'U')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'l' | b'L')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'u' | b'U')) {
            self.pos += 1;
        }
    }

    fn scan_char_lit(&mut self, start: usize) -> TokenKind {
        // Opening quote already consumed.
        match self.bump() {
            Some(b'\\') => {
                self.bump();
            }
            Some(b'\'') | None => {
                self.diags.error(
                    Span::new(start as u32, self.pos as u32),
                    "empty character literal",
                );
                return TokenKind::CharLit;
            }
            Some(_) => {}
        }
        if !self.eat(b'\'') {
            self.diags.error(
                Span::new(start as u32, self.pos as u32),
                "unterminated character literal",
            );
        }
        TokenKind::CharLit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let f = SourceFile::new("t.cl", src);
        let mut d = Diagnostics::new();
        let toks = lex(&f, &mut d);
        assert!(!d.has_errors(), "unexpected lex errors: {}", d.render(&f));
        toks.into_iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        let f = SourceFile::new("t.cl", src);
        let mut d = Diagnostics::new();
        let toks = lex(&f, &mut d);
        assert!(!d.has_errors());
        toks.iter()
            .filter(|t| t.kind != TokenKind::Eof)
            .map(|t| f.snippet(t.span).to_string())
            .collect()
    }

    #[test]
    fn lexes_simple_function() {
        use TokenKind::*;
        assert_eq!(
            kinds("float func(float x){ return -x; }"),
            vec![
                KwFloat, Ident, LParen, KwFloat, Ident, RParen, LBrace, KwReturn, Minus, Ident,
                Semi, RBrace, Eof
            ]
        );
    }

    #[test]
    fn maximal_munch_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("a<<=b >>= c << >> <= >= == != && || ++ --"),
            vec![
                Ident, ShlEq, Ident, ShrEq, Ident, Shl, Shr, Le, Ge, EqEq, BangEq, AmpAmp,
                PipePipe, PlusPlus, MinusMinus, Eof
            ]
        );
    }

    #[test]
    fn numbers_classified() {
        use TokenKind::*;
        assert_eq!(
            kinds("0 42 0xFF 7u 9L 1.0 2.5f .5 1e-3 3E+4f 1f"),
            vec![
                IntLit, IntLit, IntLit, IntLit, IntLit, FloatLit, FloatLit, FloatLit, FloatLit,
                FloatLit, FloatLit, Eof
            ]
        );
    }

    #[test]
    fn number_texts_preserved() {
        assert_eq!(texts("1.5f+2"), vec!["1.5f", "+", "2"]);
        assert_eq!(texts("0xABu"), vec!["0xABu"]);
    }

    #[test]
    fn comments_are_skipped() {
        use TokenKind::*;
        assert_eq!(
            kinds("a // line comment\n/* block\n comment */ b"),
            vec![Ident, Ident, Eof]
        );
    }

    #[test]
    fn char_literals() {
        use TokenKind::*;
        assert_eq!(
            kinds(r"'a' '\n' '\\'"),
            vec![CharLit, CharLit, CharLit, Eof]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        let f = SourceFile::new("t.cl", "a /* never closed");
        let mut d = Diagnostics::new();
        lex(&f, &mut d);
        assert!(d.has_errors());
        assert!(d.render(&f).contains("unterminated block comment"));
    }

    #[test]
    fn unexpected_character_reported_and_skipped() {
        let f = SourceFile::new("t.cl", "a @ b");
        let mut d = Diagnostics::new();
        let toks = lex(&f, &mut d);
        assert!(d.has_errors());
        // Lexing continued past the bad character.
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Ident).count(),
            2
        );
    }

    #[test]
    fn field_access_not_supported_so_dot_digit_is_float() {
        use TokenKind::*;
        assert_eq!(
            kinds("x[ .25 ]"),
            vec![Ident, LBracket, FloatLit, RBracket, Eof]
        );
    }

    #[test]
    fn eof_span_at_end() {
        let f = SourceFile::new("t.cl", "ab");
        let mut d = Diagnostics::new();
        let toks = lex(&f, &mut d);
        let eof = toks.last().unwrap();
        assert_eq!(eof.kind, TokenKind::Eof);
        assert_eq!(eof.span, Span::point(2));
    }

    #[test]
    fn empty_char_literal_is_error() {
        let f = SourceFile::new("t.cl", "''");
        let mut d = Diagnostics::new();
        lex(&f, &mut d);
        assert!(d.has_errors());
    }
}
