//! The asynchronous execution engine: declarative launch plans.
//!
//! Every skeleton describes its work as a [`LaunchPlan`] — a small DAG of
//! transfers and kernel launches with explicit event dependencies — and
//! hands it to [`LaunchPlan::execute`], which enqueues each node on its
//! device's asynchronous command queue (`vgpu` runs one worker thread per
//! queue). Nodes on different devices run concurrently; dependencies are
//! expressed through `vgpu` event wait-lists, so uploads on one device
//! overlap kernels on another without any host-side threads.
//!
//! Bookkeeping rides on event **completion callbacks** rather than on
//! blocking waits:
//!
//! * profiler spans for kernels and transfers are recorded the moment the
//!   command retires on its queue worker (see `SKELCL_PROFILE`), and every
//!   wait-list dependency becomes a Chrome-trace **flow edge** between the
//!   dependency's span and the dependent's (causal arrows in the trace);
//! * plan-node completions feed the flight recorder (`SKELCL_FLIGHT`);
//! * the scheduler's throughput model is fed once per plan and device,
//!   when the device's last kernel of the plan completes.
//!
//! Flow edges need the dependency's span id inside the dependent's
//! callback. That is race-free by construction: a dependent command only
//! starts after `Event::wait` on its dependency returns, and `vgpu` runs an
//! event's completion callbacks *before* releasing waiters — so the
//! dependency's slot in the per-plan span-id table is always filled first.
//!
//! The callbacks deliberately capture only the cheap, `Clone` observability
//! handles ([`skelcl_profile::Profiler`], [`crate::Scheduler`]) — never the
//! [`Context`] itself, which would let a queue worker drop the context (and
//! thus join itself) from inside a callback.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use skelcl_profile::FlightKind;
use vgpu::{DeviceBuffer, Event, HostRead, KernelArg, NdRange};

use crate::context::Context;
use crate::error::Result;
use crate::exec::nd_range_label;

/// Handle to one node of a [`LaunchPlan`], used to declare dependencies
/// and to collect read results from the finished run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// The node's position in the plan (nodes are enqueued in this order).
    pub fn index(self) -> usize {
        self.0
    }
}

enum PlanOp {
    Kernel {
        device: usize,
        program: skelcl_kernel::Program,
        kernel: String,
        args: Vec<KernelArg>,
        range: NdRange,
        /// Distribution units this launch owns — summed per device and fed
        /// to the scheduler when the device's last kernel completes.
        units: usize,
    },
    Write {
        device: usize,
        buffer: DeviceBuffer,
        offset: usize,
        bytes: Vec<u8>,
    },
    Read {
        device: usize,
        buffer: DeviceBuffer,
        offset: usize,
        len: usize,
    },
}

impl PlanOp {
    fn device(&self) -> usize {
        match self {
            PlanOp::Kernel { device, .. }
            | PlanOp::Write { device, .. }
            | PlanOp::Read { device, .. } => *device,
        }
    }
}

struct PlanNode {
    op: PlanOp,
    deps: Vec<NodeId>,
}

/// A declarative description of one skeleton execution: kernel launches,
/// uploads and readbacks with explicit dependencies.
///
/// Nodes may only depend on earlier nodes (the builder enforces it), so a
/// plan is a DAG by construction and [`LaunchPlan::execute`] can enqueue
/// it in index order — every wait-list refers to an already-enqueued
/// event, which rules out enqueue-time deadlocks.
#[derive(Default)]
pub struct LaunchPlan {
    nodes: Vec<PlanNode>,
    /// Feed the scheduler one sample per kernel node instead of one
    /// aggregate per device — the streaming executor's per-chunk EWMA
    /// feedback, where every chunk is an independent throughput sample.
    per_kernel_observations: bool,
}

impl std::fmt::Debug for LaunchPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaunchPlan")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl LaunchPlan {
    /// An empty plan.
    pub fn new() -> Self {
        LaunchPlan::default()
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Switches scheduler feedback from one aggregate sample per device to
    /// one sample per kernel node with non-zero `units`. Chunked
    /// (streaming) plans use this so the adaptive scheduler's EWMA keeps
    /// tracking per-chunk throughput under pipelining.
    pub fn observe_per_kernel(&mut self) {
        self.per_kernel_observations = true;
    }

    fn push(&mut self, op: PlanOp, deps: &[NodeId]) -> NodeId {
        let id = NodeId(self.nodes.len());
        for dep in deps {
            assert!(
                dep.0 < id.0,
                "plan node {} depends on later node {}",
                id.0,
                dep.0
            );
        }
        self.nodes.push(PlanNode {
            op,
            deps: deps.to_vec(),
        });
        id
    }

    /// Adds a kernel launch on `device`. `units` is the number of
    /// distribution units the launch owns (0 for helper launches that
    /// should not count as scheduler measurements).
    ///
    /// # Panics
    ///
    /// Panics if a dependency refers to a node not yet in the plan.
    #[allow(clippy::too_many_arguments)]
    pub fn kernel(
        &mut self,
        device: usize,
        program: &skelcl_kernel::Program,
        kernel: &str,
        args: Vec<KernelArg>,
        range: NdRange,
        units: usize,
        deps: &[NodeId],
    ) -> NodeId {
        self.push(
            PlanOp::Kernel {
                device,
                program: program.clone(),
                kernel: kernel.to_string(),
                args,
                range,
                units,
            },
            deps,
        )
    }

    /// Adds a host→device upload of `bytes` into `buffer` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if a dependency refers to a node not yet in the plan.
    pub fn write(
        &mut self,
        device: usize,
        buffer: &DeviceBuffer,
        offset: usize,
        bytes: Vec<u8>,
        deps: &[NodeId],
    ) -> NodeId {
        self.push(
            PlanOp::Write {
                device,
                buffer: buffer.clone(),
                offset,
                bytes,
            },
            deps,
        )
    }

    /// Adds a device→host readback of `len` bytes from `buffer` at
    /// `offset`; collect the bytes from the run with
    /// [`PlanRun::take_read`].
    ///
    /// # Panics
    ///
    /// Panics if a dependency refers to a node not yet in the plan.
    pub fn read(
        &mut self,
        device: usize,
        buffer: &DeviceBuffer,
        offset: usize,
        len: usize,
        deps: &[NodeId],
    ) -> NodeId {
        self.push(
            PlanOp::Read {
                device,
                buffer: buffer.clone(),
                offset,
                len,
            },
            deps,
        )
    }

    /// Enqueues every node on its device's queue (in index order, with the
    /// declared dependencies as event wait-lists) and returns immediately
    /// with a [`PlanRun`] handle. Completion callbacks record profiler
    /// spans and feed the scheduler as commands retire.
    ///
    /// # Errors
    ///
    /// Fails on enqueue-time validation errors (unknown kernel, bad
    /// argument binding, transfer out of range, …). Runtime failures are
    /// reported by [`PlanRun::wait`].
    pub fn execute(self, ctx: &Context) -> Result<PlanRun> {
        let profiler = ctx.profiler().clone();
        let flight = ctx.flight().clone();
        let scheduler = ctx.scheduler().clone();
        let profiling = profiler.is_enabled();

        // Span ids per plan node, filled by completion callbacks: slot `d`
        // is guaranteed populated before node `i`'s callback reads it for
        // any dependency edge `d → i` (see the module docs).
        let span_ids: Option<Arc<Vec<AtomicU64>>> =
            profiling.then(|| Arc::new((0..self.nodes.len()).map(|_| AtomicU64::new(0)).collect()));

        // Per-device aggregate over the plan's kernel nodes: the scheduler
        // wants one (units, busy_ns) sample per device per skeleton call,
        // delivered when the device's last kernel completes.
        let mut observations: HashMap<usize, Arc<DeviceObservation>> = HashMap::new();
        if !self.per_kernel_observations {
            for node in &self.nodes {
                if let PlanOp::Kernel { device, units, .. } = &node.op {
                    let obs = observations.entry(*device).or_default();
                    obs.pending.fetch_add(1, Ordering::Relaxed);
                    obs.units.fetch_add(*units, Ordering::Relaxed);
                }
            }
        }
        let per_kernel = self.per_kernel_observations;

        let order = Arc::new(Mutex::new(Vec::with_capacity(self.nodes.len())));
        let mut events: Vec<Event> = Vec::with_capacity(self.nodes.len());
        let mut reads: HashMap<usize, HostRead> = HashMap::new();
        for (index, node) in self.nodes.into_iter().enumerate() {
            let waits: Vec<Event> = node.deps.iter().map(|d| events[d.0].clone()).collect();
            let device = node.op.device();
            let deps: Vec<usize> = node.deps.iter().map(|d| d.0).collect();
            let node_kind = match node.op {
                PlanOp::Kernel { .. } => "kernel",
                PlanOp::Write { .. } => "write",
                PlanOp::Read { .. } => "read",
            };
            let obs = match node.op {
                PlanOp::Kernel { .. } if !per_kernel => observations.get(&device).cloned(),
                _ => None,
            };
            let kernel_units = match node.op {
                PlanOp::Kernel { units, .. } if per_kernel && units > 0 => Some(units),
                _ => None,
            };
            let mut label = None;
            let event = match node.op {
                PlanOp::Kernel {
                    device,
                    program,
                    kernel,
                    args,
                    range,
                    units: _,
                } => {
                    if profiling {
                        label = Some(nd_range_label(&range));
                    }
                    ctx.queue(device).launch_kernel_async(
                        &program,
                        &kernel,
                        &args,
                        range,
                        ctx.launch_config(),
                        &waits,
                    )?
                }
                PlanOp::Write {
                    device,
                    buffer,
                    offset,
                    bytes,
                } => ctx
                    .queue(device)
                    .enqueue_write_async(&buffer, offset, bytes, &waits)?,
                PlanOp::Read {
                    device,
                    buffer,
                    offset,
                    len,
                } => {
                    let read = ctx
                        .queue(device)
                        .enqueue_read_async(&buffer, offset, len, &waits)?;
                    let event = read.event().clone();
                    reads.insert(index, read);
                    event
                }
            };
            let profiler = profiler.clone();
            let flight = flight.clone();
            let scheduler = scheduler.clone();
            let order = Arc::clone(&order);
            let span_ids = span_ids.clone();
            event.on_complete(move |e| {
                order.lock().push(index);
                flight.record(
                    FlightKind::PlanNode,
                    device,
                    node_kind,
                    e.ended_ns(),
                    index as u64,
                    deps.len() as u64,
                );
                if e.error().is_none() {
                    let span = profiler.record_event_with(e, label);
                    if let Some(ids) = &span_ids {
                        ids[index].store(span, Ordering::Release);
                        for dep in &deps {
                            profiler.record_flow(ids[*dep].load(Ordering::Acquire), span);
                        }
                    }
                }
                if let Some(units) = kernel_units {
                    if e.error().is_none() {
                        scheduler.observe(device, units, e.duration().as_nanos() as u64);
                    }
                }
                if let Some(obs) = obs {
                    if e.error().is_some() {
                        obs.failed.store(true, Ordering::Relaxed);
                    } else {
                        obs.busy_ns
                            .fetch_add(e.duration().as_nanos() as u64, Ordering::Relaxed);
                    }
                    if obs.pending.fetch_sub(1, Ordering::AcqRel) == 1
                        && !obs.failed.load(Ordering::Relaxed)
                    {
                        scheduler.observe(
                            device,
                            obs.units.load(Ordering::Relaxed),
                            obs.busy_ns.load(Ordering::Relaxed),
                        );
                    }
                }
            });
            events.push(event);
        }
        Ok(PlanRun {
            events,
            reads,
            order,
        })
    }
}

#[derive(Default)]
struct DeviceObservation {
    /// Kernel nodes of this plan not yet completed on the device.
    pending: AtomicUsize,
    /// Total distribution units across the device's kernel nodes.
    units: AtomicUsize,
    /// Accumulated simulated kernel time.
    busy_ns: AtomicU64,
    /// Set when any kernel node failed — the sample is discarded.
    failed: AtomicBool,
}

/// A launched [`LaunchPlan`]: one event per node, in plan order.
pub struct PlanRun {
    events: Vec<Event>,
    reads: HashMap<usize, HostRead>,
    order: Arc<Mutex<Vec<usize>>>,
}

impl std::fmt::Debug for PlanRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanRun")
            .field("events", &self.events.len())
            .field("pending_reads", &self.reads.len())
            .finish()
    }
}

impl PlanRun {
    /// Blocks until every node has completed.
    ///
    /// # Errors
    ///
    /// Returns the first (in plan order) node failure after *all* nodes
    /// have settled — a failed kernel surfaces as an error result, never
    /// as a host-side abort, and never leaves commands in flight.
    pub fn wait(&self) -> Result<()> {
        let mut first_error = None;
        for event in &self.events {
            if let Err(e) = event.wait() {
                first_error.get_or_insert(e);
            }
        }
        match first_error {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// The nodes' events, in plan (not completion) order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the run, returning the events in plan order.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Waits for read node `node` and takes its bytes.
    ///
    /// # Errors
    ///
    /// Fails when the read (or a dependency) failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a read node of this plan or was already
    /// taken.
    pub fn take_read(&mut self, node: NodeId) -> Result<Vec<u8>> {
        let read = self
            .reads
            .remove(&node.0)
            .expect("take_read: node is not a pending read of this plan");
        let (_event, bytes) = read.wait()?;
        Ok(bytes)
    }

    /// Node indices in the order their completion callbacks ran — for
    /// every dependency edge the dependency appears before the dependent.
    pub fn completion_order(&self) -> Vec<usize> {
        self.order.lock().clone()
    }
}
