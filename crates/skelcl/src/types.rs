//! Mapping between Rust element types and SkelCL C scalar types.

use skelcl_kernel::types::ScalarType;
use skelcl_kernel::value::Value;

mod private {
    pub trait Sealed {}
}

/// A Rust type usable as a container element and kernel scalar.
///
/// This trait is sealed: exactly the fixed-width numeric types that SkelCL C
/// kernels can address implement it.
pub trait KernelScalar:
    private::Sealed + Copy + Default + std::fmt::Debug + Send + Sync + 'static
{
    /// The corresponding SkelCL C type.
    const SCALAR: ScalarType;

    /// Converts to a VM value (for scalar kernel arguments).
    fn to_value(self) -> Value;

    /// Reads one element from the start of a little-endian byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than the element size.
    fn from_le_bytes(bytes: &[u8]) -> Self;

    /// Appends the element's little-endian bytes to `out`.
    fn write_le_bytes(self, out: &mut Vec<u8>);
}

macro_rules! impl_kernel_scalar {
    ($t:ty, $scalar:ident, $value:ident) => {
        impl private::Sealed for $t {}
        impl KernelScalar for $t {
            const SCALAR: ScalarType = ScalarType::$scalar;

            fn to_value(self) -> Value {
                Value::$value(self)
            }

            fn from_le_bytes(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes[..std::mem::size_of::<$t>()].try_into().unwrap())
            }

            fn write_le_bytes(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
    };
}

impl_kernel_scalar!(i8, Char, I8);
impl_kernel_scalar!(u8, UChar, U8);
impl_kernel_scalar!(i16, Short, I16);
impl_kernel_scalar!(u16, UShort, U16);
impl_kernel_scalar!(i32, Int, I32);
impl_kernel_scalar!(u32, UInt, U32);
impl_kernel_scalar!(i64, Long, I64);
impl_kernel_scalar!(u64, ULong, U64);
impl_kernel_scalar!(f32, Float, F32);
impl_kernel_scalar!(f64, Double, F64);

/// Serialises a slice of elements to little-endian bytes.
pub fn to_bytes<T: KernelScalar>(items: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(std::mem::size_of_val(items));
    for &x in items {
        x.write_le_bytes(&mut out);
    }
    out
}

/// Deserialises little-endian bytes into elements.
///
/// # Panics
///
/// Panics if `bytes` is not a whole number of elements.
pub fn from_bytes<T: KernelScalar>(bytes: &[u8]) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    assert_eq!(
        bytes.len() % size,
        0,
        "byte length is not a whole number of elements"
    );
    bytes.chunks_exact(size).map(T::from_le_bytes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_mapping() {
        assert_eq!(<u8 as KernelScalar>::SCALAR, ScalarType::UChar);
        assert_eq!(<f32 as KernelScalar>::SCALAR, ScalarType::Float);
        assert_eq!(<i64 as KernelScalar>::SCALAR, ScalarType::Long);
    }

    #[test]
    fn value_conversion() {
        assert_eq!(3.5f32.to_value(), Value::F32(3.5));
        assert_eq!((-7i8).to_value(), Value::I8(-7));
    }

    #[test]
    fn byte_round_trip() {
        let xs: Vec<f32> = vec![1.5, -2.25, 0.0];
        assert_eq!(from_bytes::<f32>(&to_bytes(&xs)), xs);
        let ys: Vec<u16> = vec![0, 1, 65535];
        assert_eq!(from_bytes::<u16>(&to_bytes(&ys)), ys);
    }

    #[test]
    #[should_panic(expected = "whole number of elements")]
    fn from_bytes_rejects_ragged_input() {
        let _ = from_bytes::<f32>(&[0u8; 6]);
    }
}
