//! Lazy skeleton expressions lowered through the plan layer.
//!
//! [`crate::Map::lazy`], [`crate::Zip::lazy`], [`crate::MapOverlap::lazy`]
//! and [`crate::Scan::lazy`] defer their stage into an [`Expr`] instead of
//! executing it. Chained stages form a logical plan DAG (see
//! [`crate::plan`]) whose leaves are containers; [`Expr::eval`] lowers the
//! DAG through the rewrite-rule engine — by default welding every
//! elementwise region into **one** kernel, fusing stencils with their
//! producers and folding pending scan-offset passes into downstream loads.
//! Each stage's customizing function (with its helpers) is renamed with a
//! content-derived suffix so every stage coexists in a single translation
//! unit, and the per-element value is computed by a nested call expression
//! with no intermediate buffer. Feeding an expression to
//! [`crate::Reduce::call_fused`] goes further: the elementwise DAG becomes
//! the load prologue of the tree reduction, so the paper's dot product
//! (§3.3, zip-mult then reduce-add) runs as a single pass over the two
//! input vectors.
//!
//! The `SKELCL_PLAN` environment variable selects which rewrite rules
//! apply ([`crate::plan::PlanConfig`]); `SKELCL_PLAN=0` stages every node
//! through an intermediate vector, which is the bit-identical oracle the
//! fused paths are validated against.

use std::marker::PhantomData;
use std::sync::Arc;

use skelcl_kernel::value::Value;

use crate::codegen::StageSpec;
use crate::container::Vector;
use crate::context::Context;
use crate::error::Result;
use crate::plan::{eval_vector, FusedPlan, PlanNode};
use crate::skeleton::EventLog;
use crate::types::KernelScalar;

/// A deferred computation producing elements of type `O`.
///
/// Built from containers ([`Vector::expr`] or `Expr::from(&vector)`) and
/// composed through [`crate::Map::lazy`] / [`crate::Zip::lazy`] /
/// [`crate::MapOverlap::lazy`] / [`crate::Scan::lazy`]; executed by
/// [`Expr::eval`] (lowered through the plan rewrite rules) or
/// [`crate::Reduce::call_fused`] (fused into the reduction's first pass).
///
/// ```
/// use skelcl::{Context, Map, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// let neg: Map<f32, f32> = Map::new(&ctx, "float neg(float x){ return -x; }")?;
/// let sq: Map<f32, f32> = Map::new(&ctx, "float sq(float x){ return x * x; }")?;
/// let v = Vector::from_vec(&ctx, vec![1.0, 2.0, 3.0]);
/// // One kernel computes neg(sq(x)) per element.
/// let r = neg.lazy(&sq.lazy(&v.expr())?)?.eval()?;
/// assert_eq!(r.to_vec()?, vec![-1.0, -4.0, -9.0]);
/// # Ok(())
/// # }
/// ```
pub struct Expr<O: KernelScalar> {
    node: Arc<PlanNode>,
    _t: PhantomData<fn() -> O>,
}

impl<O: KernelScalar> Clone for Expr<O> {
    fn clone(&self) -> Self {
        Expr {
            node: self.node.clone(),
            _t: PhantomData,
        }
    }
}

impl<O: KernelScalar> std::fmt::Debug for Expr<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Expr").field("node", &self.node).finish()
    }
}

/// Shape of a fused expression, for reporting what fusion saves: the
/// launch and intermediate-buffer accounting behind the bench's `fusion`
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionStats {
    /// Number of skeleton stages in the DAG.
    pub stages: usize,
    /// Number of distinct container sources.
    pub sources: usize,
    /// Common element count of the sources.
    pub len: usize,
    /// Total bytes of stage outputs an **unfused** execution materialises
    /// in device memory (`len ×` the summed stage output widths). A fused
    /// [`Expr::eval`] writes only the final output (subtract the last
    /// stage's `len × size_of::<O>()`); a fused reduction prologue
    /// ([`crate::Reduce::call_fused`]) materialises none of it.
    pub unfused_stage_bytes: u64,
}

impl<O: KernelScalar> Expr<O> {
    /// Wraps a stage application (crate-internal: skeletons' `lazy`).
    pub(crate) fn apply(
        ctx: &Context,
        stage: StageSpec,
        extras: Vec<Value>,
        args: Vec<Arc<PlanNode>>,
    ) -> Self {
        Expr {
            node: Arc::new(PlanNode::Apply {
                ctx: ctx.clone(),
                stage,
                extras,
                args,
            }),
            _t: PhantomData,
        }
    }

    /// Wraps an arbitrary plan node (crate-internal: stencil and scan
    /// `lazy`).
    pub(crate) fn from_node(node: Arc<PlanNode>) -> Self {
        Expr {
            node,
            _t: PhantomData,
        }
    }

    /// The DAG node (crate-internal: composition and fused reduction).
    pub(crate) fn node(&self) -> &Arc<PlanNode> {
        &self.node
    }

    /// Number of elements the expression produces.
    ///
    /// # Errors
    ///
    /// Fails when the expression is malformed (mismatched source lengths
    /// or contexts).
    pub fn len(&self) -> Result<usize> {
        Ok(FusedPlan::build(&self.node)?.len)
    }

    /// Whether the expression produces no elements.
    ///
    /// # Errors
    ///
    /// As for [`Expr::len`].
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Shape of the fused computation (stage/source/byte accounting).
    ///
    /// # Errors
    ///
    /// As for [`Expr::len`].
    pub fn stats(&self) -> Result<FusionStats> {
        let p = FusedPlan::build(&self.node)?;
        Ok(FusionStats {
            stages: p.stages,
            sources: p.sources.len(),
            len: p.len,
            unfused_stage_bytes: p.stage_bytes_per_elem * p.len as u64,
        })
    }

    /// Lowers the DAG through the plan rewrite rules, runs the resulting
    /// kernels, and returns the result vector. The distribution is
    /// resolved from the first source exactly as an eager `map`/`zip`
    /// call would.
    ///
    /// # Errors
    ///
    /// Fails on mismatched source lengths or contexts, plus any platform
    /// failure.
    pub fn eval(&self) -> Result<Vector<O>> {
        eval_vector(&self.node, None)
    }

    /// [`Expr::eval`], additionally recording the launch events into
    /// `log` (the fused pipeline has no skeleton instance to own an event
    /// log, so the caller provides one).
    ///
    /// # Errors
    ///
    /// As for [`Expr::eval`].
    pub fn eval_logged(&self, log: &EventLog) -> Result<Vector<O>> {
        eval_vector(&self.node, Some(log))
    }
}

impl<T: KernelScalar> From<&Vector<T>> for Expr<T> {
    /// Wraps a vector as a fusion source leaf.
    fn from(v: &Vector<T>) -> Self {
        Expr {
            node: Arc::new(PlanNode::Source {
                ctx: crate::exec::ElementwiseInput::input_ctx(v).clone(),
                input: Box::new(v.clone()),
                fresh: false,
            }),
            _t: PhantomData,
        }
    }
}
