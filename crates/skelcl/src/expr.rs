//! Lazy elementwise expressions fused into a single kernel.
//!
//! [`crate::Map::lazy`] and [`crate::Zip::lazy`] defer their stage into an
//! [`Expr`] instead of executing it. Chained stages form a DAG whose
//! leaves are containers; [`Expr::eval`] welds the whole DAG into **one**
//! kernel — each stage's customizing function (with its helpers) is
//! renamed with a content-derived suffix so every stage coexists in a
//! single translation unit, and the per-element value is computed by a
//! nested call expression with no intermediate buffer. Feeding an
//! expression to [`crate::Reduce::call_fused`] goes further: the
//! elementwise DAG becomes the load prologue of the tree reduction, so the
//! paper's dot product (§3.3, zip-mult then reduce-add) runs as a single
//! pass over the two input vectors.
//!
//! What fuses: any DAG of `map`/`zip` stages over vectors, including
//! reused sub-expressions and stages with bound extra arguments (inlined
//! as literals). What forces materialization: redistribution between
//! stages (all sources share one distribution, resolved from the first
//! source), `MapOverlap` halos (a stencil reads neighbours, not just the
//! aligned element — run [`Expr::eval`] first and feed it the result), and
//! `Scan`/`Allpairs` (non-elementwise access patterns).

use std::marker::PhantomData;
use std::sync::Arc;

use skelcl_kernel::types::ScalarType;
use skelcl_kernel::value::Value;

use crate::codegen::{c_literal, compile_cached, StageSpec};
use crate::container::Vector;
use crate::context::Context;
use crate::distribution::Distribution;
use crate::error::{Error, Result};
use crate::exec::{
    elementwise_distribution, elementwise_launches, materialize, run_launches, skeleton_span,
    ElementwiseInput,
};
use crate::skeleton::EventLog;
use crate::types::KernelScalar;

/// A deferred elementwise computation producing elements of type `O`.
///
/// Built from containers ([`Vector::expr`] or `Expr::from(&vector)`) and
/// composed through [`crate::Map::lazy`] / [`crate::Zip::lazy`]; executed
/// by [`Expr::eval`] (one fused kernel producing a vector) or
/// [`crate::Reduce::call_fused`] (fused into the reduction's first pass).
///
/// ```
/// use skelcl::{Context, Map, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// let neg: Map<f32, f32> = Map::new(&ctx, "float neg(float x){ return -x; }")?;
/// let sq: Map<f32, f32> = Map::new(&ctx, "float sq(float x){ return x * x; }")?;
/// let v = Vector::from_vec(&ctx, vec![1.0, 2.0, 3.0]);
/// // One kernel computes neg(sq(x)) per element.
/// let r = neg.lazy(&sq.lazy(&v.expr())?)?.eval()?;
/// assert_eq!(r.to_vec()?, vec![-1.0, -4.0, -9.0]);
/// # Ok(())
/// # }
/// ```
pub struct Expr<O: KernelScalar> {
    node: Arc<Node>,
    _t: PhantomData<fn() -> O>,
}

impl<O: KernelScalar> Clone for Expr<O> {
    fn clone(&self) -> Self {
        Expr {
            node: self.node.clone(),
            _t: PhantomData,
        }
    }
}

impl<O: KernelScalar> std::fmt::Debug for Expr<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Expr").field("node", &self.node).finish()
    }
}

/// One node of the deferred DAG.
#[derive(Debug)]
pub(crate) enum Node {
    /// A container leaf.
    Source {
        /// The container's context.
        ctx: Context,
        /// The container, type-erased to the pipeline-input surface.
        input: Box<dyn ElementwiseInput>,
    },
    /// An elementwise stage applied to child expressions.
    Apply {
        /// The owning skeleton's context.
        ctx: Context,
        /// The stage's renamed translation unit and entry point.
        stage: StageSpec,
        /// Extra scalar arguments bound at composition time.
        extras: Vec<Value>,
        /// Child expressions, one per fixed parameter.
        args: Vec<Arc<Node>>,
    },
}

/// Everything needed to weld and launch a fused expression: the deduped
/// sources and stage translation units, plus the per-element load
/// expression in terms of `skelcl_inN[skelcl_i]`.
pub(crate) struct FusedPlan<'a> {
    /// Distinct source containers in first-use order (`skelcl_inN` order).
    pub sources: Vec<&'a dyn ElementwiseInput>,
    /// Element types of `sources`.
    pub input_types: Vec<ScalarType>,
    /// Concatenated deduplicated stage translation units.
    pub units: String,
    /// The per-element value as a nested call expression; the index
    /// variable is `skelcl_i`.
    pub load_expr: String,
    /// Common length of every source.
    pub len: usize,
    /// The common context.
    pub ctx: Context,
    /// Number of stage applications in the DAG.
    pub stages: usize,
    /// Bytes per element of all stage outputs combined — what an unfused
    /// execution writes to device memory as intermediate/result vectors.
    pub stage_bytes_per_elem: u64,
}

impl<'a> FusedPlan<'a> {
    /// Builds the plan by walking the DAG: dedupes sources by storage
    /// identity and stage units by content, validates context and length
    /// agreement.
    pub fn build(root: &'a Node) -> Result<Self> {
        struct Builder<'a> {
            source_ids: Vec<usize>,
            sources: Vec<&'a dyn ElementwiseInput>,
            input_types: Vec<ScalarType>,
            unit_sources: Vec<&'a str>,
            ctx: Option<&'a Context>,
            stages: usize,
            stage_bytes_per_elem: u64,
            error: Option<Error>,
        }

        impl<'a> Builder<'a> {
            fn check_ctx(&mut self, ctx: &'a Context) {
                match self.ctx {
                    None => self.ctx = Some(ctx),
                    Some(first) if first.same_as(ctx) => {}
                    Some(_) if self.error.is_none() => {
                        self.error = Some(Error::ShapeMismatch {
                            reason: "fused expression mixes containers or skeletons \
                                     from different contexts"
                                .into(),
                        });
                    }
                    Some(_) => {}
                }
            }

            fn walk(&mut self, node: &'a Node) -> String {
                match node {
                    Node::Source { ctx, input } => {
                        self.check_ctx(ctx);
                        let id = input.input_id();
                        let idx = self
                            .source_ids
                            .iter()
                            .position(|&x| x == id)
                            .unwrap_or_else(|| {
                                self.source_ids.push(id);
                                self.sources.push(input.as_ref());
                                self.input_types.push(input.input_scalar());
                                self.sources.len() - 1
                            });
                        format!("skelcl_in{idx}[skelcl_i]")
                    }
                    Node::Apply {
                        ctx,
                        stage,
                        extras,
                        args,
                    } => {
                        self.check_ctx(ctx);
                        self.stages += 1;
                        self.stage_bytes_per_elem += stage.ret.size_bytes() as u64;
                        if !self.unit_sources.contains(&stage.source.as_str()) {
                            self.unit_sources.push(&stage.source);
                        }
                        let mut call_args: Vec<String> =
                            args.iter().map(|a| self.walk(a)).collect();
                        call_args.extend(extras.iter().map(|v| c_literal(*v)));
                        format!("{}({})", stage.name, call_args.join(", "))
                    }
                }
            }
        }

        let mut b = Builder {
            source_ids: Vec::new(),
            sources: Vec::new(),
            input_types: Vec::new(),
            unit_sources: Vec::new(),
            ctx: None,
            stages: 0,
            stage_bytes_per_elem: 0,
            error: None,
        };
        let load_expr = b.walk(root);
        if let Some(e) = b.error {
            return Err(e);
        }
        let Some(first) = b.sources.first() else {
            return Err(Error::ShapeMismatch {
                reason: "fused expression has no container sources".into(),
            });
        };
        let len = first.input_len();
        for s in &b.sources {
            if s.input_len() != len {
                return Err(Error::ShapeMismatch {
                    reason: format!(
                        "fused expression requires equal source lengths, found {} and {}",
                        len,
                        s.input_len()
                    ),
                });
            }
        }
        let ctx = b.ctx.expect("a source implies a context").clone();
        Ok(FusedPlan {
            sources: b.sources,
            input_types: b.input_types,
            units: b.unit_sources.join("\n"),
            load_expr,
            len,
            ctx,
            stages: b.stages,
            stage_bytes_per_elem: b.stage_bytes_per_elem,
        })
    }

    /// The `__global const T* skelcl_inN, ` parameter list prefix shared
    /// by the fused kernels.
    pub fn input_params(&self) -> String {
        self.input_types
            .iter()
            .enumerate()
            .map(|(i, t)| format!("__global const {t}* skelcl_in{i}, "))
            .collect()
    }

    /// The `skelcl_in0, skelcl_in1, …` forwarding list for calls to a
    /// generated device helper taking the input pointers.
    pub fn input_args(&self) -> String {
        (0..self.input_types.len())
            .map(|i| format!("skelcl_in{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Shape of a fused expression, for reporting what fusion saves: the
/// launch and intermediate-buffer accounting behind the bench's `fusion`
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionStats {
    /// Number of elementwise stages welded into the kernel.
    pub stages: usize,
    /// Number of distinct container sources.
    pub sources: usize,
    /// Common element count of the sources.
    pub len: usize,
    /// Total bytes of stage outputs an **unfused** execution materialises
    /// in device memory (`len ×` the summed stage output widths). A fused
    /// [`Expr::eval`] writes only the final output (subtract the last
    /// stage's `len × size_of::<O>()`); a fused reduction prologue
    /// ([`crate::Reduce::call_fused`]) materialises none of it.
    pub unfused_stage_bytes: u64,
}

impl<O: KernelScalar> Expr<O> {
    /// Wraps a stage application (crate-internal: skeletons' `lazy`).
    pub(crate) fn apply(
        ctx: &Context,
        stage: StageSpec,
        extras: Vec<Value>,
        args: Vec<Arc<Node>>,
    ) -> Self {
        Expr {
            node: Arc::new(Node::Apply {
                ctx: ctx.clone(),
                stage,
                extras,
                args,
            }),
            _t: PhantomData,
        }
    }

    /// The DAG node (crate-internal: composition and fused reduction).
    pub(crate) fn node(&self) -> &Arc<Node> {
        &self.node
    }

    /// Number of elements the expression produces.
    ///
    /// # Errors
    ///
    /// Fails when the expression is malformed (mismatched source lengths
    /// or contexts).
    pub fn len(&self) -> Result<usize> {
        Ok(FusedPlan::build(&self.node)?.len)
    }

    /// Whether the expression produces no elements.
    ///
    /// # Errors
    ///
    /// As for [`Expr::len`].
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Shape of the fused computation (stage/source/byte accounting).
    ///
    /// # Errors
    ///
    /// As for [`Expr::len`].
    pub fn stats(&self) -> Result<FusionStats> {
        let p = FusedPlan::build(&self.node)?;
        Ok(FusionStats {
            stages: p.stages,
            sources: p.sources.len(),
            len: p.len,
            unfused_stage_bytes: p.stage_bytes_per_elem * p.len as u64,
        })
    }

    /// Welds the whole DAG into one elementwise kernel, runs it, and
    /// returns the result vector. The distribution is resolved from the
    /// first source exactly as an eager `map`/`zip` call would.
    ///
    /// # Errors
    ///
    /// Fails on mismatched source lengths or contexts, plus any platform
    /// failure.
    pub fn eval(&self) -> Result<Vector<O>> {
        self.eval_impl(None)
    }

    /// [`Expr::eval`], additionally recording the launch events into
    /// `log` (the fused pipeline has no skeleton instance to own an event
    /// log, so the caller provides one).
    ///
    /// # Errors
    ///
    /// As for [`Expr::eval`].
    pub fn eval_logged(&self, log: &EventLog) -> Result<Vector<O>> {
        self.eval_impl(Some(log))
    }

    fn eval_impl(&self, log: Option<&EventLog>) -> Result<Vector<O>> {
        let p = FusedPlan::build(&self.node)?;
        let _span = skeleton_span(&p.ctx, "Expr.eval");
        let source = format!(
            "{units}\n\
             __kernel void skelcl_fused({params}__global {out}* skelcl_out, int skelcl_n) {{\n\
             \x20   int skelcl_i = (int)get_global_id(0);\n\
             \x20   if (skelcl_i < skelcl_n) skelcl_out[skelcl_i] = {expr};\n\
             }}\n",
            units = p.units,
            params = p.input_params(),
            out = O::SCALAR,
            expr = p.load_expr,
        );
        let program = compile_cached(&p.ctx, "skelcl_fused.cl", &source)?;
        let dist = elementwise_distribution(p.sources[0].input_distribution(Distribution::Block));
        let in_chunks = materialize(&p.sources, dist)?;
        let (output, out_chunks) = Vector::alloc_device(&p.ctx, p.len, dist)?;
        let launches = elementwise_launches(&in_chunks, &out_chunks, 1, &[]);
        let events = run_launches(&p.ctx, &program, "skelcl_fused", launches)?;
        if let Some(log) = log {
            log.record(events);
        }
        output.mark_device_written();
        Ok(output)
    }
}

impl<T: KernelScalar> From<&Vector<T>> for Expr<T> {
    /// Wraps a vector as a fusion source leaf.
    fn from(v: &Vector<T>) -> Self {
        Expr {
            node: Arc::new(Node::Source {
                ctx: crate::exec::ElementwiseInput::input_ctx(v).clone(),
                input: Box::new(v.clone()),
            }),
            _t: PhantomData,
        }
    }
}
