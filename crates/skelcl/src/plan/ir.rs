//! Logical plan nodes for lazy skeleton pipelines.

use std::sync::{Arc, Mutex};

use skelcl_kernel::types::ScalarType;
use skelcl_kernel::value::Value;
use skelcl_kernel::Program;

use crate::codegen::StageSpec;
use crate::context::Context;
use crate::distribution::{ChunkPlan, Distribution};
use crate::exec::ElementwiseInput;

/// One node of the logical skeleton DAG.
///
/// `Expr<O>` wraps an `Arc<PlanNode>`; skeleton `lazy` constructors build
/// nodes and [`super::lower`] turns a rooted DAG into device launches.
pub(crate) enum PlanNode {
    /// A materialised container (or a staged intermediate).
    Source {
        /// Context the container belongs to.
        ctx: Context,
        /// The container itself, type-erased.
        input: Box<dyn ElementwiseInput>,
        /// True only for intermediates created by staged lowering: the
        /// container is private to the plan, so a root-level `Source` can be
        /// returned without copying.
        fresh: bool,
    },
    /// An elementwise stage (`Map::lazy`, `Zip::lazy`) over argument nodes.
    Apply {
        /// Context the stage was built for.
        ctx: Context,
        /// Generated stage function (suffixed user code).
        stage: StageSpec,
        /// Extra scalar arguments baked into the stage call.
        extras: Vec<Value>,
        /// Argument subtrees, one per stage input.
        args: Vec<Arc<PlanNode>>,
    },
    /// A one-dimensional stencil (`MapOverlapVec::lazy`) over one argument.
    Stencil {
        /// Context the stencil was built for.
        ctx: Context,
        /// Everything needed to emit the stencil fused or standalone.
        spec: StencilSpec,
        /// Producer subtree.
        arg: Arc<PlanNode>,
    },
    /// A scan whose cross-device offset pass is still pending
    /// (`Scan::lazy` on a multi-chunk distribution).
    ScanOffset {
        /// Context the scan ran in.
        ctx: Context,
        /// Shared pending-offset state (applied at most once).
        state: Arc<ScanOffsetState>,
    },
}

impl std::fmt::Debug for PlanNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanNode::Source { fresh, .. } => {
                f.debug_struct("Source").field("fresh", fresh).finish()
            }
            PlanNode::Apply { stage, args, .. } => f
                .debug_struct("Apply")
                .field("stage", &stage.name)
                .field("args", &args.len())
                .finish(),
            PlanNode::Stencil { spec, .. } => f
                .debug_struct("Stencil")
                .field("func", &spec.func)
                .field("d", &spec.d)
                .finish(),
            PlanNode::ScanOffset { state, .. } => f
                .debug_struct("ScanOffset")
                .field("applied", &state.is_applied())
                .finish(),
        }
    }
}

impl PlanNode {
    /// The context this subtree belongs to.
    pub(crate) fn ctx(&self) -> &Context {
        match self {
            PlanNode::Source { ctx, .. }
            | PlanNode::Apply { ctx, .. }
            | PlanNode::Stencil { ctx, .. }
            | PlanNode::ScanOffset { ctx, .. } => ctx,
        }
    }

    /// Element type this subtree produces.
    pub(crate) fn out_scalar(&self) -> ScalarType {
        match self {
            PlanNode::Source { input, .. } => input.input_scalar(),
            PlanNode::Apply { stage, .. } => stage.ret,
            PlanNode::Stencil { spec, .. } => spec.out_scalar,
            PlanNode::ScanOffset { state, .. } => state.scalar,
        }
    }
}

/// Everything a stencil node needs to lower either standalone or fused.
#[derive(Debug, Clone)]
pub(crate) struct StencilSpec {
    /// The user function's translation unit, suffixed for cross-stage
    /// uniqueness (calls to `__skelcl_get1` are left unsuffixed: the
    /// enclosing kernel defines it).
    pub(crate) unit: String,
    /// Suffixed user function name.
    pub(crate) func: String,
    /// Halo radius in elements.
    pub(crate) d: usize,
    /// Out-of-range literal; `None` means nearest-edge clamping.
    pub(crate) neutral: Option<Value>,
    /// Element type read from the input.
    pub(crate) in_scalar: ScalarType,
    /// Element type the user function returns.
    pub(crate) out_scalar: ScalarType,
    /// Extra scalar arguments for this invocation.
    pub(crate) extras: Vec<Value>,
    /// Pre-built standalone program (`skelcl_mapoverlap_vec`), used by the
    /// staged path so PLAN=0 matches the eager skeleton byte-for-byte.
    pub(crate) standalone: Program,
}

/// Pending cross-device scan-offset application.
///
/// `Scan::lazy` runs phase 1 (per-chunk inclusive scans) eagerly and, on
/// multi-chunk distributions, parks phase 2 (adding each predecessor
/// chunk's total) here. The offset is either folded into a consuming
/// fused kernel's load expression (the `scan-offset` rule) or applied by
/// [`super::lower::apply_offsets`] as a standalone pass — whichever
/// happens first wins; `applied` makes the pass idempotent.
pub(crate) struct ScanOffsetState {
    /// The scan skeleton's program (contains `skelcl_scan_offset`).
    pub(crate) program: Program,
    /// Suffixed scan operator stage (for fused loads / ranged fallback).
    pub(crate) stage: StageSpec,
    /// Element type.
    pub(crate) scalar: ScalarType,
    /// `T::default()` — the "no offset" placeholder argument.
    pub(crate) zero: Value,
    /// The vector holding phase-1 per-chunk scan results.
    pub(crate) vector: Box<dyn ElementwiseInput>,
    /// Distribution the phase-1 scan ran under.
    pub(crate) dist: Distribution,
    /// `offsets[j - 1]` is the exclusive prefix total for chunk `j >= 1`.
    pub(crate) offsets: Vec<Value>,
    /// Chunk plans recorded at phase-1 time (offsets index against these).
    pub(crate) plans: Vec<ChunkPlan>,
    /// Set once the offsets have been added to the buffers.
    pub(crate) applied: Mutex<bool>,
}

impl ScanOffsetState {
    /// Whether the offset pass already ran.
    pub(crate) fn is_applied(&self) -> bool {
        *self.applied.lock().unwrap()
    }
}

impl std::fmt::Debug for ScanOffsetState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanOffsetState")
            .field("chunks", &self.plans.len())
            .field("applied", &self.is_applied())
            .finish()
    }
}
