//! The logical plan layer: every lazy skeleton pipeline is a term.
//!
//! [`crate::Map::lazy`], [`crate::Zip::lazy`], [`crate::MapOverlapVec::lazy`]
//! and [`crate::Scan::lazy`] build a [`PlanNode`] DAG instead of executing
//! eagerly; [`crate::Expr::eval`] and [`crate::Reduce::call_fused`] lower
//! that DAG to device launches through this module. Lowering applies
//! semantics-preserving **rewrite rules** (in the spirit of
//! Steuwer/Fensch/Dubach's pattern rewrite rules):
//!
//! | rule          | rewrite                                                    |
//! |---------------|------------------------------------------------------------|
//! | `chain`       | elementwise stage chains weld into one kernel (PR 4 fusion)|
//! | `reduce-weld` | an elementwise DAG becomes the reduction's load prologue   |
//! | `stencil`     | a stencil recomputes its elementwise producer in-kernel    |
//! | `scan-offset` | scan's cross-device offset pass folds into a consumer load |
//!
//! Every rule preserves the exact per-element operation order, so fused and
//! staged executions are **bit-identical**; the plan proptests and the
//! `results.plan` bench section enforce this. The stencil rule trades halo
//! recomputation against intermediate-buffer traffic, so it is additionally
//! arbitrated by a cost model fed from the EWMA scheduler's throughput
//! observations (see [`cost`]).
//!
//! The whole layer is gated by `SKELCL_PLAN`:
//!
//! * unset / `1` / `on` — all rules plus the cost model (the default);
//! * `0` / `off` — fully staged oracle: one kernel per stage, standalone
//!   stencil and scan-offset passes, plain (unwelded) reductions;
//! * a comma list of rule names (e.g. `chain,reduce-weld`) — exactly those
//!   rules, cost model off (unknown names are ignored).

pub(crate) mod cost;
pub(crate) mod ir;
pub(crate) mod lower;

pub(crate) use ir::{PlanNode, ScanOffsetState, StencilSpec};
pub(crate) use lower::{eval_vector, prepare_reduce, FusedPlan, ReduceInput};

/// Which rewrite rules a lowering may apply (parsed from `SKELCL_PLAN`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanConfig {
    /// Fully staged oracle: no rule fires, every stage materialises.
    pub staged: bool,
    /// Elementwise chain fusion (subsumes PR 4's `Expr` DAG fusion).
    pub chain: bool,
    /// Elementwise-into-reduce welding (subsumes `call_fused`).
    pub weld: bool,
    /// Stencil-consumes-elementwise fusion (halo recomputation).
    pub stencil: bool,
    /// Scan add-offset pass folded into a downstream elementwise load.
    pub scan_offset: bool,
    /// Arbitrate stencil fusion with the scheduler-fed cost model.
    pub cost_model: bool,
}

impl PlanConfig {
    /// All rules on, cost model on — the default.
    pub fn all() -> Self {
        PlanConfig {
            staged: false,
            chain: true,
            weld: true,
            stencil: true,
            scan_offset: true,
            cost_model: true,
        }
    }

    /// The fully staged oracle (`SKELCL_PLAN=0`).
    pub fn oracle() -> Self {
        PlanConfig {
            staged: true,
            chain: false,
            weld: false,
            stencil: false,
            scan_offset: false,
            cost_model: false,
        }
    }

    /// Parses a `SKELCL_PLAN` value (`None` means unset → all rules).
    pub fn parse(spec: Option<&str>) -> Self {
        let Some(spec) = spec else {
            return Self::all();
        };
        match spec.trim() {
            "" | "1" | "on" => Self::all(),
            "0" | "off" => Self::oracle(),
            list => {
                let mut cfg = PlanConfig {
                    staged: false,
                    chain: false,
                    weld: false,
                    stencil: false,
                    scan_offset: false,
                    cost_model: false,
                };
                for rule in list.split(',') {
                    match rule.trim() {
                        "chain" => cfg.chain = true,
                        "reduce-weld" => cfg.weld = true,
                        "stencil" => cfg.stencil = true,
                        "scan-offset" => cfg.scan_offset = true,
                        _ => {}
                    }
                }
                cfg
            }
        }
    }

    /// Reads `SKELCL_PLAN` from the environment.
    pub fn from_env() -> Self {
        Self::parse(std::env::var("SKELCL_PLAN").ok().as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_gate_values() {
        assert_eq!(PlanConfig::parse(None), PlanConfig::all());
        assert_eq!(PlanConfig::parse(Some("")), PlanConfig::all());
        assert_eq!(PlanConfig::parse(Some("1")), PlanConfig::all());
        assert_eq!(PlanConfig::parse(Some("on")), PlanConfig::all());
        assert_eq!(PlanConfig::parse(Some("0")), PlanConfig::oracle());
        assert_eq!(PlanConfig::parse(Some("off")), PlanConfig::oracle());

        let c = PlanConfig::parse(Some("chain,scan-offset"));
        assert!(c.chain && c.scan_offset);
        assert!(!c.weld && !c.stencil && !c.staged && !c.cost_model);

        // Unknown names are ignored, known ones still apply.
        let c = PlanConfig::parse(Some("bogus,reduce-weld"));
        assert!(c.weld && !c.chain);
    }
}
