//! Fused-vs-staged arbitration for the stencil rewrite rule.
//!
//! Fusing a stencil with its elementwise producer trades intermediate
//! buffer traffic (write + read of one full-length container) for halo
//! recomputation (each device re-evaluates the producer chain on `2d`
//! border elements per stage). The other rules strictly remove work, so
//! only the stencil rule consults this model.

use crate::context::Context;

/// Decides whether to fuse an elementwise producer chain into a stencil.
///
/// `stages` is the producer chain depth, `d` the halo radius and `len`
/// the container length. Costs are counted in element operations:
/// fusing recomputes `stages * 2d` elements per device, staging moves
/// `2 * len` elements through an intermediate buffer. When the EWMA
/// scheduler has throughput observations for every device, both sides
/// are converted to time (recomputation is bounded by the slowest
/// device, traffic is spread across all of them); cold-start falls back
/// to comparing raw element counts.
pub(crate) fn should_fuse_stencil(ctx: &Context, stages: usize, d: usize, len: usize) -> bool {
    let devices = ctx.device_count();
    let recompute = (stages * 2 * d * devices) as f64;
    let traffic = (2 * len) as f64;
    let scheduler = ctx.scheduler();
    let mut tputs = Vec::with_capacity(devices);
    for dev in 0..devices {
        match scheduler.throughput(dev) {
            Some(t) if t > 0.0 => tputs.push(t),
            _ => return recompute < traffic,
        }
    }
    let min_tput = tputs.iter().cloned().fold(f64::INFINITY, f64::min);
    let total_tput: f64 = tputs.iter().sum();
    recompute / min_tput < traffic / total_tput
}
