//! Physical lowering of plan DAGs: rewrite rules, region execution and the
//! scan-offset pass.
//!
//! [`Lowering`] walks a [`PlanNode`] tree bottom-up, applying whichever
//! rewrite rules the [`PlanConfig`] enables. Elementwise regions that stay
//! fused compile to one `skelcl_fused` kernel (byte-identical to the PR 4
//! expression layer when no scan leaf participates); everything else is
//! *staged* — materialised into a fresh intermediate vector and re-entered
//! as a `Source` leaf, which is exactly what `SKELCL_PLAN=0` does for
//! every stage.

use std::sync::Arc;

use skelcl_kernel::types::ScalarType;
use skelcl_kernel::value::Value;
use vgpu::{Event, KernelArg, NdRange};

use crate::codegen::{c_literal, compile_cached};
use crate::container::data::DeviceChunk;
use crate::container::Vector;
use crate::context::Context;
use crate::distribution::Distribution;
use crate::error::{Error, Result};
use crate::exec::{
    elementwise_distribution, elementwise_launches, materialize, run_launches, skeleton_span,
    stencil_distributions, DeviceLaunch, ElementwiseInput,
};
use crate::skeleton::EventLog;
use crate::types::KernelScalar;

use super::cost::should_fuse_stencil;
use super::ir::{PlanNode, ScanOffsetState, StencilSpec};
use super::PlanConfig;

/// Work-group size for the stencil and scan-offset launches (matches the
/// eager skeletons).
const WG: usize = 256;

/// Dispatches a call generic over [`KernelScalar`] on a runtime
/// [`ScalarType`]. `Bool` is not a container element type, so it is an
/// internal error here.
macro_rules! dispatch_scalar {
    ($scalar:expr, $self:ident . $f:ident ( $($args:expr),* )) => {
        match $scalar {
            ScalarType::Bool => Err(Error::ShapeMismatch {
                reason: "plan lowering cannot stage bool elements".into(),
            }),
            ScalarType::Char => $self.$f::<i8>($($args),*),
            ScalarType::UChar => $self.$f::<u8>($($args),*),
            ScalarType::Short => $self.$f::<i16>($($args),*),
            ScalarType::UShort => $self.$f::<u16>($($args),*),
            ScalarType::Int => $self.$f::<i32>($($args),*),
            ScalarType::UInt => $self.$f::<u32>($($args),*),
            ScalarType::Long => $self.$f::<i64>($($args),*),
            ScalarType::ULong => $self.$f::<u64>($($args),*),
            ScalarType::Float => $self.$f::<f32>($($args),*),
            ScalarType::Double => $self.$f::<f64>($($args),*),
        }
    };
}

/// A scan whose offset pass is folded into this region's loads: source
/// `idx` is read through `f(offset, x)` guarded by a `has_offset` flag.
pub(crate) struct ScanLeaf {
    /// Index into [`FusedPlan::sources`] of the scan's phase-1 vector.
    pub idx: usize,
    /// The pending-offset state.
    pub state: Arc<ScanOffsetState>,
}

/// Everything needed to weld and launch a fused region: the deduped
/// sources and stage translation units, plus the per-element load
/// expression in terms of `skelcl_inN[skelcl_i]`.
pub(crate) struct FusedPlan<'a> {
    /// Distinct source containers in first-use order (`skelcl_inN` order).
    pub sources: Vec<&'a dyn ElementwiseInput>,
    /// Element types of `sources`.
    pub input_types: Vec<ScalarType>,
    /// Scans folded into this region's loads.
    pub scan_leaves: Vec<ScanLeaf>,
    /// Whether the tree contains a stencil node. Such a plan supports
    /// length/stats queries but cannot be launched as one region.
    pub has_stencil: bool,
    /// Concatenated deduplicated stage translation units.
    pub units: String,
    /// The per-element value as a nested call expression; the index
    /// variable is `skelcl_i`.
    pub load_expr: String,
    /// Common length of every source.
    pub len: usize,
    /// The common context.
    pub ctx: Context,
    /// Number of stage applications in the DAG.
    pub stages: usize,
    /// Bytes per element of all stage outputs combined — what an unfused
    /// execution writes to device memory as intermediate/result vectors.
    pub stage_bytes_per_elem: u64,
}

impl<'a> FusedPlan<'a> {
    /// Builds the plan by walking the DAG: dedupes sources by storage
    /// identity and stage units by content, validates context and length
    /// agreement.
    pub fn build(root: &'a PlanNode) -> Result<Self> {
        struct Builder<'a> {
            source_ids: Vec<usize>,
            sources: Vec<&'a dyn ElementwiseInput>,
            input_types: Vec<ScalarType>,
            scan_leaves: Vec<ScanLeaf>,
            has_stencil: bool,
            unit_sources: Vec<&'a str>,
            ctx: Option<&'a Context>,
            stages: usize,
            stage_bytes_per_elem: u64,
            error: Option<Error>,
        }

        impl<'a> Builder<'a> {
            fn check_ctx(&mut self, ctx: &'a Context) {
                match self.ctx {
                    None => self.ctx = Some(ctx),
                    Some(first) if first.same_as(ctx) => {}
                    Some(_) if self.error.is_none() => {
                        self.error = Some(Error::ShapeMismatch {
                            reason: "fused expression mixes containers or skeletons \
                                     from different contexts"
                                .into(),
                        });
                    }
                    Some(_) => {}
                }
            }

            fn source_index(&mut self, input: &'a dyn ElementwiseInput) -> usize {
                let id = input.input_id();
                self.source_ids
                    .iter()
                    .position(|&x| x == id)
                    .unwrap_or_else(|| {
                        self.source_ids.push(id);
                        self.sources.push(input);
                        self.input_types.push(input.input_scalar());
                        self.sources.len() - 1
                    })
            }

            fn add_unit(&mut self, unit: &'a str) {
                if !self.unit_sources.contains(&unit) {
                    self.unit_sources.push(unit);
                }
            }

            fn walk(&mut self, node: &'a PlanNode) -> String {
                match node {
                    PlanNode::Source { ctx, input, .. } => {
                        self.check_ctx(ctx);
                        let idx = self.source_index(input.as_ref());
                        format!("skelcl_in{idx}[skelcl_i]")
                    }
                    PlanNode::Apply {
                        ctx,
                        stage,
                        extras,
                        args,
                    } => {
                        self.check_ctx(ctx);
                        self.stages += 1;
                        self.stage_bytes_per_elem += stage.ret.size_bytes() as u64;
                        self.add_unit(&stage.source);
                        let mut call_args: Vec<String> =
                            args.iter().map(|a| self.walk(a)).collect();
                        call_args.extend(extras.iter().map(|v| c_literal(*v)));
                        format!("{}({})", stage.name, call_args.join(", "))
                    }
                    PlanNode::ScanOffset { ctx, state } => {
                        self.check_ctx(ctx);
                        let idx = self.source_index(state.vector.as_ref());
                        if state.is_applied() {
                            // The offsets already landed in the buffers:
                            // behaves as a plain source.
                            return format!("skelcl_in{idx}[skelcl_i]");
                        }
                        self.add_unit(&state.stage.source);
                        let k = self
                            .scan_leaves
                            .iter()
                            .position(|l| Arc::ptr_eq(&l.state, state))
                            .unwrap_or_else(|| {
                                self.scan_leaves.push(ScanLeaf {
                                    idx,
                                    state: state.clone(),
                                });
                                self.scan_leaves.len() - 1
                            });
                        let f = &state.stage.name;
                        format!(
                            "(skelcl_has_off{k} ? {f}(skelcl_off{k}, skelcl_in{idx}[skelcl_i]) \
                             : skelcl_in{idx}[skelcl_i])"
                        )
                    }
                    PlanNode::Stencil { ctx, spec, arg } => {
                        self.check_ctx(ctx);
                        self.stages += 1;
                        self.stage_bytes_per_elem += spec.out_scalar.size_bytes() as u64;
                        self.has_stencil = true;
                        // Placeholder: a plan with a stencil node answers
                        // len/stats queries but is never compiled.
                        let inner = self.walk(arg);
                        format!("__skelcl_stencil({inner})")
                    }
                }
            }
        }

        let mut b = Builder {
            source_ids: Vec::new(),
            sources: Vec::new(),
            input_types: Vec::new(),
            scan_leaves: Vec::new(),
            has_stencil: false,
            unit_sources: Vec::new(),
            ctx: None,
            stages: 0,
            stage_bytes_per_elem: 0,
            error: None,
        };
        let load_expr = b.walk(root);
        if let Some(e) = b.error {
            return Err(e);
        }
        let Some(first) = b.sources.first() else {
            return Err(Error::ShapeMismatch {
                reason: "fused expression has no container sources".into(),
            });
        };
        let len = first.input_len();
        for s in &b.sources {
            if s.input_len() != len {
                return Err(Error::ShapeMismatch {
                    reason: format!(
                        "fused expression requires equal source lengths, found {} and {}",
                        len,
                        s.input_len()
                    ),
                });
            }
        }
        let ctx = b.ctx.expect("a source implies a context").clone();
        Ok(FusedPlan {
            sources: b.sources,
            input_types: b.input_types,
            scan_leaves: b.scan_leaves,
            has_stencil: b.has_stencil,
            units: b.unit_sources.join("\n"),
            load_expr,
            len,
            ctx,
            stages: b.stages,
            stage_bytes_per_elem: b.stage_bytes_per_elem,
        })
    }

    /// The `__global const T* skelcl_inN, ` parameter list prefix shared
    /// by the fused kernels, followed by an `int skelcl_has_offK, T
    /// skelcl_offK, ` pair per folded scan.
    pub fn input_params(&self) -> String {
        let mut params: String = self
            .input_types
            .iter()
            .enumerate()
            .map(|(i, t)| format!("__global const {t}* skelcl_in{i}, "))
            .collect();
        for (k, leaf) in self.scan_leaves.iter().enumerate() {
            params.push_str(&format!(
                "int skelcl_has_off{k}, {t} skelcl_off{k}, ",
                t = leaf.state.scalar
            ));
        }
        params
    }

    /// The `skelcl_in0, skelcl_in1, …` forwarding list for calls to a
    /// generated device helper taking the input pointers (and scan-offset
    /// pairs).
    pub fn input_args(&self) -> String {
        let mut parts: Vec<String> = (0..self.input_types.len())
            .map(|i| format!("skelcl_in{i}"))
            .collect();
        for k in 0..self.scan_leaves.len() {
            parts.push(format!("skelcl_has_off{k}"));
            parts.push(format!("skelcl_off{k}"));
        }
        parts.join(", ")
    }

    /// Ensures every folded scan can be fed by per-chunk offset arguments:
    /// when the consumer's chunks do not line up with the chunks the scan
    /// recorded, the offsets are applied as a standalone (ranged) pass
    /// first, after which [`FusedPlan::scan_args`] degenerates to
    /// "no offset".
    pub fn prepare_scan(
        &self,
        chunk_sets: &[Vec<DeviceChunk>],
        events: &mut Vec<Event>,
    ) -> Result<()> {
        for leaf in &self.scan_leaves {
            if leaf.state.is_applied() {
                continue;
            }
            let chunks = &chunk_sets[leaf.idx];
            let aligned = chunks.len() == leaf.state.plans.len()
                && chunks.iter().all(|c| {
                    leaf.state.plans.iter().any(|pl| {
                        pl.device == c.plan.device
                            && pl.core == c.plan.core
                            && pl.stored == c.plan.stored
                            && pl.stored == pl.core
                    })
                });
            if !aligned {
                apply_offsets(&leaf.state, &self.ctx, events, Some(chunks))?;
            }
        }
        Ok(())
    }

    /// Lands every folded scan's pending offsets in its source vector now
    /// (idempotent) — used by the streaming executor, whose chunks never
    /// line up with the chunks the scan recorded. Afterwards the kernels'
    /// per-leaf `(has_offset, offset)` pairs degenerate to "no offset".
    pub fn apply_scan_offsets(&self, events: &mut Vec<Event>) -> Result<()> {
        for leaf in &self.scan_leaves {
            apply_offsets(&leaf.state, &self.ctx, events, None)?;
        }
        Ok(())
    }

    /// The `(has_offset, offset)` scalar argument pairs for output chunk
    /// `j`, in scan-leaf order. Call [`FusedPlan::prepare_scan`] first.
    pub fn scan_args(&self, chunk_sets: &[Vec<DeviceChunk>], j: usize) -> Vec<KernelArg> {
        let mut args = Vec::with_capacity(self.scan_leaves.len() * 2);
        for leaf in &self.scan_leaves {
            let pair = if leaf.state.is_applied() {
                (0, leaf.state.zero)
            } else {
                let c = &chunk_sets[leaf.idx][j];
                let k = leaf
                    .state
                    .plans
                    .iter()
                    .position(|pl| {
                        pl.device == c.plan.device
                            && pl.core == c.plan.core
                            && pl.stored == c.plan.stored
                    })
                    .expect("prepare_scan aligned the chunks");
                if k == 0 {
                    (0, leaf.state.zero)
                } else {
                    (1, leaf.state.offsets[k - 1])
                }
            };
            args.push(KernelArg::Scalar(Value::I32(pair.0)));
            args.push(KernelArg::Scalar(pair.1));
        }
        args
    }
}

/// Applies a pending scan-offset pass to the scan's vector, idempotently.
///
/// When the vector's current chunks line up with the chunks the scan
/// recorded (and carry no halo), this is the exact offset pass
/// `Scan::call` phase 2 would have run: one whole-chunk
/// `skelcl_scan_offset` launch per non-first chunk. Otherwise each
/// recorded core range is intersected with every current stored range and
/// patched by a generated ranged kernel — correct under any
/// redistribution, including `Copy` replicas.
pub(crate) fn apply_offsets(
    state: &ScanOffsetState,
    ctx: &Context,
    events: &mut Vec<Event>,
    current_chunks: Option<&[DeviceChunk]>,
) -> Result<()> {
    let mut applied = state.applied.lock().unwrap();
    if *applied {
        return Ok(());
    }
    let owned;
    let chunks: &[DeviceChunk] = match current_chunks {
        Some(c) => c,
        None => {
            owned = state.vector.input_chunks(state.dist)?;
            &owned
        }
    };
    let aligned = chunks.len() == state.plans.len()
        && chunks.iter().zip(&state.plans).all(|(c, pl)| {
            c.plan.device == pl.device
                && c.plan.core == pl.core
                && c.plan.stored == pl.stored
                && pl.stored == pl.core
        });
    if aligned {
        let mut launches = Vec::new();
        for (j, c) in chunks.iter().enumerate().skip(1) {
            let n = c.plan.core_len();
            launches.push(DeviceLaunch {
                device: c.plan.device,
                args: vec![
                    KernelArg::Buffer(c.buffer.clone()),
                    KernelArg::Scalar(state.offsets[j - 1]),
                    KernelArg::Scalar(Value::I32(n as i32)),
                ],
                range: NdRange::linear(n, WG),
                units: 0,
            });
        }
        events.extend(run_launches(
            ctx,
            &state.program,
            "skelcl_scan_offset",
            launches,
        )?);
    } else {
        let source = format!(
            "{unit}\n\
             __kernel void skelcl_scan_offset_at(__global {t}* skelcl_data, {t} skelcl_off,\n\
             \x20       int skelcl_n, int skelcl_start) {{\n\
             \x20   int gid = (int)get_global_id(0);\n\
             \x20   if (gid < skelcl_n)\n\
             \x20       skelcl_data[skelcl_start + gid] = {f}(skelcl_off, skelcl_data[skelcl_start + gid]);\n\
             }}\n",
            unit = state.stage.source,
            t = state.scalar,
            f = state.stage.name,
        );
        let program = compile_cached(ctx, "skelcl_plan_scan_offset.cl", &source)?;
        let mut launches = Vec::new();
        for (k, pl) in state.plans.iter().enumerate().skip(1) {
            let off = state.offsets[k - 1];
            for c in chunks {
                let start = pl.core.start.max(c.plan.stored.start);
                let end = pl.core.end.min(c.plan.stored.end);
                if start >= end {
                    continue;
                }
                launches.push(DeviceLaunch {
                    device: c.plan.device,
                    args: vec![
                        KernelArg::Buffer(c.buffer.clone()),
                        KernelArg::Scalar(off),
                        KernelArg::Scalar(Value::I32((end - start) as i32)),
                        KernelArg::Scalar(Value::I32((start - c.plan.stored.start) as i32)),
                    ],
                    range: NdRange::linear(end - start, WG),
                    units: 0,
                });
            }
        }
        events.extend(run_launches(
            ctx,
            &program,
            "skelcl_scan_offset_at",
            launches,
        )?);
    }
    state.vector.input_mark_device_written();
    *applied = true;
    Ok(())
}

/// One lowering pass: rewrite-rule application, staged-region execution and
/// telemetry accumulation.
struct Lowering {
    cfg: PlanConfig,
    events: Vec<Event>,
    rules_fired: Vec<&'static str>,
    nodes_fused: u64,
    intermediate_bytes: u64,
}

impl Lowering {
    fn new(cfg: PlanConfig) -> Self {
        Lowering {
            cfg,
            events: Vec::new(),
            rules_fired: Vec::new(),
            nodes_fused: 0,
            intermediate_bytes: 0,
        }
    }

    fn fire(&mut self, rule: &'static str) {
        self.rules_fired.push(rule);
    }

    /// Collapses a subtree to a launchable form: a `Source` leaf, an
    /// elementwise `Apply` tree over sources/scan leaves, or a bare
    /// `ScanOffset` leaf. Stencils are always executed here; whether an
    /// `Apply` child stays welded to its parent (the `chain` rule), a scan
    /// leaf survives (`scan-offset`), or everything stages is decided per
    /// edge. `allow_scan` is false inside stencil producers, where a
    /// folded offset would use the wrong chunk's offset for halo elements.
    fn collapse_arg(&mut self, node: &Arc<PlanNode>, allow_scan: bool) -> Result<Arc<PlanNode>> {
        match node.as_ref() {
            PlanNode::Source { .. } => Ok(node.clone()),
            PlanNode::Apply {
                ctx,
                stage,
                extras,
                args,
            } => {
                let mut new_args = Vec::with_capacity(args.len());
                for a in args {
                    let mut c = self.collapse_arg(a, allow_scan)?;
                    if matches!(c.as_ref(), PlanNode::Apply { .. }) {
                        if self.cfg.chain && !self.cfg.staged {
                            self.fire("chain");
                            self.nodes_fused += 1;
                        } else {
                            c = self.run_region_erased(&c)?;
                        }
                    }
                    new_args.push(c);
                }
                Ok(Arc::new(PlanNode::Apply {
                    ctx: ctx.clone(),
                    stage: stage.clone(),
                    extras: extras.clone(),
                    args: new_args,
                }))
            }
            PlanNode::ScanOffset { ctx, state } => {
                if self.cfg.scan_offset && !self.cfg.staged && allow_scan && !state.is_applied() {
                    self.fire("scan-offset");
                    self.nodes_fused += 1;
                    Ok(node.clone())
                } else {
                    apply_offsets(state, ctx, &mut self.events, None)?;
                    Ok(Arc::new(PlanNode::Source {
                        ctx: ctx.clone(),
                        input: state.vector.input_boxed(),
                        fresh: false,
                    }))
                }
            }
            PlanNode::Stencil { ctx, spec, arg } => self.eval_stencil(ctx, spec, arg),
        }
    }

    /// Runs a collapsed elementwise region into a fresh intermediate
    /// vector, dispatching on the runtime output scalar type.
    fn run_region_erased(&mut self, node: &Arc<PlanNode>) -> Result<Arc<PlanNode>> {
        dispatch_scalar!(node.out_scalar(), self.finish_region(node))
    }

    fn finish_region<T: KernelScalar>(&mut self, node: &Arc<PlanNode>) -> Result<Arc<PlanNode>> {
        let p = FusedPlan::build(node)?;
        let ctx = p.ctx.clone();
        let len = p.len;
        let out = self.run_region_typed::<T>(&p, false)?;
        self.intermediate_bytes += (len * T::SCALAR.size_bytes()) as u64;
        Ok(Arc::new(PlanNode::Source {
            ctx,
            input: Box::new(out),
            fresh: true,
        }))
    }

    /// Compiles and launches one fused elementwise region. `root` regions
    /// open the public `Expr.eval` skeleton span (bumping
    /// `skeleton.calls`, as the PR 4 layer did); staged intermediates get
    /// a `plan.stage` span without the counter, so default-path call
    /// counts are unchanged.
    fn run_region_typed<O: KernelScalar>(
        &mut self,
        p: &FusedPlan,
        root: bool,
    ) -> Result<Vector<O>> {
        debug_assert!(!p.has_stencil, "stencil nodes are lowered by eval_stencil");
        let _span = if root {
            skeleton_span(&p.ctx, "Expr.eval")
        } else {
            p.ctx
                .profiler()
                .host_span(skelcl_profile::SpanKind::Skeleton, "plan.stage")
        };
        let source = format!(
            "{units}\n\
             __kernel void skelcl_fused({params}__global {out}* skelcl_out, int skelcl_n) {{\n\
             \x20   int skelcl_i = (int)get_global_id(0);\n\
             \x20   if (skelcl_i < skelcl_n) skelcl_out[skelcl_i] = {expr};\n\
             }}\n",
            units = p.units,
            params = p.input_params(),
            out = O::SCALAR,
            expr = p.load_expr,
        );
        let program = compile_cached(&p.ctx, "skelcl_fused.cl", &source)?;
        let dist = elementwise_distribution(p.sources[0].input_distribution(Distribution::Block));
        let bytes_per_unit: usize =
            p.input_types.iter().map(|t| t.size_bytes()).sum::<usize>() + O::SCALAR.size_bytes();
        if let Some(sched) =
            crate::stream::plan_stream(&p.ctx, p.len, dist, bytes_per_unit, &|_| 0, 0)
        {
            // Streamed chunks do not line up with the chunks a folded scan
            // recorded, so land the offsets in the source first — the
            // exact pass the oracle's `prepare_scan` runs for misaligned
            // chunks, keeping results bit-identical.
            p.apply_scan_offsets(&mut self.events)?;
            let scan_args: Vec<KernelArg> = p
                .scan_leaves
                .iter()
                .flat_map(|leaf| {
                    [
                        KernelArg::Scalar(Value::I32(0)),
                        KernelArg::Scalar(leaf.state.zero),
                    ]
                })
                .collect();
            let bytes = crate::stream::stream_map_like(
                &p.ctx,
                &sched,
                0,
                p.len,
                &p.sources,
                O::SCALAR.size_bytes(),
                &program,
                "skelcl_fused",
                &|chunk, ins, out| {
                    let mut args: Vec<KernelArg> =
                        ins.iter().map(|b| KernelArg::Buffer(b.clone())).collect();
                    args.extend(scan_args.iter().cloned());
                    args.push(KernelArg::Buffer(out.clone()));
                    let n = chunk.range.len();
                    args.push(KernelArg::Scalar(Value::I32(n as i32)));
                    (args, NdRange::linear_default(n))
                },
                &mut self.events,
            )?;
            return Ok(Vector::from_vec(&p.ctx, crate::types::from_bytes(&bytes)));
        }
        let in_chunks = materialize(&p.sources, dist)?;
        if !p.scan_leaves.is_empty() {
            p.prepare_scan(&in_chunks, &mut self.events)?;
        }
        let (output, out_chunks) = Vector::alloc_device(&p.ctx, p.len, dist)?;
        let launches = if p.scan_leaves.is_empty() {
            elementwise_launches(&in_chunks, &out_chunks, 1, &[])
        } else {
            out_chunks
                .iter()
                .enumerate()
                .map(|(j, oc)| {
                    let n = oc.plan.core_len();
                    let mut args: Vec<KernelArg> = in_chunks
                        .iter()
                        .map(|chunks| KernelArg::Buffer(chunks[j].buffer.clone()))
                        .collect();
                    args.extend(p.scan_args(&in_chunks, j));
                    args.push(KernelArg::Buffer(oc.buffer.clone()));
                    args.push(KernelArg::Scalar(Value::I32(n as i32)));
                    DeviceLaunch {
                        device: oc.plan.device,
                        args,
                        range: NdRange::linear_default(n),
                        units: n,
                    }
                })
                .collect()
        };
        self.events
            .extend(run_launches(&p.ctx, &program, "skelcl_fused", launches)?);
        output.mark_device_written();
        Ok(output)
    }

    /// Lowers a stencil node: either welds its elementwise producer into
    /// the stencil kernel (the `stencil` rule, re-deriving halo elements
    /// from the producer's sources) or materialises the producer and runs
    /// the skeleton's pre-built standalone kernel.
    fn eval_stencil(
        &mut self,
        ctx: &Context,
        spec: &StencilSpec,
        arg: &Arc<PlanNode>,
    ) -> Result<Arc<PlanNode>> {
        let a = self.collapse_arg(arg, false)?;
        let mut fuse =
            self.cfg.stencil && !self.cfg.staged && matches!(a.as_ref(), PlanNode::Apply { .. });
        if fuse && self.cfg.cost_model {
            let p = FusedPlan::build(&a)?;
            fuse = should_fuse_stencil(ctx, p.stages, spec.d, p.len);
        }
        if fuse {
            self.fire("stencil");
            dispatch_scalar!(spec.out_scalar, self.stencil_fused(ctx, spec, &a))
        } else {
            let a = match a.as_ref() {
                PlanNode::Source { .. } => a,
                _ => self.run_region_erased(&a)?,
            };
            let PlanNode::Source { input, .. } = a.as_ref() else {
                unreachable!("run_region_erased returns a Source");
            };
            dispatch_scalar!(
                spec.out_scalar,
                self.stencil_standalone(ctx, spec, input.as_ref())
            )
        }
    }

    /// The staged stencil: replicates `MapOverlapVec::call_with` on a
    /// materialised input using the skeleton's pre-built program.
    fn stencil_standalone<O: KernelScalar>(
        &mut self,
        ctx: &Context,
        spec: &StencilSpec,
        input: &dyn ElementwiseInput,
    ) -> Result<Arc<PlanNode>> {
        let _span = ctx
            .profiler()
            .host_span(skelcl_profile::SpanKind::Skeleton, "plan.stage");
        let (in_dist, out_dist) = stencil_distributions(
            input.input_distribution(Distribution::Overlap { size: spec.d }),
            spec.d,
        );
        let bytes_per_unit = spec.in_scalar.size_bytes() + O::SCALAR.size_bytes();
        if let Some(sched) = crate::stream::plan_stream(
            ctx,
            input.input_len(),
            out_dist,
            bytes_per_unit,
            &|_| 0,
            spec.d,
        ) {
            // Each chunk stages `range ± d` (clamped), so the kernel's
            // boundary handling fires only at the true container edges —
            // exactly as on a whole `Overlap` chunk.
            let sources: [&dyn ElementwiseInput; 1] = [input];
            let extras: Vec<KernelArg> =
                spec.extras.iter().map(|v| KernelArg::Scalar(*v)).collect();
            let bytes = crate::stream::stream_map_like(
                ctx,
                &sched,
                spec.d,
                input.input_len(),
                &sources,
                O::SCALAR.size_bytes(),
                &spec.standalone,
                "skelcl_mapoverlap_vec",
                &|chunk, ins, out| {
                    let mut args = vec![
                        KernelArg::Buffer(ins[0].clone()),
                        KernelArg::Buffer(out.clone()),
                        KernelArg::Scalar(Value::I32(chunk.staged.len() as i32)),
                        KernelArg::Scalar(Value::I32(chunk.range.len() as i32)),
                        KernelArg::Scalar(Value::I32(
                            (chunk.range.start - chunk.staged.start) as i32,
                        )),
                    ];
                    args.extend(extras.iter().cloned());
                    (args, NdRange::linear(chunk.range.len(), WG))
                },
                &mut self.events,
            )?;
            let output = Vector::<O>::from_vec(ctx, crate::types::from_bytes(&bytes));
            self.intermediate_bytes += (output.len() * O::SCALAR.size_bytes()) as u64;
            return Ok(Arc::new(PlanNode::Source {
                ctx: ctx.clone(),
                input: Box::new(output),
                fresh: true,
            }));
        }
        let in_chunks = input.input_chunks(in_dist)?;
        let (output, out_chunks) = Vector::<O>::alloc_device(ctx, input.input_len(), out_dist)?;
        let launches = in_chunks
            .iter()
            .zip(&out_chunks)
            .map(|(ic, oc)| {
                let out_n = oc.plan.core_len();
                let mut args = vec![
                    KernelArg::Buffer(ic.buffer.clone()),
                    KernelArg::Buffer(oc.buffer.clone()),
                    KernelArg::Scalar(Value::I32(ic.plan.stored_len() as i32)),
                    KernelArg::Scalar(Value::I32(out_n as i32)),
                    KernelArg::Scalar(Value::I32(ic.plan.core_offset() as i32)),
                ];
                args.extend(spec.extras.iter().map(|v| KernelArg::Scalar(*v)));
                DeviceLaunch {
                    device: ic.plan.device,
                    args,
                    range: NdRange::linear(out_n, WG),
                    units: ic.plan.core_len(),
                }
            })
            .collect();
        self.events.extend(run_launches(
            ctx,
            &spec.standalone,
            "skelcl_mapoverlap_vec",
            launches,
        )?);
        output.mark_device_written();
        self.intermediate_bytes += (output.len() * O::SCALAR.size_bytes()) as u64;
        let node = PlanNode::Source {
            ctx: ctx.clone(),
            input: Box::new(output),
            fresh: true,
        };
        Ok(Arc::new(node))
    }

    /// The fused stencil: the producer chain becomes a
    /// `skelcl_fused_load` prologue and each device recomputes its halo
    /// elements from the producer's sources (materialised with an overlap
    /// halo), so the producer's output is never written to memory. Tile
    /// staging, boundary handling and the per-element operations are
    /// identical to the standalone kernel, keeping results bit-identical.
    fn stencil_fused<O: KernelScalar>(
        &mut self,
        ctx: &Context,
        spec: &StencilSpec,
        producer: &Arc<PlanNode>,
    ) -> Result<Arc<PlanNode>> {
        let _span = ctx
            .profiler()
            .host_span(skelcl_profile::SpanKind::Skeleton, "plan.stage");
        let p = FusedPlan::build(producer)?;
        debug_assert!(
            p.scan_leaves.is_empty(),
            "scan folding is disabled inside stencil producers"
        );
        self.nodes_fused += p.stages as u64 + 1;
        let in_params = p.input_params();
        let in_args = p.input_args();
        let i = spec.in_scalar;
        let d = spec.d;
        let tlen = WG + 2 * d;
        let load = match spec.neutral {
            Some(v) => format!(
                "return (i < 0 || i >= n) ? {} : skelcl_fused_load({in_args}, i);",
                c_literal(v)
            ),
            None => format!("return skelcl_fused_load({in_args}, clamp(i, 0, n - 1));"),
        };
        let extras: String = spec
            .extras
            .iter()
            .map(|v| format!(", {}", c_literal(*v)))
            .collect();
        let source = format!(
            "{units}\n\
             {unit}\n\
             {i} skelcl_fused_load({in_params}int skelcl_i) {{\n\
             \x20   return {expr};\n\
             }}\n\
             {i} __skelcl_get1(const {i}* skelcl_c, int di) {{\n\
             \x20   return (di >= -{d} && di <= {d}) ? skelcl_c[di] : ({i})__skelcl_trap_int(100);\n\
             }}\n\
             {i} __skelcl_load1({in_params}int i, int n) {{\n\
             \x20   {load}\n\
             }}\n\
             __kernel void skelcl_mapoverlap_fused({in_params}__global {o}* skelcl_out,\n\
             \x20       int skelcl_in_n, int skelcl_out_n, int skelcl_off) {{\n\
             \x20   __local {i} skelcl_tile[{tlen}];\n\
             \x20   int lid = (int)get_local_id(0);\n\
             \x20   int gid = (int)get_global_id(0);\n\
             \x20   int lsz = (int)get_local_size(0);\n\
             \x20   int base = (int)get_group_id(0) * lsz + skelcl_off - {d};\n\
             \x20   for (int t = lid; t < {tlen}; t += lsz) {{\n\
             \x20       int skelcl_i = base + t;\n\
             \x20       skelcl_tile[t] = __skelcl_load1({in_args}, skelcl_i, skelcl_in_n);\n\
             \x20   }}\n\
             \x20   barrier(CLK_LOCAL_MEM_FENCE);\n\
             \x20   if (gid < skelcl_out_n)\n\
             \x20       skelcl_out[gid] = {f}(&skelcl_tile[lid + {d}]{extras});\n\
             }}\n",
            units = p.units,
            unit = spec.unit,
            o = O::SCALAR,
            f = spec.func,
            expr = p.load_expr,
        );
        let program = compile_cached(ctx, "skelcl_mapoverlap_fused.cl", &source)?;
        let (in_dist, out_dist) = stencil_distributions(
            p.sources[0].input_distribution(Distribution::Overlap { size: d }),
            d,
        );
        let bytes_per_unit: usize =
            p.input_types.iter().map(|t| t.size_bytes()).sum::<usize>() + O::SCALAR.size_bytes();
        if let Some(sched) =
            crate::stream::plan_stream(ctx, p.len, out_dist, bytes_per_unit, &|_| 0, d)
        {
            let bytes = crate::stream::stream_map_like(
                ctx,
                &sched,
                d,
                p.len,
                &p.sources,
                O::SCALAR.size_bytes(),
                &program,
                "skelcl_mapoverlap_fused",
                &|chunk, ins, out| {
                    let mut args: Vec<KernelArg> =
                        ins.iter().map(|b| KernelArg::Buffer(b.clone())).collect();
                    args.push(KernelArg::Buffer(out.clone()));
                    args.push(KernelArg::Scalar(Value::I32(chunk.staged.len() as i32)));
                    args.push(KernelArg::Scalar(Value::I32(chunk.range.len() as i32)));
                    args.push(KernelArg::Scalar(Value::I32(
                        (chunk.range.start - chunk.staged.start) as i32,
                    )));
                    (args, NdRange::linear(chunk.range.len(), WG))
                },
                &mut self.events,
            )?;
            let output = Vector::<O>::from_vec(ctx, crate::types::from_bytes(&bytes));
            self.intermediate_bytes += (output.len() * O::SCALAR.size_bytes()) as u64;
            return Ok(Arc::new(PlanNode::Source {
                ctx: ctx.clone(),
                input: Box::new(output),
                fresh: true,
            }));
        }
        let in_chunks = materialize(&p.sources, in_dist)?;
        let (output, out_chunks) = Vector::<O>::alloc_device(ctx, p.len, out_dist)?;
        let launches = out_chunks
            .iter()
            .enumerate()
            .map(|(j, oc)| {
                let ic_plan = &in_chunks[0][j].plan;
                let out_n = oc.plan.core_len();
                let mut args: Vec<KernelArg> = in_chunks
                    .iter()
                    .map(|chunks| KernelArg::Buffer(chunks[j].buffer.clone()))
                    .collect();
                args.push(KernelArg::Buffer(oc.buffer.clone()));
                args.push(KernelArg::Scalar(Value::I32(ic_plan.stored_len() as i32)));
                args.push(KernelArg::Scalar(Value::I32(out_n as i32)));
                args.push(KernelArg::Scalar(Value::I32(ic_plan.core_offset() as i32)));
                DeviceLaunch {
                    device: ic_plan.device,
                    args,
                    range: NdRange::linear(out_n, WG),
                    units: ic_plan.core_len(),
                }
            })
            .collect();
        self.events.extend(run_launches(
            ctx,
            &program,
            "skelcl_mapoverlap_fused",
            launches,
        )?);
        output.mark_device_written();
        self.intermediate_bytes += (output.len() * O::SCALAR.size_bytes()) as u64;
        let node = PlanNode::Source {
            ctx: ctx.clone(),
            input: Box::new(output),
            fresh: true,
        };
        Ok(Arc::new(node))
    }

    /// Publishes the pass's telemetry: `plan.rules_fired`,
    /// `plan.nodes_fused` and `plan.intermediate_bytes` counters.
    fn publish(&self, ctx: &Context) {
        let profiler = ctx.profiler();
        if !profiler.is_enabled() {
            return;
        }
        use skelcl_profile::metrics as m;
        if !self.rules_fired.is_empty() {
            profiler.add(m::PLAN_RULES_FIRED, self.rules_fired.len() as u64);
        }
        if self.nodes_fused > 0 {
            profiler.add(m::PLAN_NODES_FUSED, self.nodes_fused);
        }
        profiler.add(m::PLAN_INTERMEDIATE_BYTES, self.intermediate_bytes);
    }

    fn attach(&self, span: &mut skelcl_profile::SpanGuard) {
        span.attach(
            "plan.rules",
            if self.rules_fired.is_empty() {
                "none".to_string()
            } else {
                self.rules_fired.join(",")
            },
        );
        span.attach(
            "plan.decision",
            if self.cfg.staged { "staged" } else { "fused" },
        );
    }
}

/// Lowers a plan DAG rooted in an elementwise/scan term to a vector —
/// [`crate::Expr::eval`]'s engine.
pub(crate) fn eval_vector<O: KernelScalar>(
    node: &Arc<PlanNode>,
    log: Option<&EventLog>,
) -> Result<Vector<O>> {
    let cfg = PlanConfig::from_env();
    let mut lo = Lowering::new(cfg);
    let ctx = node.ctx().clone();
    let mut span = ctx
        .profiler()
        .host_span(skelcl_profile::SpanKind::Skeleton, "plan.lower");
    let collapsed = lo.collapse_arg(node, true)?;
    let result: Vector<O> = match collapsed.as_ref() {
        PlanNode::Source {
            input, fresh: true, ..
        } => {
            let v = input
                .input_any()
                .downcast_ref::<Vector<O>>()
                .ok_or_else(|| Error::ShapeMismatch {
                    reason: "plan produced a container of an unexpected element type".into(),
                })?
                .clone();
            // The final region's output is the result, not an intermediate.
            lo.intermediate_bytes = lo
                .intermediate_bytes
                .saturating_sub((v.len() * O::SCALAR.size_bytes()) as u64);
            v
        }
        _ => {
            let p = FusedPlan::build(&collapsed)?;
            lo.run_region_typed::<O>(&p, true)?
        }
    };
    lo.attach(&mut span);
    if let Some(log) = log {
        log.record(lo.events.clone());
    }
    lo.publish(&ctx);
    Ok(result)
}

/// What [`crate::Reduce::call_fused`] should reduce after lowering.
pub(crate) enum ReduceInput {
    /// The collapsed tree welds into the reduction's load prologue
    /// (`Source`, `Apply` over sources/scan leaves, or a bare scan leaf).
    Welded(Arc<PlanNode>),
    /// Everything was staged; reduce the materialised `Source` plainly.
    Staged(Arc<PlanNode>),
}

/// Lowers a reduction's input DAG, applying every enabled rule except the
/// final weld, which the caller performs. Returns the lowering's events
/// for the caller to merge into its event log.
pub(crate) fn prepare_reduce(node: &Arc<PlanNode>) -> Result<(ReduceInput, Vec<Event>)> {
    let cfg = PlanConfig::from_env();
    let mut lo = Lowering::new(cfg);
    let ctx = node.ctx().clone();
    let mut span = ctx
        .profiler()
        .host_span(skelcl_profile::SpanKind::Skeleton, "plan.lower");
    let collapsed = lo.collapse_arg(node, true)?;
    let input = if cfg.staged || !cfg.weld {
        let collapsed = match collapsed.as_ref() {
            PlanNode::Source { .. } => collapsed,
            _ => lo.run_region_erased(&collapsed)?,
        };
        ReduceInput::Staged(collapsed)
    } else {
        if matches!(
            collapsed.as_ref(),
            PlanNode::Apply { .. } | PlanNode::ScanOffset { .. }
        ) {
            lo.fire("reduce-weld");
            lo.nodes_fused += 1;
        }
        ReduceInput::Welded(collapsed)
    };
    lo.attach(&mut span);
    lo.publish(&ctx);
    Ok((input, lo.events))
}
