//! The out-of-core streaming executor (`SKELCL_STREAM`).
//!
//! When a lowered plan region's per-device working set exceeds a memory
//! budget (`SKELCL_DEVICE_BUDGET` in bytes, defaulting to each device's
//! real [`vgpu::Device::available_bytes`]), the plan layer does not
//! materialise whole containers on the devices. Instead it splits every
//! device's share of the distribution axis into chunks and drives them
//! through one [`LaunchPlan`] as a software pipeline:
//!
//! * each device owns a **staging ring** of `depth` reusable slots
//!   (`SKELCL_STREAM=<depth>`, default 2 — double buffering); a chunk
//!   leases a slot, stages its input range host→device, runs the region's
//!   kernel over it, and (for map-like regions) reads the output back;
//! * **ring recycling** is expressed as explicit cross-chunk wait-list
//!   edges: chunk *k*'s uploads depend on chunk *k − depth*'s kernel (the
//!   slot's previous consumer) and its kernel depends on chunk
//!   *k − depth*'s readback — so peak device residency stays bounded by
//!   the ring while chunk *N*'s kernels execute concurrently with chunk
//!   *N + 1*'s uploads and chunk *N − 1*'s readbacks on *other* devices;
//! * chunking is **halo-aware**: a stencil chunk stages `range ± d`
//!   clamped to the container, and scan's cross-chunk offset state is
//!   applied to the source before staging, so streamed results stay
//!   bit-identical to the non-streamed oracle.
//!
//! The non-streamed path is untouched: with `SKELCL_STREAM=0`, with no
//! budget pressure, or for distributions the chunker does not handle
//! (`Copy`), regions run exactly as before and serve as the oracle the
//! stream proptests and the `results.stream` bench section compare
//! against.

use std::ops::Range;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use skelcl_profile::{metrics as m, FlightKind};
use vgpu::{DeviceBuffer, Event, KernelArg, NdRange};

use crate::context::Context;
use crate::distribution::{ChunkPlan, Distribution};
use crate::engine::{LaunchPlan, NodeId};
use crate::error::Result;
use crate::exec::ElementwiseInput;

/// Smallest chunk the splitter produces, in distribution units: below
/// this, per-chunk launch overhead dwarfs the transfer time the pipeline
/// can hide. Budgets too small to honour it are exceeded best-effort.
pub(crate) const MIN_CHUNK_UNITS: usize = 256;

/// The streaming gate parsed from `SKELCL_STREAM`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Whether streaming may engage at all.
    pub enabled: bool,
    /// Staging-ring depth per device (2 = classic double buffering).
    pub depth: usize,
}

impl StreamConfig {
    /// The default: enabled, double-buffered.
    pub fn on() -> Self {
        StreamConfig {
            enabled: true,
            depth: 2,
        }
    }

    /// Streaming disabled — every region runs the non-streamed oracle.
    pub fn off() -> Self {
        StreamConfig {
            enabled: false,
            depth: 0,
        }
    }

    /// Parses a `SKELCL_STREAM` value (`None` means unset → default on):
    /// `0`/`off` disable, `1`/`on`/empty give the default depth 2, any
    /// larger integer sets the ring depth. Unparsable values fall back to
    /// the default.
    pub fn parse(spec: Option<&str>) -> Self {
        let Some(spec) = spec else {
            return Self::on();
        };
        match spec.trim() {
            "" | "1" | "on" => Self::on(),
            "0" | "off" => Self::off(),
            other => match other.parse::<usize>() {
                Ok(depth) if depth >= 1 => StreamConfig {
                    enabled: true,
                    depth,
                },
                _ => Self::on(),
            },
        }
    }

    /// Reads `SKELCL_STREAM` from the environment.
    pub fn from_env() -> Self {
        Self::parse(std::env::var("SKELCL_STREAM").ok().as_deref())
    }
}

/// The per-device memory budget in bytes: `SKELCL_DEVICE_BUDGET` if set
/// to a positive integer, else the device's real available memory.
pub(crate) fn device_budget(ctx: &Context, device: usize) -> usize {
    std::env::var("SKELCL_DEVICE_BUDGET")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&b| b > 0)
        .unwrap_or_else(|| ctx.platform().device(device).available_bytes())
}

/// One device's share of a streamed region: the same partition the
/// non-streamed path would use (scheduler-weighted for `Block`), plus the
/// chunk size the budget allows.
#[derive(Debug, Clone)]
pub(crate) struct StreamShare {
    /// The device's full share (`core` in global units).
    pub plan: ChunkPlan,
    /// Units per streamed chunk on this device.
    pub chunk_units: usize,
}

/// A chunked execution schedule for one streamed region.
#[derive(Debug, Clone)]
pub(crate) struct StreamSchedule {
    /// Staging-ring depth per device.
    pub depth: usize,
    /// Per-device shares, in `plan_units` order.
    pub shares: Vec<StreamShare>,
}

/// Decides whether a region of `units` distribution units under `dist`
/// must stream, and if so how to chunk it.
///
/// `bytes_per_unit` is the region's staging traffic per unit (all input
/// element sizes plus the per-unit output residency); `fixed_bytes` maps a
/// share's unit count to the device bytes the region keeps resident
/// outside the ring (e.g. a reduction's accumulator). `halo` widens every
/// chunk's staged input range on both sides.
///
/// Returns `None` — run the ordinary non-streamed path — when streaming
/// is disabled, the distribution is not chunkable along one axis
/// (`Copy` replicates everything), or every share already fits its
/// device's budget.
pub(crate) fn plan_stream(
    ctx: &Context,
    units: usize,
    dist: Distribution,
    bytes_per_unit: usize,
    fixed_bytes: &dyn Fn(usize) -> usize,
    halo: usize,
) -> Option<StreamSchedule> {
    let cfg = StreamConfig::from_env();
    if !cfg.enabled || units == 0 {
        return None;
    }
    if !matches!(dist, Distribution::Block | Distribution::Single(_)) {
        return None;
    }
    let bytes_per_unit = bytes_per_unit.max(1);
    let mut engaged = false;
    let mut shares = Vec::new();
    for plan in ctx.plan_units(units, dist) {
        let n = plan.core_len();
        if n == 0 {
            continue;
        }
        let budget = device_budget(ctx, plan.device);
        let fixed = fixed_bytes(n);
        let working = n
            .saturating_mul(bytes_per_unit)
            .saturating_add(2 * halo * bytes_per_unit)
            .saturating_add(fixed);
        let per_slot = budget.saturating_sub(fixed) / cfg.depth.max(1);
        let chunk_units = (per_slot / bytes_per_unit)
            .saturating_sub(2 * halo)
            .max(MIN_CHUNK_UNITS)
            .min(n);
        if working > budget && chunk_units < n {
            engaged = true;
        }
        shares.push(StreamShare { plan, chunk_units });
    }
    if !engaged || shares.is_empty() {
        return None;
    }
    Some(StreamSchedule {
        depth: cfg.depth.max(1),
        shares,
    })
}

/// One chunk of a streamed region, in global distribution units.
#[derive(Debug, Clone)]
pub(crate) struct ChunkCtx {
    /// The output units this chunk produces.
    pub range: Range<usize>,
    /// The input units staged for it (`range ± halo`, clamped).
    pub staged: Range<usize>,
}

/// One device's ring of reusable staging buffers. A chunk **leases** the
/// slot `seq % depth`, picking up a wait-list edge on the slot's previous
/// consumer (the kernel that last read its buffers); declaring the new
/// consumer **returns** the lease for the chunk `depth` positions later.
pub(crate) struct StagingRing {
    slots: Vec<RingSlot>,
    bytes: usize,
}

struct RingSlot {
    bufs: Vec<DeviceBuffer>,
    last_consumer: Option<NodeId>,
}

impl StagingRing {
    /// Allocates `depth` slots on `device`, each holding one buffer of
    /// `caps[i]` bytes per streamed source.
    pub fn new(ctx: &Context, device: usize, depth: usize, caps: &[usize]) -> Result<Self> {
        let queue = ctx.queue(device);
        let mut slots = Vec::with_capacity(depth);
        let mut bytes = 0usize;
        for _ in 0..depth.max(1) {
            let mut bufs = Vec::with_capacity(caps.len());
            for &cap in caps {
                bufs.push(queue.create_buffer(cap)?);
                bytes += cap;
            }
            slots.push(RingSlot {
                bufs,
                last_consumer: None,
            });
        }
        Ok(StagingRing { slots, bytes })
    }

    /// Total device bytes the ring keeps resident.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Leases the slot for chunk `seq`: its index, plus the recycle
    /// dependency on the slot's previous consumer (empty on first use).
    pub fn lease(&self, seq: usize) -> (usize, Vec<NodeId>) {
        let idx = seq % self.slots.len();
        (idx, self.slots[idx].last_consumer.into_iter().collect())
    }

    /// The leased slot's buffers, one per streamed source.
    pub fn bufs(&self, slot: usize) -> &[DeviceBuffer] {
        &self.slots[slot].bufs
    }

    /// Returns the lease: `consumer` is the last plan node reading the
    /// slot's buffers; the chunk `depth` positions later waits on it.
    pub fn set_consumer(&mut self, slot: usize, consumer: NodeId) {
        self.slots[slot].last_consumer = Some(consumer);
    }
}

/// A chunk's plan nodes that bound its ring-slot tenancy, used to emit
/// flight-recorder lifecycle events after the plan launches.
pub(crate) struct ChunkLifecycle {
    /// The executing device.
    pub device: usize,
    /// Per-device chunk sequence number.
    pub seq: usize,
    /// Completion of this node marks the slot acquired (first upload).
    pub acquire: NodeId,
    /// Completion of this node returns the slot (last consumer).
    pub retire: NodeId,
}

/// A chunk's bookkeeping for post-execute flight callbacks and output
/// assembly.
struct ChunkRecord {
    device: usize,
    seq: usize,
    first_write: NodeId,
    read: NodeId,
    out_offset: usize,
    out_len: usize,
}

/// Kernel-ABI callback for [`stream_map_like`]: chunk, slot input buffers
/// (in source order) and the chunk's output buffer → argument list plus
/// launch geometry.
pub(crate) type BuildArgs<'a> =
    &'a dyn Fn(&ChunkCtx, &[DeviceBuffer], &DeviceBuffer) -> (Vec<KernelArg>, NdRange);

/// Streams a map-like region (fused elementwise or stencil): every chunk
/// stages each source's `staged` range into its ring slot, launches
/// `kernel` with arguments from `build_args`, and reads the chunk's
/// output back to the host. Returns the assembled output bytes
/// (`units × out_elem`).
///
/// `build_args` receives the chunk, the slot's input buffers (in source
/// order) and the chunk's output buffer, and produces the kernel argument
/// list plus launch geometry — the caller owns the kernel ABI, this
/// driver owns chunking, the rings and the pipeline edges.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stream_map_like(
    ctx: &Context,
    sched: &StreamSchedule,
    halo: usize,
    units: usize,
    sources: &[&dyn ElementwiseInput],
    out_elem: usize,
    program: &skelcl_kernel::Program,
    kernel: &str,
    build_args: BuildArgs<'_>,
    events: &mut Vec<Event>,
) -> Result<Vec<u8>> {
    let profiler = ctx.profiler().clone();
    profiler.add(m::STREAM_REGIONS, 1);
    let in_elems: Vec<usize> = sources
        .iter()
        .map(|s| s.input_scalar().size_bytes())
        .collect();

    let mut plan = LaunchPlan::new();
    plan.observe_per_kernel();
    let mut rings: Vec<StagingRing> = Vec::new();
    let mut out_slots: Vec<Vec<DeviceBuffer>> = Vec::new();
    let mut records: Vec<ChunkRecord> = Vec::new();
    let mut staged_total = 0u64;

    for share in &sched.shares {
        let device = share.plan.device;
        let core = share.plan.core.clone();
        let n_share = core.len();
        let cu = share.chunk_units.clamp(1, n_share);
        let chunks = n_share.div_ceil(cu);
        let depth = sched.depth.min(chunks).max(1);
        let caps: Vec<usize> = in_elems.iter().map(|e| (cu + 2 * halo) * e).collect();
        let mut ring = StagingRing::new(ctx, device, depth, &caps)?;
        let queue = ctx.queue(device);
        let outs: Vec<DeviceBuffer> = (0..depth)
            .map(|_| queue.create_buffer(cu * out_elem))
            .collect::<std::result::Result<_, _>>()?;
        profiler.set_device_gauge(
            m::STREAM_RESIDENT_BYTES,
            device,
            (ring.bytes() + outs.iter().map(|b| b.len()).sum::<usize>()) as f64,
        );
        // Per-slot readback of the previous tenant: the kernel writing a
        // slot's output buffer must wait for that read to drain.
        let mut last_reads: Vec<Option<NodeId>> = vec![None; depth];
        for seq in 0..chunks {
            let start = core.start + seq * cu;
            let end = (start + cu).min(core.end);
            let staged = start.saturating_sub(halo)..(end + halo).min(units);
            let (slot, recycle) = ring.lease(seq);
            let mut writes = Vec::with_capacity(sources.len());
            for (i, src) in sources.iter().enumerate() {
                let bytes = src.input_host_units(staged.clone())?;
                staged_total += bytes.len() as u64;
                writes.push(plan.write(device, &ring.bufs(slot)[i], 0, bytes, &recycle));
            }
            let chunk = ChunkCtx {
                range: start..end,
                staged,
            };
            let (args, range) = build_args(&chunk, ring.bufs(slot), &outs[slot]);
            let mut deps = writes.clone();
            if let Some(r) = last_reads[slot] {
                deps.push(r);
            }
            let kid = plan.kernel(device, program, kernel, args, range, end - start, &deps);
            let rid = plan.read(device, &outs[slot], 0, (end - start) * out_elem, &[kid]);
            ring.set_consumer(slot, kid);
            last_reads[slot] = Some(rid);
            ctx.flight().record(
                FlightKind::ChunkSubmit,
                device,
                "stream",
                0,
                seq as u64,
                (chunk.staged.len() * in_elems.iter().sum::<usize>()) as u64,
            );
            records.push(ChunkRecord {
                device,
                seq,
                first_write: writes[0],
                read: rid,
                out_offset: start * out_elem,
                out_len: (end - start) * out_elem,
            });
        }
        rings.push(ring);
        out_slots.push(outs);
    }

    profiler.add(m::STREAM_CHUNKS, records.len() as u64);
    profiler.add(m::STREAM_BYTES_STAGED, staged_total);
    let mut run = plan.execute(ctx)?;
    let lifecycles: Vec<ChunkLifecycle> = records
        .iter()
        .map(|r| ChunkLifecycle {
            device: r.device,
            seq: r.seq,
            acquire: r.first_write,
            retire: r.read,
        })
        .collect();
    attach_chunk_lifecycle(ctx, run.events(), &lifecycles);
    run.wait()?;
    let mut out = vec![0u8; units * out_elem];
    for rec in &records {
        let bytes = run.take_read(rec.read)?;
        out[rec.out_offset..rec.out_offset + rec.out_len].copy_from_slice(&bytes);
    }
    events.extend(run.into_events());
    drop(rings);
    drop(out_slots);
    Ok(out)
}

/// Attaches flight-recorder chunk-lifecycle callbacks to a streamed plan's
/// events: `chunk_acquire` when a chunk's first upload lands in its ring
/// slot (occupancy rises), `chunk_retire` when its last consumer completes
/// and the slot becomes reusable (occupancy falls).
pub(crate) fn attach_chunk_lifecycle(ctx: &Context, events: &[Event], chunks: &[ChunkLifecycle]) {
    let flight = ctx.flight();
    if !flight.is_enabled() {
        return;
    }
    let occupancy: Vec<Arc<AtomicI64>> = (0..ctx.device_count())
        .map(|_| Arc::new(AtomicI64::new(0)))
        .collect();
    for rec in chunks {
        let (device, seq) = (rec.device, rec.seq);
        let occ = Arc::clone(&occupancy[device]);
        let f = flight.clone();
        events[rec.acquire.index()].on_complete(move |e| {
            let now = occ.fetch_add(1, Ordering::Relaxed) + 1;
            f.record(
                FlightKind::ChunkAcquire,
                device,
                "stream",
                e.ended_ns(),
                seq as u64,
                now.max(0) as u64,
            );
        });
        let occ = Arc::clone(&occupancy[device]);
        let f = flight.clone();
        events[rec.retire.index()].on_complete(move |e| {
            let now = occ.fetch_sub(1, Ordering::Relaxed) - 1;
            f.record(
                FlightKind::ChunkRetire,
                device,
                "stream",
                e.ended_ns(),
                seq as u64,
                now.max(0) as u64,
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_gate_values() {
        assert_eq!(StreamConfig::parse(None), StreamConfig::on());
        assert_eq!(StreamConfig::parse(Some("")), StreamConfig::on());
        assert_eq!(StreamConfig::parse(Some("1")), StreamConfig::on());
        assert_eq!(StreamConfig::parse(Some("on")), StreamConfig::on());
        assert_eq!(StreamConfig::parse(Some("0")), StreamConfig::off());
        assert_eq!(StreamConfig::parse(Some("off")), StreamConfig::off());
        let c = StreamConfig::parse(Some("4"));
        assert!(c.enabled);
        assert_eq!(c.depth, 4);
        assert_eq!(StreamConfig::parse(Some("bogus")), StreamConfig::on());
    }
}
