//! Data distributions across multiple GPUs (paper §3.2, Figs. 1–2).
//!
//! A distribution describes which part of a container each device stores:
//!
//! * **single** — all data on one GPU;
//! * **copy** — the full data on every GPU;
//! * **block** — contiguous, disjoint chunks, one per GPU;
//! * **overlap** — block plus a halo of border elements (vector) or border
//!   rows (matrix) replicated from the neighbouring chunks.
//!
//! For matrices, distributions partition **rows** (the paper's Fig. 2).
//! This module contains the pure range arithmetic; containers apply it.

use std::ops::Range;

/// A data distribution (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// The whole container on one device (the first if not specified
    /// otherwise — use `Single(0)`).
    Single(usize),
    /// The whole container replicated on every device.
    Copy,
    /// Contiguous disjoint chunks, one per device.
    Block,
    /// Block chunks extended by `overlap` border elements/rows replicated
    /// from the neighbouring chunks.
    Overlap {
        /// Number of border elements (vector) or rows (matrix) replicated
        /// on each side of a chunk.
        size: usize,
    },
}

impl Distribution {
    /// The default `single` distribution (first GPU), as in the paper.
    pub fn single() -> Self {
        Distribution::Single(0)
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Distribution::Single(d) => write!(f, "single(gpu{d})"),
            Distribution::Copy => f.write_str("copy"),
            Distribution::Block => f.write_str("block"),
            Distribution::Overlap { size } => write!(f, "overlap({size})"),
        }
    }
}

/// One device's part of a distributed container, in element (vector) or row
/// (matrix) indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Which device stores the chunk.
    pub device: usize,
    /// The range the device *stores* (core plus halo for overlap).
    pub stored: Range<usize>,
    /// The range the device *owns* (writes when producing output).
    pub core: Range<usize>,
}

impl ChunkPlan {
    /// Number of stored units.
    pub fn stored_len(&self) -> usize {
        self.stored.len()
    }

    /// Number of owned units.
    pub fn core_len(&self) -> usize {
        self.core.len()
    }

    /// Offset of the first core unit within the stored range.
    pub fn core_offset(&self) -> usize {
        self.core.start - self.stored.start
    }
}

/// Splits `n` units across `devices` according to `dist`.
///
/// Every returned plan has a non-empty `core` except possibly trailing
/// devices when `n < devices` (those are omitted entirely). For `Single`
/// and `Copy`, `core`/`stored` conventions are:
///
/// * `Single(d)`: one chunk on device `d` covering everything;
/// * `Copy`: every device stores everything and *owns* everything (callers
///   that gather output read from the first chunk).
pub fn plan_chunks(n: usize, devices: usize, dist: Distribution) -> Vec<ChunkPlan> {
    assert!(devices > 0, "at least one device");
    match dist {
        Distribution::Single(d) => {
            assert!(d < devices, "single distribution on unknown device {d}");
            vec![ChunkPlan {
                device: d,
                stored: 0..n,
                core: 0..n,
            }]
        }
        Distribution::Copy => (0..devices)
            .map(|device| ChunkPlan {
                device,
                stored: 0..n,
                core: 0..n,
            })
            .collect(),
        Distribution::Block => block_ranges(n, devices)
            .into_iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(device, r)| ChunkPlan {
                device,
                stored: r.clone(),
                core: r,
            })
            .collect(),
        Distribution::Overlap { size } => block_ranges(n, devices)
            .into_iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(device, core)| {
                let stored = core.start.saturating_sub(size)..(core.end + size).min(n);
                ChunkPlan {
                    device,
                    stored,
                    core,
                }
            })
            .collect(),
    }
}

/// Even partition of `n` units into `devices` contiguous ranges (remainder
/// spread over the first ranges), as SkelCL's block distribution does.
pub fn block_ranges(n: usize, devices: usize) -> Vec<Range<usize>> {
    assert!(devices > 0, "at least one device");
    let base = n / devices;
    let extra = n % devices;
    let mut start = 0;
    (0..devices)
        .map(|i| {
            let len = base + usize::from(i < extra);
            let r = start..start + len;
            start += len;
            r
        })
        .collect()
}

/// Weighted partition of `n` units into `weights.len()` contiguous ranges,
/// device `i` receiving a share proportional to `weights[i]`.
///
/// Rounding uses the largest-remainder method: every device gets the floor
/// of its exact quota and the leftover units go to the largest fractional
/// remainders, ties broken towards lower device indices. This guarantees
/// exact coverage of `0..n` and makes uniform weights reproduce
/// [`block_ranges`] bit-for-bit (the even split also hands its remainder to
/// the first devices), so `SKELCL_SCHEDULE=adaptive` with a cold model is
/// indistinguishable from the even scheduler.
///
/// Weight vectors that are unusable (empty sum, a non-finite or negative
/// entry) fall back to the even split rather than panicking — a scheduler
/// fed garbage measurements must degrade, not crash.
pub fn block_ranges_weighted(n: usize, weights: &[f64]) -> Vec<Range<usize>> {
    assert!(!weights.is_empty(), "at least one device");
    let devices = weights.len();
    let sum: f64 = weights.iter().sum();
    if !sum.is_finite() || sum <= 0.0 || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return block_ranges(n, devices);
    }
    // Floor of each exact quota, then hand the remaining units to the
    // largest fractional remainders (Hamilton's method).
    let mut lens = Vec::with_capacity(devices);
    let mut remainders = Vec::with_capacity(devices);
    let mut assigned = 0usize;
    for w in weights {
        let quota = n as f64 * w / sum;
        let floor = quota.floor() as usize;
        lens.push(floor.min(n));
        remainders.push(quota - quota.floor());
        assigned += floor.min(n);
    }
    let mut order: Vec<usize> = (0..devices).collect();
    order.sort_by(|&a, &b| {
        remainders[b]
            .partial_cmp(&remainders[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut leftover = n.saturating_sub(assigned);
    for &i in order.iter().cycle() {
        if leftover == 0 {
            break;
        }
        lens[i] += 1;
        leftover -= 1;
    }
    let mut start = 0;
    lens.into_iter()
        .map(|len| {
            let r = start..start + len;
            start += len;
            r
        })
        .collect()
}

/// [`plan_chunks`] with per-device weights for the `Block` and `Overlap`
/// partitions (the adaptive scheduler's entry point). `Single` and `Copy`
/// are weight-independent and planned exactly as [`plan_chunks`] does; the
/// device count is `weights.len()`.
pub fn plan_chunks_weighted(n: usize, dist: Distribution, weights: &[f64]) -> Vec<ChunkPlan> {
    let devices = weights.len();
    match dist {
        Distribution::Single(_) | Distribution::Copy => plan_chunks(n, devices, dist),
        Distribution::Block => block_ranges_weighted(n, weights)
            .into_iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(device, r)| ChunkPlan {
                device,
                stored: r.clone(),
                core: r,
            })
            .collect(),
        Distribution::Overlap { size } => block_ranges_weighted(n, weights)
            .into_iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(device, core)| {
                let stored = core.start.saturating_sub(size)..(core.end + size).min(n);
                ChunkPlan {
                    device,
                    stored,
                    core,
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn weighted_ranges_cover_disjointly(
            n in 0usize..5000,
            weights in proptest::collection::vec(0.01f64..100.0, 1..8),
        ) {
            let rs = block_ranges_weighted(n, &weights);
            prop_assert_eq!(rs.len(), weights.len());
            let mut next = 0usize;
            for r in &rs {
                prop_assert_eq!(r.start, next);
                next = r.end;
            }
            prop_assert_eq!(next, n);
        }

        #[test]
        fn uniform_weights_degrade_to_even_split(
            n in 0usize..5000,
            devices in 1usize..8,
            w in 0.1f64..10.0,
        ) {
            let weights = vec![w; devices];
            prop_assert_eq!(block_ranges_weighted(n, &weights), block_ranges(n, devices));
        }
    }

    #[test]
    fn block_ranges_cover_everything_disjointly() {
        for n in [0usize, 1, 7, 100, 101, 102, 103] {
            for d in 1..=6 {
                let rs = block_ranges(n, d);
                assert_eq!(rs.len(), d);
                assert_eq!(rs[0].start, 0);
                assert_eq!(rs.last().unwrap().end, n);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let lens: Vec<usize> = rs.iter().map(|r| r.len()).collect();
                let max = lens.iter().max().unwrap();
                let min = lens.iter().min().unwrap();
                assert!(max - min <= 1, "near-even split: {lens:?}");
            }
        }
    }

    #[test]
    fn single_plan() {
        let plans = plan_chunks(10, 4, Distribution::Single(2));
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].device, 2);
        assert_eq!(plans[0].stored, 0..10);
        assert_eq!(plans[0].core, 0..10);
    }

    #[test]
    #[should_panic(expected = "unknown device")]
    fn single_plan_validates_device() {
        let _ = plan_chunks(10, 2, Distribution::Single(5));
    }

    #[test]
    fn copy_plan_replicates() {
        let plans = plan_chunks(10, 3, Distribution::Copy);
        assert_eq!(plans.len(), 3);
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.device, i);
            assert_eq!(p.stored, 0..10);
        }
    }

    #[test]
    fn block_plan_matches_figure_1c() {
        // Fig. 1(c): two GPUs each store a contiguous half.
        let plans = plan_chunks(8, 2, Distribution::Block);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].stored, 0..4);
        assert_eq!(plans[1].stored, 4..8);
        assert_eq!(plans[0].core, plans[0].stored);
    }

    #[test]
    fn overlap_plan_matches_figure_1d() {
        // Fig. 1(d): block chunks plus border elements of the neighbour.
        let plans = plan_chunks(8, 2, Distribution::Overlap { size: 1 });
        assert_eq!(plans[0].stored, 0..5);
        assert_eq!(plans[0].core, 0..4);
        assert_eq!(plans[1].stored, 3..8);
        assert_eq!(plans[1].core, 4..8);
        assert_eq!(plans[0].core_offset(), 0);
        assert_eq!(plans[1].core_offset(), 1);
    }

    #[test]
    fn overlap_halo_clamped_at_edges() {
        let plans = plan_chunks(10, 2, Distribution::Overlap { size: 100 });
        assert_eq!(plans[0].stored, 0..10);
        assert_eq!(plans[1].stored, 0..10);
        assert_eq!(plans[0].core, 0..5);
        assert_eq!(plans[1].core, 5..10);
    }

    #[test]
    fn overlap_middle_chunk_has_halo_on_both_sides() {
        let plans = plan_chunks(30, 3, Distribution::Overlap { size: 2 });
        assert_eq!(plans[1].core, 10..20);
        assert_eq!(plans[1].stored, 8..22);
        assert_eq!(plans[1].core_offset(), 2);
    }

    #[test]
    fn tiny_containers_skip_empty_chunks() {
        let plans = plan_chunks(2, 4, Distribution::Block);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].core, 0..1);
        assert_eq!(plans[1].core, 1..2);
    }

    #[test]
    fn weighted_uniform_matches_even_split() {
        for n in [0usize, 1, 7, 100, 101, 102, 103] {
            for d in 1..=6 {
                let w = vec![1.0; d];
                assert_eq!(
                    block_ranges_weighted(n, &w),
                    block_ranges(n, d),
                    "n={n} d={d}"
                );
            }
        }
    }

    #[test]
    fn weighted_split_follows_weights() {
        let rs = block_ranges_weighted(100, &[1.0, 3.0]);
        assert_eq!(rs[0], 0..25);
        assert_eq!(rs[1], 25..100);
        let rs = block_ranges_weighted(10, &[1.0, 1.0, 2.0]);
        assert_eq!(
            rs.iter().map(std::ops::Range::len).collect::<Vec<_>>(),
            vec![3, 2, 5]
        );
        assert_eq!(rs.last().unwrap().end, 10);
    }

    #[test]
    fn weighted_split_rejects_garbage_weights() {
        // NaN, negative, or all-zero weight sets degrade to the even split.
        assert_eq!(
            block_ranges_weighted(12, &[f64::NAN, 1.0, 1.0]),
            block_ranges(12, 3)
        );
        assert_eq!(
            block_ranges_weighted(12, &[-1.0, 1.0, 1.0]),
            block_ranges(12, 3)
        );
        assert_eq!(block_ranges_weighted(12, &[0.0, 0.0]), block_ranges(12, 2));
    }

    #[test]
    fn weighted_plan_covers_block_and_overlap() {
        let plans = plan_chunks_weighted(100, Distribution::Block, &[1.0, 3.0]);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].core, 0..25);
        assert_eq!(plans[1].core, 25..100);
        let plans = plan_chunks_weighted(100, Distribution::Overlap { size: 2 }, &[1.0, 3.0]);
        assert_eq!(plans[0].stored, 0..27);
        assert_eq!(plans[1].stored, 23..100);
        assert_eq!(plans[1].core_offset(), 2);
        // Zero-weight devices are skipped, like empty chunks in plan_chunks.
        let plans = plan_chunks_weighted(10, Distribution::Block, &[1.0, 0.0, 1.0]);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].device, 0);
        assert_eq!(plans[1].device, 2);
        assert_eq!(plans[1].core, 5..10);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Distribution::single().to_string(), "single(gpu0)");
        assert_eq!(Distribution::Copy.to_string(), "copy");
        assert_eq!(Distribution::Block.to_string(), "block");
        assert_eq!(Distribution::Overlap { size: 3 }.to_string(), "overlap(3)");
    }
}
