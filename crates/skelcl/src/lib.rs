//! # skelcl — a reproduction of the SkelCL multi-GPU skeleton library
//!
//! Rust reproduction of *Steuwer & Gorlatch, "SkelCL: Enhancing OpenCL for
//! High-Level Programming of Multi-GPU Systems" (PaCT 2013)*, running on
//! the `vgpu` virtual multi-GPU platform with kernels compiled by
//! `skelcl-kernel`.
//!
//! The library provides the paper's three enhancements over raw OpenCL:
//!
//! 1. **Parallel container data types** — [`Vector`] and [`Matrix`] with
//!    automatic GPU memory management and implicit lazy transfers (§3.1);
//! 2. **Data distributions** — [`Distribution`]: `single`, `copy`, `block`
//!    and `overlap`, changeable at runtime with implicit redistribution
//!    (§3.2);
//! 3. **Algorithmic skeletons** — [`Map`], [`Zip`], [`Reduce`], [`Scan`]
//!    (§3.3), [`MapOverlap`] with local-memory tiling and boundary handling
//!    (§3.4), and [`Allpairs`] with a zip-reduce specialisation (§3.5) —
//!    all customized by functions written as plain OpenCL-C source strings,
//!    exactly as in the paper.
//!
//! ## Example: dot product (paper Listing 1.1)
//!
//! ```
//! use skelcl::{Context, Reduce, Vector, Zip};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = Context::tesla_s1070(); // 4 virtual GPUs, as the paper's testbed
//!
//! let sum: Reduce<f32> = Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }")?;
//! let mult: Zip<f32, f32, f32> =
//!     Zip::new(&ctx, "float mult(float x, float y){ return x * y; }")?;
//!
//! let a = Vector::from_fn(&ctx, 1024, |i| i as f32);
//! let b = Vector::from_fn(&ctx, 1024, |_| 2.0);
//!
//! let c = sum.call(&mult.call(&a, &b)?)?;
//! assert_eq!(c.value(), (0..1024).map(|i| 2.0 * i as f32).sum::<f32>());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod codegen;
pub mod container;
pub mod context;
pub mod distribution;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod plan;
pub mod schedule;
pub mod skeleton;
pub mod stream;
pub mod types;

pub use container::{InteropChunk, Matrix, Scalar, Vector};
pub use context::{Context, DeviceSelection};
pub use distribution::Distribution;
pub use engine::{LaunchPlan, NodeId, PlanRun};
pub use error::{Error, Result};
pub use exec::Skeleton;
pub use expr::{Expr, FusionStats};
pub use plan::PlanConfig;
pub use schedule::{SchedulePolicy, Scheduler};
pub use skeleton::{
    matrix_multiply, transpose, Allpairs, BoundaryHandling, EventLog, Map, MapOverlap,
    MapOverlapVec, Reduce, Scan, Zip,
};
pub use stream::StreamConfig;
pub use types::KernelScalar;

/// Re-export of the kernel argument value type, used for skeletons' extra
/// scalar arguments.
pub use skelcl_kernel::value::Value;

/// Re-export of the observability layer: [`profile::Profiler`] rides on
/// every [`Context`] (see [`Context::profiler`]); `profile::metrics` names
/// the counters, and `profile::report` builds summaries and JSON reports.
pub use skelcl_profile as profile;
/// Re-export of the flight-recorder handle carried by [`Context`] (see
/// [`Context::flight`] and `SKELCL_FLIGHT`).
pub use skelcl_profile::FlightRecorder;
/// Re-export of the profiler handle carried by [`Context`].
pub use skelcl_profile::Profiler;
