//! Shared host↔device coherence machinery behind `Vector` and `Matrix`.
//!
//! A container's data lives on the host and/or distributed across device
//! buffers. Transfers are *lazy and implicit* (paper §3.1): before a kernel
//! uses a container the data is uploaded per its distribution; before the
//! host reads, chunks are downloaded — both happen automatically.
//!
//! The distribution unit is an *element* for vectors and a *row* for
//! matrices (`unit_elems` elements per unit, paper Fig. 2).

use parking_lot::Mutex;

use vgpu::DeviceBuffer;

use crate::context::Context;
use crate::distribution::{ChunkPlan, Distribution};
use crate::error::Result;
use crate::types::{from_bytes, to_bytes, KernelScalar};

/// One device's materialised chunk.
#[derive(Debug, Clone)]
pub(crate) struct DeviceChunk {
    /// The chunk's range plan (in units).
    pub plan: ChunkPlan,
    /// The backing device buffer (covers the *stored* range).
    pub buffer: DeviceBuffer,
}

#[derive(Debug)]
struct DevicePart {
    dist: Distribution,
    chunks: Vec<DeviceChunk>,
    /// Whether the device copy is up to date.
    valid: bool,
}

#[derive(Debug)]
struct State<T> {
    host: Vec<T>,
    host_valid: bool,
    device: Option<DevicePart>,
    preferred_dist: Option<Distribution>,
}

/// Distributed storage of `units × unit_elems` elements of `T`.
#[derive(Debug)]
pub(crate) struct DistributedData<T> {
    ctx: Context,
    units: usize,
    unit_elems: usize,
    state: Mutex<State<T>>,
}

impl<T: KernelScalar> DistributedData<T> {
    /// Creates host-resident data.
    ///
    /// # Panics
    ///
    /// Panics if `host.len() != units * unit_elems`.
    pub fn from_host(ctx: Context, units: usize, unit_elems: usize, host: Vec<T>) -> Self {
        assert_eq!(
            host.len(),
            units * unit_elems,
            "host data does not match shape"
        );
        DistributedData {
            ctx,
            units,
            unit_elems,
            state: Mutex::new(State {
                host,
                host_valid: true,
                device: None,
                preferred_dist: None,
            }),
        }
    }

    /// The owning context.
    pub fn ctx(&self) -> &Context {
        &self.ctx
    }

    /// Number of distribution units (elements or rows).
    pub fn units(&self) -> usize {
        self.units
    }

    /// Elements per unit.
    pub fn unit_elems(&self) -> usize {
        self.unit_elems
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.units * self.unit_elems
    }

    /// The distribution the container currently has on the devices, if any.
    pub fn current_distribution(&self) -> Option<Distribution> {
        self.state.lock().device.as_ref().map(|d| d.dist)
    }

    /// The distribution skeletons should use: the explicitly requested one
    /// if set, else the current device-side one, else `default`.
    pub fn effective_distribution(&self, default: Distribution) -> Distribution {
        let st = self.state.lock();
        st.preferred_dist
            .or_else(|| st.device.as_ref().map(|d| d.dist))
            .unwrap_or(default)
    }

    /// Requests a distribution (paper: `setDistribution`). If the data is
    /// currently distributed differently, it is gathered back to the host
    /// (implicit data movement via the CPU, §3.2); the upload under the new
    /// distribution happens lazily at the next use.
    pub fn set_distribution(&self, dist: Distribution) -> Result<()> {
        let mut st = self.state.lock();
        st.preferred_dist = Some(dist);
        if st.device.as_ref().is_some_and(|d| d.dist != dist) {
            self.ctx
                .profiler()
                .add(skelcl_profile::metrics::REDISTRIBUTIONS, 1);
            self.ctx.flight().record(
                skelcl_profile::FlightKind::Redistribution,
                skelcl_profile::flight::HOST_DEVICE,
                "gather",
                0,
                self.units as u64,
                0,
            );
            self.download_locked(&mut st)?;
            st.device = None;
        }
        Ok(())
    }

    /// Makes the data available on the devices under `dist`, uploading if
    /// necessary, and returns the chunks.
    ///
    /// When the data is already valid on the devices under the same
    /// distribution *kind* but the scheduler has shifted the block
    /// boundaries, only the units that changed owner move — device to
    /// device — instead of gathering everything through the host (see
    /// [`DistributedData::delta_redistribute_locked`]).
    pub fn ensure_device(&self, dist: Distribution) -> Result<Vec<DeviceChunk>> {
        let profiler = self.ctx.profiler();
        let mut st = self.state.lock();
        let plans = self.ctx.plan_units(self.units, dist);
        if let Some(part) = &st.device {
            if part.dist == dist && part.valid {
                let same_plans = part.chunks.len() == plans.len()
                    && part.chunks.iter().zip(&plans).all(|(c, p)| c.plan == *p);
                if same_plans {
                    profiler.add(skelcl_profile::metrics::TRANSFER_CACHE_HIT, 1);
                    return Ok(part.chunks.clone());
                }
                // Only Block/Overlap plans can shift with scheduler
                // weights; their old cores disjointly cover `0..units`, so
                // every new chunk can be assembled from device-resident
                // data without touching the host.
                if matches!(dist, Distribution::Block | Distribution::Overlap { .. }) {
                    return self.delta_redistribute_locked(&mut st, plans);
                }
            }
        }
        // Gather the freshest copy to the host first, then (re)distribute.
        // If the devices held the only valid copy this is the full
        // round-trip the delta path exists to avoid — account its cost.
        let full_round_trip = !st.host_valid && st.device.as_ref().is_some_and(|p| p.valid);
        profiler.add(skelcl_profile::metrics::TRANSFER_FORCED, 1);
        self.download_locked(&mut st)?;
        let elem = std::mem::size_of::<T>();
        let mut uploaded = 0u64;
        let mut chunks = Vec::with_capacity(plans.len());
        for plan in plans {
            let queue = self.ctx.queue(plan.device);
            let byte_len = plan.stored_len() * self.unit_elems * elem;
            let buffer = queue.create_buffer(byte_len)?;
            let start = plan.stored.start * self.unit_elems;
            let end = plan.stored.end * self.unit_elems;
            let bytes = to_bytes(&st.host[start..end]);
            // Asynchronous upload: the queue is in-order, so kernels
            // enqueued later on this device see the data; the span is
            // recorded when the transfer retires on the queue worker.
            let event = queue.enqueue_write_async(&buffer, 0, bytes, &[])?;
            let p = profiler.clone();
            event.on_complete(move |e| {
                if e.error().is_none() {
                    p.record_event(e);
                }
            });
            uploaded += byte_len as u64;
            chunks.push(DeviceChunk { plan, buffer });
        }
        if full_round_trip {
            let downloaded = (self.len() * elem) as u64;
            profiler.add(
                skelcl_profile::metrics::SCHED_FULL_BYTES,
                downloaded + uploaded,
            );
        }
        self.ctx.flight().record(
            skelcl_profile::FlightKind::Redistribution,
            skelcl_profile::flight::HOST_DEVICE,
            "scatter",
            0,
            self.units as u64,
            uploaded,
        );
        st.device = Some(DevicePart {
            dist,
            chunks: chunks.clone(),
            valid: true,
        });
        Ok(chunks)
    }

    /// Re-chunks valid device data under shifted Block/Overlap boundaries
    /// by copying unit subranges between devices, bypassing the host.
    ///
    /// Each new chunk's *stored* range is assembled from the old chunks'
    /// *core* ranges — the cores disjointly cover `0..units` and are the
    /// authoritative copy after kernel writes (halos may be stale).
    /// Same-device spans use an on-device copy; cross-device spans stage
    /// through the interconnect via [`vgpu::CommandQueue::enqueue_copy_to`].
    fn delta_redistribute_locked(
        &self,
        st: &mut State<T>,
        plans: Vec<ChunkPlan>,
    ) -> Result<Vec<DeviceChunk>> {
        let profiler = self.ctx.profiler();
        let old = st
            .device
            .take()
            .expect("delta redistribution requires a device part");
        let bytes_per_unit = self.unit_elems * std::mem::size_of::<T>();
        let mut delta_bytes = 0u64;
        let mut chunks = Vec::with_capacity(plans.len());
        for plan in plans {
            let dst_queue = self.ctx.queue(plan.device);
            let buffer = dst_queue.create_buffer(plan.stored_len() * bytes_per_unit)?;
            for oc in &old.chunks {
                let lo = plan.stored.start.max(oc.plan.core.start);
                let hi = plan.stored.end.min(oc.plan.core.end);
                if lo >= hi {
                    continue;
                }
                let src_off = (lo - oc.plan.stored.start) * bytes_per_unit;
                let dst_off = (lo - plan.stored.start) * bytes_per_unit;
                let len = (hi - lo) * bytes_per_unit;
                // Asynchronous like the uploads; the cross-device variant
                // chains its write onto the read through an event wait.
                let record = |event: &vgpu::Event| {
                    let p = profiler.clone();
                    event.on_complete(move |e| {
                        if e.error().is_none() {
                            p.record_event(e);
                        }
                    });
                };
                if oc.plan.device == plan.device {
                    let event = self.ctx.queue(oc.plan.device).enqueue_copy_async(
                        &oc.buffer,
                        src_off,
                        &buffer,
                        dst_off,
                        len,
                        &[],
                    )?;
                    record(&event);
                } else {
                    let (read, write) = self.ctx.queue(oc.plan.device).enqueue_copy_to_async(
                        &oc.buffer,
                        src_off,
                        dst_queue,
                        &buffer,
                        dst_off,
                        len,
                        &[],
                    )?;
                    record(&read);
                    record(&write);
                }
                delta_bytes += len as u64;
            }
            chunks.push(DeviceChunk { plan, buffer });
        }
        profiler.add(skelcl_profile::metrics::SCHED_REBALANCES, 1);
        profiler.add(skelcl_profile::metrics::SCHED_DELTA_BYTES, delta_bytes);
        self.ctx.flight().record(
            skelcl_profile::FlightKind::Redistribution,
            skelcl_profile::flight::HOST_DEVICE,
            "delta",
            0,
            self.units as u64,
            delta_bytes,
        );
        st.device = Some(DevicePart {
            dist: old.dist,
            chunks: chunks.clone(),
            valid: true,
        });
        Ok(chunks)
    }

    /// Creates device-only storage under `dist` (skeleton outputs): buffers
    /// are allocated but not initialised; the host copy is marked stale.
    pub fn alloc_device(
        ctx: Context,
        units: usize,
        unit_elems: usize,
        dist: Distribution,
    ) -> Result<(Self, Vec<DeviceChunk>)> {
        let elem = std::mem::size_of::<T>();
        let plans = ctx.plan_units(units, dist);
        let mut chunks = Vec::with_capacity(plans.len());
        for plan in plans {
            let queue = ctx.queue(plan.device);
            let buffer = queue.create_buffer(plan.stored_len() * unit_elems * elem)?;
            chunks.push(DeviceChunk { plan, buffer });
        }
        let data = DistributedData {
            ctx,
            units,
            unit_elems,
            state: Mutex::new(State {
                host: vec![T::default(); units * unit_elems],
                host_valid: units == 0,
                device: Some(DevicePart {
                    dist,
                    chunks: chunks.clone(),
                    valid: true,
                }),
                preferred_dist: None,
            }),
        };
        Ok((data, chunks))
    }

    /// Marks the device copy as freshly written by a kernel (host copy
    /// becomes stale).
    pub fn mark_device_written(&self) {
        let mut st = self.state.lock();
        if let Some(part) = &mut st.device {
            part.valid = true;
            st.host_valid = false;
        }
    }

    /// Runs `f` over the up-to-date host data (downloading first if
    /// needed).
    pub fn with_host<R>(&self, f: impl FnOnce(&[T]) -> R) -> Result<R> {
        let mut st = self.state.lock();
        self.download_locked(&mut st)?;
        Ok(f(&st.host))
    }

    /// Runs `f` over mutable host data; the device copies are invalidated.
    pub fn with_host_mut<R>(&self, f: impl FnOnce(&mut [T]) -> R) -> Result<R> {
        let mut st = self.state.lock();
        self.download_locked(&mut st)?;
        if let Some(part) = &mut st.device {
            part.valid = false;
        }
        Ok(f(&mut st.host))
    }

    /// Replaces the whole host contents (device copies invalidated).
    ///
    /// # Panics
    ///
    /// Panics if the length differs.
    pub fn replace_host(&self, data: Vec<T>) {
        let mut st = self.state.lock();
        assert_eq!(
            data.len(),
            self.units * self.unit_elems,
            "replacement size mismatch"
        );
        st.host = data;
        st.host_valid = true;
        if let Some(part) = &mut st.device {
            part.valid = false;
        }
    }

    /// Returns the elements of unit range `units`, downloading only the
    /// device chunks whose cores intersect it when the host copy is stale.
    ///
    /// This is the ranged sibling of the full gather in
    /// [`DistributedData::download_locked`]: it reuses the delta
    /// redistribution path's intersection arithmetic to move exactly the
    /// bytes the caller asked for instead of round-tripping whole buffers.
    /// The host copy's validity is unchanged — only the requested range is
    /// freshened in place.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the container's units.
    pub fn read_host_range(&self, units: std::ops::Range<usize>) -> Result<Vec<T>> {
        assert!(
            units.start <= units.end && units.end <= self.units,
            "unit range {units:?} out of bounds for {} units",
            self.units
        );
        let mut st = self.state.lock();
        if !st.host_valid {
            let part = st
                .device
                .as_ref()
                .expect("host invalid implies a device copy exists");
            assert!(part.valid, "neither host nor device copy is valid");
            let elem = std::mem::size_of::<T>();
            // For `copy` distribution the first chunk's core covers
            // everything; for block/overlap the cores disjointly cover
            // `0..units` and are authoritative after kernel writes.
            let chunks: &[DeviceChunk] = if part.dist == Distribution::Copy {
                &part.chunks[..1.min(part.chunks.len())]
            } else {
                &part.chunks
            };
            let mut pending = Vec::new();
            for chunk in chunks {
                let lo = units.start.max(chunk.plan.core.start);
                let hi = units.end.min(chunk.plan.core.end);
                if lo >= hi {
                    continue;
                }
                let offset = (lo - chunk.plan.stored.start) * self.unit_elems * elem;
                let len = (hi - lo) * self.unit_elems * elem;
                let queue = self.ctx.queue(chunk.plan.device);
                // The in-order queue drains pending writes/kernels before
                // the read executes, so waiting on it synchronises the
                // intersection.
                let read = queue.enqueue_read_async(&chunk.buffer, offset, len, &[])?;
                let p = self.ctx.profiler().clone();
                read.event().on_complete(move |e| {
                    if e.error().is_none() {
                        p.record_event(e);
                    }
                });
                pending.push((lo, read));
            }
            let mut moved = 0u64;
            for (lo, read) in pending {
                let (_event, bytes) = read.wait()?;
                moved += bytes.len() as u64;
                let host_start = lo * self.unit_elems;
                st.host[host_start..host_start + bytes.len() / elem]
                    .copy_from_slice(&from_bytes::<T>(&bytes));
            }
            self.ctx.flight().record(
                skelcl_profile::FlightKind::Redistribution,
                skelcl_profile::flight::HOST_DEVICE,
                "partial_read",
                0,
                (units.end - units.start) as u64,
                moved,
            );
        }
        let start = units.start * self.unit_elems;
        let end = units.end * self.unit_elems;
        Ok(st.host[start..end].to_vec())
    }

    /// Overwrites unit range `units` with `data`, patching every valid
    /// copy in place: the host range (when the host copy is valid) and the
    /// intersecting stored ranges of valid device chunks via ranged
    /// uploads. Unlike [`DistributedData::with_host_mut`], a valid device
    /// part *stays* valid — a boundary-sized change moves boundary-sized
    /// bytes instead of invalidating the device copy and forcing a full
    /// re-upload at the next use.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the container's units or `data` does not
    /// match the range's element count.
    pub fn write_host_range(&self, units: std::ops::Range<usize>, data: &[T]) -> Result<()> {
        assert!(
            units.start <= units.end && units.end <= self.units,
            "unit range {units:?} out of bounds for {} units",
            self.units
        );
        assert_eq!(
            data.len(),
            (units.end - units.start) * self.unit_elems,
            "replacement size mismatch"
        );
        let mut st = self.state.lock();
        if st.host_valid {
            let start = units.start * self.unit_elems;
            st.host[start..start + data.len()].copy_from_slice(data);
        }
        let elem = std::mem::size_of::<T>();
        let mut moved = 0u64;
        if let Some(part) = &st.device {
            if part.valid {
                // Patch *stored* ranges (cores plus halos) so overlap
                // halos stay coherent with the new contents.
                for chunk in &part.chunks {
                    let lo = units.start.max(chunk.plan.stored.start);
                    let hi = units.end.min(chunk.plan.stored.end);
                    if lo >= hi {
                        continue;
                    }
                    let src_start = (lo - units.start) * self.unit_elems;
                    let src_end = (hi - units.start) * self.unit_elems;
                    let bytes = to_bytes(&data[src_start..src_end]);
                    let offset = (lo - chunk.plan.stored.start) * self.unit_elems * elem;
                    let queue = self.ctx.queue(chunk.plan.device);
                    let event = queue.enqueue_write_async(&chunk.buffer, offset, bytes, &[])?;
                    let p = self.ctx.profiler().clone();
                    event.on_complete(move |e| {
                        if e.error().is_none() {
                            p.record_event(e);
                        }
                    });
                    moved += ((hi - lo) * self.unit_elems * elem) as u64;
                }
            }
        }
        self.ctx.flight().record(
            skelcl_profile::FlightKind::Redistribution,
            skelcl_profile::flight::HOST_DEVICE,
            "partial_write",
            0,
            (units.end - units.start) as u64,
            moved,
        );
        Ok(())
    }

    /// Gathers the freshest data to the host if the host copy is stale.
    fn download_locked(&self, st: &mut State<T>) -> Result<()> {
        if st.host_valid {
            return Ok(());
        }
        let part = st
            .device
            .as_ref()
            .expect("host invalid implies a device copy exists");
        assert!(part.valid, "neither host nor device copy is valid");
        let elem = std::mem::size_of::<T>();
        // For `copy` distribution every chunk owns everything; reading the
        // first suffices. For block/overlap each chunk's core is gathered.
        let chunks: &[DeviceChunk] = if part.dist == Distribution::Copy {
            &part.chunks[..1.min(part.chunks.len())]
        } else {
            &part.chunks
        };
        for chunk in chunks {
            let queue = self.ctx.queue(chunk.plan.device);
            let core_units = chunk.plan.core_len();
            let len = core_units * self.unit_elems * elem;
            let offset = chunk.plan.core_offset() * self.unit_elems * elem;
            // The in-order queue drains every pending write/kernel before
            // this read executes, so waiting on it synchronises the chunk.
            let read = queue.enqueue_read_async(&chunk.buffer, offset, len, &[])?;
            let p = self.ctx.profiler().clone();
            read.event().on_complete(move |e| {
                if e.error().is_none() {
                    p.record_event(e);
                }
            });
            let (_event, bytes) = read.wait()?;
            let host_start = chunk.plan.core.start * self.unit_elems;
            let host_end = chunk.plan.core.end * self.unit_elems;
            st.host[host_start..host_end].copy_from_slice(&from_bytes::<T>(&bytes));
        }
        st.host_valid = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::{DeviceSpec, Platform};

    fn ctx(devices: usize) -> Context {
        Context::init(
            Platform::new(devices, DeviceSpec::tesla_t10()),
            crate::context::DeviceSelection::All,
        )
    }

    #[test]
    fn upload_download_round_trip_block() {
        let ctx = ctx(3);
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let d = DistributedData::from_host(ctx, 100, 1, data.clone());
        let chunks = d.ensure_device(Distribution::Block).unwrap();
        assert_eq!(chunks.len(), 3);
        // Pretend a kernel wrote, then gather.
        d.mark_device_written();
        let out = d.with_host(|h| h.to_vec()).unwrap();
        assert_eq!(out, data);
        fn assert_send<T: Send>() {}
        assert_send::<DistributedData<f32>>();
    }

    #[test]
    fn redistribution_goes_through_host() {
        let ctx = ctx(2);
        let d = DistributedData::from_host(ctx.clone(), 10, 1, (0..10i32).collect());
        d.ensure_device(Distribution::Block).unwrap();
        assert_eq!(d.current_distribution(), Some(Distribution::Block));
        d.set_distribution(Distribution::Copy).unwrap();
        assert_eq!(
            d.current_distribution(),
            None,
            "buffers dropped until next use"
        );
        let chunks = d.ensure_device(Distribution::Copy).unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].buffer.len(), 40);
        assert_eq!(d.current_distribution(), Some(Distribution::Copy));
    }

    #[test]
    fn effective_distribution_priorities() {
        let ctx = ctx(2);
        let d = DistributedData::from_host(ctx, 10, 1, vec![0f32; 10]);
        assert_eq!(
            d.effective_distribution(Distribution::Block),
            Distribution::Block
        );
        d.ensure_device(Distribution::Copy).unwrap();
        assert_eq!(
            d.effective_distribution(Distribution::Block),
            Distribution::Copy
        );
        d.set_distribution(Distribution::Single(1)).unwrap();
        assert_eq!(
            d.effective_distribution(Distribution::Block),
            Distribution::Single(1)
        );
    }

    #[test]
    fn host_mutation_invalidates_device() {
        let ctx = ctx(2);
        let d = DistributedData::from_host(ctx, 4, 1, vec![1i32, 2, 3, 4]);
        let chunks1 = d.ensure_device(Distribution::Block).unwrap();
        d.with_host_mut(|h| h[0] = 42).unwrap();
        let chunks2 = d.ensure_device(Distribution::Block).unwrap();
        // Fresh upload happened (buffers may be reallocated); data correct.
        let _ = (chunks1, chunks2);
        let v = d.with_host(|h| h.to_vec()).unwrap();
        assert_eq!(v, vec![42, 2, 3, 4]);
    }

    #[test]
    fn rows_as_units() {
        let ctx = ctx(2);
        // A 4×3 matrix distributed by rows.
        let data: Vec<i32> = (0..12).collect();
        let d = DistributedData::from_host(ctx, 4, 3, data.clone());
        let chunks = d.ensure_device(Distribution::Block).unwrap();
        assert_eq!(chunks[0].plan.core, 0..2);
        assert_eq!(chunks[0].buffer.len(), 2 * 3 * 4);
        d.mark_device_written();
        assert_eq!(d.with_host(|h| h.to_vec()).unwrap(), data);
    }

    #[test]
    fn transfer_metrics_recorded() {
        use skelcl_profile::{metrics as m, Profiler};
        let ctx = Context::init_with_profiler(
            Platform::new(2, DeviceSpec::tesla_t10()),
            crate::context::DeviceSelection::All,
            Profiler::enabled(),
        );
        let d = DistributedData::from_host(ctx.clone(), 10, 1, (0..10i32).collect());
        d.ensure_device(Distribution::Block).unwrap(); // forced upload
        d.ensure_device(Distribution::Block).unwrap(); // cache hit
        d.mark_device_written();
        d.with_host(|_| ()).unwrap(); // download
        d.set_distribution(Distribution::Copy).unwrap(); // redistribution
        ctx.finish().unwrap(); // drain async transfers so spans are recorded

        let p = ctx.profiler();
        assert_eq!(p.counter(m::TRANSFER_FORCED), 1);
        assert_eq!(p.counter(m::TRANSFER_CACHE_HIT), 1);
        assert_eq!(p.counter(m::REDISTRIBUTIONS), 1);
        assert_eq!(p.counter(m::BYTES_H2D), 40, "10 × i32 uploaded once");
        assert_eq!(p.counter(m::BYTES_D2H), 40, "10 × i32 downloaded once");
    }

    #[test]
    fn delta_redistribution_moves_only_boundary_units() {
        use skelcl_profile::{metrics as m, Profiler};
        let ctx = Context::init_with_profiler(
            Platform::new(2, DeviceSpec::tesla_t10()),
            crate::context::DeviceSelection::All,
            Profiler::enabled(),
        );
        let n = 100usize;
        let data: Vec<i32> = (0..n as i32).collect();
        let d = DistributedData::from_host(ctx.clone(), n, 1, data.clone());
        d.ensure_device(Distribution::Block).unwrap(); // even 50/50 upload
        d.mark_device_written(); // device copy becomes authoritative
        ctx.finish().unwrap(); // drain the async uploads before counting
        let p = ctx.profiler();
        let h2d_upload = p.counter(m::BYTES_H2D);
        assert_eq!(h2d_upload, 400, "full upload of 100 × i32");

        // Warm the scheduler: device 0 three times faster → 75/25 split.
        let s = ctx.scheduler();
        s.set_policy(crate::schedule::SchedulePolicy::Adaptive);
        s.observe(0, 300, 100);
        s.observe(1, 100, 100);
        let chunks = d.ensure_device(Distribution::Block).unwrap();
        assert_eq!(chunks[0].plan.core, 0..75);
        assert_eq!(chunks[1].plan.core, 75..100);
        ctx.finish().unwrap(); // drain the async delta copies

        assert_eq!(p.counter(m::SCHED_REBALANCES), 1);
        // 0..50 stays on gpu0 (200 B on-device), 50..75 crosses gpu1→gpu0
        // (100 B), 75..100 stays on gpu1 (100 B): 400 B delta total, of
        // which only 100 B touch the interconnect — strictly fewer than
        // the 800 B a gather-and-rescatter round trip would move.
        assert_eq!(p.counter(m::SCHED_DELTA_BYTES), 400);
        assert_eq!(p.counter(m::BYTES_D2D), 300);
        assert_eq!(p.counter(m::BYTES_D2H), 100, "read side of the hop");
        assert_eq!(p.counter(m::BYTES_H2D) - h2d_upload, 100, "write side");
        assert_eq!(p.counter(m::SCHED_FULL_BYTES), 0);
        assert_eq!(p.counter(m::TRANSFER_FORCED), 1, "only the first upload");

        // Contents bit-identical to what the gather path would produce.
        assert_eq!(d.with_host(|h| h.to_vec()).unwrap(), data);
    }

    #[test]
    fn plan_equal_rebalance_is_a_cache_hit_and_kind_change_goes_full() {
        use skelcl_profile::{metrics as m, Profiler};
        let ctx = Context::init_with_profiler(
            Platform::new(2, DeviceSpec::tesla_t10()),
            crate::context::DeviceSelection::All,
            Profiler::enabled(),
        );
        let d = DistributedData::from_host(ctx.clone(), 10, 1, (0..10i32).collect());
        d.ensure_device(Distribution::Block).unwrap();
        d.mark_device_written();
        // Same dist, unchanged plans → pure cache hit, no rebalance.
        d.ensure_device(Distribution::Block).unwrap();
        let p = ctx.profiler();
        assert_eq!(p.counter(m::TRANSFER_CACHE_HIT), 1);
        assert_eq!(p.counter(m::SCHED_REBALANCES), 0);
        // Distribution *kind* change cannot go delta: full round trip,
        // 40 B down + 80 B up (copy stores everything on both devices).
        d.ensure_device(Distribution::Copy).unwrap();
        assert_eq!(p.counter(m::SCHED_REBALANCES), 0);
        assert_eq!(p.counter(m::SCHED_FULL_BYTES), 40 + 80);
        assert_eq!(
            d.with_host(|h| h.to_vec()).unwrap(),
            (0..10i32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn partial_read_moves_only_intersecting_bytes() {
        use skelcl_profile::{metrics as m, Profiler};
        let ctx = Context::init_with_profiler(
            Platform::new(2, DeviceSpec::tesla_t10()),
            crate::context::DeviceSelection::All,
            Profiler::enabled(),
        );
        let n = 100usize;
        let data: Vec<i32> = (0..n as i32).collect();
        let d = DistributedData::from_host(ctx.clone(), n, 1, data.clone());
        d.ensure_device(Distribution::Block).unwrap(); // 50/50 upload
        d.mark_device_written(); // host becomes stale
        ctx.finish().unwrap();
        let p = ctx.profiler();
        assert_eq!(p.counter(m::BYTES_D2H), 0);

        // 40..60 straddles the 50/50 boundary: 10 units from each device.
        let got = d.read_host_range(40..60).unwrap();
        assert_eq!(got, (40..60).collect::<Vec<i32>>());
        ctx.finish().unwrap();
        assert_eq!(p.counter(m::BYTES_D2H), 80, "20 × i32, not the full 400");

        // The partial read does not validate the host copy; a full
        // gather still works and fetches everything.
        assert_eq!(d.with_host(|h| h.to_vec()).unwrap(), data);
    }

    #[test]
    fn partial_write_keeps_device_copy_valid() {
        use skelcl_profile::{metrics as m, Profiler};
        let ctx = Context::init_with_profiler(
            Platform::new(2, DeviceSpec::tesla_t10()),
            crate::context::DeviceSelection::All,
            Profiler::enabled(),
        );
        let n = 10usize;
        let d = DistributedData::from_host(ctx.clone(), n, 1, (0..n as i32).collect());
        d.ensure_device(Distribution::Block).unwrap();
        ctx.finish().unwrap();
        let p = ctx.profiler();
        let uploaded = p.counter(m::BYTES_H2D);
        assert_eq!(uploaded, 40);

        // Patch two units straddling the boundary; both copies stay valid.
        d.write_host_range(4..6, &[40, 50]).unwrap();
        ctx.finish().unwrap();
        assert_eq!(
            p.counter(m::BYTES_H2D) - uploaded,
            8,
            "only the patched units travel"
        );
        // Next use is a cache hit — no forced re-upload.
        d.ensure_device(Distribution::Block).unwrap();
        assert_eq!(p.counter(m::TRANSFER_FORCED), 1, "only the initial upload");
        assert_eq!(p.counter(m::TRANSFER_CACHE_HIT), 1);
        // Device contents reflect the patch.
        d.mark_device_written();
        assert_eq!(
            d.with_host(|h| h.to_vec()).unwrap(),
            vec![0, 1, 2, 3, 40, 50, 6, 7, 8, 9]
        );
    }

    #[test]
    fn alloc_device_outputs_gather_correctly() {
        let ctx = ctx(2);
        let (d, chunks) =
            DistributedData::<i32>::alloc_device(ctx.clone(), 6, 1, Distribution::Block).unwrap();
        // Simulate kernels writing each chunk's stored range.
        for chunk in &chunks {
            let vals: Vec<i32> = (chunk.plan.stored.start as i32..chunk.plan.stored.end as i32)
                .map(|v| v * 10)
                .collect();
            let queue = ctx.queue(chunk.plan.device);
            queue
                .enqueue_write(&chunk.buffer, 0, &to_bytes(&vals))
                .unwrap();
        }
        d.mark_device_written();
        assert_eq!(
            d.with_host(|h| h.to_vec()).unwrap(),
            vec![0, 10, 20, 30, 40, 50]
        );
    }
}
